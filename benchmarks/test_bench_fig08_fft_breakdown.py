"""Bench: Figure 8 — FFT time decomposition (the all-to-all gap)."""

import pytest

from repro.experiments.fig08_fft_breakdown import run


def test_bench_fig08(regen):
    result = regen(run)
    mpi = result.findings["CAF-MPI"]
    gasnet = result.findings["CAF-GASNet"]
    # The FFT difference is entirely the collective: hand-rolled all-to-all
    # costs a multiple of MPI_ALLTOALL (paper: 17.9 s vs 6.1 s ~ 3x)...
    assert gasnet["alltoall"] > 1.5 * mpi["alltoall"]
    # ...while local computation is the same (paper: 7.9 vs 8.3 s).
    assert gasnet["computation"] == pytest.approx(mpi["computation"], rel=0.2)
