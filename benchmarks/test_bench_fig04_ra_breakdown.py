"""Bench: Figure 4 — RandomAccess time decomposition."""

import pytest

from repro.experiments.fig04_ra_breakdown import run


def test_bench_fig04(regen):
    result = regen(run)
    mpi = result.findings["CAF-MPI"]
    gasnet = result.findings["CAF-GASNet"]
    # CAF-MPI's event_notify dwarfs CAF-GASNet's (linear FLUSH_ALL vs a
    # single AM) — the paper's central profiling observation.
    assert mpi["event_notify"] > 3 * gasnet["event_notify"]
    # Computation is the same code on both runtimes.
    assert mpi["computation"] == pytest.approx(gasnet["computation"], rel=0.2)
    # For CAF-GASNet, notify is a minor cost next to waiting.
    assert gasnet["event_notify"] < gasnet["event_wait"]
