"""Bench: Figure 3 — RandomAccess on Fusion (SRQ drop + GASNet edge)."""

from repro.experiments.fig03_ra_fusion import run


def test_bench_fig03(regen):
    result = regen(run)
    f = result.findings
    procs = f["procs"]
    mpi = f["CAF-MPI"]
    gasnet = f["CAF-GASNet"]
    nosrq = f["CAF-GASNet-NOSRQ"]
    # Below the SRQ threshold (rescaled to 32), GASNet beats CAF-MPI by a
    # small constant factor (paper: ~1.3-1.5x).
    for i, p in enumerate(procs):
        if p < 32:
            assert gasnet[i] > mpi[i], f"GASNet should lead at P={p}"
            assert gasnet[i] < 4 * mpi[i], "lead should be a small factor"
    # At/after the threshold the SRQ drop bites: GASNet falls well below
    # its NOSRQ twin.
    i32 = procs.index(32)
    assert gasnet[i32] < 0.6 * nosrq[i32]
    # NOSRQ keeps scaling (no drop).
    assert nosrq[i32] > nosrq[i32 - 1]
