"""Observability overhead harness: metrics must be free when off and
perturbation-free when on.

Two guarantees, measured on full RandomAccess runs and written into the
``obs_overhead`` section of ``BENCH_wallclock.json``:

* **Disabled cost**: a metrics-off run pays one cached-attribute load plus
  one ``is None`` test per instrumented op. Wall clock vs the same run is
  asserted within 3% of the metrics-on/off noise floor.
* **Zero perturbation**: metrics recording never touches the engine, so
  the event-order digest, virtual makespan, and per-image results are
  *bit*-identical with metrics on or off.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs_overhead.py -q
"""

import os
import time

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.sim.network import MachineSpec

from .test_bench_wallclock import _best_of, _merge

SPEC = MachineSpec(name="generic")
RA_KW = dict(table_bits_per_image=8, updates_per_image=1024, batches=8)

#: Accepted metrics-off wall-clock regression vs the metrics-on run of the
#: same workload. The disabled path is a no-op; 3% is the acceptance bound
#: from the issue, applied over best-of-N to cut scheduler noise.
OVERHEAD_BOUND = 0.03


def _ra(nranks: int, metrics: bool, digest: bool = False):
    if digest:
        os.environ["REPRO_SIM_DIGEST"] = "1"
    try:
        return run_caf(
            run_randomaccess, nranks, SPEC, metrics=metrics, **RA_KW
        )
    finally:
        os.environ.pop("REPRO_SIM_DIGEST", None)


def test_metrics_do_not_perturb_virtual_time():
    off = _ra(8, metrics=False, digest=True)
    on = _ra(8, metrics=True, digest=True)
    assert on.cluster.engine.order_digest() == off.cluster.engine.order_digest()
    assert on.cluster.engine.events_executed == off.cluster.engine.events_executed
    assert on.elapsed == off.elapsed
    assert on.results[0].gups == off.results[0].gups
    assert on.metrics is not None and off.metrics is None


def test_metrics_off_wallclock_within_bound():
    nranks = 16
    off_s, off = _best_of(lambda: _ra(nranks, metrics=False), repeats=5)
    on_s, on = _best_of(lambda: _ra(nranks, metrics=True), repeats=5)

    # The guarded no-op must not cost more than the bound relative to the
    # *instrumented* run; negative overhead just means noise won.
    overhead = off_s / on_s - 1.0

    flush = on.metrics.aggregate("mpi.flush_all")
    notify = on.metrics.aggregate("caf.event_notify")
    _merge(
        "obs_overhead",
        {
            "description": "RandomAccess wall clock, metrics off vs on",
            "nranks": nranks,
            "metrics_off_wall_s": round(off_s, 4),
            "metrics_on_wall_s": round(on_s, 4),
            "off_over_on": round(off_s / on_s, 4),
            "bound": OVERHEAD_BOUND,
            "recorded_ops": on.metrics.total_calls(),
            "flush_all_s_per_call": flush.time_per_call,
            "event_notify_s_per_call": notify.time_per_call,
            "virtual_elapsed_s": on.elapsed,
        },
    )
    assert off.elapsed == on.elapsed
    assert overhead < OVERHEAD_BOUND, (
        f"metrics-off run {overhead * 100:.1f}% slower than metrics-on "
        f"({off_s:.3f}s vs {on_s:.3f}s) — the disabled guard is not free"
    )


def test_flush_cost_linear_in_ranks_recorded():
    """The paper's O(P) flush_all/event_notify claim, measured end to end
    and archived with the wall-clock numbers."""
    t0 = time.perf_counter()
    per_call = {}
    for nranks in (4, 8, 16):
        run = _ra(nranks, metrics=True)
        per_call[nranks] = {
            "event_notify": run.metrics.aggregate("caf.event_notify").time_per_call,
            "flush_all": run.metrics.aggregate("mpi.flush_all").time_per_call,
        }
    _merge(
        "obs_flush_scaling",
        {
            "description": "per-call virtual cost of event_notify/flush_all vs P",
            "per_call": {str(k): v for k, v in sorted(per_call.items())},
            "wall_s": round(time.perf_counter() - t0, 2),
        },
    )
    for kind in ("event_notify", "flush_all"):
        assert per_call[4][kind] < per_call[8][kind] < per_call[16][kind]
    # Linear, not just monotone: the 8->16 increment is roughly twice the
    # 4->8 increment (constant terms make it inexact; 1.5x is a safe floor).
    for kind in ("event_notify", "flush_all"):
        d1 = per_call[8][kind] - per_call[4][kind]
        d2 = per_call[16][kind] - per_call[8][kind]
        assert d2 > 1.5 * d1
