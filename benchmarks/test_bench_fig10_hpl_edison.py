"""Bench: Figure 10 — HPL on Edison."""

from repro.experiments.fig10_hpl_edison import run


def test_bench_fig10(regen):
    result = regen(run)
    f = result.findings
    for a, b in zip(f["CAF-MPI"], f["CAF-GASNet"]):
        assert 0.85 < a / b < 1.18
