"""Replay-sweep harness: 16 MachineSpec points, live vs recorded replay.

The IR subsystem's acceptance numbers live here, in
``BENCH_ir_sweep.json`` at the repo root:

* ``sweep16`` — a 4x4 latency x bandwidth grid over RandomAccess.
  The *live* column re-executes the full simulator per point; the
  *replay* column records one instrumented run, compiles the trace once,
  and re-prices all 16 points. Asserted: replay sweep wall time is
  >= 10x faster than live re-execution, and the grid's identity point
  (the recorded spec) reproduces the live makespan bit-for-bit.
* Per-point live-vs-replay relative errors are recorded alongside — the
  honest approximation profile of frozen-structure replay under specs
  that differ from the recorded one.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_ir_sweep.py -q
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.ir import record as ir_record
from repro.ir import run_sweep
from repro.ir.replay import CompiledTrace
from repro.ir.sweep import SweepPoint
from repro.platforms import PLATFORMS

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_ir_sweep.json"

NRANKS = 8
RA_KW = dict(table_bits_per_image=8, updates_per_image=512, batches=4)
BASE = PLATFORMS["laptop"]

#: 4x4 grid; (1, 1) is the identity point — the recorded spec itself.
LAT_FACTORS = (1, 2, 4, 8)
BW_FACTORS = (1, 2, 4, 8)


def _merge(section: str, payload) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("meta", {}).update(
        python=sys.version.split()[0],
        platform=sys.platform,
        cpus=os.cpu_count(),
    )
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _grid():
    points = []
    for lf in LAT_FACTORS:
        for bf in BW_FACTORS:
            points.append(
                SweepPoint(
                    name=f"lat x{lf}, bw /{bf}",
                    overrides={
                        "latency": BASE.latency * lf,
                        "bandwidth": BASE.bandwidth / bf,
                    },
                )
            )
    return points


def _live(point: SweepPoint):
    # metrics=True: the replay column emits per-op totals and a comm
    # matrix per point, so the live column must produce them too.
    return run_caf(
        run_randomaccess, NRANKS, point.resolve(BASE), backend="mpi",
        metrics=True, **RA_KW
    )


def test_sweep16_replay_beats_live_10x(tmp_path):
    points = _grid()

    # Live: 16 full simulator executions.
    t0 = time.perf_counter()
    live_runs = [_live(p) for p in points]
    live_wall = time.perf_counter() - t0

    # Replay: one recorded run, one compile, 16 re-pricings.
    t0 = time.perf_counter()
    with ir_record.recording(tmp_path / "ra.npz"):
        recorded_run = run_caf(
            run_randomaccess, NRANKS, BASE, backend="mpi", **RA_KW
        )
    record_wall = time.perf_counter() - t0
    trace = ir_record.last_trace()
    assert trace is not None

    t0 = time.perf_counter()
    compiled = CompiledTrace(trace)
    outcome = run_sweep(compiled, points)
    replay_wall = time.perf_counter() - t0

    # Calibration: the identity point is the live run, bit-for-bit.
    identity = outcome.results[0][1]
    assert points[0].resolve(BASE).latency == BASE.latency
    assert identity.makespan == recorded_run.elapsed
    assert identity.makespan == live_runs[0].elapsed

    rows = []
    for point, (_, res), live in zip(points, outcome.results, live_runs):
        err = abs(res.makespan - live.elapsed) / live.elapsed
        rows.append(
            {
                "point": point.name,
                "live_makespan": live.elapsed,
                "replay_makespan": res.makespan,
                "rel_error": round(err, 6),
            }
        )

    speedup = live_wall / replay_wall
    _merge(
        "sweep16",
        {
            "description": "4x4 latency x bandwidth grid, RA x8 on mpi",
            "nranks": NRANKS,
            "trace_ops": trace.nops,
            "live_wall_s": round(live_wall, 4),
            "record_wall_s": round(record_wall, 4),
            "replay_sweep_wall_s": round(replay_wall, 4),
            "speedup_vs_live": round(speedup, 1),
            "identity_point_exact": True,
            "points": rows,
        },
    )
    assert speedup >= 10.0, (
        f"16-point replay sweep only {speedup:.1f}x faster than live "
        f"re-execution ({replay_wall:.3f}s vs {live_wall:.3f}s)"
    )
