"""Bench: Mira microbenchmarks (point-to-point rates + all-to-all)."""

from repro.experiments.micro_mira import run


def test_bench_micro_mira(regen):
    result = regen(run)
    f = result.findings
    last = len(f["procs"]) - 1
    # GASNet's one-sided ops are several times faster than MPICH-on-PAMI's.
    assert f["CAF-GASNet READ"][last] > 2 * f["CAF-MPI READ"][last]
    assert f["CAF-GASNet WRITE"][last] > 2 * f["CAF-MPI WRITE"][last]
    # NOTIFY rates are comparable (paper: 97k vs 90k).
    ratio = f["CAF-GASNet NOTIFY"][last] / f["CAF-MPI NOTIFY"][last]
    assert 0.5 < ratio < 2.0
    # MPI_ALLTOALL crushes the hand-rolled AM-signalled version on BG/Q.
    assert f["CAF-MPI ALLTOALL"][last] > 3 * f["CAF-GASNet ALLTOALL"][last]
    # Point-to-point rates stay roughly flat across the sweep.
    reads = f["CAF-GASNet READ"]
    assert max(reads) < 1.5 * min(reads)
