"""Bench: Figure 5 — RandomAccess on Edison (send/recv-backed Cray RMA)."""

from repro.experiments.fig05_ra_edison import run


def test_bench_fig05(regen):
    result = regen(run)
    f = result.findings
    mpi = f["CAF-MPI"]
    gasnet = f["CAF-GASNet"]
    # CAF-GASNet leads at every scale on Edison (paper Fig. 5), with the
    # gap at least as large as on Fusion (send/recv-backed RMA hurts).
    for i in range(len(f["procs"])):
        assert gasnet[i] > 1.2 * mpi[i]
    # Both still scale upward in this range.
    assert gasnet[-1] > gasnet[0]
    assert mpi[-1] > mpi[0]
