"""Bench: Table 1 regeneration."""

from repro.experiments.table1_platforms import run


def test_bench_table1(regen):
    result = regen(run)
    assert result.findings["platforms"] == ["fusion", "edison", "mira"]
    assert len(result.rows) == 3
