"""Bench: Figure 2 — the interoperability deadlock scenario."""

from repro.experiments.fig02_deadlock import run


def test_bench_fig02(regen):
    result = regen(run)
    f = result.findings
    assert f["CAF-GASNet (AM-based writes)"] == "DEADLOCK"
    assert f["CAF-GASNet (RDMA writes)"] == "completes"
    assert f["CAF-MPI (MPI_PUT writes)"] == "completes"
