"""Bench: Figure 1 — dual-runtime memory duplication."""

import pytest

from repro.experiments.fig01_memory import PAPER, run


def test_bench_fig01(regen):
    result = regen(run)
    f = result.findings
    for p in (16, 64):
        # Duplicate = sum of the two runtimes' footprints.
        assert f[f"duplicate_{p}"] == pytest.approx(
            f[f"gasnet_{p}"] + f[f"mpi_{p}"], rel=1e-6
        )
        # MPI's footprint dominates GASNet's (paper: ~107 vs ~26 MB).
        assert f[f"mpi_{p}"] > 2 * f[f"gasnet_{p}"]
        # Within 15% of the paper's measured values.
        paper_gasnet, paper_mpi, paper_dup = PAPER[p]
        assert f[f"gasnet_{p}"] == pytest.approx(paper_gasnet, rel=0.15)
        assert f[f"mpi_{p}"] == pytest.approx(paper_mpi, rel=0.15)
        assert f[f"duplicate_{p}"] == pytest.approx(paper_dup, rel=0.15)
    # Footprints grow with process count.
    assert f["duplicate_64"] > f["duplicate_16"]
