"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures (at "quick"
scale) under pytest-benchmark timing, then asserts the paper's qualitative
result — who wins, by roughly what factor, where crossovers fall.
Simulations are deterministic, so a single round suffices.
"""

import pytest


@pytest.fixture
def regen(benchmark):
    """Run an experiment once under the benchmark timer; return its result."""

    def _regen(run_fn, scale="quick"):
        return benchmark.pedantic(lambda: run_fn(scale), rounds=1, iterations=1)

    return _regen
