"""Bench: Figure 12 — CGPOP on Edison."""

from repro.experiments.fig12_cgpop_edison import run

VARIANTS = [
    "CAF-MPI (PUSH)",
    "CAF-MPI (PULL)",
    "CAF-GASNet (PUSH)",
    "CAF-GASNet (PULL)",
]


def test_bench_fig12(regen):
    result = regen(run)
    f = result.findings
    for i in range(len(f["procs"])):
        times = [f[v][i] for v in VARIANTS]
        assert max(times) < 2.0 * min(times)
