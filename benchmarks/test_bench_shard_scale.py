"""Shard-scale harness: paper-scale rank counts under the sharded dispatcher.

Writes ``BENCH_shard_scale.json`` at the repo root:

* ``ra_scale`` — RandomAccess at 512/1024/2048/4096 ranks, sequential vs
  sharded dispatch. Per row: wall time, events/s, the wall-vs-budget
  margin, the conservative-protocol statistics (epochs, null messages,
  cross-shard traffic, events per epoch — the schedule's exposed
  concurrency), and the dispatch-overhead ratio (sharded events/s over
  sequential events/s; the windowed dispatcher's bookkeeping cost). The
  order digest, makespan and GUPS are asserted bit-identical between the
  sequential and every sharded run at every tested rank count.
* ``fft_scale`` — the paper's largest FFT configuration (4096 ranks,
  m = 2^24) on the MPI backend, sequential vs 2 shards, same identity
  assertions. Only feasible because MPI's alltoall switches to Bruck's
  log-round algorithm at this scale; CAF-GASNet keeps its naive O(P^2)
  exchange (the paper's Figure 8 collapse) and is not run at 4096.
* ``process_scaling`` — run-level OS-process parallelism: the same config
  batch through :func:`repro.sim.shard.run_configs_parallel` with 1 vs 2
  workers. Within one run the shards share an address space, so this is
  where a multi-core host genuinely buys wall time; on a single-core CI
  runner the efficiency honestly reports ~1 against one usable core.

Every measurement runs in a fresh spawn worker (``run_app_config``), with
the wall clock read inside the child around the run itself. Back-to-back
runs in one interpreter are not independent at this scale — a 4096-rank
run leaves thousands of fiber stacks and a fragmented heap behind, and a
follow-up run in the same process measures ~40% slower than the identical
run in a fresh one — so per-measurement isolation is what makes the
budget-margin and overhead-ratio columns meaningful.

The full sweep takes ~30 min on the reference container; CI's perf-smoke
job restricts it with ``REPRO_BENCH_SCALE_RANKS=512`` (see
``.github/workflows/ci.yml``). Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_shard_scale.py -q
"""

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.sim.shard import run_configs_parallel

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_shard_scale.json"

RA_KW = dict(table_bits_per_image=6, updates_per_image=64, batches=2)

#: Wall-clock ceiling per run — the acceptance budget for paper-scale runs.
SCALE_BUDGET_S = 600.0

_DEFAULT_RANKS = (512, 1024, 2048, 4096)
#: Shard counts per rank count. The large configurations keep to {1, 2}
#: so the full sweep stays within ~30 min of single-core wall time.
_SHARD_COUNTS = {512: (1, 2, 4), 1024: (1, 2, 4), 2048: (1, 2), 4096: (1, 2)}


def _ranks() -> tuple[int, ...]:
    """Rank counts to sweep; ``REPRO_BENCH_SCALE_RANKS=512,1024`` restricts
    (the CI smoke subset)."""
    raw = os.environ.get("REPRO_BENCH_SCALE_RANKS", "").strip()
    if not raw:
        return _DEFAULT_RANKS
    ranks = tuple(int(tok) for tok in raw.split(","))
    bad = [r for r in ranks if r not in _SHARD_COUNTS]
    if bad:
        raise ValueError(f"unsupported REPRO_BENCH_SCALE_RANKS entries: {bad}")
    return ranks


def _merge(section: str, payload) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("meta", {}).update(
        python=sys.version.split()[0],
        platform=sys.platform,
        cpus=os.cpu_count(),
        cpus_available=(
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
        budget_s=SCALE_BUDGET_S,
    )
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed(app, nranks, shards, **kw) -> dict:
    """One measurement in a fresh spawn worker; returns its summary."""
    [out] = run_configs_parallel(
        [
            {
                "app": app,
                "nranks": nranks,
                "backend": "mpi",
                "shards": shards,
                "kwargs": kw,
                "env": {"REPRO_SIM_DIGEST": "1"},
            }
        ],
        processes=1,
    )
    return out


def _row(nranks, shards, out) -> dict:
    wall = out["wall_s"]
    row = {
        "nranks": nranks,
        "shards": shards,
        "wall_s": round(wall, 2),
        "budget_s": SCALE_BUDGET_S,
        "budget_margin_s": round(SCALE_BUDGET_S - wall, 2),
        "events": out["events"],
        "events_per_s": round(out["events"] / wall),
        "virtual_elapsed_s": out["makespan"],
        "order_digest": out["digest"],
    }
    st = out["shard_stats"]
    if st is not None:
        row.update(
            lookahead_s=st["lookahead"],
            epochs=st["epochs"],
            events_per_epoch=round(out["events"] / st["epochs"], 1),
            null_messages=st["null_messages"],
            cross_messages=st["cross_messages"],
            coordinator_signals=st["coordinator_signals"],
            lookahead_violations=st["lookahead_violations"],
        )
    return row


def test_ra_shard_scale():
    rows = []
    for nranks in _ranks():
        base = None
        for shards in _SHARD_COUNTS[nranks]:
            out = _timed("randomaccess", nranks, shards, **RA_KW)
            row = _row(nranks, shards, out)
            row["gups"] = out["figures"]["gups"]
            if shards == 1:
                base = row
            else:
                # The acceptance identity: sharding never changes the
                # schedule, at any tested scale or shard count.
                assert row["order_digest"] == base["order_digest"], row
                assert row["virtual_elapsed_s"] == base["virtual_elapsed_s"]
                assert row["events"] == base["events"]
                assert row["gups"] == base["gups"]
                assert row["lookahead_violations"] == 0
                row["dispatch_overhead_ratio"] = round(
                    base["events_per_s"] / row["events_per_s"], 3
                )
            assert out["wall_s"] < SCALE_BUDGET_S, (
                f"RA x{nranks} shards={shards} took {out['wall_s']:.0f}s "
                f"(budget {SCALE_BUDGET_S:.0f}s)"
            )
            rows.append(row)
    _merge("ra_scale", rows)


@pytest.mark.skipif(
    4096 not in _ranks(), reason="4096 not in REPRO_BENCH_SCALE_RANKS"
)
def test_fft_paper_scale_4096():
    m = 1 << 24  # smallest power-of-two size with 4096 | n1 and 4096 | n2
    rows = []
    seq = _timed("fft", 4096, 1, m=m)
    row = _row(4096, 1, seq)
    row["gflops"] = seq["figures"]["gflops"]
    rows.append(row)
    shd = _timed("fft", 4096, 2, m=m)
    row = _row(4096, 2, shd)
    row["gflops"] = shd["figures"]["gflops"]
    row["dispatch_overhead_ratio"] = round(shd["wall_s"] / seq["wall_s"], 3)
    rows.append(row)
    assert rows[1]["order_digest"] == rows[0]["order_digest"]
    assert rows[1]["virtual_elapsed_s"] == rows[0]["virtual_elapsed_s"]
    assert rows[1]["gflops"] == rows[0]["gflops"]
    assert rows[1]["lookahead_violations"] == 0
    for row in rows:
        assert row["wall_s"] < SCALE_BUDGET_S, row
    _merge("fft_scale", rows)


def test_process_scaling_run_level():
    nranks = min(_ranks())
    kw = dict(table_bits_per_image=6, updates_per_image=32, batches=1)
    configs = [
        {
            "app": "randomaccess",
            "nranks": nranks,
            "backend": "mpi",
            "shards": shards,
            "digest_partition": 2 if shards == 1 else None,
            "kwargs": kw,
            "env": {"REPRO_SIM_DIGEST": "1"},
        }
        for shards in (1, 2)
    ]
    t0 = time.perf_counter()
    serial = run_configs_parallel(configs, processes=1)
    wall_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_configs_parallel(configs, processes=2)
    wall_parallel = time.perf_counter() - t0
    # Same fingerprints regardless of pool shape — and the sharded config
    # matches the sequential baseline bit-for-bit, across process
    # boundaries (floats and digests survive pickling exactly).
    for results in (serial, parallel):
        assert results[0]["digest"] == results[1]["digest"]
        assert results[0]["shard_digests"] == results[1]["shard_digests"]
        assert results[0]["makespan"] == results[1]["makespan"]
    assert serial[0]["digest"] == parallel[0]["digest"]
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count() or 1
    )
    speedup = wall_serial / wall_parallel
    _merge(
        "process_scaling",
        {
            "nranks": nranks,
            "configs": len(configs),
            "serial_wall_s": round(wall_serial, 2),
            "parallel_wall_s": round(wall_parallel, 2),
            "workers": 2,
            "speedup": round(speedup, 2),
            # Against the cores this process may actually use: ~1.0 on a
            # multi-core host and honestly ~1.0 on a 1-core runner too
            # (where serial and parallel pools cost the same).
            "parallel_efficiency": round(speedup / min(2, cpus), 2),
        },
    )
