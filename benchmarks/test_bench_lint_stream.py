"""Bench: the symbolic op-stream tier's full-repo wall time.

The stream tier (compile entry points at the probe image count, run the
cross-rank matcher and the CAF011+ perf pack) is the expensive half of
``repro.lint``; this budget keeps it viable as a CI gate and as an
editor-save check.  The cold pass covers every Python file under
``src/`` and ``examples/`` — the trees the self-apply gate lints — and
the results land in ``BENCH_lint_stream.json`` at the repo root:

* ``full_repo`` — cold wall time for the symbolic pass alone (stream
  tier on minus stream tier off), plus file/entry counts.
* ``memo`` — warm re-lint wall time, demonstrating the content-hash
  memo (PR satellite: keyed on content, not path).

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_lint_stream.py -q
"""

import ast
import json
import os
import sys
import time
from pathlib import Path

from repro.lint.engine import _STREAM_MEMO, iter_python_files, lint_paths
from repro.lint.model import build_model
from repro.lint.stream.interp import entry_functions

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_lint_stream.json"

TREES = [str(REPO_ROOT / d) for d in ("src", "examples")]

#: Seconds allowed for a cold symbolic pass over src/ + examples/.
MAX_SECONDS = 3.0


def _merge(section: str, payload) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("meta", {}).update(
        python=sys.version.split()[0],
        platform=sys.platform,
        cpus=os.cpu_count(),
    )
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_symbolic_pass_under_budget():
    from repro.lint.engine import lint_source
    from repro.lint.stream import check_stream

    # Parse, model, and run the syntactic tier untimed — the symbolic
    # pass proper is the sum of check_stream() over every file.
    prepared = []
    nentries = 0
    for path in iter_python_files(TREES):
        source = Path(path).read_text()
        try:
            model = build_model(ast.parse(source), path)
        except SyntaxError:
            continue
        nentries += len(entry_functions(model))
        prepared.append((model, lint_source(source, path, stream=False)))

    t0 = time.perf_counter()
    for model, syntactic in prepared:
        check_stream(model, syntactic)
    symbolic = time.perf_counter() - t0

    # Whole-pipeline cold vs memo-warm wall time.
    _STREAM_MEMO.clear()
    t0 = time.perf_counter()
    report = lint_paths(TREES)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    lint_paths(TREES)
    warm = time.perf_counter() - t0

    nfiles = len(prepared)
    assert report.nfiles >= nfiles

    _merge(
        "full_repo",
        {
            "files": nfiles,
            "entry_points": nentries,
            "symbolic_seconds": round(symbolic, 4),
            "cold_seconds": round(cold, 4),
            "budget_seconds": MAX_SECONDS,
        },
    )
    _merge(
        "memo",
        {
            "warm_seconds": round(warm, 4),
            "speedup_vs_cold": round(cold / warm, 2) if warm > 0 else None,
        },
    )
    assert symbolic < MAX_SECONDS, (
        f"symbolic pass took {symbolic:.2f}s over {nfiles} files "
        f"({nentries} entry points; budget {MAX_SECONDS}s)"
    )
    # the memo must make a warm re-lint cheaper than the cold pass
    assert warm <= cold
