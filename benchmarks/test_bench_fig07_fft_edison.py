"""Bench: Figure 7 — FFT on Edison."""

from repro.experiments.fig07_fft_edison import run


def test_bench_fig07(regen):
    result = regen(run)
    f = result.findings
    mpi = f["CAF-MPI"]
    gasnet = f["CAF-GASNet"]
    for i in range(len(f["procs"])):
        assert mpi[i] > gasnet[i]
    assert mpi[-1] > mpi[0]
