"""Bench: sanitizer overhead — sanitized vs. plain wall time on the two
communication-heavy paper apps.

The checker must be *free when off* (``sanitize=False`` takes one flag
check) and *affordable when on*: vector-clock ticks and shadow-record
bookkeeping are pure host-side Python, so the bound here is generous but
catches accidental O(records^2) regressions. Virtual time must be
bit-for-bit identical either way — the hooks never sleep or schedule.
"""

import time

from repro.apps.fft import run_fft
from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf

CASES = {
    "randomaccess": (run_randomaccess, dict(updates_per_image=256, seed=7)),
    "fft": (run_fft, dict(m=1024, seed=7)),
}

#: Host wall-time multiplier allowed for a sanitized run. RandomAccess is
#: all fine-grained remote updates (worst case for shadow bookkeeping);
#: anything past this means the checker stopped being O(accesses).
MAX_OVERHEAD = 25.0


def _wall(program, kwargs, sanitize):
    t0 = time.perf_counter()
    run = run_caf(program, 8, backend="gasnet", sanitize=sanitize, **kwargs)
    return time.perf_counter() - t0, run


def _measure(name):
    program, kwargs = CASES[name]
    # Warm once (imports, numpy caches), then time each mode.
    _wall(program, kwargs, False)
    plain_t, plain = _wall(program, kwargs, False)
    san_t, san = _wall(program, kwargs, True)
    return plain_t, plain, san_t, san


def test_bench_sanitizer_overhead_randomaccess(benchmark):
    program, kwargs = CASES["randomaccess"]
    plain_t, plain, san_t, san = _measure("randomaccess")
    benchmark.pedantic(
        lambda: run_caf(program, 8, backend="gasnet", sanitize=True, **kwargs),
        rounds=1,
        iterations=1,
    )
    assert san.sanitizer.report.clean
    assert san.sanitizer.report.stats["records"] > 0
    # Timeline neutrality: virtual elapsed identical with the checker on.
    assert san.elapsed == plain.elapsed
    assert san_t < MAX_OVERHEAD * max(plain_t, 1e-3)


def test_bench_sanitizer_overhead_fft(benchmark):
    program, kwargs = CASES["fft"]
    plain_t, plain, san_t, san = _measure("fft")
    benchmark.pedantic(
        lambda: run_caf(program, 8, backend="gasnet", sanitize=True, **kwargs),
        rounds=1,
        iterations=1,
    )
    assert san.sanitizer.report.clean
    assert san.elapsed == plain.elapsed
    assert san_t < MAX_OVERHEAD * max(plain_t, 1e-3)
