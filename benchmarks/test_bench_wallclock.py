"""Wall-clock performance harness: how fast the host executes simulations.

Unlike the figure benchmarks (which regenerate *virtual-time* results),
this module measures *host* wall-clock throughput of the simulator itself
and writes ``BENCH_wallclock.json`` at the repo root:

* ``ra_update_microbench`` — the RandomAccess update loop on a single
  image with per-update virtual-time accounting. One runnable process,
  so every ``sleep`` takes the fast path's inline clock advance (zero
  context switches, zero heap traffic) while the pre-PR engine — the
  legacy dispatcher, kept verbatim in ``Engine(fastpath=False)`` —
  round-trips its scheduler thread through a semaphore pair per event.
  This isolates the scheduler fast path; the asserted >= 5x events/sec
  improvement lives here.
* ``ra_app`` — full RandomAccess runs (both backends, several rank
  counts), fast vs. legacy dispatcher, with the virtual-time outputs
  (event-order digest, makespan, profiler totals) asserted bit-identical
  between the two. Full-app speedup on a single-core host is bounded by
  the OS thread-switch floor (~3us/switch here; ~0.7 switches per event
  survive every fast path because cross-rank event interleaving forces
  real handoffs), so the honest full-app ratio is ~2x, not the
  microbench's — both numbers are recorded.
* ``apps`` — absolute wall times for RA/FFT/HPL/CGPOP at fixed ranks:
  regression-tracking numbers for future PRs.
* ``ra_scale`` — RandomAccess at 512 ranks on both backends must finish
  within the harness budget.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_wallclock.py -q

Set ``REPRO_BENCH_BASELINE`` to a git ref to also measure the full
pre-PR stack (engine + library) from a worktree subprocess; without it
the pre-PR engine comparison uses the in-tree legacy dispatcher, which
is that engine's scheduler loop kept verbatim.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import run_fft
from repro.apps.hpl import run_hpl
from repro.apps.randomaccess import (
    apply_updates,
    generate_updates,
    run_randomaccess,
)
from repro.caf.program import run_caf
from repro.sim.engine import Engine
from repro.sim.network import MachineSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_wallclock.json"

SPEC = MachineSpec(name="generic")
RA_KW = dict(table_bits_per_image=8, updates_per_image=1024, batches=8)

#: Wall-clock ceiling for one 512-rank RandomAccess run. Generous: the
#: reference container (single core) finishes in ~20s per backend.
SCALE_BUDGET_S = 600.0


def _merge(section: str, payload) -> None:
    """Read-modify-write one section of BENCH_wallclock.json, so the tests
    can run (or be deselected) independently."""
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("meta", {}).update(
        python=sys.version.split()[0],
        platform=sys.platform,
        # The host's real core count AND the subset this process may use:
        # on cgroup-limited CI runners the two differ, and the available
        # count is what bounds run-level shard parallelism.
        cpus=os.cpu_count(),
        cpus_available=(
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
    )
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _shards_of(run) -> int:
    """Shard count a run actually executed with (1 = sequential)."""
    plan = run.cluster.shard_plan
    return plan.nshards if plan is not None else 1


def _best_of(fn, repeats=3):
    """Minimum wall time over ``repeats`` runs (plus one discarded warm-up);
    returns (seconds, last_result)."""
    fn()
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# ---------------------------------------------------------------------------
# RA update-loop scheduler microbench (the >= 5x acceptance number)
# ---------------------------------------------------------------------------

MICRO_UPDATES = 100_000
MICRO_CHUNK = 1024
MICRO_BITS = 12


def _ra_update_loop(fastpath: bool):
    """Single-image RandomAccess with per-update virtual-time accounting.

    The table XORs are applied vectorized per chunk (as the app does), but
    each update's compute time is charged to the virtual clock individually
    — one ``sleep`` per update, the finest accounting granularity the
    simulator supports. With one runnable process this is a pure scheduler
    workload: the fast path advances the clock in place, the legacy
    dispatcher pays its full per-event scheduling round trip.
    """
    eng = Engine(fastpath=fastpath)
    table = np.zeros(1 << MICRO_BITS, np.uint64)
    updates = generate_updates(42, 0, MICRO_UPDATES, MICRO_BITS)
    per_update = SPEC.flops_time(1.0)

    def image(p):
        for lo in range(0, MICRO_UPDATES, MICRO_CHUNK):
            batch = updates[lo : lo + MICRO_CHUNK]
            apply_updates(table, batch, (1 << MICRO_BITS) - 1)
            for _ in range(batch.size):
                p.sleep(per_update)

    eng.spawn(image, name="image0")
    eng.run()
    return eng


def test_ra_update_microbench_beats_prepr_engine_5x():
    fast_s, fast_eng = _best_of(lambda: _ra_update_loop(True))
    legacy_s, legacy_eng = _best_of(lambda: _ra_update_loop(False))

    # Identical schedule: same event count, same final virtual time.
    assert fast_eng.events_executed == legacy_eng.events_executed
    assert fast_eng.now == legacy_eng.now

    events = fast_eng.events_executed
    fast_evps = events / fast_s
    legacy_evps = events / legacy_s
    speedup = fast_evps / legacy_evps
    _merge(
        "ra_update_microbench",
        {
            "description": "single-image RA update loop, per-update virtual accounting",
            "updates": MICRO_UPDATES,
            "events": events,
            "fast_wall_s": round(fast_s, 4),
            "legacy_wall_s": round(legacy_s, 4),
            "fast_events_per_s": round(fast_evps),
            "prepr_engine_events_per_s": round(legacy_evps),
            "speedup_vs_prepr_engine": round(speedup, 2),
        },
    )
    assert speedup >= 5.0, (
        f"scheduler fast path only {speedup:.1f}x over the pre-PR engine "
        f"({fast_evps:.0f} vs {legacy_evps:.0f} events/s)"
    )


# ---------------------------------------------------------------------------
# Full-app RandomAccess: wall clock + bit-identical virtual time
# ---------------------------------------------------------------------------


def _ra_app(backend: str, nranks: int, fastpath: bool):
    os.environ["REPRO_SIM_FASTPATH"] = "1" if fastpath else "0"
    os.environ["REPRO_SIM_DIGEST"] = "1"
    try:
        return run_caf(run_randomaccess, nranks, SPEC, backend=backend, **RA_KW)
    finally:
        del os.environ["REPRO_SIM_FASTPATH"]
        del os.environ["REPRO_SIM_DIGEST"]


def _prepr_baseline_ra(backend: str, nranks: int):
    """Wall-time the full pre-PR stack (engine + library) at a git ref named
    by REPRO_BENCH_BASELINE, in a worktree subprocess. Returns None when no
    baseline is configured or the ref cannot be materialized."""
    ref = os.environ.get("REPRO_BENCH_BASELINE")
    if not ref:
        return None
    tmp = tempfile.mkdtemp(prefix="repro-baseline-")
    wt = Path(tmp) / "wt"
    try:
        subprocess.run(
            ["git", "worktree", "add", "--detach", str(wt), ref],
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
        )
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    prog = (
        "import time, json, sys\n"
        "from repro.caf.program import run_caf\n"
        "from repro.apps.randomaccess import run_randomaccess\n"
        "from repro.sim.network import MachineSpec\n"
        f"spec = MachineSpec(name='generic')\n"
        f"kw = {RA_KW!r}\n"
        f"run_caf(run_randomaccess, 8, spec, backend={backend!r}, **kw)\n"
        "t0 = time.perf_counter()\n"
        f"r = run_caf(run_randomaccess, {nranks}, spec, backend={backend!r}, **kw)\n"
        "print(json.dumps({'wall_s': time.perf_counter() - t0,"
        " 'elapsed': r.cluster.elapsed}))\n"
    )
    try:
        env = dict(os.environ, PYTHONPATH=str(wt / "src"))
        out = subprocess.run(
            [sys.executable, "-c", prog],
            env=env,
            check=True,
            capture_output=True,
            text=True,
            timeout=900,
        )
        return json.loads(out.stdout.strip().splitlines()[-1])
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired):
        return None
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(wt)],
            cwd=REPO_ROOT,
            capture_output=True,
        )


def test_ra_app_wallclock_and_virtual_time_identity():
    rows = []
    for backend in ("mpi", "gasnet"):
        for nranks in (8, 32):
            fast_s, fast = _best_of(lambda b=backend, n=nranks: _ra_app(b, n, True))
            legacy_s, legacy = _best_of(
                lambda b=backend, n=nranks: _ra_app(b, n, False), repeats=1
            )

            # The tentpole's invariant: fast paths change how fast the host
            # runs the schedule, never which schedule runs. Everything
            # virtual must be *bit*-identical, not approximately equal.
            f_eng, l_eng = fast.cluster.engine, legacy.cluster.engine
            assert f_eng.order_digest() == l_eng.order_digest()
            assert f_eng.events_executed == l_eng.events_executed
            assert fast.cluster.elapsed == legacy.cluster.elapsed
            f_tot = {c: fast.profiler.total(c) for c in fast.profiler.categories()}
            l_tot = {c: legacy.profiler.total(c) for c in legacy.profiler.categories()}
            assert f_tot == l_tot
            assert fast.results[0].gups == legacy.results[0].gups

            events = f_eng.events_executed
            row = {
                "backend": backend,
                "nranks": nranks,
                "shards": _shards_of(fast),
                "events": events,
                "fast_wall_s": round(fast_s, 4),
                "legacy_wall_s": round(legacy_s, 4),
                "fast_events_per_s": round(events / fast_s),
                "legacy_events_per_s": round(events / legacy_s),
                "speedup_vs_legacy": round(legacy_s / fast_s, 2),
                "virtual_elapsed_s": fast.cluster.elapsed,
                "order_digest": f_eng.order_digest(),
            }
            baseline = _prepr_baseline_ra(backend, nranks)
            if baseline is not None:
                row["prepr_wall_s"] = round(baseline["wall_s"], 4)
                row["speedup_vs_prepr"] = round(baseline["wall_s"] / fast_s, 2)
                # Virtual time must also match the pre-PR stack exactly.
                assert baseline["elapsed"] == fast.cluster.elapsed
            rows.append(row)
            # Full-app floor: cross-rank interleaving forces a real thread
            # switch for most events, so the honest bound here is ~2x, and
            # anything below 1.3x means a fast path regressed.
            assert legacy_s / fast_s >= 1.3, row
    _merge("ra_app", rows)


# ---------------------------------------------------------------------------
# Per-app wall times (regression tracking)
# ---------------------------------------------------------------------------


def test_app_suite_wallclock():
    hpl_spec = SPEC.with_overrides(flops_per_sec=SPEC.flops_per_sec / 40.0)
    apps = {
        "randomaccess": lambda: run_caf(
            run_randomaccess, 16, SPEC, backend="mpi", **RA_KW
        ),
        "fft": lambda: run_caf(run_fft, 16, SPEC, backend="mpi", m=1 << 14),
        "hpl": lambda: run_caf(
            run_hpl, 16, hpl_spec, backend="mpi", n=256, block=16
        ),
        "cgpop": lambda: run_caf(
            run_cgpop, 16, SPEC, backend="mpi",
            ny=48, nx=48, mode="push", max_iter=60, tol=0.0,
        ),
    }
    section = {}
    for name, fn in apps.items():
        wall_s, run = _best_of(fn, repeats=2)
        eng = run.cluster.engine
        section[name] = {
            "nranks": 16,
            "shards": _shards_of(run),
            "wall_s": round(wall_s, 4),
            "events": eng.events_executed,
            "events_per_s": round(eng.events_executed / wall_s),
            "virtual_elapsed_s": run.cluster.elapsed,
        }
    _merge("apps", section)


# ---------------------------------------------------------------------------
# Scale: RA at 512 ranks must stay inside the harness budget
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_ra_scale_512_ranks(backend):
    t0 = time.perf_counter()
    run = run_caf(run_randomaccess, 512, SPEC, backend=backend, **RA_KW)
    wall_s = time.perf_counter() - t0
    eng = run.cluster.engine
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text()).get("ra_scale", {})
    data[backend] = {
        "nranks": 512,
        "shards": _shards_of(run),
        "wall_s": round(wall_s, 2),
        "budget_s": SCALE_BUDGET_S,
        "events": eng.events_executed,
        "events_per_s": round(eng.events_executed / wall_s),
        "virtual_elapsed_s": run.cluster.elapsed,
        "gups": run.results[0].gups,
    }
    _merge("ra_scale", data)
    assert wall_s < SCALE_BUDGET_S, (
        f"RA at 512 ranks took {wall_s:.0f}s on {backend} "
        f"(budget {SCALE_BUDGET_S:.0f}s)"
    )
