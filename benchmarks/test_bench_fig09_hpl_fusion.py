"""Bench: Figure 9 — HPL on Fusion (runtimes indistinguishable)."""

from repro.experiments.fig09_hpl_fusion import run


def test_bench_fig09(regen):
    result = regen(run)
    f = result.findings
    mpi = f["CAF-MPI"]
    gasnet = f["CAF-GASNet"]
    # Compute-bound: the two runtimes differ by a few percent at most.
    for a, b in zip(mpi, gasnet):
        assert 0.85 < a / b < 1.18
    # TFlops grow with process count (weak scaling).
    assert mpi[-1] > mpi[0]
