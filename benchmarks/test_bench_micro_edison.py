"""Bench: Edison microbenchmarks."""

from repro.experiments.micro_edison import run


def test_bench_micro_edison(regen):
    result = regen(run)
    f = result.findings
    last = len(f["procs"]) - 1
    # GASNet one-sided beats send/recv-backed Cray RMA.
    assert f["CAF-GASNet WRITE"][last] > 1.5 * f["CAF-MPI WRITE"][last]
    assert f["CAF-GASNet READ"][last] > 1.3 * f["CAF-MPI READ"][last]
    # On Edison WRITE is faster than READ for GASNet (paper: 500k vs 385k).
    assert f["CAF-GASNet WRITE"][last] > f["CAF-GASNet READ"][last]
    # MPI NOTIFY is slightly ahead of GASNet's (paper: 700k vs 655k).
    assert f["CAF-MPI NOTIFY"][last] > f["CAF-GASNet NOTIFY"][last]
    # Small-scale all-to-all: the hand-rolled GASNet version leads (paper:
    # 24k vs 12k at 32 procs).
    assert f["CAF-GASNet ALLTOALL"][last] > f["CAF-MPI ALLTOALL"][last]
