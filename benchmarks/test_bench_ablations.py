"""Bench: the design-choice ablations (§3.4, §3.5, §5) plus fault tolerance."""

from repro.experiments.ablation_decomp import run as run_decomp
from repro.experiments.ablation_eager import run as run_eager
from repro.experiments.ablation_event_impl import run as run_event
from repro.experiments.ablation_faults import run as run_faults
from repro.experiments.ablation_finish import run as run_finish
from repro.experiments.ablation_rflush import run as run_rflush


def test_bench_ablation_event_impl(regen):
    result = regen(run_event)
    f = result.findings
    # The paper's send/recv choice is at least as good on both measures.
    assert f["sendrecv"]["gups"] >= f["atomics"]["gups"] * 0.95
    assert f["sendrecv"]["pingpong_us"] <= f["atomics"]["pingpong_us"] * 1.1
    # ...and the atomics variant is functional, not broken.
    assert f["atomics"]["gups"] > 0


def test_bench_ablation_finish(regen):
    result = regen(run_finish)
    for per_round in result.findings.values():
        # Termination detection pays for its reduction rounds.
        assert per_round[False] > per_round[True]


def test_bench_ablation_rflush(regen):
    result = regen(run_rflush)
    f = result.findings
    speedups = [r / s for s, r in zip(f["stock"], f["rflush"])]
    assert all(s > 1.1 for s in speedups)
    # The win grows with process count (the flush walk is linear in P).
    assert speedups[-1] > speedups[0]


def test_bench_ablation_eager(regen):
    result = regen(run_eager)
    f = result.findings
    # Small messages: eager (threshold above the size) beats rendezvous.
    assert f[str((256, 1024))] < f[str((256, 0))]
    # Large messages: rendezvous avoids the copy.
    assert f[str((65536, 0))] < f[str((65536, 65536))]


def test_bench_ablation_faults(regen):
    result = regen(run_faults)
    for backend in ("mpi", "gasnet"):
        f = result.findings[backend]
        # Exactly-once correctness survives message loss on both backends...
        assert all(f["verified"])
        # ...because the transport actually retried (faulty runs only),
        assert f["retransmits"][0] == 0 and f["retransmits"][-1] > 0
        assert f["dropped"][-1] > 0
        # ...and the retries cost measurable virtual time.
        assert f["overhead"][0] == 1.0
        assert f["overhead"][-1] > 1.0


def test_bench_ablation_decomp(regen):
    result = regen(run_decomp)
    f = result.findings
    # Both decompositions are functional; times within a small factor.
    for p, t1 in f["1d"].items():
        t2 = f["2d"][p]
        assert 0.3 < t1 / t2 < 3.0
