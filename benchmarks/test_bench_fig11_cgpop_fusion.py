"""Bench: Figure 11 — CGPOP on Fusion (all four variants comparable)."""

from repro.experiments.fig11_cgpop_fusion import run

VARIANTS = [
    "CAF-MPI (PUSH)",
    "CAF-MPI (PULL)",
    "CAF-GASNet (PUSH)",
    "CAF-GASNet (PULL)",
]


def test_bench_fig11(regen):
    result = regen(run)
    f = result.findings
    for i in range(len(f["procs"])):
        times = [f[v][i] for v in VARIANTS]
        # The paper finds the variants near-indistinguishable; allow 2x to
        # absorb simulator granularity — far tighter than the RA/FFT gaps.
        assert max(times) < 2.0 * min(times)
    # More processes shrink the per-image execution time... until the halo
    # overhead floor; just require no blow-up.
    for v in VARIANTS:
        assert f[v][-1] < 4 * f[v][0]
