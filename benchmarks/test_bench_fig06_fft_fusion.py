"""Bench: Figure 6 — FFT on Fusion (MPI_ALLTOALL wins)."""

from repro.experiments.fig06_fft_fusion import run


def test_bench_fig06(regen):
    result = regen(run)
    f = result.findings
    mpi = f["CAF-MPI"]
    gasnet = f["CAF-GASNet"]
    # CAF-MPI consistently outperforms CAF-GASNet (paper: up to ~2x).
    for i in range(len(f["procs"])):
        assert mpi[i] > gasnet[i]
    # The headline gap is a real factor, not noise.
    assert mpi[-1] > 1.15 * gasnet[-1]
    # Throughput grows with process count for both.
    assert mpi[-1] > mpi[0]
