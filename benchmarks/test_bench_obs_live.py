"""Live-telemetry overhead harness: the streaming tap must be cheap when
on and invisible to the virtual timeline always.

Two guarantees, measured on full RandomAccess runs and written to
``BENCH_obs_live.json``:

* **Enabled cost**: a telemetry-on run (real 0.5s snapshot cadence, the
  production default) pays one cached-attribute load plus one ``is None``
  test per executed event, and a JSONL write only at interval expiry.
  Wall clock is asserted within 3% of the telemetry-off run (best-of-N).
* **Zero perturbation**: the tap only reads engine state, so the
  event-order digest, event count, virtual makespan, and figure of merit
  are *bit*-identical with telemetry on or off.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs_live.py -q
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.obs.live import read_telemetry
from repro.sim.network import MachineSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_obs_live.json"

SPEC = MachineSpec(name="generic")
RA_KW = dict(table_bits_per_image=8, updates_per_image=1024, batches=8)

#: Accepted telemetry-on wall-clock overhead vs the same run with the tap
#: off — the issue's 3% acceptance bound, over best-of-N to cut noise.
OVERHEAD_BOUND = 0.03

#: Production snapshot cadence (the run_caf default).
INTERVAL_S = 0.5


def _merge(section: str, payload) -> None:
    """Read-modify-write one section of BENCH_obs_live.json."""
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("meta", {}).update(
        python=sys.version.split()[0],
        platform=sys.platform,
        cpus=os.cpu_count(),
    )
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _ra(nranks: int, live_path=None, digest: bool = False):
    if digest:
        os.environ["REPRO_SIM_DIGEST"] = "1"
    try:
        kwargs = {}
        if live_path is not None:
            kwargs.update(live=live_path, live_interval=INTERVAL_S)
        return run_caf(run_randomaccess, nranks, SPEC, **RA_KW, **kwargs)
    finally:
        os.environ.pop("REPRO_SIM_DIGEST", None)


def test_telemetry_does_not_perturb_virtual_time(tmp_path):
    off = _ra(8, digest=True)
    on = _ra(8, live_path=tmp_path / "ra.telemetry.jsonl", digest=True)
    assert on.cluster.engine.order_digest() == off.cluster.engine.order_digest()
    assert on.cluster.engine.events_executed == off.cluster.engine.events_executed
    assert on.elapsed == off.elapsed
    assert on.results[0].gups == off.results[0].gups
    meta, snaps = read_telemetry(tmp_path / "ra.telemetry.jsonl")
    assert snaps[-1]["final"] is True and snaps[-1]["outcome"] == "ok"


def test_telemetry_on_wallclock_within_bound(tmp_path):
    nranks = 16
    streams = iter(tmp_path / f"run-{i}.jsonl" for i in range(100))
    # Interleave off/on runs and take per-variant minima: two sequential
    # best-of blocks confound the tap's cost with wall-clock drift on
    # shared single-core runners (the drift exceeds the bound measured).
    _ra(nranks)
    _ra(nranks, live_path=next(streams))  # discarded warm-up pair
    off_s = on_s = float("inf")
    off = on = None
    for _ in range(5):
        t0 = time.perf_counter()
        off = _ra(nranks)
        dt = time.perf_counter() - t0
        if dt < off_s:
            off_s = dt
        t0 = time.perf_counter()
        on = _ra(nranks, live_path=next(streams))
        dt = time.perf_counter() - t0
        if dt < on_s:
            on_s = dt

    overhead = on_s / off_s - 1.0
    tel = on.cluster.telemetry
    _merge(
        "obs_live_overhead",
        {
            "description": "RandomAccess wall clock, telemetry off vs on",
            "nranks": nranks,
            "interval_s": INTERVAL_S,
            "telemetry_off_wall_s": round(off_s, 4),
            "telemetry_on_wall_s": round(on_s, 4),
            "on_over_off": round(on_s / off_s, 4),
            "overhead": round(overhead, 4),
            "bound": OVERHEAD_BOUND,
            "snapshots_written": tel.snapshots_written,
            "events_executed": on.cluster.engine.events_executed,
            "virtual_elapsed_s": on.elapsed,
        },
    )
    assert off.elapsed == on.elapsed
    assert overhead < OVERHEAD_BOUND, (
        f"telemetry-on run {overhead * 100:.1f}% slower than telemetry-off "
        f"({on_s:.3f}s vs {off_s:.3f}s) — the tap is not low-overhead"
    )


def test_failure_capture_cost_is_bounded(tmp_path):
    """The failure-stamping path (capture_now on deadlock) must stay
    cheap enough to never mask the original error — one snapshot, not a
    scan of history."""
    from repro.util.errors import DeadlockError

    def lonely(img):
        if img.rank == 0:
            img.sync_all()

    t0 = time.perf_counter()
    try:
        run_caf(lonely, 64, SPEC, live=tmp_path / "dead.jsonl")
    except DeadlockError as exc:
        stamp_wall = time.perf_counter() - t0
        assert exc.telemetry is not None
    else:  # pragma: no cover - the program must deadlock
        raise AssertionError("expected DeadlockError")
    _merge(
        "obs_live_failure_stamp",
        {
            "description": "64-rank deadlock detected + telemetry stamped",
            "wall_s": round(stamp_wall, 4),
        },
    )
