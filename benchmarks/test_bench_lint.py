"""Bench: whole-repo lint wall time.

A protocol checker only gets run if it is fast enough to sit in the
inner development loop. The budget here covers a cold full-repo pass —
every Python file under src/, tests/, examples/, and benchmarks/ —
parsed, modeled, and checked. The implementation keeps this linear:
one AST parse per file, memoized per-function op streams, and a
fixed-sweep (≤4) tag/taint fixpoint over precomputed assignment facts.
"""

import time
from pathlib import Path

from repro.lint.engine import lint_paths

REPO = Path(__file__).parents[1]
TREES = [str(REPO / d) for d in ("src", "tests", "examples", "benchmarks")]

#: Seconds allowed for a cold full-repo pass (~200 files). Generous vs.
#: the ~1.6s observed, but tight enough to catch an accidental
#: O(functions * assignments) regression in the model fixpoint.
MAX_SECONDS = 2.0


def test_full_repo_lint_under_budget(benchmark):
    report = benchmark.pedantic(lambda: lint_paths(TREES), rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    assert report.nfiles > 150
    assert elapsed < MAX_SECONDS, (
        f"full-repo lint took {elapsed:.2f}s over {report.nfiles} files "
        f"(budget {MAX_SECONDS}s)"
    )


def test_lint_gate_paths_are_clean_and_fast():
    gate = [str(REPO / "examples"), str(REPO / "src" / "repro" / "apps")]
    t0 = time.perf_counter()
    report = lint_paths(gate)
    elapsed = time.perf_counter() - t0
    assert report.clean, "\n" + report.to_text()
    assert elapsed < 1.0
