"""Unit tests for the runtime memory ledger."""

import pytest

from repro.sim.memory import MB, MemoryMeter
from repro.util.errors import SimulationError


def test_alloc_and_rank_bytes():
    m = MemoryMeter(2)
    m.alloc(0, "mpi/base", 10 * MB)
    m.alloc(0, "mpi/eager", 2 * MB)
    m.alloc(1, "gasnet/base", 5 * MB)
    assert m.rank_bytes(0) == 12 * MB
    assert m.rank_mb(1) == pytest.approx(5.0)


def test_prefix_filtering():
    m = MemoryMeter(1)
    m.alloc(0, "mpi/base", 4 * MB)
    m.alloc(0, "gasnet/base", 1 * MB)
    assert m.rank_mb(0, prefix="mpi/") == pytest.approx(4.0)
    assert m.rank_mb(0, prefix="gasnet/") == pytest.approx(1.0)
    assert m.rank_mb(0) == pytest.approx(5.0)


def test_free_reduces_and_removes():
    m = MemoryMeter(1)
    m.alloc(0, "buf", 100.0)
    m.free(0, "buf", 40.0)
    assert m.rank_bytes(0) == pytest.approx(60.0)
    m.free(0, "buf", 60.0)
    assert m.labels(0) == {}


def test_overfree_rejected():
    m = MemoryMeter(1)
    m.alloc(0, "buf", 10.0)
    with pytest.raises(SimulationError):
        m.free(0, "buf", 20.0)


def test_negative_alloc_rejected():
    m = MemoryMeter(1)
    with pytest.raises(SimulationError):
        m.alloc(0, "buf", -1.0)


def test_max_rank_mb():
    m = MemoryMeter(3)
    m.alloc(0, "x", 1 * MB)
    m.alloc(1, "x", 3 * MB)
    m.alloc(2, "x", 2 * MB)
    assert m.max_rank_mb() == pytest.approx(3.0)


def test_repeated_alloc_same_label_accumulates():
    m = MemoryMeter(1)
    m.alloc(0, "win", 10.0)
    m.alloc(0, "win", 15.0)
    assert m.rank_bytes(0) == pytest.approx(25.0)
