"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine
from repro.util.errors import DeadlockError, SimulationError


def test_single_proc_runs_and_returns_result():
    eng = Engine()
    proc = eng.spawn(lambda p: 42)
    eng.run()
    assert proc.result == 42
    assert proc.state == "done"


def test_sleep_advances_virtual_clock():
    eng = Engine()

    def body(p):
        assert eng.now == 0.0
        p.sleep(1.5)
        assert eng.now == 1.5
        p.sleep(0.5)
        return eng.now

    proc = eng.spawn(body)
    eng.run()
    assert proc.result == 2.0
    assert eng.now == 2.0


def test_zero_sleep_is_noop():
    eng = Engine()
    trace = []

    def body(p):
        p.sleep(0.0)
        trace.append(eng.now)

    eng.spawn(body)
    eng.run()
    assert trace == [0.0]


def test_negative_sleep_rejected():
    eng = Engine()

    def body(p):
        p.sleep(-1.0)

    eng.spawn(body)
    with pytest.raises(SimulationError):
        eng.run()


def test_two_procs_interleave_by_time_order():
    eng = Engine()
    trace = []

    def slow(p):
        p.sleep(2.0)
        trace.append(("slow", eng.now))

    def fast(p):
        p.sleep(1.0)
        trace.append(("fast", eng.now))

    eng.spawn(slow)
    eng.spawn(fast)
    eng.run()
    assert trace == [("fast", 1.0), ("slow", 2.0)]


def test_ties_break_in_spawn_order():
    eng = Engine()
    trace = []
    for i in range(5):
        eng.spawn(lambda p, i=i: trace.append(i))
    eng.run()
    assert trace == [0, 1, 2, 3, 4]


def test_block_and_wake_transfers_payload():
    eng = Engine()
    got = []

    def waiter(p):
        got.append(p.block("waiting for pal"))

    def waker(p):
        p.sleep(3.0)
        w.wake("hello")

    w = eng.spawn(waiter)
    eng.spawn(waker)
    eng.run()
    assert got == ["hello"]
    assert eng.now == 3.0


def test_wake_resumes_at_wakers_time():
    eng = Engine()
    times = []

    def waiter(p):
        p.block("wait")
        times.append(eng.now)

    def waker(p):
        p.sleep(7.0)
        w.wake()

    w = eng.spawn(waiter)
    eng.spawn(waker)
    eng.run()
    assert times == [7.0]


def test_deadlock_detected_with_block_reasons():
    eng = Engine()
    eng.spawn(lambda p: p.block("recv(tag=7)"))
    eng.spawn(lambda p: p.block("barrier"))
    with pytest.raises(DeadlockError) as ei:
        eng.run()
    assert ei.value.blocked == {0: "recv(tag=7)", 1: "barrier"}
    assert "recv(tag=7)" in str(ei.value)


def test_partial_deadlock_detected():
    eng = Engine()
    eng.spawn(lambda p: p.block("event_wait"))
    eng.spawn(lambda p: p.sleep(1.0))
    with pytest.raises(DeadlockError) as ei:
        eng.run()
    assert list(ei.value.blocked) == [0]


def test_exception_in_proc_propagates():
    eng = Engine()

    def bad(p):
        p.sleep(1.0)
        raise ValueError("boom")

    eng.spawn(bad)
    eng.spawn(lambda p: p.block("never woken"))
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_call_at_in_past_rejected():
    eng = Engine()

    def body(p):
        p.sleep(5.0)
        eng.call_at(1.0, lambda: None)

    eng.spawn(body)
    with pytest.raises(SimulationError):
        eng.run()


def test_stale_wake_is_ignored():
    """A wake targeting an old block must not resume a newer block."""
    eng = Engine()
    trace = []

    def waiter(p):
        p.block("first")
        trace.append(("resumed-first", eng.now))
        p.block("second")
        trace.append(("resumed-second", eng.now))

    def waker(p):
        p.sleep(1.0)
        w.wake()  # resumes "first"
        w.wake()  # stale: targets the same generation, only one resume happens
        p.sleep(1.0)
        w.wake()  # resumes "second"

    w = eng.spawn(waiter)
    eng.spawn(waker)
    eng.run()
    assert trace == [("resumed-first", 1.0), ("resumed-second", 2.0)]


def test_engine_runs_once():
    eng = Engine()
    eng.spawn(lambda p: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.run()


def test_spawn_after_run_rejected():
    eng = Engine()
    eng.spawn(lambda p: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.spawn(lambda p: None)


def test_sleep_from_foreign_thread_rejected():
    eng = Engine()

    def body(p):
        other.sleep(1.0)  # not the running proc

    other = eng.spawn(lambda p: p.block("parked"))
    eng.spawn(body)
    with pytest.raises(SimulationError, match="outside the running process"):
        eng.run()


def test_many_procs_deterministic_order():
    def run_once():
        eng = Engine()
        trace = []

        def body(p, i):
            p.sleep((i * 7) % 5 + 0.5)
            trace.append(i)
            p.sleep((i * 3) % 4 + 0.25)
            trace.append(i + 100)

        for i in range(20):
            eng.spawn(lambda p, i=i: body(p, i))
        eng.run()
        return trace

    assert run_once() == run_once()


def test_scheduler_callbacks_run_in_time_order():
    eng = Engine()
    order = []

    def body(p):
        eng.call_in(3.0, lambda: order.append("c"))
        eng.call_in(1.0, lambda: order.append("a"))
        eng.call_in(2.0, lambda: order.append("b"))
        p.sleep(10.0)

    eng.spawn(body)
    eng.run()
    assert order == ["a", "b", "c"]
