"""Unit tests for SimEvent, Counter and Channel."""

import pytest

from repro.sim.engine import Engine
from repro.sim.sync import Channel, Counter, SimEvent
from repro.util.errors import DeadlockError


def test_event_wait_before_fire():
    eng = Engine()
    ev = SimEvent("ev")
    got = []

    def waiter(p):
        got.append(ev.wait(p))

    def firer(p):
        p.sleep(2.0)
        ev.fire("payload")

    eng.spawn(waiter)
    eng.spawn(firer)
    eng.run()
    assert got == ["payload"]


def test_event_wait_after_fire_returns_immediately():
    eng = Engine()
    ev = SimEvent("ev")
    times = []

    def firer(p):
        ev.fire(7)

    def waiter(p):
        p.sleep(5.0)
        assert ev.wait(p) == 7
        times.append(eng.now)

    eng.spawn(firer)
    eng.spawn(waiter)
    eng.run()
    assert times == [5.0]


def test_event_fire_is_idempotent():
    eng = Engine()
    ev = SimEvent("ev")

    def body(p):
        ev.fire(1)
        ev.fire(2)
        assert ev.wait(p) == 1

    eng.spawn(body)
    eng.run()


def test_event_wakes_all_waiters():
    eng = Engine()
    ev = SimEvent("ev")
    woken = []

    def waiter(p, i):
        ev.wait(p)
        woken.append(i)

    for i in range(4):
        eng.spawn(lambda p, i=i: waiter(p, i))
    eng.spawn(lambda p: (p.sleep(1.0), ev.fire())[-1])
    eng.run()
    assert sorted(woken) == [0, 1, 2, 3]


def test_event_never_fired_deadlocks():
    eng = Engine()
    ev = SimEvent("lonely")
    eng.spawn(lambda p: ev.wait(p))
    with pytest.raises(DeadlockError):
        eng.run()


def test_counter_take_blocks_until_enough():
    eng = Engine()
    cnt = Counter("c")
    trace = []

    def consumer(p):
        cnt.take(p, 3)
        trace.append(eng.now)

    def producer(p):
        for _ in range(3):
            p.sleep(1.0)
            cnt.add()

    eng.spawn(consumer)
    eng.spawn(producer)
    eng.run()
    assert trace == [3.0]
    assert cnt.count == 0


def test_counter_wait_geq_does_not_consume():
    eng = Engine()
    cnt = Counter("c", initial=2)

    def body(p):
        cnt.wait_geq(p, 2)
        assert cnt.count == 2

    eng.spawn(body)
    eng.run()


def test_channel_fifo_order():
    eng = Engine()
    ch = Channel("ch")
    got = []

    def producer(p):
        for i in range(5):
            p.sleep(1.0)
            ch.put(i)

    def consumer(p):
        for _ in range(5):
            got.append(ch.get(p))

    eng.spawn(producer)
    eng.spawn(consumer)
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_channel_filtered_get_skips_nonmatching():
    eng = Engine()
    ch = Channel("ch")
    got = []

    def body(p):
        ch.put(("a", 1))
        ch.put(("b", 2))
        ch.put(("a", 3))
        got.append(ch.get(p, match=lambda m: m[0] == "b"))
        got.append(ch.get(p))
        got.append(ch.get(p))

    eng.spawn(body)
    eng.run()
    assert got == [("b", 2), ("a", 1), ("a", 3)]


def test_channel_try_get_nonblocking():
    eng = Engine()
    ch = Channel("ch")

    def body(p):
        ok, item = ch.try_get()
        assert not ok and item is None
        ch.put("x")
        ok, item = ch.try_get()
        assert ok and item == "x"

    eng.spawn(body)
    eng.run()


def test_two_consumers_each_get_one_item():
    eng = Engine()
    ch = Channel("ch")
    got = []

    def consumer(p, i):
        got.append((i, ch.get(p)))

    eng.spawn(lambda p: consumer(p, 0))
    eng.spawn(lambda p: consumer(p, 1))

    def producer(p):
        p.sleep(1.0)
        ch.put("first")
        p.sleep(1.0)
        ch.put("second")

    eng.spawn(producer)
    eng.run()
    assert sorted(got) == [(0, "first"), (1, "second")]
