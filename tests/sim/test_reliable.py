"""Reliable delivery over a lossy fabric: acks, retransmits, dedup."""

import math

from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan
from repro.sim.network import MachineSpec, NetFabric
from repro.sim.reliable import ReliableTransport


def make_spec(**kw):
    defaults = dict(
        name="test",
        latency=1e-6,
        bandwidth=1e9,
        header_bytes=0,
        tx_msg_overhead=0.0,
        rx_msg_overhead=0.0,
        loopback_latency=1e-7,
        ranks_per_node=1,
        mem_copy_bw=1e10,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


def run_reliable(plan, n, nbytes=1000, **transport_kw):
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())
    fabric.faults = plan
    fabric.reliable = ReliableTransport(fabric, **transport_kw)
    delivered = []

    def body(p):
        for i in range(n):
            r = fabric.send(
                0, 1, nbytes, lambda i=i: delivered.append(i), reliable=True
            )
            assert r == math.inf
        p.sleep(60.0)  # long enough for every backoff schedule to finish

    eng.spawn(body)
    eng.run()
    return fabric, delivered


def test_lossless_fabric_delivers_once_without_retransmits():
    fabric, delivered = run_reliable(None, 10)
    assert sorted(delivered) == list(range(10))
    assert fabric.reliable.sends == 10
    assert fabric.reliable.retransmits == 0
    assert fabric.reliable.duplicates_filtered == 0


def test_drops_are_recovered_exactly_once():
    plan = FaultPlan(seed=11, drop_rate=0.3)
    fabric, delivered = run_reliable(plan, 50)
    assert sorted(delivered) == list(range(50))  # every message, exactly once
    assert fabric.reliable.retransmits > 0
    assert fabric.dropped > 0


def test_fabric_duplicates_are_filtered():
    plan = FaultPlan(seed=11, dup_rate=1.0)
    fabric, delivered = run_reliable(plan, 20)
    assert sorted(delivered) == list(range(20))
    assert fabric.reliable.duplicates_filtered > 0


def test_mixed_faults_still_exactly_once():
    plan = FaultPlan(
        seed=13, drop_rate=0.15, corrupt_rate=0.1, dup_rate=0.15, delay_rate=0.2
    )
    fabric, delivered = run_reliable(plan, 60)
    assert sorted(delivered) == list(range(60))


def test_reliable_run_is_deterministic():
    def once():
        plan = FaultPlan(seed=17, drop_rate=0.25, dup_rate=0.1)
        fabric, delivered = run_reliable(plan, 30)
        return (
            delivered,
            fabric.engine.now,
            fabric.reliable.retransmits,
            fabric.dropped,
        )

    assert once() == once()


def test_total_loss_gives_up_after_max_retries():
    plan = FaultPlan(seed=11, drop_rate=1.0)
    fabric, delivered = run_reliable(plan, 3, max_retries=4)
    assert delivered == []
    assert fabric.reliable.gave_up == 3
    # initial attempt + 4 retries per message
    assert fabric.reliable.retransmits == 3 * 4


def test_give_up_invokes_failure_hook_with_the_dead_pair():
    plan = FaultPlan(seed=11, drop_rate=1.0)
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())
    fabric.faults = plan
    fabric.reliable = ReliableTransport(fabric, max_retries=3)
    gave_up = []
    fabric.reliable.on_give_up = lambda src, dst: gave_up.append((src, dst))

    def body(p):
        fabric.send(0, 1, 500, lambda: None, reliable=True)
        p.sleep(60.0)

    eng.spawn(body)
    eng.run()
    assert gave_up == [(0, 1)]
    assert fabric.reliable.gave_up == 1


def test_jittered_backoff_is_deterministic_and_bounded():
    from repro.util.rng import rank_rng

    def timed_run(**transport_kw):
        eng = Engine()
        fabric = NetFabric(eng, 2, make_spec())
        fabric.faults = FaultPlan(seed=17, drop_rate=0.25)
        fabric.reliable = ReliableTransport(fabric, **transport_kw)
        delivered = []

        def body(p):
            for i in range(30):
                fabric.send(
                    0, 1, 1000, lambda i=i: delivered.append((i, eng.now)),
                    reliable=True,
                )
            p.sleep(60.0)

        eng.spawn(body)
        eng.run()
        return delivered

    first = timed_run(jitter=0.25, rng=rank_rng(5, 0, "reliable"))
    second = timed_run(jitter=0.25, rng=rank_rng(5, 0, "reliable"))
    assert first == second
    assert sorted(i for i, _ in first) == list(range(30))
    # Jitter perturbs retransmit timing relative to the unjittered schedule.
    unjittered = timed_run()
    assert sorted(i for i, _ in unjittered) == list(range(30))
    assert unjittered != first


def test_send_without_transport_degrades_to_plain_transfer():
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())
    got = []

    def body(p):
        t = fabric.send(0, 1, 100, lambda: got.append(eng.now), reliable=True)
        assert math.isfinite(t)  # plain transfer: delivery time is known
        p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert len(got) == 1


def test_delivered_state_compacts_to_low_water_mark():
    """Dedup state must not grow with message count: in-order delivery
    compacts to a cumulative low-water mark and an empty gap set."""
    fabric, delivered = run_reliable(None, 200)
    assert sorted(delivered) == list(range(200))
    low, pending = fabric.reliable._delivered[(0, 1)]
    assert low == 199
    assert pending == set()


def test_delivered_state_stays_small_under_faults():
    plan = FaultPlan(seed=7, drop_rate=0.2, dup_rate=0.2, delay_rate=0.3)
    fabric, delivered = run_reliable(plan, 150)
    assert sorted(delivered) == list(range(150))
    low, pending = fabric.reliable._delivered[(0, 1)]
    # Once every retransmit settles, all gaps are filled and drained.
    assert low == 149
    assert pending == set()
    assert fabric.reliable.duplicates_filtered > 0
