"""Event tracing: opt-in timeline of transfers and profiled regions."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.sim.trace import TraceEvent, Tracer


def test_disabled_tracer_records_nothing():
    t = Tracer()
    t.record("transfer", 0, 0.0, 1.0, nbytes=10)
    assert t.events == []


def test_enable_disable_cycle():
    t = Tracer()
    t.enable()
    t.record("x", 0, 0.0, 1.0)
    t.disable()
    t.record("x", 0, 1.0, 2.0)
    assert len(t.events) == 1


def test_event_duration_and_queries():
    t = Tracer()
    t.enable()
    t.record("transfer", 0, 1.0, 3.0, dst=1, nbytes=100)
    t.record("transfer", 1, 2.0, 4.0, dst=0, nbytes=50)
    t.record("region", 0, 0.0, 5.0, category="compute")
    assert t.summary() == {"transfer": 2, "region": 1}
    assert t.bytes_transferred() == 150
    assert len(t.for_rank(0)) == 2
    assert t.of_kind("region")[0].duration == 5.0


def test_to_text_renders_sorted_limited():
    t = Tracer()
    t.enable()
    for i in range(5):
        t.record("op", 0, float(4 - i), float(5 - i), n=i)
    text = t.to_text(limit=3)
    assert "5 events" in text and "showing 3" in text
    lines = text.splitlines()
    assert len(lines) == 3 + 3  # title + header + rule + 3 rows


def test_to_text_limit_zero_and_none():
    t = Tracer()
    t.enable()
    for i in range(3):
        t.record("op", 0, float(i), float(i + 1))
    # limit=0 is a real limit (historically dropped because 0 is falsy).
    assert "showing 0" in t.to_text(limit=0)
    # limit=None means unlimited: no "showing" qualifier at all.
    assert "showing" not in t.to_text(limit=None)


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_caf_run_with_tracing_captures_transfers(backend):
    def program(img):
        co = img.allocate_coarray(16, np.float64)
        img.sync_all()
        co.write((img.rank + 1) % img.nranks, np.ones(16))
        img.sync_all()

    run = run_caf(program, 4, backend=backend, trace=True)
    transfers = run.tracer.of_kind("transfer")
    assert transfers, "traced run must record fabric transfers"
    assert run.tracer.bytes_transferred() > 4 * 16 * 8  # at least the payloads
    # Every transfer's interval is well-formed and within the run.
    for ev in transfers:
        assert 0 <= ev.t0 <= ev.t1 <= run.elapsed


def test_caf_run_with_tracing_captures_regions():
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        img.sync_all()
        co.write((img.rank + 1) % img.nranks, np.ones(4))
        img.sync_all()

    run = run_caf(program, 2, backend="mpi", trace=True)
    regions = run.tracer.of_kind("region")
    cats = {e.detail["category"] for e in regions}
    assert "coarray_write" in cats
    assert "barrier" in cats


def test_untraced_run_is_default():
    def program(img):
        img.sync_all()

    run = run_caf(program, 2)
    assert run.tracer.events == []


def test_trace_event_frozen():
    ev = TraceEvent("k", 0, 0.0, 1.0, {"a": 1})
    with pytest.raises(AttributeError):
        ev.kind = "other"


def test_chrome_trace_round_trips(tmp_path):
    import json

    t = Tracer()
    t.enable()
    t.record("transfer", 0, 1e-6, 3e-6, dst=1, nbytes=100)
    t.record("region", 1, 2e-6, 4e-6, category="compute", label="fft")
    path = tmp_path / "trace.json"
    n = t.to_chrome_trace(str(path))
    assert n == 4  # 2 process-name metadata + 2 complete events
    payload = json.loads(path.read_text())
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert [(m["pid"], m["args"]["name"]) for m in meta] == [
        (0, "rank 0"),
        (1, "rank 1"),
    ]
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(events) == 2
    first = events[0]
    assert first["cat"] == "transfer"
    assert first["pid"] == first["tid"] == 0
    assert first["ts"] == pytest.approx(1.0)  # us
    assert first["dur"] == pytest.approx(2.0)
    assert first["args"]["nbytes"] == 100
    # The label detail names the slice for the viewer.
    assert events[1]["name"] == "fft"


def test_chrome_trace_from_real_run(tmp_path):
    def program(img):
        co = img.allocate_coarray(16, dtype=np.float64)
        co.local[:] = img.rank
        img.sync_all()
        co.write((img.rank + 1) % img.nranks, np.ones(16))
        img.sync_all()
        return True

    run = run_caf(program, 2, backend="mpi", trace=True)
    path = tmp_path / "run.json"
    n = run.tracer.to_chrome_trace(str(path))
    ranks = {e.rank for e in run.tracer.events}
    assert n == len(run.tracer.events) + len(ranks) > 0
    import json

    payload = json.loads(path.read_text())
    assert {e["pid"] for e in payload["traceEvents"]} <= {0, 1}
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    # Chrome disallows negative durations; virtual time is monotone.
    assert all(e["dur"] >= 0 for e in slices)
