"""Dispatcher and substrate equivalence: the fast paths must never change
*which* schedule executes, only how fast the host executes it.

The golden digests below fingerprint the executed event order
(``Engine.order_digest``) of a fixed RandomAccess run. They were recorded
from the legacy dispatcher and are asserted against every dispatcher and
substrate, so any future "optimization" that reorders events — even among
same-time ties — fails here rather than silently perturbing figures.
"""

import pytest

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.sim.engine import Engine, _greenlet_mod
from repro.sim.network import MachineSpec
from repro.util.errors import SimulationError

# Fixed workload: RA on 4 images, 64 updates/image over 2 batches.
GOLDEN_KW = dict(table_bits_per_image=6, updates_per_image=64, batches=2)
GOLDEN = {
    "mpi": ("f33ad3ac50b403e26a0a9e79637fe49c", 944),
    "gasnet": ("2928f96e7c3b173ea9ee19543f125f83", 895),
}

needs_greenlet = pytest.mark.skipif(
    _greenlet_mod is None, reason="greenlet not installed"
)


def _run_golden(monkeypatch, backend, fastpath, substrate="threads"):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1" if fastpath else "0")
    monkeypatch.setenv("REPRO_SIM_SUBSTRATE", substrate)
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    r = run_caf(
        run_randomaccess, 4, MachineSpec(name="generic"), backend=backend, **GOLDEN_KW
    )
    eng = r.cluster.engine
    totals = {c: r.profiler.total(c) for c in r.profiler.categories()}
    return eng.order_digest(), eng.events_executed, r.cluster.elapsed, totals


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_fast_and_legacy_dispatchers_execute_identical_schedules(
    monkeypatch, backend
):
    fast = _run_golden(monkeypatch, backend, fastpath=True)
    legacy = _run_golden(monkeypatch, backend, fastpath=False)
    # Digest, event count, virtual makespan and profiler category totals
    # must all be bit-identical, not merely close.
    assert fast == legacy


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_dispatch_order_matches_golden_digest(monkeypatch, backend):
    digest, events, _, _ = _run_golden(monkeypatch, backend, fastpath=True)
    assert (digest, events) == GOLDEN[backend]


@needs_greenlet
@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_greenlet_substrate_executes_identical_schedule(monkeypatch, backend):
    threads = _run_golden(monkeypatch, backend, fastpath=True)
    glet = _run_golden(monkeypatch, backend, fastpath=True, substrate="greenlet")
    assert glet == threads
    assert glet[0] == GOLDEN[backend][0]


@pytest.mark.skipif(_greenlet_mod is not None, reason="greenlet is installed")
def test_greenlet_substrate_without_package_is_a_clear_error():
    with pytest.raises(SimulationError, match="greenlet"):
        Engine(substrate="greenlet")


def test_unknown_substrate_rejected():
    with pytest.raises(SimulationError, match="substrate"):
        Engine(substrate="coroutines")


def test_greenlet_requires_fast_dispatcher():
    if _greenlet_mod is None:
        pytest.skip("greenlet not installed")
    with pytest.raises(SimulationError, match="fast-path"):
        Engine(fastpath=False, substrate="greenlet")


@pytest.mark.parametrize("fastpath", [True, False])
def test_duplicate_wake_dropped_at_call_site(fastpath):
    """A second wake of the same block generation must not allocate a heap
    event — it is dropped where it happens, and counted."""
    eng = Engine(fastpath=fastpath)
    waiter_box = []
    payloads = []

    def waiter(p):
        waiter_box.append(p)
        payloads.append(p.block("waiting"))
        payloads.append(p.block("waiting again"))

    def waker(p):
        p.sleep(1.0)
        w = waiter_box[0]
        before = len(eng._heap) + len(eng._due)
        w.wake("first")
        after_one = len(eng._heap) + len(eng._due)
        w.wake("duplicate")  # same generation: dropped, no event
        after_two = len(eng._heap) + len(eng._due)
        assert after_one == before + 1
        assert after_two == after_one
        p.sleep(1.0)
        w.wake("second-block")

    eng.spawn(waiter, name="waiter")
    eng.spawn(waker, name="waker")
    eng.run()
    assert payloads == ["first", "second-block"]
    assert eng.stale_wakes_dropped == 1


def test_stale_wake_counter_starts_at_zero():
    eng = Engine()

    def body(p):
        p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert eng.stale_wakes_dropped == 0


def test_inline_sleep_bypasses_heap_on_fast_path():
    """A sole-runnable process's sleep advances the clock in place: no heap
    entry, no context switch, but the event still counts."""
    eng = Engine(fastpath=True)
    heap_sizes = []

    def body(p):
        for _ in range(3):
            heap_sizes.append(len(eng._heap) + len(eng._due))
            p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert heap_sizes == [0, 0, 0]
    assert eng.now == 3.0
    # initial resume + three sleeps
    assert eng.events_executed == 4


def test_events_executed_identical_across_dispatchers():
    def make(fastpath):
        eng = Engine(fastpath=fastpath)

        def ping(p):
            for _ in range(5):
                p.sleep(0.25)

        def pong(p):
            for _ in range(4):
                p.sleep(0.3)

        eng.spawn(ping)
        eng.spawn(pong)
        eng.enable_order_digest()
        eng.run()
        return eng.events_executed, eng.order_digest(), eng.now

    assert make(True) == make(False)
