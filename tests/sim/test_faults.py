"""Fault injection: plan validation, determinism, and fabric semantics."""

import math

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.faults import (
    FaultDecision,
    FaultEvent,
    FaultPlan,
    ScriptedFaultPlan,
)
from repro.sim.network import MachineSpec, NetFabric
from repro.util.errors import SimulationError


def make_spec(**kw):
    defaults = dict(
        name="test",
        latency=1e-6,
        bandwidth=1e9,
        header_bytes=0,
        tx_msg_overhead=0.0,
        rx_msg_overhead=0.0,
        loopback_latency=1e-7,
        ranks_per_node=1,
        mem_copy_bw=1e10,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


# -- plan validation ----------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(drop_rate=-0.1),
        dict(drop_rate=1.5),
        dict(corrupt_rate=2.0),
        dict(drop_rate=0.6, dup_rate=0.6),  # rates sum past 1
        dict(delay_jitter=-1e-6),
        dict(dup_lag=-1e-6),
        dict(crashes=[(0, -1.0)]),
        dict(crashes=[(-1, 0.5)]),
    ],
)
def test_bad_plans_rejected(kwargs):
    with pytest.raises(SimulationError):
        FaultPlan(seed=1, **kwargs)


def test_crash_rank_out_of_range_rejected_by_cluster():
    plan = FaultPlan(seed=1, crashes=[(7, 1e-3)])
    with pytest.raises(SimulationError):
        Cluster(4, make_spec(), faults=plan)


def test_inactive_plan_draws_clean_without_consuming_rng():
    plan = FaultPlan(seed=3)
    assert not plan.active
    decisions = [plan.draw(0, 1, 100) for _ in range(5)]
    assert all(d == FaultDecision() for d in decisions)
    assert plan.drawn == 5


# -- determinism --------------------------------------------------------------


def test_same_seed_same_decision_sequence():
    def draws():
        plan = FaultPlan(seed=42, drop_rate=0.2, dup_rate=0.2, delay_rate=0.2)
        return [plan.draw(0, 1, 64) for _ in range(200)]

    seq1, seq2 = draws(), draws()
    assert seq1 == seq2
    # ...and the sequence actually exercises every fault kind at these rates.
    assert any(d.drop for d in seq1)
    assert any(d.duplicate for d in seq1)
    assert any(d.extra_delay > 0 for d in seq1)


def test_reset_rewinds_the_stream():
    plan = FaultPlan(seed=7, drop_rate=0.5)
    first = [plan.draw(0, 1, 8) for _ in range(50)]
    plan.reset()
    assert plan.drawn == 0
    assert [plan.draw(0, 1, 8) for _ in range(50)] == first


def test_different_seeds_differ():
    p1 = FaultPlan(seed=1, drop_rate=0.5)
    p2 = FaultPlan(seed=2, drop_rate=0.5)
    pairs = [(p1.draw(0, 1, 8), p2.draw(0, 1, 8)) for _ in range(100)]
    assert any(a != b for a, b in pairs)


# -- fabric integration -------------------------------------------------------


def _run_transfers(plan, n, nbytes=1000):
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())
    fabric.faults = plan
    delivered = []

    def body(p):
        for i in range(n):
            fabric.transfer(0, 1, nbytes, lambda i=i: delivered.append((i, eng.now)))
        p.sleep(10.0)

    eng.spawn(body)
    eng.run()
    return fabric, delivered


def test_dropped_messages_never_deliver_and_return_inf():
    plan = FaultPlan(seed=5, drop_rate=1.0)
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())
    fabric.faults = plan
    times = []

    def body(p):
        times.append(fabric.transfer(0, 1, 100, lambda: times.append("delivered")))
        p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert times == [math.inf]
    assert fabric.dropped == 1


def test_duplicate_messages_deliver_twice():
    plan = FaultPlan(seed=5, dup_rate=1.0)
    fabric, delivered = _run_transfers(plan, 3)
    assert fabric.duplicated == 3
    assert len(delivered) == 6
    # Each message's two copies arrive at distinct times.
    for i in range(3):
        t = [when for j, when in delivered if j == i]
        assert len(t) == 2 and t[0] < t[1]


def test_delayed_messages_arrive_later_than_clean_ones():
    clean_fabric, clean = _run_transfers(None, 1)
    plan = FaultPlan(seed=5, delay_rate=1.0, delay_jitter=1e-3)
    fabric, delayed = _run_transfers(plan, 1)
    assert fabric.delayed == 1
    assert delayed[0][1] > clean[0][1]


def test_corruption_counts_separately_but_discards():
    plan = FaultPlan(seed=5, corrupt_rate=1.0)
    fabric, delivered = _run_transfers(plan, 4)
    assert delivered == []
    assert fabric.corrupted == 4
    assert fabric.dropped == 0


def test_fault_free_run_is_bit_identical_with_and_without_plan():
    """faults=None and an all-zero plan must cost exactly the same."""
    _, clean = _run_transfers(None, 5)
    _, planned = _run_transfers(FaultPlan(seed=9), 5)
    assert clean == planned


# -- recording and scripted replay --------------------------------------------


def test_recording_captures_every_non_clean_ruling():
    plan = FaultPlan(seed=42, drop_rate=0.2, dup_rate=0.2, delay_rate=0.2, record=True)
    decisions = [plan.draw(0, 1, 64) for _ in range(100)]
    non_clean = [i for i, d in enumerate(decisions) if d != FaultDecision()]
    assert [e.index for e in plan.events] == non_clean
    for e in plan.events:
        assert e.decision == decisions[e.index]
        assert (e.src, e.dst, e.nbytes) == (0, 1, 64)


def test_scripted_plan_replays_recorded_run_exactly():
    plan = FaultPlan(seed=42, drop_rate=0.2, dup_rate=0.2, delay_rate=0.2, record=True)
    decisions = [plan.draw(0, 1, 64) for _ in range(100)]
    scripted = ScriptedFaultPlan(plan.events)
    assert [scripted.draw(0, 1, 64) for _ in range(100)] == decisions


def test_scripted_subset_leaves_other_messages_clean():
    events = [
        FaultEvent(3, 0, 1, 8, FaultDecision(drop=True)),
        FaultEvent(7, 1, 0, 8, FaultDecision(extra_delay=1e-6)),
    ]
    plan = ScriptedFaultPlan(events[:1])
    drawn = [plan.draw(0, 1, 8) for _ in range(10)]
    assert drawn[3].drop
    assert all(d == FaultDecision() for i, d in enumerate(drawn) if i != 3)
    plan.reset()
    assert [plan.draw(0, 1, 8) for _ in range(10)] == drawn


def test_fault_event_round_trips_through_dict():
    events = [
        FaultEvent(0, 2, 3, 100, FaultDecision(corrupt=True)),
        FaultEvent(5, 1, 0, 64, FaultDecision(duplicate=True, duplicate_lag=2e-6)),
    ]
    assert [FaultEvent.from_dict(e.to_dict()) for e in events] == events


def test_empty_scripted_plan_is_inactive():
    plan = ScriptedFaultPlan([])
    assert not plan.active
    assert plan.draw(0, 1, 8) == FaultDecision()


# -- scheduled crashes through the cluster ------------------------------------


def test_scheduled_crash_stops_a_rank_and_records_it():
    log = []

    def program(ctx):
        for step in range(10):
            ctx.proc.sleep(1e-3)
            log.append((ctx.rank, step))
        return ctx.rank

    cluster = Cluster(
        2, make_spec(), faults=FaultPlan(seed=1, crashes=[(1, 3.5e-3)])
    )
    results = cluster.run(program)
    assert cluster.failed_ranks == {1}
    assert results[0] == 0
    assert results[1] is None  # crashed before returning
    rank1_steps = [s for r, s in log if r == 1]
    assert rank1_steps == [0, 1, 2]  # died mid-run, after t=3.5ms
    assert [s for r, s in log if r == 0] == list(range(10))
