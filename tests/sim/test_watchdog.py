"""Engine watchdog: run(deadline=...) and SimTimeoutError diagnostics."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan
from repro.sim.network import MachineSpec
from repro.sim.sync import SimEvent
from repro.util.errors import SimTimeoutError, SimulationError


def make_spec():
    return MachineSpec(
        name="test",
        latency=1e-6,
        bandwidth=1e9,
        header_bytes=0,
        tx_msg_overhead=0.0,
        rx_msg_overhead=0.0,
        loopback_latency=1e-7,
        ranks_per_node=1,
        mem_copy_bw=1e10,
    )


def test_deadline_not_hit_runs_to_completion():
    eng = Engine()
    done = []
    eng.spawn(lambda p: (p.sleep(1.0), done.append(eng.now)))
    eng.run(deadline=2.0)
    assert done == [1.0]
    assert eng.now == 1.0


def test_negative_deadline_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.run(deadline=-1.0)


def test_watchdog_fires_with_per_rank_diagnostics():
    """A self-rescheduling timer keeps the heap non-empty, so only the
    watchdog — not deadlock detection — can catch the blocked procs."""
    eng = Engine()
    ev = SimEvent("never-fired")

    def ticker():
        eng.call_in(0.5, ticker)

    eng.call_in(0.5, ticker)
    eng.spawn(lambda p: ev.wait(p), name="waiter0")
    eng.spawn(lambda p: (p.sleep(3.0), ev.wait(p)), name="waiter1")
    with pytest.raises(SimTimeoutError) as exc_info:
        eng.run(deadline=10.0)
    exc = exc_info.value
    assert exc.deadline == 10.0
    assert eng.now == 10.0
    assert set(exc.blocked) == {0, 1}
    assert "never-fired" in exc.blocked[0]
    assert exc.last_progress[1] == 3.0  # woke from sleep at t=3, then blocked
    assert "deadline" in str(exc) and "never-fired" in str(exc)


def test_sleep_fastpath_respects_deadline():
    """Regression: the in-place sleep shortcut (sole runnable proc, empty
    queues) must not jump the clock past the deadline — that would silently
    disable the watchdog under the default dispatcher."""
    eng = Engine()
    eng.spawn(lambda p: p.sleep(5.0), name="sleeper")
    with pytest.raises(SimTimeoutError) as exc_info:
        eng.run(deadline=1.0)
    exc = exc_info.value
    assert eng.now == 1.0
    assert exc.deadline == 1.0
    assert "sleep(5)" in exc.blocked[0]


def test_sleep_fastpath_exactly_to_deadline_completes():
    """A sleep landing exactly on the deadline is not a hang (the legacy
    dispatcher only times out on events strictly past it)."""
    eng = Engine()
    eng.spawn(lambda p: p.sleep(1.0))
    eng.run(deadline=1.0)
    assert eng.now == 1.0


def test_daemon_only_tail_finishes_instead_of_timing_out():
    eng = Engine()
    eng.spawn(lambda p: p.sleep(0.5))
    eng.spawn(lambda p: p.sleep(100.0), daemon=True)
    eng.run(deadline=1.0)  # daemon outlives the deadline: fine, not a hang
    assert eng.now == 0.5


def test_crash_plus_retransmits_become_sim_timeout():
    """Acceptance (c): a rank dies with a frame addressed to it in flight.
    The frame still lands but the dead NIC's ack blackholes, so the
    survivor retransmits on a timer; the live timers defeat deadlock
    detection — only the watchdog can convert the hang into
    SimTimeoutError naming who is stuck where.

    The survivor must block in an operation that names no peer (an event
    wait): ULFM-style eager checks fail pending point-to-point traffic
    with the corpse as MpiProcFailedError (see tests/mpi/test_failures),
    so only peer-less waits still reach the watchdog."""
    import numpy as np

    from repro.caf.program import run_caf

    # Wire latency 1 ms opens a wide in-flight window for the crash.
    spec = make_spec().with_overrides(latency=1e-3)

    def program(img):
        comm = img.mpi().COMM_WORLD
        ev = img.allocate_events(1)
        buf = np.zeros(4)
        comm.barrier()
        t_after_barrier = img.now
        if img.rank == 0:
            comm.send(np.ones(4), 1)  # eager: frame in flight at the crash
            ev.wait(0)  # only (dead) rank 1 would notify; names no peer
        else:
            comm.recv(buf, 0)
            img.compute(seconds=1.0)  # killed long before notifying
            ev.notify(0)
        return t_after_barrier

    # Runs are deterministic: a fault-free probe run measures when the
    # post-barrier exchange starts, so the crash can be placed while rank
    # 0's frame is on the wire (after departure, before the ack returns).
    probe = run_caf(program, 2, spec, backend="mpi", reliable=True)
    crash_at = max(probe.results) + 0.5e-3

    with pytest.raises(SimTimeoutError) as exc_info:
        run_caf(
            program,
            2,
            spec,
            backend="mpi",
            faults=FaultPlan(seed=1, crashes=[(1, crash_at)]),
            reliable=True,
            deadline=crash_at + 0.05,
        )
    exc = exc_info.value
    assert exc.deadline == crash_at + 0.05
    assert 0 in exc.blocked  # rank 0 reported with its blocking call site
    assert 1 not in exc.blocked  # the crashed rank is not "blocked"
    assert "wait" in exc.blocked[0]
    assert "failed images: [1]" in str(exc)
    assert exc.last_progress[0] <= exc.deadline


def test_cluster_run_passes_deadline_through():
    cluster = Cluster(2, make_spec())

    def program(ctx):
        ctx.proc.sleep(5.0)
        return ctx.rank

    with pytest.raises(SimTimeoutError):
        cluster.run(program, deadline=1.0)
