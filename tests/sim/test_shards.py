"""Sharded conservative-PDES dispatcher: equivalence and protocol tests.

The tentpole invariant mirrors the fast-path dispatcher's: sharding
changes how the host *organizes* the schedule (windows, shard ownership,
cross-shard accounting), never *which* schedule executes. Every virtual
output — the global order digest, the per-shard digests, the makespan,
profiler totals, figures of merit — must be bit-identical to the
sequential dispatcher at every tested shard count, on both backends.
"""

import os
import subprocess
import sys

import pytest

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import run_fft
from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.sim.engine import Engine, ShardedEngine
from repro.sim.lbts import LbtsController, lbts_bound
from repro.sim.network import MachineSpec
from repro.sim.shard import (
    ShardFallbackWarning,
    plan_shards,
    run_app_config,
    shards_from_env,
)
from repro.util.errors import SimulationError

SPEC = MachineSpec(name="generic")

APPS = {
    "randomaccess": (
        run_randomaccess,
        dict(table_bits_per_image=6, updates_per_image=64, batches=2),
    ),
    "fft": (run_fft, dict(m=1 << 10)),
    "cgpop": (run_cgpop, dict(ny=16, nx=16, max_iter=8)),
}


# ---------------------------------------------------------------------------
# Plan construction and gating
# ---------------------------------------------------------------------------


def test_shards_from_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SHARDS", raising=False)
    assert shards_from_env() == 1
    monkeypatch.setenv("REPRO_SIM_SHARDS", "")
    assert shards_from_env() == 1
    monkeypatch.setenv("REPRO_SIM_SHARDS", "4")
    assert shards_from_env() == 4
    monkeypatch.setenv("REPRO_SIM_SHARDS", "zero")
    with pytest.raises(SimulationError):
        shards_from_env()
    monkeypatch.setenv("REPRO_SIM_SHARDS", "0")
    with pytest.raises(SimulationError):
        shards_from_env()


def test_env_gates_engine_selection(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
    run = run_caf(run_randomaccess, 8, SPEC, backend="mpi",
                  **APPS["randomaccess"][1])
    assert isinstance(run.cluster.engine, ShardedEngine)
    assert run.cluster.shard_plan.nshards == 2
    monkeypatch.delenv("REPRO_SIM_SHARDS")
    run = run_caf(run_randomaccess, 8, SPEC, backend="mpi",
                  **APPS["randomaccess"][1])
    assert type(run.cluster.engine) is Engine
    assert run.cluster.shard_plan is None


def test_plan_contiguous_and_node_aligned():
    plan = plan_shards(64, SPEC, 4)
    assert plan.nshards == 4
    assert plan.bounds[0][0] == 0 and plan.bounds[-1][1] == 64
    for (lo_a, hi_a), (lo_b, _hi_b) in zip(plan.bounds, plan.bounds[1:]):
        assert hi_a == lo_b  # contiguous, no gaps
    assert all(plan.owner[r] == plan.shard_of(r) for r in range(64))
    # generic spec has >= 4 nodes at 64 ranks: boundaries on node edges.
    assert plan.node_aligned
    assert plan.lookahead == SPEC.cross_shard_lookahead(True) == SPEC.latency


def test_plan_inside_node_uses_loopback_floor():
    # More shards than nodes forces a boundary inside a node.
    rpn = SPEC.ranks_per_node
    plan = plan_shards(rpn, SPEC, 2)
    assert not plan.node_aligned
    assert plan.lookahead == min(SPEC.latency, SPEC.loopback_latency)


def test_plan_clamps_to_nranks():
    plan = plan_shards(3, SPEC, 8)
    assert plan.nshards == 3


def test_zero_lookahead_falls_back_with_warning():
    flat = SPEC.with_overrides(latency=0.0, loopback_latency=0.0)
    with pytest.warns(ShardFallbackWarning):
        plan = plan_shards(16, flat, 4)
    assert plan.nshards == 1 and not plan.is_sharded
    # A full run on the degenerate spec still works — sequentially.
    with pytest.warns(ShardFallbackWarning):
        run = run_caf(run_randomaccess, 8, flat, backend="mpi", shards=4,
                      **APPS["randomaccess"][1])
    assert run.cluster.shard_plan is None
    assert type(run.cluster.engine) is Engine


def test_sharded_engine_requires_fastpath(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    with pytest.raises(SimulationError, match="fast-path"):
        ShardedEngine(plan_shards(8, SPEC, 2))


def test_sharded_engine_rejects_sequential_plan():
    with pytest.raises(SimulationError, match="nshards > 1"):
        ShardedEngine(plan_shards(8, SPEC, 1))


# ---------------------------------------------------------------------------
# LBTS controller unit tests
# ---------------------------------------------------------------------------


def test_lbts_bound_is_min_plus_lookahead():
    assert lbts_bound([3.0, 1.0, 2.0], 0.5) == 1.5


def test_lbts_null_messages_count_silent_pairs():
    c = LbtsController(3, 1e-6)
    c.open_window(0.0)
    c.note_traffic(0, 1)
    c.note_traffic(0, 1)  # same pair: still one suppressed null
    c.open_window(1e-5)  # settles epoch 1: 3*2 pairs, 1 spoke
    c.finish(2e-5)
    stats = c.stats()
    assert stats["epochs"] == 2
    # Epoch 1: 6 ordered pairs - 1 that carried traffic = 5 nulls;
    # epoch 2 was fully silent: all 6 pairs null.
    assert stats["null_messages"] == 5 + 6


def test_lbts_rejects_backward_bound():
    c = LbtsController(2, 1e-6)
    c.open_window(5.0)
    with pytest.raises(SimulationError):
        c.open_window(1.0)


# ---------------------------------------------------------------------------
# Golden equivalence: shards=1 vs shards in {2, 4}, both backends
# ---------------------------------------------------------------------------


def _fingerprint(run):
    eng = run.cluster.engine
    totals = {c: run.profiler.total(c) for c in run.profiler.categories()}
    return (
        eng.order_digest(),
        eng.shard_digests(),
        eng.events_executed,
        run.elapsed,
        totals,
    )


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
@pytest.mark.parametrize("app", sorted(APPS))
def test_sharded_schedule_bit_identical_to_sequential(monkeypatch, backend, app):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    fn, kw = APPS[app]
    for nshards in (2, 4):
        seq = run_caf(fn, 8, SPEC, backend=backend, shards=1,
                      digest_partition=nshards, **kw)
        shd = run_caf(fn, 8, SPEC, backend=backend, shards=nshards, **kw)
        assert _fingerprint(shd) == _fingerprint(seq)
        # The per-shard digests are a genuine partition: every shard saw
        # some of the schedule, and nothing fell outside the partition.
        st = shd.cluster.engine.shard_stats()
        assert sum(st["events_per_shard"]) == shd.cluster.engine.events_executed
        assert all(n > 0 for n in st["events_per_shard"])


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_figures_of_merit_identical(monkeypatch, backend):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    fn, kw = APPS["randomaccess"]
    seq = run_caf(fn, 8, SPEC, backend=backend, shards=1, **kw)
    shd = run_caf(fn, 8, SPEC, backend=backend, shards=2, **kw)
    assert shd.results[0].gups == seq.results[0].gups  # bit-identical
    assert shd.elapsed == seq.elapsed


def test_conservative_guarantee_holds():
    fn, kw = APPS["randomaccess"]
    run = run_caf(fn, 16, SPEC, backend="mpi", shards=4, **kw)
    st = run.cluster.engine.shard_stats()
    assert st["cross_messages"] > 0  # the protocol was actually exercised
    assert st["lookahead_violations"] == 0
    assert st["epochs"] > 1
    assert st["lookahead"] == run.cluster.shard_plan.lookahead


def test_faulty_run_equivalent_under_shards(monkeypatch):
    from repro.sim.faults import FaultPlan

    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    fn, kw = APPS["randomaccess"]

    def run_one(nshards):
        faults = FaultPlan(seed=3, crashes=[(5, 2e-4)])
        part = dict(digest_partition=2) if nshards == 1 else {}
        try:
            r = run_caf(fn, 8, SPEC, backend="mpi", shards=nshards,
                        faults=faults, reliable=True, deadline=1.0,
                        **part, **kw)
            return ("ok", _fingerprint(r)[:4])
        except Exception as exc:  # noqa: BLE001 - fingerprint failures too
            cl = exc.caf_cluster
            return (type(exc).__name__, sorted(cl.failed_ranks),
                    cl.engine.order_digest(), cl.elapsed)

    assert run_one(2) == run_one(1)


def test_digest_partition_validates_against_plan():
    fn, kw = APPS["randomaccess"]
    with pytest.raises(SimulationError, match="digest_partition"):
        run_caf(fn, 8, SPEC, backend="mpi", shards=2, digest_partition=4, **kw)


# ---------------------------------------------------------------------------
# Feature gates: IR recording and the sanitizer refuse sharded runs
# ---------------------------------------------------------------------------


def test_ir_recording_refuses_sharded_runs(tmp_path):
    from repro.ir import record as ir_record

    fn, kw = APPS["randomaccess"]
    ir_record.start(tmp_path / "trace")
    try:
        with pytest.raises(NotImplementedError, match="REPRO_SIM_SHARDS"):
            run_caf(fn, 8, SPEC, backend="mpi", shards=2, **kw)
    finally:
        ir_record.abort()
        ir_record.stop()


def test_sanitizer_refuses_sharded_runs():
    fn, kw = APPS["randomaccess"]
    with pytest.raises(NotImplementedError, match="sanitizer"):
        run_caf(fn, 8, SPEC, backend="mpi", shards=2, sanitize=True, **kw)


def test_forced_sanitizer_refuses_sharded_runs():
    from repro import sanitizer

    fn, kw = APPS["randomaccess"]
    sanitizer.force_enable()
    try:
        with pytest.raises(NotImplementedError, match="sanitizer"):
            run_caf(fn, 8, SPEC, backend="mpi", shards=2, **kw)
    finally:
        sanitizer.force_disable()


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


def test_report_carries_shard_section_and_identical_metrics():
    fn, kw = APPS["randomaccess"]
    seq = run_caf(fn, 8, SPEC, backend="mpi", shards=1, metrics=True, **kw)
    shd = run_caf(fn, 8, SPEC, backend="mpi", shards=2, metrics=True, **kw)
    srep, xrep = seq.report(app="ra").data, shd.report(app="ra").data
    assert srep["meta"]["shards"] == 1 and "shards" not in srep
    assert xrep["meta"]["shards"] == 2
    assert xrep["shards"]["nshards"] == 2
    assert xrep["shards"]["lookahead_violations"] == 0
    # Obs metrics must not notice the dispatcher swap.
    assert xrep["ops"] == srep["ops"]
    assert xrep["profiler"] == srep["profiler"]
    assert xrep["meta"]["makespan"] == srep["meta"]["makespan"]
    assert xrep["comm_matrix"] == srep["comm_matrix"]


# ---------------------------------------------------------------------------
# Spawn-safe OS-process workers
# ---------------------------------------------------------------------------


def _worker_config(shards):
    return {
        "app": "randomaccess",
        "nranks": 8,
        "backend": "mpi",
        "shards": shards,
        "digest_partition": None if shards > 1 else 2,
        "kwargs": APPS["randomaccess"][1],
        "env": {"REPRO_SIM_DIGEST": "1"},
    }


def test_run_app_config_in_process(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    out = run_app_config(_worker_config(2))
    assert out["shards"] == 2
    assert out["shard_stats"]["lookahead_violations"] == 0
    base = run_app_config(_worker_config(1))
    assert out["digest"] == base["digest"]
    assert out["shard_digests"] == base["shard_digests"]
    assert out["makespan"] == base["makespan"]
    assert out["events"] == base["events"]
    assert out["profiler_totals"] == base["profiler_totals"]


def test_run_configs_parallel_across_processes():
    # Exercise the real spawn path in a subprocess-driven pool: the
    # baseline and the sharded run execute in separate interpreters and
    # their fingerprints must still match bit-for-bit.
    code = (
        "import json, sys\n"
        "sys.path.insert(0, 'tests')\n"
        "from tests.sim.test_shards import _worker_config\n"
        "from repro.sim.shard import run_configs_parallel\n"
        "base, shd = run_configs_parallel("
        "[_worker_config(1), _worker_config(2)], processes=2)\n"
        "assert shd['digest'] == base['digest'], (shd, base)\n"
        "assert shd['shard_digests'] == base['shard_digests']\n"
        "assert shd['makespan'] == base['makespan']\n"
        "print('spawn-ok')\n"
    )
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, cwd=root,
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "spawn-ok" in proc.stdout
