"""Unit tests for MachineSpec and NetFabric timing behaviour."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import MachineSpec, NetFabric
from repro.util.errors import SimulationError


def make_spec(**kw):
    defaults = dict(
        name="test",
        latency=1e-6,
        bandwidth=1e9,
        header_bytes=0,
        tx_msg_overhead=0.0,
        rx_msg_overhead=0.0,
        loopback_latency=1e-7,
        ranks_per_node=1,
        mem_copy_bw=1e10,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


def run_transfer(spec, nranks, transfers):
    """Run a list of (src, dst, nbytes) transfers issued at t=0; return delivery times."""
    eng = Engine()
    fabric = NetFabric(eng, nranks, spec)
    deliveries = {}

    def body(p):
        for i, (src, dst, nbytes) in enumerate(transfers):
            fabric.transfer(src, dst, nbytes, lambda i=i: deliveries.setdefault(i, eng.now))
        p.sleep(100.0)

    eng.spawn(body)
    eng.run()
    return [deliveries[i] for i in range(len(transfers))]


def test_single_transfer_latency_plus_serialization():
    spec = make_spec()
    (t,) = run_transfer(spec, 2, [(0, 1, 1000)])
    assert t == pytest.approx(1e-6 + 1000 / 1e9)


def test_zero_byte_transfer_costs_latency_only():
    spec = make_spec()
    (t,) = run_transfer(spec, 2, [(0, 1, 0)])
    assert t == pytest.approx(1e-6)


def test_header_bytes_added_to_wire_time():
    spec = make_spec(header_bytes=1000)
    (t,) = run_transfer(spec, 2, [(0, 1, 1000)])
    assert t == pytest.approx(1e-6 + 2000 / 1e9)


def test_tx_serialization_queues_back_to_back_sends():
    spec = make_spec()
    ts = run_transfer(spec, 3, [(0, 1, 1000), (0, 2, 1000)])
    ser = 1000 / 1e9
    assert ts[0] == pytest.approx(1e-6 + ser)
    # Second message cannot inject until the first has left the NIC.
    assert ts[1] == pytest.approx(ser + 1e-6 + ser)


def test_per_message_nic_overheads_throttle_message_rate():
    spec = make_spec(tx_msg_overhead=5e-6)
    ts = run_transfer(spec, 3, [(0, 1, 0), (0, 2, 0)])
    # The second zero-byte message waits out the first's injection overhead.
    assert ts[1] == pytest.approx(5e-6 + 1e-6)


def test_rx_msg_overhead_penalizes_incast():
    spec = make_spec(rx_msg_overhead=5e-6)
    ts = run_transfer(spec, 3, [(0, 2, 0), (1, 2, 0)])
    assert ts[0] == pytest.approx(1e-6 + 5e-6)
    assert ts[1] == pytest.approx(1e-6 + 2 * 5e-6)


def test_rx_serialization_models_incast():
    spec = make_spec()
    ts = run_transfer(spec, 3, [(0, 2, 1000), (1, 2, 1000)])
    ser = 1000 / 1e9
    assert ts[0] == pytest.approx(1e-6 + ser)
    # Rank 1's message arrives concurrently but must wait for rank 2's NIC.
    assert ts[1] == pytest.approx(1e-6 + 2 * ser)


def test_intranode_uses_loopback_path():
    spec = make_spec(ranks_per_node=2)
    (t,) = run_transfer(spec, 2, [(0, 1, 1000)])
    assert t == pytest.approx(1e-7 + 1000 / 1e10)


def test_self_transfer_uses_loopback_path():
    spec = make_spec()
    (t,) = run_transfer(spec, 2, [(1, 1, 1000)])
    assert t == pytest.approx(1e-7 + 1000 / 1e10)


def test_transfer_counts_messages_and_bytes():
    eng = Engine()
    spec = make_spec()
    fabric = NetFabric(eng, 2, spec)

    def body(p):
        fabric.transfer(0, 1, 500, lambda: None)
        fabric.transfer(1, 0, 700, lambda: None)
        p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert fabric.messages_sent == 2
    assert fabric.bytes_sent == 1200


def test_bad_rank_rejected():
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())

    def body(p):
        fabric.transfer(0, 5, 10, lambda: None)

    eng.spawn(body)
    with pytest.raises(SimulationError):
        eng.run()


def test_negative_size_rejected():
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec())

    def body(p):
        fabric.transfer(0, 1, -1, lambda: None)

    eng.spawn(body)
    with pytest.raises(SimulationError):
        eng.run()


def test_pair_cost_memoized_once_per_ordered_pair():
    """The per-pair cost tuple is computed on first use and reused; repeat
    transfers must price identically to the un-memoized formula."""
    eng = Engine()
    spec = make_spec()
    fabric = NetFabric(eng, 3, spec)
    times = []

    def body(p):
        for _ in range(4):
            times.append(fabric.transfer(0, 1, 1000, lambda: None))
        p.sleep(100.0)

    eng.spawn(body)
    eng.run()
    assert len(fabric._pair_cost) == 1  # one ordered pair seen
    ser = 1000 / 1e9
    # Back-to-back sends queue behind the NIC: k-th message departs after
    # k-1 serializations, exactly as the memoization-free model priced it.
    for k, t in enumerate(times):
        assert t == pytest.approx(k * ser + 1e-6 + ser)


def test_memoized_intranode_path_follows_node_map():
    """With 2 ranks/node, (0,1) and (2,3) are shared-memory pairs while
    (1,2) crosses nodes — the memoized cost tuples must preserve that."""
    spec = make_spec(ranks_per_node=2)
    intra01, intra23 = run_transfer(spec, 4, [(0, 1, 1000), (2, 3, 1000)])
    (inter12,) = run_transfer(spec, 4, [(1, 2, 1000)])
    shared_mem = 1e-7 + 1000 / 1e10
    assert intra01 == pytest.approx(shared_mem)
    assert intra23 == pytest.approx(shared_mem)
    assert inter12 == pytest.approx(1e-6 + 1000 / 1e9)


def test_intranode_transfer_bypasses_nic_state():
    """Shared-memory copies never occupy a NIC: an intra-node burst leaves
    the injection/delivery clocks untouched for wire traffic."""
    eng = Engine()
    fabric = NetFabric(eng, 2, make_spec(ranks_per_node=2))

    def body(p):
        for _ in range(10):
            fabric.transfer(0, 1, 10_000, lambda: None)
        p.sleep(1.0)

    eng.spawn(body)
    eng.run()
    assert fabric._tx_free == [0.0, 0.0]
    assert fabric._rx_free == [0.0, 0.0]


def test_nic_message_rate_limit_under_memoized_model():
    """Per-message injection occupancy throttles a zero-byte burst to one
    departure per ``tx_msg_overhead``, independent of bandwidth."""
    spec = make_spec(tx_msg_overhead=5e-6)
    # Distinct destinations: only the source NIC's rate limit applies.
    ts = run_transfer(spec, 5, [(0, d, 0) for d in (1, 2, 3, 4)])
    for k, t in enumerate(ts):
        assert t == pytest.approx(k * 5e-6 + 1e-6)


def test_with_overrides_recomputes_memoized_fabric_costs():
    """dataclasses.replace re-runs __post_init__, so an overridden spec's
    precomputed cost tuple reflects the new values."""
    spec = make_spec()
    fat = spec.with_overrides(bandwidth=2e9, latency=3e-6)
    (t,) = run_transfer(fat, 2, [(0, 1, 1000)])
    assert t == pytest.approx(3e-6 + 1000 / 2e9)


def test_spec_with_overrides_returns_modified_copy():
    spec = make_spec()
    spec2 = spec.with_overrides(latency=5e-6)
    assert spec2.latency == 5e-6
    assert spec.latency == 1e-6
    assert spec2.bandwidth == spec.bandwidth


def test_spec_flops_and_copy_time():
    spec = make_spec()
    assert spec.flops_time(8e9) == pytest.approx(8e9 / spec.flops_per_sec)
    assert spec.copy_time(1e10) == pytest.approx(1.0)


def test_srq_active_threshold():
    spec = make_spec(gasnet_srq_threshold=128)
    assert not spec.srq_active(64)
    assert spec.srq_active(128)
    assert spec.srq_active(4096)
    off = make_spec(gasnet_srq_threshold=None)
    assert not off.srq_active(4096)
