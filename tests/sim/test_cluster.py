"""Unit tests for Cluster / RankCtx."""

import pytest

from repro.sim.cluster import Cluster, run_program
from repro.sim.network import MachineSpec
from repro.util.errors import SimulationError


def test_run_program_returns_per_rank_results():
    cluster, results = run_program(lambda ctx: ctx.rank * 10, 4)
    assert results == [0, 10, 20, 30]
    assert cluster.nranks == 4


def test_ctx_identity_fields():
    def program(ctx):
        assert 0 <= ctx.rank < ctx.nranks
        assert ctx.spec.name == "generic"
        return ctx.nranks

    _, results = run_program(program, 3)
    assert results == [3, 3, 3]


def test_compute_seconds_advances_clock_and_profiles():
    def program(ctx):
        ctx.compute(2.0)
        return ctx.now

    cluster, results = run_program(program, 2)
    assert results == [2.0, 2.0]
    assert cluster.profiler.rank_total(0, "computation") == pytest.approx(2.0)
    assert cluster.elapsed == pytest.approx(2.0)


def test_compute_flops_uses_machine_rate():
    spec = MachineSpec(name="m", flops_per_sec=1e9)

    def program(ctx):
        ctx.compute(flops=2e9)
        return ctx.now

    _, results = run_program(program, 1, spec)
    assert results == [pytest.approx(2.0)]


def test_compute_requires_exactly_one_arg():
    def program(ctx):
        ctx.compute()

    with pytest.raises(SimulationError):
        run_program(program, 1)

    def program2(ctx):
        ctx.compute(1.0, flops=1.0)

    with pytest.raises(SimulationError):
        run_program(program2, 1)


def test_compute_custom_category():
    def program(ctx):
        ctx.compute(1.0, category="dgemm")

    cluster, _ = run_program(program, 1)
    assert cluster.profiler.rank_total(0, "dgemm") == pytest.approx(1.0)


def test_rngs_differ_per_rank_but_reproducible():
    def program(ctx):
        return float(ctx.rng.random())

    _, r1 = run_program(lambda ctx: float(ctx.rng.random()), 3, seed=7)
    _, r2 = run_program(program, 3, seed=7)
    assert r1 == r2
    assert len(set(r1)) == 3


def test_shared_singleton_created_once():
    cluster = Cluster(2, MachineSpec(name="m"))
    created = []

    def factory():
        created.append(1)
        return object()

    a = cluster.shared("key", factory)
    b = cluster.shared("key", factory)
    assert a is b
    assert created == [1]


def test_program_kwargs_passed_through():
    def program(ctx, scale=1):
        return ctx.rank * scale

    _, results = run_program(program, 3, scale=100)
    assert results == [0, 100, 200]


def test_zero_ranks_rejected():
    with pytest.raises(SimulationError):
        Cluster(0, MachineSpec(name="m"))


def test_cluster_makespan_is_max_rank_time():
    def program(ctx):
        ctx.compute(float(ctx.rank))

    cluster, _ = run_program(program, 4)
    assert cluster.elapsed == pytest.approx(3.0)
