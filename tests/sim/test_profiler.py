"""Unit tests for the exclusive-time category profiler."""

import pytest

from repro.sim.engine import Engine
from repro.sim.profiler import Profiler


def run_profiled(body):
    eng = Engine()
    prof = Profiler(eng, 1)
    eng.spawn(lambda p: body(p, prof))
    eng.run()
    return prof


def test_simple_region_accumulates_time():
    def body(p, prof):
        with prof.region(0, "compute"):
            p.sleep(2.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "compute") == pytest.approx(2.0)
    assert prof.counts[0]["compute"] == 1


def test_time_outside_regions_not_attributed():
    def body(p, prof):
        p.sleep(5.0)
        with prof.region(0, "compute"):
            p.sleep(1.0)
        p.sleep(5.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "compute") == pytest.approx(1.0)


def test_nested_region_is_exclusive():
    def body(p, prof):
        with prof.region(0, "outer"):
            p.sleep(1.0)
            with prof.region(0, "inner"):
                p.sleep(3.0)
            p.sleep(1.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "outer") == pytest.approx(2.0)
    assert prof.rank_total(0, "inner") == pytest.approx(3.0)


def test_same_category_nested_reentrant():
    def body(p, prof):
        with prof.region(0, "c"):
            p.sleep(1.0)
            with prof.region(0, "c"):
                p.sleep(1.0)
            p.sleep(1.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "c") == pytest.approx(3.0)
    assert prof.counts[0]["c"] == 2


def test_repeated_regions_accumulate():
    def body(p, prof):
        for _ in range(4):
            with prof.region(0, "step"):
                p.sleep(0.5)

    prof = run_profiled(body)
    assert prof.rank_total(0, "step") == pytest.approx(2.0)
    assert prof.counts[0]["step"] == 4


def test_region_exited_on_exception():
    def body(p, prof):
        try:
            with prof.region(0, "risky"):
                p.sleep(1.0)
                raise RuntimeError("expected")
        except RuntimeError:
            pass
        p.sleep(9.0)  # must not be attributed to "risky"

    prof = run_profiled(body)
    assert prof.rank_total(0, "risky") == pytest.approx(1.0)


def test_multi_rank_totals_and_mean():
    eng = Engine()
    prof = Profiler(eng, 2)

    def body(p, rank):
        with prof.region(rank, "work"):
            p.sleep(1.0 + rank)

    eng.spawn(lambda p: body(p, 0))
    eng.spawn(lambda p: body(p, 1))
    eng.run()
    assert prof.total("work") == pytest.approx(3.0)
    assert prof.mean("work") == pytest.approx(1.5)
    assert prof.categories() == ["work"]


def test_breakdown_reports_all_categories():
    def body(p, prof):
        with prof.region(0, "a"):
            p.sleep(1.0)
        with prof.region(0, "b"):
            p.sleep(2.0)

    prof = run_profiled(body)
    assert prof.breakdown() == {"a": pytest.approx(1.0), "b": pytest.approx(2.0)}


def test_nested_region_pauses_parent_clock():
    # The inner region's time must not also accrue to the outer category,
    # and resuming the outer region must restart its clock exactly.
    def body(p, prof):
        with prof.region(0, "outer"):
            p.sleep(0.25)
            with prof.region(0, "inner"):
                p.sleep(4.0)
            with prof.region(0, "inner"):
                p.sleep(2.0)
            p.sleep(0.75)

    prof = run_profiled(body)
    assert prof.rank_total(0, "outer") == pytest.approx(1.0)
    assert prof.rank_total(0, "inner") == pytest.approx(6.0)
    assert prof.counts[0] == {"outer": 1, "inner": 2}


def test_sleep_in_equivalent_to_region_form():
    """sleep_in is the unrolled hot path; accounting, counts, and the trace
    record must match the ``with region(...)`` spelling exactly."""
    from repro.sim.trace import Tracer

    def run(use_sleep_in):
        eng = Engine()
        tracer = Tracer()
        tracer.enable()
        prof = Profiler(eng, 1, tracer)

        def body(p):
            with prof.region(0, "outer"):
                p.sleep(1.0)
                if use_sleep_in:
                    prof.sleep_in(0, p, "io", 2.5)
                else:
                    with prof.region(0, "io"):
                        p.sleep(2.5)
                p.sleep(0.5)

        eng.spawn(body)
        eng.run()
        return prof, tracer

    prof_a, tr_a = run(True)
    prof_b, tr_b = run(False)
    assert prof_a.times == prof_b.times
    assert prof_a.counts == prof_b.counts
    events_a = [(e.kind, e.rank, e.t0, e.t1, dict(e.detail)) for e in tr_a.events]
    events_b = [(e.kind, e.rank, e.t0, e.t1, dict(e.detail)) for e in tr_b.events]
    assert events_a == events_b


def test_breakdown_deterministic_across_dispatchers(monkeypatch):
    """The legacy and fast-path dispatchers must agree on profiler output."""
    import numpy as np

    from repro.caf import run_caf

    def program(img):
        co = img.allocate_coarray(16, np.float64)
        img.sync_all()
        co.write((img.rank + 1) % img.nranks, np.ones(16))
        img.sync_all()

    def breakdown(fastpath):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
        run = run_caf(program, 4, backend="mpi")
        return run.profiler.breakdown(), run.elapsed

    slow, slow_elapsed = breakdown("0")
    fast, fast_elapsed = breakdown("1")
    assert slow == fast
    assert slow_elapsed == fast_elapsed
