"""Unit tests for the exclusive-time category profiler."""

import pytest

from repro.sim.engine import Engine
from repro.sim.profiler import Profiler


def run_profiled(body):
    eng = Engine()
    prof = Profiler(eng, 1)
    eng.spawn(lambda p: body(p, prof))
    eng.run()
    return prof


def test_simple_region_accumulates_time():
    def body(p, prof):
        with prof.region(0, "compute"):
            p.sleep(2.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "compute") == pytest.approx(2.0)
    assert prof.counts[0]["compute"] == 1


def test_time_outside_regions_not_attributed():
    def body(p, prof):
        p.sleep(5.0)
        with prof.region(0, "compute"):
            p.sleep(1.0)
        p.sleep(5.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "compute") == pytest.approx(1.0)


def test_nested_region_is_exclusive():
    def body(p, prof):
        with prof.region(0, "outer"):
            p.sleep(1.0)
            with prof.region(0, "inner"):
                p.sleep(3.0)
            p.sleep(1.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "outer") == pytest.approx(2.0)
    assert prof.rank_total(0, "inner") == pytest.approx(3.0)


def test_same_category_nested_reentrant():
    def body(p, prof):
        with prof.region(0, "c"):
            p.sleep(1.0)
            with prof.region(0, "c"):
                p.sleep(1.0)
            p.sleep(1.0)

    prof = run_profiled(body)
    assert prof.rank_total(0, "c") == pytest.approx(3.0)
    assert prof.counts[0]["c"] == 2


def test_repeated_regions_accumulate():
    def body(p, prof):
        for _ in range(4):
            with prof.region(0, "step"):
                p.sleep(0.5)

    prof = run_profiled(body)
    assert prof.rank_total(0, "step") == pytest.approx(2.0)
    assert prof.counts[0]["step"] == 4


def test_region_exited_on_exception():
    def body(p, prof):
        try:
            with prof.region(0, "risky"):
                p.sleep(1.0)
                raise RuntimeError("expected")
        except RuntimeError:
            pass
        p.sleep(9.0)  # must not be attributed to "risky"

    prof = run_profiled(body)
    assert prof.rank_total(0, "risky") == pytest.approx(1.0)


def test_multi_rank_totals_and_mean():
    eng = Engine()
    prof = Profiler(eng, 2)

    def body(p, rank):
        with prof.region(rank, "work"):
            p.sleep(1.0 + rank)

    eng.spawn(lambda p: body(p, 0))
    eng.spawn(lambda p: body(p, 1))
    eng.run()
    assert prof.total("work") == pytest.approx(3.0)
    assert prof.mean("work") == pytest.approx(1.5)
    assert prof.categories() == ["work"]


def test_breakdown_reports_all_categories():
    def body(p, prof):
        with prof.region(0, "a"):
            p.sleep(1.0)
        with prof.region(0, "b"):
            p.sleep(2.0)

    prof = run_profiled(body)
    assert prof.breakdown() == {"a": pytest.approx(1.0), "b": pytest.approx(2.0)}
