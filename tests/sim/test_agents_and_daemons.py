"""Dynamic spawning, daemon processes, and WorkerAgent semantics."""

import pytest

from repro.sim.agent import WorkerAgent
from repro.sim.cluster import run_program
from repro.sim.engine import Engine
from repro.util.errors import DeadlockError, SimulationError


def test_dynamic_spawn_mid_run():
    eng = Engine()
    trace = []

    def child(p):
        trace.append(("child", eng.now))

    def parent(p):
        p.sleep(2.0)
        eng.spawn(child)
        p.sleep(1.0)

    eng.spawn(parent)
    eng.run()
    assert trace == [("child", 2.0)]


def test_daemon_does_not_hold_run_open():
    eng = Engine()

    def daemon_body(p):
        p.block("waiting for work that never comes")

    def main_body(p):
        p.sleep(1.0)

    eng.spawn(main_body)
    eng.spawn(daemon_body, daemon=True)
    eng.run()  # must complete despite the blocked daemon
    assert eng.now == 1.0


def test_nondaemon_blocked_still_deadlocks():
    eng = Engine()
    eng.spawn(lambda p: p.block("stuck"))
    eng.spawn(lambda p: p.block("parked"), daemon=True)
    with pytest.raises(DeadlockError) as ei:
        eng.run()
    assert list(ei.value.blocked.values()) == ["stuck"]


def test_spawn_after_finish_rejected():
    eng = Engine()
    eng.spawn(lambda p: None)
    eng.run()
    with pytest.raises(SimulationError, match="finished"):
        eng.spawn(lambda p: None)


def test_worker_agent_runs_items_fifo_on_own_timeline():
    order = []

    def program(ctx):
        agent = WorkerAgent(ctx, name="worker")

        def job(tag, dur):
            def body(agent_ctx):
                agent_ctx.proc.sleep(dur)
                order.append((tag, ctx.engine.now))
                return tag

            return body

        ev1 = agent.submit(job("a", 1.0))
        ev2 = agent.submit(job("b", 0.5))
        ctx.compute(0.25)  # main thread overlaps with agent work
        ev1.wait(ctx.proc)
        ev2.wait(ctx.proc)
        return ev1.value, ev2.value, agent.items_executed

    _, results = run_program(program, 1)
    assert results[0] == ("a", "b", 2)
    # FIFO: a finishes at t=1.0, then b at t=1.5 — despite main computing.
    assert order == [("a", 1.0), ("b", 1.5)]


def test_worker_agent_result_payload():
    def program(ctx):
        agent = WorkerAgent(ctx, name="w")
        done = agent.submit(lambda agent_ctx: {"answer": 42})
        return done.wait(ctx.proc)

    _, results = run_program(program, 1)
    assert results[0] == {"answer": 42}
