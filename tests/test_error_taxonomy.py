"""Misuse of public entry points raises documented ReproError subclasses.

The contract under test: library-level misuse surfaces as the layer's own
error type (SimulationError / MpiError / GasnetError / CafError or a
subclass) — never a bare KeyError / IndexError / AssertionError leaking
from the implementation.
"""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.network import MachineSpec, NetFabric
from repro.util.errors import (
    CafError,
    CafTimeoutError,
    DeadlockError,
    GasnetError,
    ImageFailedError,
    MpiError,
    MpiProcFailedError,
    ReproError,
    SimTimeoutError,
    SimulationError,
)
from tests.gasnet.conftest import gasnet_run
from tests.mpi.conftest import mpi_run


def test_hierarchy_is_closed_under_repro_error():
    for exc_type in (
        SimulationError, DeadlockError, SimTimeoutError,
        MpiError, MpiProcFailedError,
        GasnetError,
        CafError, ImageFailedError, CafTimeoutError,
    ):
        assert issubclass(exc_type, ReproError)


# -- simulator entry points ---------------------------------------------------


def _fabric():
    eng = Engine()
    return eng, NetFabric(eng, 4, MachineSpec(name="test"))


def test_fabric_rejects_bad_ranks_sizes_and_occupancy():
    _, fabric = _fabric()
    with pytest.raises(SimulationError):
        fabric.transfer(-1, 1, 10, lambda: None)
    with pytest.raises(SimulationError):
        fabric.transfer(0, 4, 10, lambda: None)
    with pytest.raises(SimulationError):
        fabric.transfer(0, 1, -10, lambda: None)
    with pytest.raises(SimulationError):
        fabric.transfer(0, 1, 10, lambda: None, rx_extra=-1e-6)


def test_fabric_rejects_transfer_after_engine_finished():
    eng, fabric = _fabric()
    eng.spawn(lambda p: p.sleep(1e-6))
    eng.run()
    with pytest.raises(SimulationError):
        fabric.transfer(0, 1, 10, lambda: None)


def test_engine_misuse_is_simulation_error():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.call_at(-1.0, lambda: None)  # scheduling in the past
    eng.spawn(lambda p: p.sleep(1e-6))
    eng.run()
    with pytest.raises(SimulationError):
        eng.run()  # an engine runs once
    with pytest.raises(SimulationError):
        eng.spawn(lambda p: None)  # no spawning after the run


def test_cluster_rejects_nonpositive_nranks():
    with pytest.raises(SimulationError):
        Cluster(0, MachineSpec(name="test"))


# -- MPI entry points ---------------------------------------------------------


def test_mpi_misuse_raises_mpi_error():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        buf = np.zeros(4)
        with pytest.raises(MpiError):
            comm.send(buf, dest=99)  # peer out of range
        with pytest.raises(MpiError):
            comm.recv(buf, source=-2)
        with pytest.raises(MpiError):
            comm.send(np.zeros((4, 4)).T, dest=(ctx.rank + 1) % ctx.nranks)
        return True

    # Non-contiguous send buffers are rejected eagerly, before any
    # traffic, so asserting inside a single-rank world is race-free.
    _, results = mpi_run(program, 2)
    assert all(results)


def test_mpi_truncation_is_mpi_error():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.zeros(64), 1)
        else:
            comm.recv(np.zeros(2), 0)  # 512 bytes into a 16-byte buffer
        return True

    # Truncation is detected at match time, in scheduler context; the
    # library error aborts the run rather than surfacing as a KeyError.
    with pytest.raises(MpiError, match="truncation"):
        mpi_run(program, 2)


# -- GASNet entry points ------------------------------------------------------


def test_gasnet_misuse_raises_gasnet_error():
    def program(g, ctx):
        with pytest.raises(GasnetError):
            g.segment_of(-5)  # negative rank must not wrap around
        with pytest.raises(GasnetError):
            g.segment_of(ctx.nranks)
        with pytest.raises(GasnetError):
            g.put(0, 1 << 30, np.ones(4))  # offset beyond the segment
        return True

    _, results = gasnet_run(program, 2)
    assert all(results)


# -- CAF entry points ---------------------------------------------------------


def test_caf_misuse_raises_caf_error():
    def program(img):
        co = img.allocate_coarray(8)
        ev = img.allocate_events(2)
        img.sync_all()
        with pytest.raises(CafError):
            co.write(99, np.ones(2))  # image index out of range
        with pytest.raises(CafError):
            co.write(0, np.ones(4), offset=6)  # runs past the coarray
        with pytest.raises(CafError):
            co.read(0, offset=-1, count=2)
        with pytest.raises(CafError):
            ev.notify(0, slot=7)  # slot out of range
        with pytest.raises(CafError):
            ev.wait(slot=-1)
        with pytest.raises(CafError):
            img.spawn(99, lambda im: None)
        with pytest.raises(CafError):
            img.sync_images([99])
        img.sync_all()
        return True

    run = run_caf(program, 2, backend="mpi")
    assert all(run.results)


def test_transport_give_up_feeds_image_failed_path():
    """A peer that never acks is declared failed after max_retries: the
    sender's later API calls on it raise ImageFailedError, exactly as if
    the image had crashed (the transport-level failure taxonomy)."""
    from repro.sim.faults import FaultDecision, FaultPlan

    class PartitionPlan(FaultPlan):
        """Once armed, drops every frame addressed to ``victim``."""

        def __init__(self, victim):
            self.victim = victim
            self.armed = False
            super().__init__()

        @property
        def active(self):
            return True

        def draw(self, src, dst, nbytes):
            self.drawn += 1
            if self.armed and dst == self.victim:
                return FaultDecision(drop=True)
            return FaultDecision()

    plan = PartitionPlan(victim=1)

    def program(img):
        ev = img.allocate_events(1)
        co = img.allocate_coarray(4)
        img.sync_all()
        if img.rank == 0:
            img.ctx.fabric.reliable.max_retries = 3
            plan.armed = True
            ev.notify(1, 0)  # frame is dropped; retries all drop too
            img.ctx.proc.sleep(0.5)  # past the give-up horizon
            assert 1 in img.failed_images()
            with pytest.raises(ImageFailedError):
                co.write(1, np.ones(4))
            return "gave-up"
        try:
            ev.wait(0, timeout=1.0)
        except CafTimeoutError:
            return "timed-out"
        return "notified"

    run = run_caf(program, 2, backend="mpi", reliable=True, faults=plan, deadline=10.0)
    assert run.results[0] == "gave-up"
    assert run.results[1] == "timed-out"
    log = run.cluster.failure_log
    assert len(log) == 1 and log[0]["rank"] == 1
    assert log[0]["reason"].startswith("transport")


def test_unknown_backend_is_caf_error():
    with pytest.raises(CafError):
        run_caf(lambda img: None, 2, backend="upc")


def test_bad_events_and_coarray_construction():
    def program(img):
        with pytest.raises(CafError):
            img.allocate_events(0)
        return True

    run = run_caf(program, 1, backend="mpi")
    assert all(run.results)
