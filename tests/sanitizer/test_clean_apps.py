"""No false positives: the paper apps run clean under the sanitizer, and
sanitizing never perturbs the simulated timeline."""

import pytest

from repro import sanitizer
from repro.apps.cgpop import run_cgpop, run_cgpop_2d
from repro.apps.fft import run_fft
from repro.apps.hpl import run_hpl
from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf

APPS = {
    "randomaccess": (run_randomaccess, dict(updates_per_image=64, seed=3)),
    "fft": (run_fft, dict(m=256, seed=3)),
    "hpl": (run_hpl, dict(n=32, seed=3)),
    "cgpop-push": (run_cgpop, dict(ny=8, nx=4, mode="push", seed=3)),
    "cgpop-pull": (run_cgpop, dict(ny=8, nx=4, mode="pull", seed=3)),
    "cgpop2d": (run_cgpop_2d, dict(ny=8, nx=4, seed=3)),
}


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
@pytest.mark.parametrize("app", sorted(APPS))
def test_app_runs_clean(app, backend):
    program, kwargs = APPS[app]
    run = run_caf(program, 4, backend=backend, sanitize=True, **kwargs)
    report = run.sanitizer.report
    assert report.clean, f"{app}/{backend}:\n{report.to_text()}"
    # The checker was live (FFT on MPI is pure collectives — it may
    # legitimately record no shadow accesses, but it always ticks clocks).
    assert report.stats["ticks"] > 0


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_sanitizer_does_not_perturb_timeline(backend):
    program, kwargs = APPS["fft"]
    plain = run_caf(program, 4, backend=backend, **kwargs)
    checked = run_caf(program, 4, backend=backend, sanitize=True, **kwargs)
    assert checked.elapsed == plain.elapsed
    assert checked.results == plain.results


def test_experiment_clean_under_forced_sanitize():
    """Experiments build clusters internally; force_enable covers them."""
    from repro.experiments.registry import EXPERIMENTS

    sanitizer.clear_reports()
    sanitizer.force_enable()
    try:
        EXPERIMENTS["fig06"].load()("quick")
    finally:
        sanitizer.force_disable()
    reports = sanitizer.collected_reports()
    assert reports, "no sanitized runs collected"
    for report in reports:
        assert report.clean, report.to_text()
    sanitizer.clear_reports()


def test_atomics_event_backend_clean():
    """The §3.4 atomics-event ablation busy-polls an exempt window."""

    def program(img):
        ev = img.allocate_events(1)
        co = img.allocate_coarray(4)
        if img.rank == 0:
            co.write(1, [7.0] * 4)
            ev.notify(1)
        elif img.rank == 1:
            ev.wait()
            assert float(co.local[0]) == 7.0
        img.sync_all()
        return True

    run = run_caf(
        program, 2, backend="mpi", sanitize=True,
        backend_options={"event_impl": "atomics"},
    )
    assert run.sanitizer.report.clean, run.sanitizer.report.to_text()
