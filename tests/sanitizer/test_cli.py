"""CLI behavior of ``python -m repro.sanitizer``: target validation and
exit codes for clean vs. diagnostic-producing runs."""

from __future__ import annotations

import pytest

from repro.sanitizer import __main__ as cli
from tests.sanitizer.buggy_kernels import run_kernel


def test_unknown_target_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["no-such-app"])
    assert exc.value.code == 2
    assert "unknown target" in capsys.readouterr().err


def test_clean_app_run_exits_zero(capsys):
    rc = cli.main(["randomaccess", "--procs", "4", "--updates", "64"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "sanitizing randomaccess" in out
    assert "clean" in out


def test_diagnostic_run_exits_nonzero(monkeypatch, capsys):
    # Swap the app runner for a corpus kernel with a planted race so the
    # CLI's report-collection path sees a real diagnostic.
    monkeypatch.setattr(cli, "_run_app", lambda args: run_kernel("mpi_put_unsynced_local_read"))
    rc = cli.main(["randomaccess"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "violation" in out


def test_no_sanitized_runs_message(monkeypatch, capsys):
    monkeypatch.setattr(cli, "_run_app", lambda args: None)
    rc = cli.main(["randomaccess"])
    assert rc == 0
    assert "no sanitized runs" in capsys.readouterr().out
