"""Every seeded bug in the corpus is detected, with usable diagnostics."""

import pytest

from tests.sanitizer.buggy_kernels import KERNELS, run_kernel


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_detected(name):
    report, expected = run_kernel(name)
    assert not report.clean, f"{name}: sanitizer reported a clean run"
    kinds = report.kinds()
    assert expected in kinds, f"{name}: expected {expected!r}, got {kinds}"


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_diagnostic_quality(name):
    report, expected = run_kernel(name)
    diags = [d for d in report.diagnostics if d.kind == expected]
    assert diags
    d = diags[0]
    # Every diagnostic names the offending rank and virtual time.
    assert 0 <= d.rank < report.nranks
    assert d.time >= 0.0
    if expected == "lost-notify":
        return  # filed at finalize; no call site / ranges by design
    # Call sites point into the kernel source, not runtime internals.
    sites = f"{d.site} {d.other_site}"
    assert "buggy_kernels.py" in sites, sites
    if expected in ("race", "overlap", "unflushed-read", "win-sync"):
        assert d.ranges, f"{name}: no byte ranges on {d!r}"
        lo, hi = d.ranges[0]
        assert 0 <= lo < hi
    if expected in ("race", "overlap", "unflushed-read"):
        assert d.other_rank is not None
        assert d.region is not None


def test_report_text_renders():
    report, _ = run_kernel("mpi_put_unsynced_local_read")
    text = report.to_text()
    assert "race" in text
    assert "buggy_kernels.py" in text
