"""Sanitizer precision on derived-datatype (put_runs/get_runs) paths:
records carry one byte range per run, so interleaved strided traffic to
disjoint runs is clean while same-run conflicts are pinpointed."""

import numpy as np

from repro.mpi.world import MpiWorld
from repro.sim.cluster import Cluster
from repro.sim.network import MachineSpec


def _run(program, nranks):
    cluster = Cluster(nranks, MachineSpec(name="san-runs"), seed=1, sanitize=True)

    def wrapper(ctx, **kw):
        return program(MpiWorld.get(ctx.cluster).init(ctx), ctx)

    cluster.run(wrapper)
    return cluster.sanitizer.report


def test_disjoint_interleaved_runs_are_clean():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.full(4, 1.0), 2, [(0, 2), (4, 2)])
        elif ctx.rank == 1:
            win.put_runs(np.full(4, 2.0), 2, [(2, 2), (6, 2)])
        mpi.COMM_WORLD.barrier()
        win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    report = _run(program, 3)
    assert report.clean, report.to_text()


def test_same_run_overlap_is_reported_with_run_ranges():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank < 2:
            # Both scatter into run (4, 2): elements 4-5 = bytes [32, 48).
            win.put_runs(np.full(4, 1.0 + ctx.rank), 2, [(0, 2), (4, 2)])
        mpi.COMM_WORLD.barrier()
        win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    report = _run(program, 3)
    assert "overlap" in report.kinds()
    diag = [d for d in report.diagnostics if d.kind == "overlap"][0]
    # Both runs intersect; ranges stay per-run, not a bounding box.
    assert (0, 16) in diag.ranges
    assert (32, 48) in diag.ranges
    assert (16, 32) not in diag.ranges


def test_get_runs_release_is_request_completion():
    """A strided get racing nothing: records release when the request
    completes, so a later same-range put by another rank after a barrier
    is clean."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            out = np.zeros(4)
            win.get_runs(out, 2, [(0, 2), (4, 2)]).wait()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 1:
            win.put_runs(np.full(4, 9.0), 2, [(0, 2), (4, 2)])
            win.flush(2)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    report = _run(program, 3)
    assert report.clean, report.to_text()
