"""Seeded-bug corpus: mini-programs each planted with one known
synchronization bug, used to prove the sanitizer detects every class of
defect it advertises (and pins which kind fires where).

Each kernel runs a small program under ``sanitize=True`` and returns the
:class:`~repro.sanitizer.SanitizerReport`. The registry maps kernel name
to ``(runner, expected_kind)``; ``tests/sanitizer/test_corpus.py`` runs
them all and checks the expected diagnostic (with app-level call sites)
comes out.
"""

from __future__ import annotations

import numpy as np

from repro.caf import run_caf
from repro.mpi.world import MpiWorld
from repro.sim.cluster import Cluster
from repro.sim.network import MachineSpec

KERNELS: dict[str, tuple] = {}


def kernel(name: str, expected_kind: str):
    def deco(fn):
        KERNELS[name] = (fn, expected_kind)
        return fn

    return deco


def _mpi_run(program, nranks: int, seed: int = 1):
    """Run ``program(mpi, ctx)`` SPMD under the sanitizer; return the report."""
    cluster = Cluster(nranks, MachineSpec(name="san-corpus"), seed=seed, sanitize=True)

    def wrapper(ctx, **kw):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        return program(mpi, ctx)

    cluster.run(wrapper)
    return cluster.sanitizer.report


def _caf_run(program, nranks: int, backend: str = "mpi", **kw):
    run = run_caf(program, nranks, backend=backend, sanitize=True, **kw)
    return run.sanitizer.report


# -- (a) conflicting accesses with no happens-before edge -------------------


@kernel("mpi_put_unsynced_local_read", "race")
def mpi_put_unsynced_local_read():
    """Rank 0 puts into rank 1's window; rank 1 reads it with no barrier
    or event ordering the put before the load."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 0:
            win.put(np.ones(8), target=1)
            win.flush(1)
        else:
            ctx.proc.sleep(1e-3)  # the put lands first — still unordered
            _ = float(win.local[0])
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    return _mpi_run(program, 2)


@kernel("caf_gasnet_put_unsynced_local_read", "race")
def caf_gasnet_put_unsynced_local_read():
    """Same bug through the CAF facade on the GASNet backend: a remote
    coarray write racing the target's local read of its segment."""

    def program(img):
        co = img.allocate_coarray(8, dtype=np.float64)
        img.sync_all()
        if img.rank == 0:
            co.write(1, np.ones(8))
        else:
            img.compute(1e-3)
            _ = float(co.local[0])
        img.sync_all()
        return True

    return _caf_run(program, 2, backend="gasnet")


# -- (b) epoch misuse -------------------------------------------------------


@kernel("mpi_no_epoch", "epoch")
def mpi_no_epoch():
    """RMA with no lock/lock_all/fence epoch open on the window."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        if ctx.rank == 0:
            win.put(np.ones(4), target=1)
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        return True

    return _mpi_run(program, 2)


@kernel("mpi_rput_then_rget_no_flush", "unflushed-read")
def mpi_rput_then_rget_no_flush():
    """Rank 0 reads back the range it just put — before any flush, so the
    get may observe either old or new bytes (undefined per MPI-3)."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 0:
            win.rput(np.ones(8), target=1)
            buf = np.zeros(8)
            win.rget(buf, 1).wait()
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    return _mpi_run(program, 2)


@kernel("mpi_signal_before_flush", "unflushed-read")
def mpi_signal_before_flush():
    """Rank 0 signals rank 1 over p2p *before* flushing its put: the
    message gives happens-before, but the put is still in flight, so the
    target's read sees stale data."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 0:
            win.rput(np.ones(4), target=1)
            mpi.COMM_WORLD.send(np.zeros(1), dest=1, tag=7)
        else:
            buf = np.zeros(1)
            mpi.COMM_WORLD.recv(buf, source=0, tag=7)
            _ = float(win.local[0])
        mpi.COMM_WORLD.barrier()
        win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    return _mpi_run(program, 2)


@kernel("mpi_separate_no_win_sync", "win-sync")
def mpi_separate_no_win_sync():
    """Separate (MPI-2) memory model: the target loads from its private
    copy while RMA updates sit unsynchronized in the public copy —
    a missing MPI_WIN_SYNC."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64, memory_model="separate")
        win.lock_all()
        if ctx.rank == 0:
            win.put(np.ones(4), target=1)
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 1:
            _ = float(win.local[0])  # missing win.sync()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    return _mpi_run(program, 2)


# -- (c) unpaired / lost event notifications --------------------------------


@kernel("caf_lost_notify", "lost-notify")
def caf_lost_notify():
    """Image 0 posts an event on image 1 that nobody ever waits on."""

    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            ev.notify(1)
        img.sync_all()
        return True

    return _caf_run(program, 2, backend="mpi")


# -- (d) overlapping in-flight puts -----------------------------------------


@kernel("mpi_overlapping_puts", "overlap")
def mpi_overlapping_puts():
    """Ranks 0 and 1 both have unflushed puts in flight to the same bytes
    of rank 2's window."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        if ctx.rank < 2:
            win.rput(np.full(8, ctx.rank + 1.0), target=2)
        mpi.COMM_WORLD.barrier()
        win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return True

    return _mpi_run(program, 3)


@kernel("caf_overlapping_async_writes", "overlap")
def caf_overlapping_async_writes():
    """Two images write_async the same slice of a third image's coarray
    with no event or fence separating the puts (GASNet backend)."""

    def program(img):
        co = img.allocate_coarray(8, dtype=np.float64)
        img.sync_all()
        if img.rank < 2:
            co.write_async(2, np.full(8, float(img.rank + 1)))
        img.sync_all()
        return True

    return _caf_run(program, 3, backend="gasnet")


def run_kernel(name: str):
    """Run one corpus kernel; returns (report, expected_kind)."""
    fn, expected = KERNELS[name]
    return fn(), expected
