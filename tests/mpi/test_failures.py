"""ULFM-style failure handling: MpiProcFailedError, failed_ranks, shrink."""

import numpy as np
import pytest

from repro.mpi.world import MpiWorld
from repro.sim.cluster import Cluster
from repro.sim.faults import FaultPlan
from repro.sim.network import MachineSpec
from repro.util.errors import MpiError, MpiProcFailedError

CRASH_AT = 2e-3
VICTIM = 3


def crash_run(program, nranks=4):
    cluster = Cluster(
        nranks,
        MachineSpec(name="test"),
        faults=FaultPlan(seed=1, crashes=[(VICTIM, CRASH_AT)]),
    )

    def wrapper(ctx):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        return program(mpi, ctx)

    return cluster, cluster.run(wrapper)


def test_operations_on_failed_rank_raise_proc_failed():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        comm.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return "unreachable"
        ctx.proc.sleep(3 * CRASH_AT)
        out = {"failed": comm.failed_ranks()}
        buf = np.zeros(4)
        for label, op in [
            ("send", lambda: comm.send(np.ones(4), VICTIM)),
            ("recv", lambda: comm.recv(buf, VICTIM)),
            ("isend", lambda: comm.isend(np.ones(4), VICTIM)),
        ]:
            with pytest.raises(MpiProcFailedError) as exc_info:
                op()
            out[label] = exc_info.value.failed_rank
        return out

    cluster, results = crash_run(program)
    assert cluster.failed_ranks == {VICTIM}
    for rank, out in enumerate(results):
        if rank == VICTIM:
            continue
        assert out["failed"] == [VICTIM]
        assert out["send"] == out["recv"] == out["isend"] == VICTIM


def test_proc_failed_is_an_mpi_error():
    assert issubclass(MpiProcFailedError, MpiError)
    exc = MpiProcFailedError(5)
    assert exc.failed_rank == 5
    assert "5" in str(exc)


def test_rma_on_failed_rank_raises_eagerly():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        ctx.proc.sleep(3 * CRASH_AT)
        with pytest.raises(MpiProcFailedError) as exc_info:
            win.put(np.ones(4), VICTIM)
        with pytest.raises(MpiProcFailedError):
            win.get(np.zeros(4), VICTIM)
        return exc_info.value.failed_rank

    _, results = crash_run(program)
    assert all(r == VICTIM for i, r in enumerate(results) if i != VICTIM)


def test_shrink_yields_a_working_survivor_comm():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        comm.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        ctx.proc.sleep(3 * CRASH_AT)
        small = comm.shrink()
        assert small.size == comm.size - 1
        assert small.failed_ranks() == []
        # The shrunken communicator is fully functional: a collective
        # over the survivors completes and computes the right value.
        send = np.array([float(comm.rank)])
        recv = np.zeros(1)
        small.allreduce(send, recv)
        return (small.rank, recv[0])

    _, results = crash_run(program)
    survivors = [r for i, r in enumerate(results) if i != VICTIM]
    expected_sum = sum(i for i in range(4) if i != VICTIM)
    assert sorted(rank for rank, _ in survivors) == [0, 1, 2]
    assert all(total == expected_sum for _, total in survivors)
