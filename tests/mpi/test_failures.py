"""ULFM-style failure handling: MpiProcFailedError, failed_ranks, shrink."""

import numpy as np
import pytest

from repro.mpi.world import MpiWorld
from repro.sim.cluster import Cluster
from repro.sim.faults import FaultPlan
from repro.sim.network import MachineSpec
from repro.util.errors import MpiError, MpiProcFailedError, MpiRevokedError

CRASH_AT = 2e-3
VICTIM = 3


def crash_run(program, nranks=4):
    cluster = Cluster(
        nranks,
        MachineSpec(name="test"),
        faults=FaultPlan(seed=1, crashes=[(VICTIM, CRASH_AT)]),
    )

    def wrapper(ctx):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        return program(mpi, ctx)

    return cluster, cluster.run(wrapper)


def test_operations_on_failed_rank_raise_proc_failed():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        comm.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return "unreachable"
        ctx.proc.sleep(3 * CRASH_AT)
        out = {"failed": comm.failed_ranks()}
        buf = np.zeros(4)
        for label, op in [
            ("send", lambda: comm.send(np.ones(4), VICTIM)),
            ("recv", lambda: comm.recv(buf, VICTIM)),
            ("isend", lambda: comm.isend(np.ones(4), VICTIM)),
        ]:
            with pytest.raises(MpiProcFailedError) as exc_info:
                op()
            out[label] = exc_info.value.failed_rank
        return out

    cluster, results = crash_run(program)
    assert cluster.failed_ranks == {VICTIM}
    for rank, out in enumerate(results):
        if rank == VICTIM:
            continue
        assert out["failed"] == [VICTIM]
        assert out["send"] == out["recv"] == out["isend"] == VICTIM


def test_proc_failed_is_an_mpi_error():
    assert issubclass(MpiProcFailedError, MpiError)
    exc = MpiProcFailedError(5)
    assert exc.failed_rank == 5
    assert "5" in str(exc)


def test_rma_on_failed_rank_raises_eagerly():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        ctx.proc.sleep(3 * CRASH_AT)
        with pytest.raises(MpiProcFailedError) as exc_info:
            win.put(np.ones(4), VICTIM)
        with pytest.raises(MpiProcFailedError):
            win.get(np.zeros(4), VICTIM)
        return exc_info.value.failed_rank

    _, results = crash_run(program)
    assert all(r == VICTIM for i, r in enumerate(results) if i != VICTIM)


def test_pending_recv_from_dead_rank_fails_eagerly():
    """ULFM: a receive already blocked on the victim when it dies must
    complete with MPI_ERR_PROC_FAILED instead of hanging forever."""

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)  # never sends; dies at CRASH_AT
            return None
        if ctx.rank == 0:
            # Post the receive *before* the crash, then block in wait().
            with pytest.raises(MpiProcFailedError) as exc_info:
                comm.recv(np.zeros(4), source=VICTIM)
            return exc_info.value.failed_rank
        return "idle"

    cluster, results = crash_run(program)
    assert results[0] == VICTIM
    assert cluster.elapsed < 1.5  # woke at the crash, not at a watchdog


def test_revoke_interrupts_receives_from_live_peers():
    """A rank blocked on a *live* peer (which itself stalled on the dead
    one) is freed when any survivor revokes the communicator."""

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        if ctx.rank == 0:
            # Blocked on rank 1 — alive, but it will never send.
            with pytest.raises(MpiRevokedError):
                comm.recv(np.zeros(4), source=1)
            return "revoked-out"
        if ctx.rank == 1:
            # Detects the failure directly, then poisons the comm.
            with pytest.raises(MpiProcFailedError):
                comm.recv(np.zeros(4), source=VICTIM)
            comm.revoke()
            with pytest.raises(MpiRevokedError):
                comm.send(np.ones(4), 0)
            return "detected"
        return "idle"

    _, results = crash_run(program)
    assert results[0] == "revoked-out"
    assert results[1] == "detected"


def test_shrink_after_revoke_gives_a_clean_comm():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        ctx.proc.sleep(3 * CRASH_AT)
        comm.revoke()
        small = comm.shrink()
        assert not small.state.revoked
        send = np.array([1.0])
        recv = np.zeros(1)
        small.allreduce(send, recv)
        return recv[0]

    _, results = crash_run(program)
    assert all(r == 3.0 for i, r in enumerate(results) if i != VICTIM)


def test_shrink_yields_a_working_survivor_comm():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        comm.barrier()
        if ctx.rank == VICTIM:
            ctx.proc.sleep(1.0)
            return None
        ctx.proc.sleep(3 * CRASH_AT)
        small = comm.shrink()
        assert small.size == comm.size - 1
        assert small.failed_ranks() == []
        # The shrunken communicator is fully functional: a collective
        # over the survivors completes and computes the right value.
        send = np.array([float(comm.rank)])
        recv = np.zeros(1)
        small.allreduce(send, recv)
        return (small.rank, recv[0])

    _, results = crash_run(program)
    survivors = [r for i, r in enumerate(results) if i != VICTIM]
    expected_sum = sum(i for i in range(4) if i != VICTIM)
    assert sorted(rank for rank, _ in survivors) == [0, 1, 2]
    assert all(total == expected_sum for _, total in survivors)
