"""Derived-datatype-style strided RMA (put_runs / get_runs)."""

import numpy as np
import pytest

from repro.util.errors import MpiError

from tests.mpi.conftest import mpi_run


def test_put_runs_scatters(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=12, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.array([1.0, 2.0, 3.0, 4.0]), 1, [(0, 2), (6, 2)])
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    assert results[1] == [1.0, 2.0, 0, 0, 0, 0, 3.0, 4.0, 0, 0, 0, 0]


def test_get_runs_gathers(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=10, dtype=np.float64)
        win.local[:] = np.arange(10) + 10 * ctx.rank
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        out = np.zeros(4)
        win.get_runs(out, (ctx.rank + 1) % ctx.nranks, [(1, 2), (7, 2)]).wait()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return out.tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == [11.0, 12.0, 17.0, 18.0]
    assert results[1] == [1.0, 2.0, 7.0, 8.0]


def test_put_runs_single_message(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=64, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        before = ctx.cluster.fabric.messages_sent
        if ctx.rank == 0:
            win.put_runs(np.ones(16), 1, [(i * 4, 2) for i in range(8)])
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        after = ctx.cluster.fabric.messages_sent
        win.unlock_all()
        return after - before

    _, results = mpi_run(program, 2)
    # One data message plus the barrier's messages — nowhere near 8.
    assert results[0] <= 4


def test_put_runs_size_mismatch_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        win.put_runs(np.ones(3), 0, [(0, 2)])

    with pytest.raises(MpiError, match="runs cover"):
        mpi_run(program, 1)


def test_put_runs_out_of_bounds_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        win.put_runs(np.ones(2), 0, [(7, 2)])

    with pytest.raises(MpiError, match="outside target"):
        mpi_run(program, 1)


def test_runs_respect_flush_semantics(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.full(4, 5.0), 1, [(0, 2), (4, 2)])
            win.flush(1)  # must block until the runs committed remotely
            assert win.state.buffers[1][0] == 5.0
            assert win.state.buffers[1][4] == 5.0
        mpi.COMM_WORLD.barrier()
        win.unlock_all()

    mpi_run(program, 2)
