"""Derived-datatype-style strided RMA (put_runs / get_runs)."""

import numpy as np
import pytest

from repro.util.errors import MpiError

from tests.mpi.conftest import mpi_run


def test_put_runs_scatters(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=12, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.array([1.0, 2.0, 3.0, 4.0]), 1, [(0, 2), (6, 2)])
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    assert results[1] == [1.0, 2.0, 0, 0, 0, 0, 3.0, 4.0, 0, 0, 0, 0]


def test_get_runs_gathers(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=10, dtype=np.float64)
        win.local[:] = np.arange(10) + 10 * ctx.rank
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        out = np.zeros(4)
        win.get_runs(out, (ctx.rank + 1) % ctx.nranks, [(1, 2), (7, 2)]).wait()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return out.tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == [11.0, 12.0, 17.0, 18.0]
    assert results[1] == [1.0, 2.0, 7.0, 8.0]


def test_put_runs_single_message(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=64, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        before = ctx.cluster.fabric.messages_sent
        if ctx.rank == 0:
            win.put_runs(np.ones(16), 1, [(i * 4, 2) for i in range(8)])
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        after = ctx.cluster.fabric.messages_sent
        win.unlock_all()
        return after - before

    _, results = mpi_run(program, 2)
    # One data message plus the barrier's messages — nowhere near 8.
    assert results[0] <= 4


def test_put_runs_size_mismatch_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        win.put_runs(np.ones(3), 0, [(0, 2)])

    with pytest.raises(MpiError, match="runs cover"):
        mpi_run(program, 1)


def test_put_runs_out_of_bounds_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        win.put_runs(np.ones(2), 0, [(7, 2)])

    with pytest.raises(MpiError, match="outside target"):
        mpi_run(program, 1)


def test_runs_respect_flush_semantics(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.full(4, 5.0), 1, [(0, 2), (4, 2)])
            win.flush(1)  # must block until the runs committed remotely
            assert win.state.buffers[1][0] == 5.0
            assert win.state.buffers[1][4] == 5.0
        mpi.COMM_WORLD.barrier()
        win.unlock_all()

    mpi_run(program, 2)


def test_put_runs_non_uniform_lengths(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=16, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            # Runs of different lengths: 1, 3 and 2 elements.
            win.put_runs(np.arange(1.0, 7.0), 1, [(0, 1), (5, 3), (12, 2)])
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    expect = [0.0] * 16
    expect[0] = 1.0
    expect[5:8] = [2.0, 3.0, 4.0]
    expect[12:14] = [5.0, 6.0]
    assert results[1] == expect


def test_get_runs_rendezvous_sized_payload(run):
    """Strided gets whose gathered payload exceeds the eager threshold
    still complete via the request (the rendezvous-path datatype case)."""

    def program(mpi, ctx):
        n = 4096
        win = mpi.win_allocate(shape=n, dtype=np.float64)
        win.local[:] = np.arange(n) + n * ctx.rank
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        half = n // 2
        out = np.zeros(half)
        runs = [(2 * i, 1) for i in range(half)]  # every even element
        assert half * 8 > ctx.spec.mpi_eager_threshold
        win.get_runs(out, (ctx.rank + 1) % ctx.nranks, runs).wait()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return out[:4].tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == [4096.0, 4098.0, 4100.0, 4102.0]
    assert results[1] == [0.0, 2.0, 4.0, 6.0]


def test_interleaved_runs_from_two_origins(run):
    """Two ranks scatter into complementary strided runs of a third."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put_runs(np.full(4, 1.0), 2, [(0, 2), (4, 2)])
            win.flush(2)
        elif ctx.rank == 1:
            win.put_runs(np.full(4, 2.0), 2, [(2, 2), (6, 2)])
            win.flush(2)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 3)
    assert results[2] == [1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]
