"""Shared fixtures/helpers for MPI-layer tests."""

import pytest

from repro.mpi.world import MpiWorld
from repro.sim.cluster import Cluster
from repro.sim.network import MachineSpec


def mpi_run(program, nranks, *, spec=None, seed=1, **kwargs):
    """Run ``program(mpi, ctx, **kwargs)`` on every rank under MPI."""
    spec = spec or MachineSpec(name="test")
    cluster = Cluster(nranks, spec, seed=seed)

    def wrapper(ctx, **kw):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        return program(mpi, ctx, **kw)

    results = cluster.run(wrapper, program_kwargs=kwargs)
    return cluster, results


@pytest.fixture
def run():
    return mpi_run
