"""MPI-3 window variants (§2.2): dynamic, shared, memory models, locks,
and the §5 MPI_WIN_RFLUSH extension."""

import numpy as np
import pytest

from repro.mpi import SUM
from repro.sim.network import MachineSpec
from repro.util.errors import MpiError

from tests.mpi.conftest import mpi_run


# -- dynamic windows ---------------------------------------------------------


def test_dynamic_window_attach_and_put(run):
    def program(mpi, ctx):
        win = mpi.win_create_dynamic(dtype=np.float64)
        win.lock_all()
        base = win.attach(8)
        # Publish the displacement two-sidedly, like real codes must.
        bases = np.zeros((ctx.nranks, 1), np.int64)
        mpi.COMM_WORLD.allgather(np.array([base], np.int64), bases)
        target = (ctx.rank + 1) % ctx.nranks
        win.put(np.full(4, float(ctx.rank)), target, offset=int(bases[target, 0]))
        win.flush(target)
        mpi.COMM_WORLD.barrier()
        return win.region(base)[:4].tolist()

    _, results = mpi_run(program, 3)
    for rank, got in enumerate(results):
        assert got == [float((rank - 1) % 3)] * 4


def test_dynamic_window_detach_then_access_fails(run):
    def program(mpi, ctx):
        win = mpi.win_create_dynamic(dtype=np.float64)
        win.lock_all()
        base = win.attach(8)
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 1:
            win.detach(base)
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put(np.ones(4), target=1, offset=0)

    with pytest.raises(MpiError, match="no attached region"):
        mpi_run(program, 2)


def test_dynamic_window_multiple_regions(run):
    def program(mpi, ctx):
        win = mpi.win_create_dynamic(dtype=np.int64)
        win.lock_all()
        base_a = win.attach(4)
        base_b = win.attach(4)
        assert base_a != base_b
        mpi.COMM_WORLD.barrier()
        other = 1 - ctx.rank
        # Regions are attached in the same order: displacements agree.
        win.put(np.array([1, 1], np.int64), other, offset=base_a)
        win.put(np.array([2, 2], np.int64), other, offset=base_b)
        win.flush(other)
        mpi.COMM_WORLD.barrier()
        return win.region(base_a)[:2].tolist(), win.region(base_b)[:2].tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == ([1, 1], [2, 2])


def test_dynamic_window_has_no_local(run):
    def program(mpi, ctx):
        win = mpi.win_create_dynamic()
        _ = win.local

    with pytest.raises(MpiError, match="no implicit local segment"):
        mpi_run(program, 1)


# -- shared windows ---------------------------------------------------------


def _shared_node_spec():
    return MachineSpec(name="smp", ranks_per_node=64)


def test_shared_window_direct_peer_stores(run):
    def program(mpi, ctx):
        win = mpi.win_allocate_shared(shape=4, dtype=np.float64)
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            # Direct load/store into a peer's segment: no RMA call at all.
            win.shared_query(1)[:] = 7.5
        mpi.COMM_WORLD.barrier()
        return win.local.tolist()

    _, results = mpi_run(program, 2, spec=_shared_node_spec())
    assert results[1] == [7.5] * 4


def test_shared_window_segments_contiguous(run):
    def program(mpi, ctx):
        win = mpi.win_allocate_shared(shape=4, dtype=np.float64)
        win.local[:] = ctx.rank
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            whole = [win.shared_query(r)[0] for r in range(ctx.nranks)]
            return whole

    _, results = mpi_run(program, 3, spec=_shared_node_spec())
    assert results[0] == [0.0, 1.0, 2.0]


def test_shared_window_rejected_across_nodes(run):
    def program(mpi, ctx):
        mpi.win_allocate_shared(shape=4)

    with pytest.raises(MpiError, match="shared-memory node"):
        mpi_run(program, 2, spec=MachineSpec(name="multi", ranks_per_node=1))


def test_shared_query_on_normal_window_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4)
        win.shared_query(0)

    with pytest.raises(MpiError, match="non-shared"):
        mpi_run(program, 1)


# -- memory models ------------------------------------------------------------


def test_separate_model_requires_sync_to_see_rma(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64, memory_model="separate")
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put(np.full(4, 3.0), target=1)
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 1:
            before = win.local.copy()
            win.sync()
            after = win.local.copy()
            return before.tolist(), after.tolist()

    _, results = mpi_run(program, 2)
    before, after = results[1]
    assert before == [0.0] * 4  # private copy: RMA invisible pre-sync
    assert after == [3.0] * 4


def test_separate_model_local_stores_need_sync_for_rma_readers(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=2, dtype=np.float64, memory_model="separate")
        win.lock_all()
        if ctx.rank == 1:
            win.local[:] = 9.0
            win.sync()  # publish local stores
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            out = np.zeros(2)
            win.rget(out, target=1).wait()
            return out.tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == [9.0, 9.0]


def test_unified_model_sync_is_noop(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=2, dtype=np.float64)
        t0 = ctx.now
        win.sync()
        return ctx.now - t0

    _, results = mpi_run(program, 1)
    assert results[0] == 0.0


# -- per-target locks -----------------------------------------------------------


def test_exclusive_lock_serializes(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        mpi.COMM_WORLD.barrier()
        if ctx.rank > 0:
            win.lock(0, exclusive=True)
            held_at = ctx.now
            old = win.local  # noqa: F841 - placeholder for critical work
            win.put(np.array([float(ctx.rank)]), target=0)
            ctx.compute(1.0)  # hold the lock for a while
            win.unlock(0)
            return held_at
        return None

    _, results = mpi_run(program, 3)
    # Both lockers held it, and their critical sections did not overlap:
    # acquisition times differ by at least the 1s hold.
    t1, t2 = sorted(results[1:])
    assert t2 >= t1 + 1.0


def test_shared_locks_coexist(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        mpi.COMM_WORLD.barrier()
        if ctx.rank > 0:
            win.lock(0, exclusive=False)
            at = ctx.now
            ctx.compute(1.0)
            win.unlock(0)
            return at
        return None

    _, results = mpi_run(program, 3)
    t1, t2 = sorted(results[1:])
    assert t2 < t1 + 1.0  # overlapped: both acquired before the first released


def test_unlock_without_lock_rejected(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1)
        win.unlock(0)

    with pytest.raises(MpiError, match="without holding"):
        mpi_run(program, 1)


# -- MPI_WIN_RFLUSH (§5 extension) ----------------------------------------------


def test_rflush_completes_after_remote_completion(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put(np.full(4, 2.0), target=1)
            req = win.rflush(1)
            req.wait()
            # Remote completion: data must be in target memory.
            assert (win.state.buffers[1] == 2.0).all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    assert results[1] == [2.0] * 4


def test_rflush_all_constant_cost(run):
    """The §5 argument: RFLUSH_ALL software cost must not scale with P."""
    spec = MachineSpec(name="t", mpi_flush_all_per_target=1e-3, mpi_flush_all_idle=1e-6)

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        win.put(np.array([1.0]), target=(ctx.rank + 1) % ctx.nranks)
        t0 = ctx.now
        req = win.rflush_all()
        issue_cost = ctx.now - t0
        req.wait()
        win.unlock_all()
        return issue_cost

    _, small = mpi_run(program, 2, spec=spec)
    _, large = mpi_run(program, 16, spec=spec)
    assert large[0] == pytest.approx(small[0])  # constant, not linear in P
    assert large[0] < 1e-4


def test_rflush_all_ignores_ops_issued_after_the_call(run):
    """rflush_all tracks only the ops pending *at call time*: RMA issued
    after it returns (including to targets that had nothing pending) must
    not delay the request's completion, matching per-target flush
    semantics rather than a whole-origin quiesce."""

    def program(mpi, ctx, extra):
        win = mpi.win_allocate(shape=1 << 16, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        t_done = None
        if ctx.rank == 0:
            win.put(np.ones(1 << 12), target=1)  # 32 KB: rendezvous-sized
            req = win.rflush_all()
            if extra:
                # A much slower op to a target that had nothing pending,
                # issued after the flush call returned.
                win.put(np.ones(1 << 16), target=2)
            req.wait()
            t_done = ctx.now
            win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return t_done

    _, base = mpi_run(program, 3, extra=False)
    _, late = mpi_run(program, 3, extra=True)
    assert late[0] == base[0]


def test_rflush_overlaps_computation(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1024, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            win.put(np.ones(1024), target=1)
            req = win.rflush(1)
            ctx.compute(1.0)  # overlap!
            t0 = ctx.now
            req.wait()
            wait_extra = ctx.now - t0
            assert wait_extra < 1e-6  # the flush finished under the compute
        mpi.COMM_WORLD.barrier()
        win.unlock_all()

    mpi_run(program, 2)


def test_rflush_with_accumulate_and_fetch(run):
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        win.accumulate(np.ones(1, np.int64), target=0, op=SUM)
        win.rflush_all().wait()
        mpi.COMM_WORLD.barrier()
        return int(win.local[0])

    _, results = mpi_run(program, 4)
    assert results[0] == 4
