"""Request helpers: wait_any, wait_all, test_all, statuses."""

import numpy as np
import pytest

from repro.mpi import test_all as req_test_all
from repro.mpi import wait_all, wait_any
from repro.mpi.status import Status

from tests.mpi.conftest import mpi_run


def test_wait_any_returns_earliest_completion(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            fast = np.zeros(1)
            slow = np.zeros(1)
            reqs = [comm.irecv(slow, source=1, tag=1), comm.irecv(fast, source=1, tag=2)]
            idx, status = wait_any(reqs)
            assert idx == 1 and status.tag == 2
            wait_all(reqs)
            return slow[0], fast[0]
        comm.send(np.array([2.0]), dest=0, tag=2)
        ctx.compute(1.0)
        comm.send(np.array([1.0]), dest=0, tag=1)

    _, results = mpi_run(program, 2)
    assert results[0] == (1.0, 2.0)


def test_wait_any_empty_rejected(run):
    with pytest.raises(ValueError, match="empty"):
        def program(mpi, ctx):
            wait_any([])

        mpi_run(program, 1)


def test_test_all_and_statuses(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            bufs = [np.zeros(1) for _ in range(3)]
            reqs = [comm.irecv(b, source=1, tag=t) for t, b in enumerate(bufs)]
            assert not req_test_all(reqs)
            statuses = wait_all(reqs)
            assert req_test_all(reqs)
            assert [s.tag for s in statuses] == [0, 1, 2]
            assert all(s.source == 1 for s in statuses)
            return [b[0] for b in bufs]
        for t in range(3):
            comm.send(np.array([float(t)]), dest=0, tag=t)

    _, results = mpi_run(program, 2)
    assert results[0] == [0.0, 1.0, 2.0]


def test_status_get_count():
    st = Status(source=1, tag=2, count=32)
    assert st.get_count(8) == 4
    assert st.get_count() == 32


def test_request_test_transitions(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            buf = np.zeros(1)
            req = comm.irecv(buf, source=1)
            ok, st = req.test()
            assert not ok and st is None
            req.wait()
            ok, st = req.test()
            assert ok and st.count == 8
        else:
            ctx.compute(0.5)
            comm.send(np.array([1.0]), dest=0)

    mpi_run(program, 2)


def test_probe_then_sized_recv_loop(run):
    """Server pattern: probe for unknown-size messages, allocate, recv."""

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            sizes = []
            for _ in range(ctx.nranks - 1):
                st = comm.probe()
                buf = np.zeros(st.get_count(8))
                comm.recv(buf, source=st.source, tag=st.tag)
                sizes.append(buf.size)
            return sorted(sizes)
        comm.send(np.ones(ctx.rank * 3), dest=0, tag=ctx.rank)

    _, results = mpi_run(program, 4)
    assert results[0] == [3, 6, 9]
