"""Communicator management: dup, split, isolation."""

import numpy as np
import pytest

from repro.mpi import SUM

from tests.mpi.conftest import mpi_run


def test_split_by_parity():
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=ctx.rank % 2)
        return sub.rank, sub.size

    _, results = mpi_run(program, 6)
    for world_rank, (sub_rank, sub_size) in enumerate(results):
        assert sub_size == 3
        assert sub_rank == world_rank // 2


def test_split_key_orders_ranks():
    def program(mpi, ctx):
        # Reverse ordering within one color.
        sub = mpi.COMM_WORLD.split(color=0, key=-ctx.rank)
        return sub.rank

    _, results = mpi_run(program, 4)
    assert results == [3, 2, 1, 0]


def test_split_undefined_color_returns_none():
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=0 if ctx.rank < 2 else -1)
        if sub is None:
            return None
        return sub.size

    _, results = mpi_run(program, 4)
    assert results == [2, 2, None, None]


def test_subcomm_collectives_are_isolated():
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=ctx.rank % 2)
        send = np.array([1.0])
        recv = np.zeros(1)
        sub.allreduce(send, recv, SUM)
        return recv[0]

    _, results = mpi_run(program, 8)
    assert all(r == pytest.approx(4.0) for r in results)


def test_subcomm_p2p_rank_translation():
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=ctx.rank // 2)  # pairs
        buf = np.zeros(1)
        if sub.rank == 0:
            sub.send(np.array([float(ctx.rank)]), dest=1)
            return None
        sub.recv(buf, source=0)
        return buf[0]

    _, results = mpi_run(program, 6)
    assert results[1::2] == [0.0, 2.0, 4.0]


def test_dup_isolates_traffic():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        dup = comm.dup()
        if ctx.rank == 0:
            comm.send(np.array([1.0]), dest=1, tag=5)
            dup.send(np.array([2.0]), dest=1, tag=5)
        else:
            buf_dup = np.zeros(1)
            dup.recv(buf_dup, source=0, tag=5)
            buf = np.zeros(1)
            comm.recv(buf, source=0, tag=5)
            return buf[0], buf_dup[0]

    _, results = mpi_run(program, 2)
    assert results[1] == (1.0, 2.0)


def test_window_on_subcommunicator():
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=ctx.rank % 2)
        win = mpi.win_allocate(shape=1, dtype=np.float64, comm=sub)
        win.lock_all()
        win.put(np.array([float(ctx.rank)]), target=(sub.rank + 1) % sub.size)
        win.flush_all()
        sub.barrier()
        win.unlock_all()
        return win.local[0]

    _, results = mpi_run(program, 4)
    # Even subcomm: world ranks 0,2; odd: 1,3. Neighbor writes its world rank.
    assert results == [2.0, 3.0, 0.0, 1.0]


def test_nested_splits():
    def program(mpi, ctx):
        half = mpi.COMM_WORLD.split(color=ctx.rank // 4)
        quarter = half.split(color=half.rank // 2)
        return quarter.size, quarter.rank

    _, results = mpi_run(program, 8)
    assert all(size == 2 for size, _ in results)
    assert [rank for _, rank in results] == [0, 1, 0, 1, 0, 1, 0, 1]
