"""Point-to-point semantics: matching, wildcards, protocols, ordering."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.util.errors import DeadlockError, MpiError

from tests.mpi.conftest import mpi_run


def test_blocking_send_recv_roundtrip(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.arange(10, dtype=np.int64), dest=1, tag=5)
            return None
        buf = np.empty(10, np.int64)
        status = comm.recv(buf, source=0, tag=5)
        assert status.source == 0 and status.tag == 5
        assert status.count == 80
        return buf.tolist()

    _, results = run(program, 2)
    assert results[1] == list(range(10))


def test_send_before_recv_parks_in_unexpected_queue(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.array([7.5]), dest=1, tag=1)
        else:
            ctx.compute(1.0)  # receiver is late: message waits unexpected
            buf = np.zeros(1)
            comm.recv(buf, source=0, tag=1)
            return buf[0]

    _, results = run(program, 2)
    assert results[1] == 7.5


def test_recv_before_send_blocks_until_arrival(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            ctx.compute(2.0)
            comm.send(np.array([1]), dest=1)
        else:
            buf = np.zeros(1, np.int64)
            comm.recv(buf, source=0)
            assert ctx.now >= 2.0
            return int(buf[0])

    _, results = run(program, 2)
    assert results[1] == 1


def test_any_source_any_tag(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            got = []
            buf = np.zeros(1, np.int64)
            for _ in range(2):
                st = comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                got.append((st.source, st.tag, int(buf[0])))
            return sorted(got)
        comm.send(np.array([ctx.rank * 100]), dest=0, tag=ctx.rank)
        return None

    _, results = run(program, 3)
    assert results[0] == [(1, 1, 100), (2, 2, 200)]


def test_tag_selectivity_leaves_other_messages(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.array([1]), dest=1, tag=10)
            comm.send(np.array([2]), dest=1, tag=20)
        else:
            ctx.compute(1.0)  # let both arrive
            buf = np.zeros(1, np.int64)
            comm.recv(buf, source=0, tag=20)
            assert buf[0] == 2
            comm.recv(buf, source=0, tag=10)
            assert buf[0] == 1

    run(program, 2)


def test_message_order_preserved_same_src_tag(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            for i in range(8):
                comm.send(np.array([i]), dest=1, tag=3)
        else:
            got = []
            buf = np.zeros(1, np.int64)
            for _ in range(8):
                comm.recv(buf, source=0, tag=3)
                got.append(int(buf[0]))
            return got

    _, results = run(program, 2)
    assert results[1] == list(range(8))


def test_rendezvous_large_message(run):
    n = 1 << 16  # 512 KB of float64 > eager threshold

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.arange(n, dtype=np.float64), dest=1)
        else:
            buf = np.zeros(n)
            comm.recv(buf, source=0)
            return float(buf.sum())

    _, results = run(program, 2)
    assert results[1] == pytest.approx(n * (n - 1) / 2)


def test_rendezvous_sender_blocks_until_receiver_posts(run):
    n = 1 << 16

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.ones(n), dest=1)
            return ctx.now
        ctx.compute(5.0)
        buf = np.zeros(n)
        comm.recv(buf, source=0)
        return ctx.now

    _, results = run(program, 2)
    assert results[0] > 5.0  # blocking send couldn't finish before recv posted


def test_eager_send_completes_locally_before_recv(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.ones(4), dest=1)
            t_send_done = ctx.now
            assert t_send_done < 1.0  # did not wait for the late receiver
        else:
            ctx.compute(5.0)
            buf = np.zeros(4)
            comm.recv(buf, source=0)

    run(program, 2)


def test_isend_irecv_overlap(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        other = 1 - ctx.rank
        recv = np.zeros(8)
        rreq = comm.irecv(recv, source=other)
        sreq = comm.isend(np.full(8, float(ctx.rank)), dest=other)
        sreq.wait()
        rreq.wait()
        return float(recv[0])

    _, results = run(program, 2)
    assert results == [1.0, 0.0]


def test_isend_buffer_snapshot_at_call(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            buf = np.array([42.0])
            req = comm.isend(buf, dest=1)
            buf[0] = -1.0  # must not affect the message
            req.wait()
        else:
            buf = np.zeros(1)
            comm.recv(buf, source=0)
            return buf[0]

    _, results = run(program, 2)
    assert results[1] == 42.0


def test_rendezvous_sender_reuse_after_wait(run):
    """Regression: the rendezvous payload rides as a live view of the send
    buffer, so the send request must not complete until the payload has been
    copied into the posted receive buffer — a sender that scribbles on its
    buffer the moment wait() returns must not corrupt the message."""
    n = 1 << 16  # > eager threshold: rendezvous protocol

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            buf = np.arange(n, dtype=np.float64)
            req = comm.isend(buf, dest=1)
            req.wait()
            buf[:] = -1.0  # legal reuse: the send completed
        else:
            out = np.zeros(n)
            comm.recv(out, source=0)
            return float(out.sum())

    _, results = run(program, 2)
    assert results[1] == pytest.approx(n * (n - 1) / 2)


def test_sendrecv_exchange_ring(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        right = (ctx.rank + 1) % ctx.nranks
        left = (ctx.rank - 1) % ctx.nranks
        recv = np.zeros(1, np.int64)
        comm.sendrecv(np.array([ctx.rank]), right, recv, left)
        return int(recv[0])

    _, results = run(program, 5)
    assert results == [4, 0, 1, 2, 3]


def test_probe_reports_size_without_consuming(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.arange(5, dtype=np.int32), dest=1, tag=9)
        else:
            st = comm.probe(source=0, tag=9)
            assert st.count == 20
            buf = np.zeros(st.get_count(4), np.int32)
            comm.recv(buf, source=0, tag=9)
            return buf.tolist()

    _, results = run(program, 2)
    assert results[1] == [0, 1, 2, 3, 4]


def test_iprobe_nonblocking(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 1:
            ok, _ = comm.iprobe(source=0)
            assert not ok
            ctx.compute(1.0)
            ok, st = comm.iprobe(source=0)
            assert ok and st.count == 8
            buf = np.zeros(1)
            comm.recv(buf, source=0)
        else:
            comm.send(np.array([3.0]), dest=1)

    run(program, 2)


def test_truncation_raises(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.zeros(10), dest=1)
        else:
            buf = np.zeros(1)
            comm.recv(buf, source=0)

    with pytest.raises(MpiError, match="truncation"):
        mpi_run(program, 2)


def test_unmatched_recv_deadlocks_with_diagnostic(run):
    def program(mpi, ctx):
        if ctx.rank == 0:
            buf = np.zeros(1)
            mpi.COMM_WORLD.recv(buf, source=1, tag=7)

    with pytest.raises(DeadlockError):
        mpi_run(program, 2)


def test_self_send_recv(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        req = comm.isend(np.array([ctx.rank + 0.5]), dest=ctx.rank, tag=2)
        buf = np.zeros(1)
        comm.recv(buf, source=ctx.rank, tag=2)
        req.wait()
        return buf[0]

    _, results = run(program, 3)
    assert results == [0.5, 1.5, 2.5]


def test_bad_peer_rank_raises(run):
    def program(mpi, ctx):
        mpi.COMM_WORLD.send(np.zeros(1), dest=99)

    with pytest.raises(MpiError, match="out of range"):
        mpi_run(program, 2)


def test_noncontiguous_buffer_rejected(run):
    def program(mpi, ctx):
        arr = np.zeros((4, 4))[:, 0]  # strided view
        mpi.COMM_WORLD.send(arr, dest=0)

    with pytest.raises(MpiError, match="contiguous"):
        mpi_run(program, 1)


def test_double_init_rejected(run):
    def program(mpi, ctx):
        from repro.mpi.world import MpiWorld

        MpiWorld.get(ctx.cluster).init(ctx)

    with pytest.raises(MpiError, match="twice"):
        mpi_run(program, 1)


def test_mixed_protocol_ordering_preserved(run):
    """A small eager message sent after a big rendezvous one must not
    overtake it when both match the same receive pattern."""
    n = 1 << 16

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            r1 = comm.isend(np.full(n, 1.0), dest=1, tag=4)
            r2 = comm.isend(np.array([2.0]), dest=1, tag=4)
            r1.wait()
            r2.wait()
        else:
            big = np.zeros(n)
            small = np.zeros(1)
            st1 = comm.recv(big, source=0, tag=4)
            st2 = comm.recv(small, source=0, tag=4)
            assert st1.count == n * 8
            assert st2.count == 8
            return big[0], small[0]

    _, results = run(program, 2)
    assert results[1] == (1.0, 2.0)
