"""RMA semantics: windows, one-sided ops, atomics, flush behaviour."""

import numpy as np
import pytest

from repro.mpi import NO_OP, REPLACE, SUM
from repro.sim.network import MachineSpec
from repro.util.errors import MpiError

from tests.mpi.conftest import mpi_run


def test_win_allocate_symmetric_and_zeroed():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=16, dtype=np.float64)
        assert win.local.size == 16
        assert (win.local == 0).all()
        return win.win_id

    _, results = mpi_run(program, 4)
    assert len(set(results)) == 1  # one shared window


def test_put_visible_after_flush_and_barrier():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        target = (ctx.rank + 1) % ctx.nranks
        win.put(np.full(4, float(ctx.rank)), target)
        win.flush(target)
        mpi.COMM_WORLD.barrier()
        left = (ctx.rank - 1) % ctx.nranks
        assert (win.local == float(left)).all()
        win.unlock_all()
        return True

    _, results = mpi_run(program, 4)
    assert all(results)


def test_put_with_offset():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=8, dtype=np.int64)
        win.lock_all()
        if ctx.rank == 0:
            win.put(np.array([5, 6], dtype=np.int64), target=1, offset=3)
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    assert results[1] == [0, 0, 0, 5, 6, 0, 0, 0]


def test_get_reads_remote_data():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.local[:] = ctx.rank * 10.0
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        buf = np.zeros(4)
        src = (ctx.rank + 1) % ctx.nranks
        win.rget(buf, src).wait()
        win.unlock_all()
        return buf[0]

    _, results = mpi_run(program, 3)
    assert results == [10.0, 20.0, 0.0]


def test_rput_request_is_local_completion_only():
    """The request completes locally; remote visibility still needs a flush."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 0:
            req = win.rput(np.array([3.0]), target=1)
            req.wait()
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local[0]

    _, results = mpi_run(program, 2)
    assert results[1] == 3.0


def test_flush_waits_for_remote_completion():
    """After flush(target), the data must be in target memory (no barrier)."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 0:
            win.put(np.array([1.0]), target=1)
            win.flush(1)
            t_flush = ctx.now
            # Tell rank 1 (two-sided) that the put is complete.
            mpi.COMM_WORLD.send(np.array([t_flush]), dest=1)
        else:
            buf = np.zeros(1)
            mpi.COMM_WORLD.recv(buf, source=0)
            assert win.local[0] == 1.0
        win.unlock_all()

    mpi_run(program, 2)


def test_flush_local_buffers_rendezvous_put_payload():
    """MPI_WIN_FLUSH_LOCAL grants buffer-reuse rights while the op may still
    be in flight; a rendezvous PUT payload riding as a live view must be
    privatized by the library so reuse cannot corrupt the transfer."""
    n = 1 << 14  # 128 KB of float64: above the eager threshold

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=n, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            buf = np.arange(n, dtype=np.float64)
            win.put(buf, target=1)
            win.flush_local(1)
            buf[:] = -1.0  # legal: flush_local granted local completion
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return float(win.local.sum())

    _, results = mpi_run(program, 2)
    assert results[1] == pytest.approx(n * (n - 1) / 2)


def test_flush_local_all_buffers_rendezvous_put_payloads():
    n = 1 << 14

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=n, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            buf = np.full(n, 7.0)
            win.put(buf, target=1)
            win.flush_local_all()
            buf[:] = 0.0
            win.flush_all()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return float(win.local[0]), float(win.local[-1])

    _, results = mpi_run(program, 2)
    assert results[1] == (7.0, 7.0)


def test_accumulate_sum_from_all_ranks():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        win.accumulate(np.array([float(ctx.rank + 1)]), target=0, op=SUM)
        win.flush(0)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local[0]

    _, results = mpi_run(program, 4)
    assert results[0] == pytest.approx(1 + 2 + 3 + 4)


def test_accumulate_replace():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=2, dtype=np.float64)
        win.lock_all()
        if ctx.rank == 1:
            win.accumulate(np.array([7.0, 8.0]), target=0, op=REPLACE)
            win.flush(0)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return win.local.tolist()

    _, results = mpi_run(program, 2)
    assert results[0] == [7.0, 8.0]


def test_fetch_and_op_returns_old_value():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        if ctx.rank == 0:
            win.local[0] = 100
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        old = np.zeros(1, np.int64)
        if ctx.rank == 1:
            win.fetch_and_op(np.array([5], dtype=np.int64), old, target=0, op=SUM)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        if ctx.rank == 1:
            return int(old[0])
        return int(win.local[0])

    _, results = mpi_run(program, 2)
    assert results == [105, 100]


def test_fetch_and_op_noop_is_pure_fetch():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.local[0] = ctx.rank * 2.0
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        old = np.zeros(1)
        win.fetch_and_op(np.zeros(1), old, target=(ctx.rank + 1) % ctx.nranks, op=NO_OP)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return old[0], win.local[0]

    _, results = mpi_run(program, 2)
    assert results[0] == (2.0, 0.0)
    assert results[1] == (0.0, 2.0)


def test_compare_and_swap_success_and_failure():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        result = np.zeros(1, np.int64)
        if ctx.rank == 1:
            old = win.compare_and_swap(0, 42, result, target=0)
            assert old == 0  # matched: swap happened
            old = win.compare_and_swap(0, 99, result, target=0)
            assert old == 42  # mismatch: no swap
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return int(win.local[0])

    _, results = mpi_run(program, 2)
    assert results[0] == 42


def test_atomic_increments_are_not_lost():
    """Every rank increments rank 0's counter N times; total must be exact."""
    n = 10

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        win.lock_all()
        one = np.ones(1, np.int64)
        old = np.zeros(1, np.int64)
        for _ in range(n):
            win.fetch_and_op(one, old, target=0, op=SUM)
        win.flush(0)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return int(win.local[0])

    _, results = mpi_run(program, 5)
    assert results[0] == 5 * n


def test_flush_all_charges_linear_cost_when_dirty():
    spec = MachineSpec(name="t", mpi_flush_all_per_target=1e-3, mpi_flush_all_idle=1e-9)

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        t0 = ctx.now
        win.flush_all()  # idle epoch: cheap
        idle_cost = ctx.now - t0
        win.put(np.array([1.0]), target=(ctx.rank + 1) % ctx.nranks)
        t1 = ctx.now
        win.flush_all()  # active epoch: walks every rank
        active_cost = ctx.now - t1
        win.unlock_all()
        return idle_cost, active_cost

    _, results = mpi_run(program, 8, spec=spec)
    for idle_cost, active_cost in results:
        assert idle_cost < 1e-6
        assert active_cost >= 8e-3


def test_flush_all_cost_scales_with_group_size():
    spec = MachineSpec(name="t", mpi_flush_all_per_target=1e-3)

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        win.put(np.array([1.0]), target=(ctx.rank + 1) % ctx.nranks)
        t0 = ctx.now
        win.flush_all()
        cost = ctx.now - t0
        win.unlock_all()
        return cost

    _, small = mpi_run(program, 2, spec=spec)
    _, large = mpi_run(program, 16, spec=spec)
    assert large[0] / small[0] >= 4.0


def test_sendrecv_backed_rma_is_slower():
    base = MachineSpec(name="hw")
    cray = base.with_overrides(mpi_rma_over_sendrecv=True)

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            for _ in range(100):
                win.put(np.array([1.0]), target=1)
                win.flush(1)
        elapsed = ctx.now - t0
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return elapsed

    _, hw = mpi_run(program, 2, spec=base)
    _, sr = mpi_run(program, 2, spec=cray)
    assert sr[0] > hw[0] * 1.5


def test_out_of_bounds_rma_raises():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=4, dtype=np.float64)
        win.lock_all()
        win.put(np.zeros(4), target=0, offset=2)

    with pytest.raises(MpiError, match="outside target window"):
        mpi_run(program, 1)


def test_window_free_releases_memory():
    def program(mpi, ctx):
        before = ctx.memory.rank_mb(ctx.rank, prefix="mpi/win")
        win = mpi.win_allocate(nbytes=1024 * 1024)
        during = ctx.memory.rank_mb(ctx.rank, prefix="mpi/win")
        win.free()
        after = ctx.memory.rank_mb(ctx.rank, prefix="mpi/win")
        return before, during, after

    _, results = mpi_run(program, 2)
    for before, during, after in results:
        assert before == 0.0
        assert during == pytest.approx(1.0)
        assert after == 0.0


def test_two_windows_are_independent():
    def program(mpi, ctx):
        win_a = mpi.win_allocate(shape=1, dtype=np.float64)
        win_b = mpi.win_allocate(shape=1, dtype=np.float64)
        win_a.lock_all()
        win_b.lock_all()
        if ctx.rank == 0:
            win_a.put(np.array([1.0]), target=1)
            win_b.put(np.array([2.0]), target=1)
            win_a.flush(1)
            win_b.flush(1)
        mpi.COMM_WORLD.barrier()
        return win_a.local[0], win_b.local[0]

    _, results = mpi_run(program, 2)
    assert results[1] == (1.0, 2.0)


def test_unlock_all_without_lock_raises():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.unlock_all()

    with pytest.raises(MpiError, match="without lock_all"):
        mpi_run(program, 1)


def test_dtype_mismatch_on_rget_raises():
    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.float64)
        win.lock_all()
        win.rget(np.zeros(1, np.int32), target=0)

    with pytest.raises(MpiError, match="dtype"):
        mpi_run(program, 1)
