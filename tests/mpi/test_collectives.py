"""Collective correctness against NumPy references, at several sizes."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM

from tests.mpi.conftest import mpi_run

SIZES = [1, 2, 3, 4, 5, 8, 13, 16]


@pytest.mark.parametrize("nranks", SIZES)
def test_barrier_synchronizes_clocks(nranks):
    def program(mpi, ctx):
        ctx.compute(float(ctx.rank))  # ranks arrive at different times
        mpi.COMM_WORLD.barrier()
        return ctx.now

    _, results = mpi_run(program, nranks)
    # Nobody leaves the barrier before the slowest rank arrived.
    assert min(results) >= nranks - 1


@pytest.mark.parametrize("nranks", SIZES)
def test_bcast_from_various_roots(nranks):
    def program(mpi, ctx, root):
        buf = (
            np.arange(7, dtype=np.float64) * 3
            if ctx.rank == root
            else np.zeros(7)
        )
        mpi.COMM_WORLD.bcast(buf, root=root)
        return buf.tolist()

    for root in {0, nranks - 1, nranks // 2}:
        _, results = mpi_run(program, nranks, root=root)
        expected = (np.arange(7) * 3.0).tolist()
        assert all(r == expected for r in results)


@pytest.mark.parametrize("nranks", SIZES)
def test_reduce_sum(nranks):
    def program(mpi, ctx):
        send = np.full(5, float(ctx.rank + 1))
        recv = np.zeros(5)
        mpi.COMM_WORLD.reduce(send, recv, SUM, root=0)
        return recv[0] if ctx.rank == 0 else None

    _, results = mpi_run(program, nranks)
    assert results[0] == pytest.approx(nranks * (nranks + 1) / 2)


@pytest.mark.parametrize("nranks", SIZES)
@pytest.mark.parametrize("op,npop", [(SUM, np.sum), (MAX, np.max), (MIN, np.min), (PROD, np.prod)])
def test_allreduce_matches_numpy(nranks, op, npop):
    def program(mpi, ctx):
        send = np.array([float(ctx.rank + 1), float(ctx.rank % 3)])
        recv = np.zeros(2)
        mpi.COMM_WORLD.allreduce(send, recv, op)
        return recv.tolist()

    _, results = mpi_run(program, nranks)
    contributions = np.array(
        [[r + 1.0, float(r % 3)] for r in range(nranks)]
    )
    expected = npop(contributions, axis=0).tolist()
    for r in results:
        assert r == pytest.approx(expected)


@pytest.mark.parametrize("nranks", SIZES)
def test_alltoall_is_global_transpose(nranks):
    def program(mpi, ctx):
        send = np.array(
            [[ctx.rank * 100 + peer] for peer in range(ctx.nranks)], dtype=np.int64
        )
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.alltoall(send, recv)
        return recv[:, 0].tolist()

    _, results = mpi_run(program, nranks)
    for r in range(nranks):
        assert results[r] == [src * 100 + r for src in range(nranks)]


@pytest.mark.parametrize("nranks", [2, 3, 4, 7])
def test_alltoallv_uneven_chunks(nranks):
    def program(mpi, ctx):
        # Rank r sends r+peer+1 elements to peer.
        send = [
            np.full(ctx.rank + peer + 1, ctx.rank * 10 + peer, dtype=np.int64)
            for peer in range(ctx.nranks)
        ]
        recv = [
            np.zeros(src + ctx.rank + 1, dtype=np.int64) for src in range(ctx.nranks)
        ]
        mpi.COMM_WORLD.alltoallv(send, recv)
        return [c.tolist() for c in recv]

    _, results = mpi_run(program, nranks)
    for r in range(nranks):
        for src in range(nranks):
            assert results[r][src] == [src * 10 + r] * (src + r + 1)


@pytest.mark.parametrize("nranks", SIZES)
def test_allgather_collects_all_blocks(nranks):
    def program(mpi, ctx):
        send = np.array([ctx.rank * 2.0, ctx.rank * 2.0 + 1])
        recv = np.zeros((ctx.nranks, 2))
        mpi.COMM_WORLD.allgather(send, recv)
        return recv.tolist()

    _, results = mpi_run(program, nranks)
    expected = [[r * 2.0, r * 2.0 + 1] for r in range(nranks)]
    for r in results:
        assert r == expected


@pytest.mark.parametrize("nranks", SIZES)
def test_gather_and_scatter(nranks):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        send = np.array([float(ctx.rank)])
        recv = np.zeros((ctx.nranks, 1)) if ctx.rank == 0 else None
        comm.gather(send, recv, root=0)
        if ctx.rank == 0:
            assert recv[:, 0].tolist() == [float(r) for r in range(ctx.nranks)]
            outgoing = recv * 10
        else:
            outgoing = None
        mine = np.zeros(1)
        comm.scatter(outgoing, mine, root=0)
        return mine[0]

    _, results = mpi_run(program, nranks)
    assert results == [r * 10.0 for r in range(nranks)]


@pytest.mark.parametrize("nranks", [2, 4, 8])
def test_reduce_scatter_block(nranks):
    def program(mpi, ctx):
        send = np.array([[float(ctx.rank + peer)] for peer in range(ctx.nranks)])
        recv = np.zeros(1)
        mpi.COMM_WORLD.reduce_scatter_block(send, recv, SUM)
        return recv[0]

    _, results = mpi_run(program, nranks)
    for r in range(nranks):
        assert results[r] == pytest.approx(sum(src + r for src in range(nranks)))


def test_consecutive_collectives_do_not_cross_match():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        a = np.array([1.0]) if ctx.rank == 0 else np.zeros(1)
        b = np.array([2.0]) if ctx.rank == 0 else np.zeros(1)
        comm.bcast(a, root=0)
        comm.bcast(b, root=0)
        return a[0], b[0]

    _, results = mpi_run(program, 4)
    assert all(r == (1.0, 2.0) for r in results)


def test_collectives_do_not_consume_user_messages():
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        if ctx.rank == 0:
            comm.send(np.array([9.0]), dest=1, tag=1)
        comm.barrier()
        if ctx.rank == 1:
            buf = np.zeros(1)
            comm.recv(buf, source=0, tag=1)
            return buf[0]

    _, results = mpi_run(program, 2)
    assert results[1] == 9.0


def test_large_alltoall_uses_rendezvous():
    n = 1 << 14  # per-pair chunk: 128 KB > eager threshold

    def program(mpi, ctx):
        send = np.full((ctx.nranks, n), float(ctx.rank))
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.alltoall(send, recv)
        return float(recv[:, 0].sum())

    _, results = mpi_run(program, 4)
    assert all(r == pytest.approx(0 + 1 + 2 + 3) for r in results)


def test_allreduce_shape_mismatch_raises():
    def program(mpi, ctx):
        mpi.COMM_WORLD.allreduce(np.zeros(3), np.zeros(4))

    with pytest.raises(Exception, match="differ"):
        mpi_run(program, 2)


# ---------------------------------------------------------------------------
# Bruck short-message alltoall (the >= 32-rank small-block algorithm)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nranks", [32, 33, 64])
def test_bruck_alltoall_is_global_transpose(nranks):
    """Above the Bruck thresholds the log-round algorithm must still place
    every block exactly — including non-power-of-two sizes."""

    def program(mpi, ctx):
        send = np.array(
            [[ctx.rank * 1000 + peer] for peer in range(ctx.nranks)],
            dtype=np.int64,
        )
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.alltoall(send, recv)
        return recv[:, 0].tolist()

    _, results = mpi_run(program, nranks)
    for r in range(nranks):
        assert results[r] == [src * 1000 + r for src in range(nranks)]


def test_bruck_sends_log_rounds_not_pairwise():
    """At 64 ranks with 8-byte blocks, each rank sends ceil(log2 64) = 6
    aggregated messages instead of 63 pairwise ones. The fabric message
    count is the observable."""
    import math

    def program(mpi, ctx, n):
        send = np.zeros((ctx.nranks, n), dtype=np.int64)
        recv = np.zeros_like(send)
        base = ctx.fabric.messages_sent
        mpi.COMM_WORLD.alltoall(send, recv)
        return ctx.fabric.messages_sent - base

    size = 64
    # Small blocks: Bruck (every rank participates in log2(P) rounds).
    cluster, _ = mpi_run(program, size, n=1)
    small_msgs = cluster.fabric.messages_sent
    # Large blocks: pairwise (P-1 sends per rank).
    cluster, _ = mpi_run(program, size, n=1024)
    large_msgs = cluster.fabric.messages_sent
    assert small_msgs <= size * (math.ceil(math.log2(size)) + 2)
    assert large_msgs >= size * (size - 1)
    assert small_msgs * 5 < large_msgs


def test_bruck_and_pairwise_agree_numerically():
    """Force both algorithms on the same data (block size straddles the
    threshold) and compare the received matrices element-for-element."""

    def program(mpi, ctx, n):
        rng = np.random.default_rng(100 + ctx.rank)
        send = rng.integers(0, 1 << 30, size=(ctx.nranks, n)).astype(np.int64)
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.alltoall(send, recv)
        return send, recv

    size = 40
    _, small = mpi_run(program, size, n=4)    # 32 B blocks: Bruck
    _, large = mpi_run(program, size, n=512)  # 4 KB blocks: pairwise
    for results in (small, large):
        sends = [s for s, _ in results]
        for dst in range(size):
            _, recv = results[dst]
            expect = np.stack([sends[src][dst] for src in range(size)])
            np.testing.assert_array_equal(recv, expect)
