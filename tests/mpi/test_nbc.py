"""Nonblocking collectives (MPI-3): correctness and overlap semantics."""

import numpy as np
import pytest

from repro.mpi import SUM, wait_all

from tests.mpi.conftest import mpi_run


def test_ibarrier_completes_after_all_enter(run):
    def program(mpi, ctx):
        ctx.compute(float(ctx.rank))
        req = mpi.COMM_WORLD.ibarrier()
        req.wait()
        return ctx.now

    _, results = mpi_run(program, 4)
    assert min(results) >= 3.0


def test_ibarrier_overlaps_computation(run):
    """Work done while the barrier is outstanding must overlap: total time
    is max(compute, barrier), not the sum."""

    def program(mpi, ctx):
        if ctx.rank == 0:
            req = mpi.COMM_WORLD.ibarrier()
            ctx.compute(5.0)  # overlapped with peers arriving
            req.wait()
            return ctx.now
        ctx.compute(1.0)
        mpi.COMM_WORLD.ibarrier().wait()
        return ctx.now

    _, results = mpi_run(program, 3)
    assert results[0] == pytest.approx(5.0, rel=0.01)  # not 5 + barrier wait


def test_ibcast_delivers(run):
    def program(mpi, ctx):
        buf = np.arange(6, dtype=np.float64) if ctx.rank == 2 else np.zeros(6)
        req = mpi.COMM_WORLD.ibcast(buf, root=2)
        req.wait()
        return buf.tolist()

    _, results = mpi_run(program, 4)
    assert all(r == list(range(6)) for r in results)


def test_iallreduce_matches_blocking(run):
    def program(mpi, ctx):
        send = np.array([float(ctx.rank + 1)])
        recv_nb = np.zeros(1)
        recv_b = np.zeros(1)
        req = mpi.COMM_WORLD.iallreduce(send, recv_nb, SUM)
        mpi.COMM_WORLD.allreduce(send, recv_b, SUM)
        req.wait()
        return recv_nb[0], recv_b[0]

    _, results = mpi_run(program, 4)
    for nb, b in results:
        assert nb == b == pytest.approx(10.0)


def test_ialltoall_transpose(run):
    def program(mpi, ctx):
        send = np.array([[ctx.rank * 10 + j] for j in range(ctx.nranks)], dtype=np.int64)
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.ialltoall(send, recv).wait()
        return recv[:, 0].tolist()

    _, results = mpi_run(program, 4)
    for r in range(4):
        assert results[r] == [src * 10 + r for src in range(4)]


def test_iallgather(run):
    def program(mpi, ctx):
        send = np.array([float(ctx.rank)])
        recv = np.zeros((ctx.nranks, 1))
        mpi.COMM_WORLD.iallgather(send, recv).wait()
        return recv[:, 0].tolist()

    _, results = mpi_run(program, 3)
    assert all(r == [0.0, 1.0, 2.0] for r in results)


def test_ireduce(run):
    def program(mpi, ctx):
        send = np.full(2, float(ctx.rank))
        recv = np.zeros(2)
        mpi.COMM_WORLD.ireduce(send, recv, SUM, root=1).wait()
        return recv[0] if ctx.rank == 1 else None

    _, results = mpi_run(program, 4)
    assert results[1] == pytest.approx(6.0)


def test_multiple_outstanding_nbcs_fifo(run):
    """Several NBCs may be in flight; they complete in issue order."""

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        a = np.array([1.0])
        ra = np.zeros(1)
        b = np.array([2.0])
        rb = np.zeros(1)
        reqs = [comm.iallreduce(a, ra, SUM), comm.iallreduce(b, rb, SUM), comm.ibarrier()]
        wait_all(reqs)
        return ra[0], rb[0]

    _, results = mpi_run(program, 4)
    assert all(r == (4.0, 8.0) for r in results)


def test_nbc_does_not_disturb_blocking_collectives(run):
    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        send = np.array([1.0])
        recv_nb = np.zeros(1)
        req = comm.iallreduce(send, recv_nb, SUM)
        # Interleave a blocking broadcast while the NBC is outstanding.
        buf = np.array([7.0]) if ctx.rank == 0 else np.zeros(1)
        comm.bcast(buf, root=0)
        req.wait()
        return buf[0], recv_nb[0]

    _, results = mpi_run(program, 4)
    assert all(r == (7.0, 4.0) for r in results)


def test_nbc_on_subcommunicator(run):
    def program(mpi, ctx):
        sub = mpi.COMM_WORLD.split(color=ctx.rank % 2)
        send = np.array([1.0])
        recv = np.zeros(1)
        sub.iallreduce(send, recv, SUM).wait()
        return recv[0]

    _, results = mpi_run(program, 6)
    assert all(r == 3.0 for r in results)


def test_nbc_on_different_comms_in_different_orders(run):
    """NBCs on distinct communicators may be issued in different orders on
    different ranks (each comm has its own agent)."""

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        dup = comm.dup()
        r1 = np.zeros(1)
        r2 = np.zeros(1)
        send = np.array([1.0])
        if ctx.rank % 2 == 0:
            reqs = [comm.iallreduce(send, r1, SUM), dup.iallreduce(send, r2, SUM)]
        else:
            reqs = [dup.iallreduce(send, r2, SUM), comm.iallreduce(send, r1, SUM)]
        wait_all(reqs)
        return r1[0], r2[0]

    _, results = mpi_run(program, 4)
    assert all(r == (4.0, 4.0) for r in results)
