"""Trace persistence: round-trip fidelity, versioning, fault policies."""

import json

import pytest

from repro.ir import Trace, TraceVersionError, replay
from repro.ir import record as ir_record
from repro.ir.replay import ReplayError
from repro.sim.faults import FaultPlan

from tests.ir.conftest import APPS, record_run
from repro.caf import run_caf
from repro.platforms import PLATFORMS


def test_save_load_replay_round_trip(tmp_path):
    run, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    npz_path, json_path = trace.save(tmp_path / "rt")
    assert npz_path.exists() and json_path.exists()

    loaded = Trace.load(tmp_path / "rt")
    assert loaded.manifest == trace.manifest
    assert loaded.nops == trace.nops
    assert loaded.nchains == trace.nchains

    a, b = replay(trace), replay(loaded)
    assert b.makespan == a.makespan == run.elapsed
    assert b.op_totals == a.op_totals


def test_version_mismatch_is_rejected(tmp_path):
    _, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    trace.save(tmp_path / "old")
    manifest = json.loads((tmp_path / "old.json").read_text())
    manifest["ir_version"] = 999
    (tmp_path / "old.json").write_text(json.dumps(manifest))
    with pytest.raises(TraceVersionError, match="version 999"):
        Trace.load(tmp_path / "old")


def test_fault_injected_runs_are_skipped_not_recorded(tmp_path):
    """Pattern-changing faults invalidate a trace: run_caf runs them live
    but writes no artifact (the recording stays armed for later runs)."""
    program, kwargs = APPS["fft"]
    out = tmp_path / "traces"
    ir_record.start(out)
    try:
        run_caf(program, 4, PLATFORMS["laptop"], backend="mpi",
                faults=FaultPlan(seed=3, delay_rate=0.2, delay_jitter=1e-6),
                **kwargs)
        assert ir_record.last_trace() is None
        run_caf(program, 4, PLATFORMS["laptop"], backend="mpi", **kwargs)
        assert ir_record.last_trace() is not None
    finally:
        written = ir_record.stop()
    assert len(written) == 2  # one .npz + one .json, fault run skipped
    assert len(list(out.glob("run-*"))) == 2


def test_replay_rejects_pattern_changing_fault_plans(tmp_path):
    _, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    with pytest.raises(ReplayError, match="drop-free"):
        replay(trace, faults=FaultPlan(seed=1, drop_rate=0.01))
    with pytest.raises(ReplayError, match="crashes"):
        replay(trace, faults=FaultPlan(seed=1, crashes=[(0, 1e-3)]))


def test_replay_applies_drop_free_delay_plan(tmp_path):
    run, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    delayed = replay(
        trace, faults=FaultPlan(seed=5, delay_rate=1.0, delay_jitter=1e-5)
    )
    assert delayed.makespan > run.elapsed
