"""Shared recording helpers for the IR test suite."""

import pytest

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import run_fft
from repro.apps.randomaccess import run_randomaccess
from repro.caf import run_caf
from repro.ir import record as ir_record
from repro.platforms import PLATFORMS

#: (label, program, program kwargs) — small enough for a sub-second run,
#: structured enough to exercise transfers, collectives, and sync ops.
APPS = {
    "ra": (run_randomaccess,
           dict(table_bits_per_image=8, updates_per_image=256, batches=2)),
    "fft": (run_fft, dict(m=256)),
    "cgpop": (run_cgpop, dict(ny=16, nx=8, max_iter=40)),
}


def record_run(tmp_path, app, backend, platform, nranks=4):
    """Run one instrumented app with recording on; return (run, trace)."""
    program, kwargs = APPS[app]
    stem = tmp_path / f"{app}-{backend}-{platform}.npz"
    ir_record.start(stem)
    try:
        run = run_caf(program, nranks, PLATFORMS[platform],
                      backend=backend, **kwargs)
    finally:
        ir_record.stop()
    trace = ir_record.last_trace()
    assert trace is not None
    return run, trace


@pytest.fixture
def record(tmp_path):
    return lambda *a, **kw: record_run(tmp_path, *a, **kw)
