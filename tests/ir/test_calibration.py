"""Calibration: replayed makespans and per-op totals match live runs exactly.

The whole point of the IR is that a recorded trace re-priced at the
recorded spec is indistinguishable from the live run — bit-for-bit, not
approximately. Every (app x machine config x backend x dispatcher) cell
below asserts exact float equality on the makespan and on every per-op
aggregate, plus a clean deep validation (which itself includes a
self-replay with per-transfer delivery-time checking).
"""

import pytest

from repro.ir import replay, validate_trace

PLATFORM_CONFIGS = ["laptop", "edison"]


@pytest.mark.parametrize("dispatcher", ["fastpath", "legacy"])
@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
@pytest.mark.parametrize("platform", PLATFORM_CONFIGS)
@pytest.mark.parametrize("app", ["ra", "fft", "cgpop"])
def test_replay_matches_live_bit_exactly(
    record, monkeypatch, app, platform, backend, dispatcher
):
    monkeypatch.setenv(
        "REPRO_SIM_FASTPATH", "1" if dispatcher == "fastpath" else "0"
    )
    run, trace = record(app, backend, platform)
    assert trace.manifest["dispatcher"] == dispatcher

    result = replay(trace)  # default: the recorded spec

    assert result.makespan == run.elapsed  # exact, not approx
    assert result.warnings == []

    live = run.metrics.by_kind()
    assert set(result.op_totals) == set(live)
    for kind, agg in result.op_totals.items():
        stats = live[kind]
        assert agg["calls"] == stats.calls, kind
        assert agg["bytes"] == stats.nbytes, kind
        assert agg["time"] == stats.time, kind  # exact float equality

    # Per-rank totals match the live registry rank by rank.
    for rank, per in enumerate(result.per_rank):
        for kind, agg in per.items():
            stats = run.metrics.op(rank, kind)
            assert agg["calls"] == stats.calls
            assert agg["time"] == stats.time

    assert validate_trace(trace) == []


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_comm_matrix_matches_live(record, backend):
    run, trace = record("ra", backend, "laptop")
    result = replay(trace)
    live = run.comm_matrix
    assert (result.comm_messages == live.messages).all()
    assert (result.comm_bytes == live.bytes).all()


def test_cross_spec_replay_warns_and_stays_sane(record):
    """Replay under a different machine: structure params are frozen as
    recorded, so the result carries warnings and is an approximation —
    but still a positive, finite makespan over the same op stream."""
    from repro.platforms import PLATFORMS

    run, trace = record("ra", "mpi", "laptop")
    result = replay(trace, PLATFORMS["edison"])
    assert result.spec_name == "edison"
    assert result.makespan > 0.0
    assert result.makespan != run.elapsed
    assert any("structure parameter" in w for w in result.warnings)
