"""Sweep driver: grid expansion, artifact emission, identity point."""

import json

from repro.ir import SweepPoint, grid_points, replay, run_sweep
from repro.ir.replay import CompiledTrace

from tests.ir.conftest import record_run


def test_grid_points_cartesian_product():
    pts = grid_points({"latency": [1e-6, 2e-6], "bandwidth": [1e9, 2e9, 4e9]})
    assert len(pts) == 6
    assert all(set(p.overrides) == {"latency", "bandwidth"} for p in pts)
    assert len({p.name for p in pts}) == 6  # names are unique coordinates


def test_identity_point_reproduces_recorded_makespan(tmp_path):
    run, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    outcome = run_sweep(trace, [SweepPoint(name="as-recorded")])
    (_, res), = outcome.results
    assert res.makespan == run.elapsed


def test_run_sweep_writes_per_point_and_summary_artifacts(tmp_path):
    _, trace = record_run(tmp_path, "fft", "gasnet", "laptop")
    points = grid_points({"latency": [1e-6, 5e-6], "bandwidth": [5e9, 20e9]})
    out = tmp_path / "sweep"
    outcome = run_sweep(trace, points, out_dir=out)
    assert len(outcome.written) == 5  # 4 points + summary
    summary = json.loads((out / "sweep-summary.json").read_text())
    assert summary["schema"] == "repro.ir.sweep/1"
    assert len(summary["points"]) == 4
    assert all(row["makespan"] > 0 for row in summary["points"])
    # Per-point artifacts are full replay results.
    body = json.loads((out / "point-00.replay.json").read_text())
    assert body["schema"] == "repro.ir.replay/1"
    assert body["nranks"] == 4

    # Slower fabric -> longer makespan, ordered as physics demands.
    by_point = {row["name"]: row["makespan"] for row in summary["points"]}
    fast = by_point["bandwidth=20000000000.0,latency=1e-06"]
    slow = by_point["bandwidth=5000000000.0,latency=5e-06"]
    assert slow > fast


def test_compiled_trace_is_reused_across_points(tmp_path):
    """Compiling once and sweeping the CompiledTrace matches per-point
    replays of the raw trace exactly."""
    _, trace = record_run(tmp_path, "fft", "mpi", "laptop")
    compiled = CompiledTrace(trace)
    points = grid_points({"latency": [1e-6, 4e-6]})
    outcome = run_sweep(compiled, points)
    for point, res in outcome.results:
        solo = replay(trace, point.resolve(compiled.recorded_spec))
        assert solo.makespan == res.makespan
