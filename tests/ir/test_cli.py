"""The ``python -m repro.ir`` CLI: record, replay, sweep, validate."""

import json

import pytest

from repro.ir.cli import main

from tests.ir.conftest import record_run


@pytest.fixture(scope="module")
def trace_stem(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ir-cli")
    _, trace = record_run(tmp, "fft", "mpi", "laptop")
    stem = tmp / "fft-mpi-laptop"
    trace.save(stem)
    return stem


def test_record_subcommand_writes_artifact(tmp_path, capsys):
    # A .npz/.json suffix names a single artifact stem ...
    out = tmp_path / "ra-trace.npz"
    rc = main(
        ["record", "--out", str(out), "randomaccess", "--procs", "2",
         "--updates", "128"]
    )
    assert rc == 0
    assert out.exists()
    assert out.with_suffix(".json").exists()
    assert "ir:" in capsys.readouterr().out

    # ... anything else is a directory receiving run-NNNN artifacts.
    outdir = tmp_path / "traces"
    rc = main(
        ["record", "--out", str(outdir), "randomaccess", "--procs", "2",
         "--updates", "128"]
    )
    assert rc == 0
    assert len(list(outdir.glob("run-0000-*.npz"))) == 1


def test_replay_at_recorded_spec_reports_exact_match(trace_stem, capsys):
    assert main(["replay", "--trace", str(trace_stem)]) == 0
    out = capsys.readouterr().out
    recorded = json.loads(trace_stem.with_suffix(".json").read_text())["makespan"]
    assert f"recorded makespan: {recorded!r}" in out
    assert f"replayed makespan: {recorded!r}" in out


def test_replay_with_platform_and_overrides_writes_report(
    trace_stem, tmp_path, capsys
):
    report = tmp_path / "replay.json"
    rc = main(
        ["replay", "--trace", str(trace_stem), "--platform", "edison",
         "--set", "latency=5e-6", "--out", str(report)]
    )
    assert rc == 0
    body = json.loads(report.read_text())
    assert body["schema"] == "repro.ir.replay/1"
    assert body["spec_name"] == "edison+latency"
    assert "replayed on edison+latency" in capsys.readouterr().out


def test_sweep_subcommand_emits_grid_artifacts(trace_stem, tmp_path, capsys):
    out = tmp_path / "sweep"
    rc = main(
        ["sweep", "--trace", str(trace_stem),
         "--vary", "latency=1e-6,2e-6", "--vary", "bandwidth=5e9,1e10",
         "--out", str(out)]
    )
    assert rc == 0
    summary = json.loads((out / "sweep-summary.json").read_text())
    assert len(summary["points"]) == 4
    assert len(list(out.glob("point-*.replay.json"))) == 4
    assert "swept 4 point(s)" in capsys.readouterr().out


def test_validate_ok_and_version_reject(trace_stem, tmp_path, capsys):
    assert main(["validate", str(trace_stem)]) == 0
    assert ": OK (" in capsys.readouterr().out

    # A tampered version must fail validation with exit 1.
    bad = tmp_path / "bad"
    bad.with_suffix(".npz").write_bytes(
        trace_stem.with_suffix(".npz").read_bytes()
    )
    manifest = json.loads(trace_stem.with_suffix(".json").read_text())
    manifest["ir_version"] = 999
    bad.with_suffix(".json").write_text(json.dumps(manifest))
    assert main(["validate", str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_module_entrypoint_runs(trace_stem):
    import os
    import pathlib
    import subprocess
    import sys

    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.ir", "validate", str(trace_stem)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert ": OK (" in proc.stdout
