"""CAF event semantics (§2.1, §3.4) on both backends."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.util.errors import CafError, DeadlockError


def test_notify_then_wait(backend):
    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            img.compute(2.0)
            ev.notify(target=1)
        elif img.rank == 1:
            ev.wait()
            return img.now

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] >= 2.0


def test_wait_consumes_counts(backend):
    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            for _ in range(3):
                ev.notify(target=1)
        else:
            ev.wait(count=2)
            ev.wait(count=1)
            return ev.count()

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == 0


def test_multiple_slots_independent(backend):
    def program(img):
        ev = img.allocate_events(3)
        if img.rank == 0:
            ev.notify(target=1, slot=2)
            ev.notify(target=1, slot=0)
        else:
            ev.wait(slot=0)
            ev.wait(slot=2)
            return ev.count(1)

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == 0


def test_trywait(backend):
    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            assert not ev.trywait()
            img.compute(1.0)
            ev.notify(target=1)
        else:
            img.compute(5.0)  # ample time for the notification to arrive
            assert ev.trywait()
            assert not ev.trywait()
            return True

    run = run_caf(program, 2, backend=backend)
    assert run.results[1]


def test_notify_implies_prior_writes_visible(backend):
    """§3.4 release semantics: the waiter sees all writes issued before
    the notify, with no other synchronization."""

    def program(img):
        co = img.allocate_coarray(8, np.float64)
        ev = img.allocate_events(1)
        if img.rank == 0:
            co.write_async(1, np.full(8, 3.25))
            ev.notify(target=1)
        else:
            ev.wait()
            return co.local.tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [3.25] * 8


def test_pingpong_event_chain(backend):
    def program(img):
        ev = img.allocate_events(1)
        other = 1 - img.rank
        hops = []
        for i in range(4):
            if (i % 2) == img.rank:
                ev.notify(target=other)
            else:
                ev.wait()
                hops.append(img.now)
        return len(hops)

    run = run_caf(program, 2, backend=backend)
    assert run.results == [2, 2]


def test_event_wait_never_notified_deadlocks(backend):
    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            ev.wait()

    with pytest.raises(DeadlockError):
        run_caf(program, 2, backend=backend)


def test_bad_slot_raises(backend):
    def program(img):
        ev = img.allocate_events(2)
        ev.notify(target=0, slot=5)

    with pytest.raises(CafError, match="slot"):
        run_caf(program, 1, backend=backend)


def test_many_to_one_notifications(backend):
    def program(img):
        ev = img.allocate_events(1)
        if img.rank == 0:
            ev.wait(count=img.nranks - 1)
            return img.now
        img.compute(float(img.rank))
        ev.notify(target=0)

    run = run_caf(program, 5, backend=backend)
    assert run.results[0] >= 4.0


def test_mpi_backend_notify_pays_flush_all_after_writes():
    """Figure 4's mechanism: CAF-MPI event_notify after coarray writes pays
    a linear-in-P FLUSH_ALL; CAF-GASNet's notify does not."""
    from repro.sim.network import MachineSpec

    spec = MachineSpec(
        name="t", ranks_per_node=1, mpi_flush_all_per_target=5e-5
    )

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        ev = img.allocate_events(1)
        img.sync_all()
        target = (img.rank + 1) % img.nranks
        t0 = img.now
        co.write_async(target, np.zeros(4))
        ev.notify(target=target)
        cost = img.now - t0
        ev.wait()
        return cost

    mpi = run_caf(program, 8, spec, backend="mpi")
    gas = run_caf(program, 8, spec, backend="gasnet")
    assert min(mpi.results) > 8 * 5e-5
    assert max(gas.results) < 8 * 5e-5
    assert mpi.profiler.total("event_notify") > gas.profiler.total("event_notify") * 3
