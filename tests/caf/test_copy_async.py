"""copy_async: all four source/destination placements (§2.1)."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.util.errors import CafError


def test_local_to_remote(backend):
    def program(img):
        a = img.allocate_coarray(8, np.float64)
        b = img.allocate_coarray(8, np.float64)
        a.local[:] = img.rank + 1.0
        ev = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(b, 1, a, 0, dest_event=(ev, 0))
        if img.rank == 1:
            ev.wait()
            result = b.local.tolist()
        img.sync_all()
        return result

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [1.0] * 8


def test_remote_to_local(backend):
    def program(img):
        a = img.allocate_coarray(4, np.float64)
        b = img.allocate_coarray(4, np.float64)
        a.local[:] = img.rank * 10.0
        ev = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(b, 0, a, 1, dest_event=(ev, 0))
            ev.wait()
            result = b.local.tolist()
        img.sync_all()
        return result

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == [10.0] * 4


def test_remote_to_remote_third_party(backend):
    """Image 0 orchestrates a copy from image 1's coarray to image 2's."""

    def program(img):
        a = img.allocate_coarray(6, np.float64)
        b = img.allocate_coarray(6, np.float64)
        a.local[:] = img.rank * 100.0 + np.arange(6)
        done = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(b, 2, a, 1, dest_event=(done, 0))
        if img.rank == 2:
            done.wait()
            result = b.local.tolist()
        # The orchestrator stays inside CAF (sync_all drives its progress
        # engine) so the fetched data's forwarding leg can run.
        img.sync_all()
        return result

    run = run_caf(program, 3, backend=backend)
    assert run.results[2] == [100.0 + i for i in range(6)]


def test_local_to_local(backend):
    def program(img):
        a = img.allocate_coarray(4, np.float64)
        b = img.allocate_coarray(4, np.float64)
        a.local[:] = 3.5
        ev = img.allocate_events(1)
        img.copy_async(b, img.rank, a, img.rank, dest_event=(ev, 0))
        ev.wait()
        img.sync_all()
        return b.local.tolist()

    run = run_caf(program, 2, backend=backend)
    assert all(r == [3.5] * 4 for r in run.results)


def test_offsets_and_counts(backend):
    def program(img):
        a = img.allocate_coarray(10, np.float64)
        b = img.allocate_coarray(10, np.float64)
        a.local[:] = np.arange(10)
        ev = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(
                b, 1, a, 0, count=3, src_offset=2, dest_offset=5, dest_event=(ev, 0)
            )
        if img.rank == 1:
            ev.wait()
            result = b.local.tolist()
        img.sync_all()
        return result

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [0, 0, 0, 0, 0, 2.0, 3.0, 4.0, 0, 0]


def test_src_event_posts_for_buffer_reuse(backend):
    def program(img):
        a = img.allocate_coarray(4, np.float64)
        b = img.allocate_coarray(4, np.float64)
        a.local[:] = 1.0
        src_ev = img.allocate_events(1)
        done = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(b, 1, a, 0, src_event=(src_ev, 0), dest_event=(done, 0))
            src_ev.wait()  # source reusable
            a.local[:] = -1.0  # must not affect the copy
        if img.rank == 1:
            done.wait()
            result = b.local.tolist()
        img.sync_all()
        return result

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [1.0] * 4


def test_predicate_gates_copy(backend):
    def program(img):
        a = img.allocate_coarray(2, np.float64)
        b = img.allocate_coarray(2, np.float64)
        a.local[:] = 9.0
        pred = img.allocate_events(1)
        done = img.allocate_events(1)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.copy_async(b, 1, a, 0, predicate=(pred, 0), dest_event=(done, 0))
            img.compute(1.0)
            pred._post_local(0)
        if img.rank == 1:
            done.wait()
            result = img.now
        img.sync_all()
        return result

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] >= 1.0


def test_dtype_mismatch_rejected(backend):
    def program(img):
        a = img.allocate_coarray(4, np.float64)
        b = img.allocate_coarray(4, np.int64)
        img.copy_async(b, 0, a, 0)

    with pytest.raises(CafError, match="dtype"):
        run_caf(program, 1, backend=backend)
