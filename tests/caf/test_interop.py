"""MPI+CAF interoperability: the paper's motivating scenarios (§1, Figs 1-2)."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.mpi.constants import SUM
from repro.util.errors import DeadlockError


def test_hybrid_program_uses_both_models(backend):
    """A CGPOP-style hybrid: coarray halo exchange + MPI_Allreduce."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        mpi = img.mpi()
        co.write((img.rank + 1) % img.nranks, np.full(4, float(img.rank)))
        img.sync_all()
        local_sum = np.array([co.local.sum()])
        total = np.zeros(1)
        mpi.COMM_WORLD.allreduce(local_sum, total, SUM)
        return total[0]

    run = run_caf(program, 4, backend=backend)
    expected = 4 * sum(range(4))  # each rank's coarray holds 4 * left-neighbor
    assert all(r == expected for r in run.results)


def test_figure2_deadlock_under_am_writes_backend():
    """Figure 2: rank 0's coarray write needs rank 1 to make CAF progress,
    but rank 1 is blocked in MPI_BARRIER, which cannot run AM handlers."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        mpi = img.mpi()
        img.sync_all()
        if img.rank == 0:
            co.write(1, np.full(4, 1.0))  # AM path: needs target progress
        mpi.COMM_WORLD.barrier()

    with pytest.raises(DeadlockError) as ei:
        run_caf(program, 2, backend="gasnet", backend_options={"am_writes": True})
    # The diagnostic names both stuck call sites.
    blocked = " ".join(ei.value.blocked.values())
    assert "am_write ack" in blocked


def test_figure2_program_completes_under_caf_mpi():
    """The same program is deadlock-free when coarray writes are true
    one-sided MPI_PUTs (the paper's CAF-MPI design)."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        mpi = img.mpi()
        img.sync_all()
        if img.rank == 0:
            co.write(1, np.full(4, 1.0))
        mpi.COMM_WORLD.barrier()
        return co.local[0]

    run = run_caf(program, 2, backend="mpi")
    assert run.results[1] == 1.0


def test_figure2_program_completes_under_rdma_gasnet():
    """Plain CAF-GASNet (RDMA puts) also avoids the Figure 2 deadlock —
    the hazard is implementation-specific, as the paper notes."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        mpi = img.mpi()
        img.sync_all()
        if img.rank == 0:
            co.write(1, np.full(4, 1.0))
        mpi.COMM_WORLD.barrier()
        return co.local[0]

    run = run_caf(program, 2, backend="gasnet")
    assert run.results[1] == 1.0


def test_figure1_memory_duplication_shapes():
    """Figure 1: GASNet-only < MPI-only < duplicated runtimes, growing with P."""

    def caf_only(img):
        return img.ctx.memory.rank_mb(img.rank, prefix="gasnet/base") + \
            img.ctx.memory.rank_mb(img.rank, prefix="gasnet/rbuf")

    def hybrid(img):
        img.mpi()
        gasnet_mb = img.ctx.memory.rank_mb(img.rank, prefix="gasnet/base")
        mpi_mb = img.ctx.memory.rank_mb(img.rank, prefix="mpi/base") + \
            img.ctx.memory.rank_mb(img.rank, prefix="mpi/peers")
        return gasnet_mb, mpi_mb

    sizes = [4, 16]
    duplicates = []
    for n in sizes:
        run = run_caf(hybrid, n, backend="gasnet")
        gasnet_mb, mpi_mb = run.results[0]
        assert mpi_mb > gasnet_mb
        duplicates.append(gasnet_mb + mpi_mb)
    assert duplicates[1] > duplicates[0]  # grows with process count
    del caf_only


def test_caf_mpi_single_runtime_no_duplication():
    """Under CAF-MPI the hybrid application shares one runtime."""

    def program(img):
        img.mpi()  # same runtime the backend already initialized
        return img.ctx.memory.rank_mb(img.rank, prefix="gasnet/")

    run = run_caf(program, 4, backend="mpi")
    assert all(mb == 0.0 for mb in run.results)  # no GASNet footprint at all
