"""Image crashes surfacing at the CAF level, on both backends."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.mpi.constants import SUM
from repro.sim.faults import FaultPlan
from repro.util.errors import CafError, CafTimeoutError, ImageFailedError

CRASH_AT = 2e-3
VICTIM = 3


def _crash_run(program, backend, nranks=4):
    return run_caf(
        program,
        nranks,
        backend=backend,
        faults=FaultPlan(seed=1, crashes=[(VICTIM, CRASH_AT)]),
    )


def test_crash_surfaces_everywhere(backend):
    """Survivors observe the dead image through every CAF surface: the
    failure query, eager errors on operations naming it, and a bounded
    event wait instead of a hang."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        ev = img.allocate_events(2)
        img.sync_all()
        if img.rank == VICTIM:
            img.compute(seconds=1.0)  # killed long before this finishes
            return "unreachable"
        img.compute(seconds=3 * CRASH_AT)  # let the crash land
        out = {"failed": img.failed_images()}
        for label, op in [
            ("write", lambda: co.write(VICTIM, np.ones(4))),
            ("read", lambda: co.read(VICTIM)),
            ("notify", lambda: ev.notify(VICTIM)),
            ("spawn", lambda: img.spawn(VICTIM, lambda im: None)),
            ("sync_images", lambda: img.sync_images([VICTIM])),
        ]:
            with pytest.raises(ImageFailedError) as exc_info:
                op()
            out[label] = exc_info.value.failed_image
        # The dead image was this slot's notifier: the wait times out
        # instead of hanging the survivor forever.
        try:
            ev.wait(slot=0, timeout=1e-3)
            out["wait"] = "posted"
        except CafTimeoutError:
            out["wait"] = "timeout"
        return out

    result = _crash_run(program, backend)
    assert result.cluster.failed_ranks == {VICTIM}
    assert result.results[VICTIM] is None  # crashed before returning
    for rank, out in enumerate(result.results):
        if rank == VICTIM:
            continue
        assert out["failed"] == [VICTIM]
        for label in ("write", "read", "notify", "spawn", "sync_images"):
            assert out[label] == VICTIM  # error identifies the failed rank
        assert out["wait"] == "timeout"


def test_shrink_team_yields_working_survivor_team(backend):
    """ULFM-style recovery at the CAF level: survivors shrink TEAM_WORLD
    and the new team supports allocation, RMA, and collectives."""

    def program(img):
        img.sync_all()
        if img.rank == VICTIM:
            img.compute(seconds=1.0)
            return "unreachable"
        img.compute(seconds=3 * CRASH_AT)
        assert img.failed_images() == [VICTIM]
        small = img.shrink_team()
        assert small.size == img.nranks - 1
        assert img.failed_images(small) == []
        me = img.this_image(small)
        # Fresh allocations over the shrunken team work.
        co = img.allocate_coarray(4, np.float64, team=small)
        ev = img.allocate_events(1, team=small)
        img.barrier(small)
        # RMA to a survivor neighbor through the new handle.
        right = (me + 1) % small.size
        co.write(right, np.full(4, float(me)))
        ev.notify(right, 0)
        ev.wait(0)
        img.barrier(small)
        left = (me - 1) % small.size
        assert np.all(co.local == float(left))
        # A collective over the survivors computes the right value.
        recv = np.zeros(1)
        img.team_allreduce(np.array([1.0]), recv, SUM, team=small)
        assert recv[0] == float(small.size)
        return me

    result = _crash_run(program, backend)
    survivors = [r for i, r in enumerate(result.results) if i != VICTIM]
    assert sorted(survivors) == [0, 1, 2]


def test_event_wait_timeout_consumes_nothing(backend):
    def program(img):
        ev = img.allocate_events(1)
        img.sync_all()
        try:
            ev.wait(slot=0, count=2, timeout=1e-4)
        except CafTimeoutError:
            pass
        # A post arriving after the timeout is still there to consume.
        if img.rank == 0:
            ev.notify(1)
        img.sync_all()
        if img.rank == 1:
            ev.wait(slot=0, count=1, timeout=1.0)  # already posted: no timeout
            assert ev.count(0) == 0  # ...and the post was consumed
        return True

    run = run_caf(program, 2, backend=backend)
    assert all(run.results)


def test_event_wait_timeout_satisfied_before_expiry(backend):
    def program(img):
        ev = img.allocate_events(1)
        img.sync_all()
        if img.rank == 0:
            img.compute(seconds=1e-4)
            ev.notify(1)
        elif img.rank == 1:
            ev.wait(slot=0, timeout=10.0)  # arrives well before the timeout
        img.sync_all()
        return img.now

    run = run_caf(program, 2, backend=backend)
    # Nobody waited out the 10-second timer: the run ends at wire speed.
    assert all(t < 0.1 for t in run.results)


def test_negative_timeout_rejected(backend):
    def program(img):
        ev = img.allocate_events(1)
        img.sync_all()
        with pytest.raises(CafError):
            ev.wait(slot=0, timeout=-1.0)
        return True

    assert all(run_caf(program, 2, backend=backend).results)
