"""Coarray semantics on both backends."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.util.errors import CafError


def test_local_view_is_writable(backend):
    def program(img):
        co = img.allocate_coarray(8, np.float64)
        co.local[:] = img.rank * 2.0
        return co.local.tolist()

    run = run_caf(program, 3, backend=backend)
    assert run.results[1] == [2.0] * 8


def test_blocking_write_then_remote_read(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        target = (img.rank + 1) % img.nranks
        co.write(target, np.full(4, float(img.rank)))
        img.sync_all()
        left = (img.rank - 1) % img.nranks
        return co.local.tolist(), float(co.read(left)[0])

    run = run_caf(program, 4, backend=backend)
    for rank, (local, read_back) in enumerate(run.results):
        left = (rank - 1) % 4
        assert local == [float(left)] * 4
        assert read_back == float((left - 1) % 4)


def test_write_with_offset_and_partial_read(backend):
    def program(img):
        co = img.allocate_coarray(10, np.int64)
        if img.rank == 0:
            co.write(1, np.array([7, 8, 9], dtype=np.int64), offset=4)
        img.sync_all()
        if img.rank == 1:
            return co.read(1, offset=4, count=3).tolist(), co.local.tolist()

    run = run_caf(program, 2, backend=backend)
    vals, local = run.results[1]
    assert vals == [7, 8, 9]
    assert local == [0, 0, 0, 0, 7, 8, 9, 0, 0, 0]


def test_blocking_write_remotely_complete_on_return(backend):
    """§3.1: the effect of a write is globally visible when it returns."""

    def program(img):
        co = img.allocate_coarray(1, np.float64)
        img.sync_all()
        if img.rank == 0:
            co.write(1, np.array([42.0]))
            # Direct peek at the target's memory (simulation superpower).
            return float(co.read(1)[0])

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == 42.0


def test_2d_coarray_shape(backend):
    def program(img):
        co = img.allocate_coarray((3, 4), np.float64)
        assert co.local.shape == (3, 4)
        co.local[...] = img.rank
        img.sync_all()
        other = co.read((img.rank + 1) % img.nranks).reshape(3, 4)
        return float(other[2, 3])

    run = run_caf(program, 3, backend=backend)
    assert run.results == [1.0, 2.0, 0.0]


def test_multiple_coarrays_independent(backend):
    def program(img):
        a = img.allocate_coarray(4, np.float64)
        b = img.allocate_coarray(4, np.float64)
        if img.rank == 0:
            a.write(1, np.full(4, 1.0))
            b.write(1, np.full(4, 2.0))
        img.sync_all()
        return a.local[0], b.local[0]

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == (1.0, 2.0)


def test_out_of_range_target_raises(backend):
    def program(img):
        co = img.allocate_coarray(4)
        co.write(99, np.zeros(4))

    with pytest.raises(CafError, match="out of range"):
        run_caf(program, 2, backend=backend)


def test_out_of_bounds_offset_raises(backend):
    def program(img):
        co = img.allocate_coarray(4)
        co.write(0, np.zeros(4), offset=2)

    with pytest.raises(CafError, match="outside"):
        run_caf(program, 1, backend=backend)


def test_dtype_conversion_on_write(backend):
    def program(img):
        co = img.allocate_coarray(3, np.float64)
        if img.rank == 0:
            co.write(1, [1, 2, 3])  # plain list converts
        img.sync_all()
        return co.local.tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [1.0, 2.0, 3.0]


def test_coarray_on_subteam(backend):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        co = img.allocate_coarray(2, np.float64, team=team)
        co.local[:] = img.rank
        img.barrier()
        partner = (team.my_index + 1) % team.size
        got = co.read(partner)
        img.barrier()
        return float(got[0])

    run = run_caf(program, 4, backend=backend)
    # Even team: world ranks 0,2; odd team: 1,3.
    assert run.results == [2.0, 3.0, 0.0, 1.0]


def test_gups_style_fine_grained_writes(backend):
    """Many small writes to scattered targets land exactly once each."""

    def program(img):
        co = img.allocate_coarray(64, np.int64)
        img.sync_all()
        rng = np.random.default_rng(img.rank)
        writes = []
        for i in range(20):
            target = int(rng.integers(img.nranks))
            slot = int(rng.integers(64))
            writes.append((target, slot))
            co.write(target, np.array([1], np.int64), offset=slot)
        img.sync_all()
        return writes, co.local.copy()

    run = run_caf(program, 4, backend=backend, sim_seed=3)
    # Writes of constant 1: every written slot must hold 1, others 0.
    expected = [np.zeros(64, np.int64) for _ in range(4)]
    for writes, _local in run.results:
        for target, slot in writes:
            expected[target][slot] = 1
    for rank, (_w, local) in enumerate(run.results):
        assert (local == expected[rank]).all()
