"""Asynchronous operations: copy_async with events, cofence (§2.1, §3.3)."""

import numpy as np

from repro.caf import run_caf


def test_write_async_then_cofence_then_finish(backend):
    def program(img):
        co = img.allocate_coarray(16, np.float64)
        with img.finish(fast=True):
            target = (img.rank + 1) % img.nranks
            co.write_async(target, np.full(16, float(img.rank)))
            img.cofence()  # local completion: source buffer reusable
        left = (img.rank - 1) % img.nranks
        return co.local[0] == float(left)

    run = run_caf(program, 4, backend=backend)
    assert all(run.results)


def test_write_async_src_event(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        ev = img.allocate_events(1)
        done = img.allocate_events(1)
        if img.rank == 0:
            co.write_async(1, np.full(4, 9.0), src_event=(ev, 0))
            ev.wait()  # source buffer reusable
            done.notify(target=1)  # not a data fence by itself...
        else:
            done.wait()
            return True

    run = run_caf(program, 2, backend=backend)
    assert run.results[1]


def test_write_async_dest_event_posts_at_target(backend):
    """Case 4 of §3.3: destination event posted on the target after data lands."""

    def program(img):
        co = img.allocate_coarray(8, np.float64)
        ev = img.allocate_events(1)
        if img.rank == 0:
            co.write_async(1, np.arange(8, dtype=np.float64), dest_event=(ev, 0))
        else:
            ev.wait()  # posted remotely, at us
            return co.local.tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == list(range(8))


def test_read_async_with_cofence(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        co.local[:] = img.rank * 10.0
        img.sync_all()
        out = np.zeros(4)
        co.read_async((img.rank + 1) % img.nranks, out)
        img.cofence()
        return out[0]

    run = run_caf(program, 3, backend=backend)
    assert run.results == [10.0, 20.0, 0.0]


def test_read_async_dest_event(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        co.local[:] = float(img.rank + 1)
        ev = img.allocate_events(1)
        img.sync_all()
        out = np.zeros(4)
        co.read_async((img.rank + 1) % img.nranks, out, dest_event=(ev, 0))
        ev.wait()
        return out[0]

    run = run_caf(program, 2, backend=backend)
    assert run.results == [2.0, 1.0]


def test_predicate_event_delays_copy(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        pred = img.allocate_events(1)
        done = img.allocate_events(1)
        if img.rank == 0:
            # Queue a predicated write; it must not start yet.
            co.write_async(1, np.full(4, 5.0), predicate=(pred, 0), dest_event=(done, 0))
            img.compute(1.0)
            pred._post_local(0)  # fire the predicate locally
        else:
            done.wait()
            return co.local[0], img.now

    run = run_caf(program, 2, backend=backend)
    value, when = run.results[1]
    assert value == 5.0
    assert when >= 1.0  # data could not arrive before the predicate fired


def test_many_async_writes_one_finish(backend):
    def program(img):
        co = img.allocate_coarray(img.nranks, np.float64)
        with img.finish(fast=True):
            for target in range(img.nranks):
                co.write_async(target, np.array([float(img.rank)]), offset=img.rank)
        return co.local.tolist()

    run = run_caf(program, 4, backend=backend)
    for r in run.results:
        assert r == [0.0, 1.0, 2.0, 3.0]


def test_cofence_allows_buffer_reuse_semantics(backend):
    """After cofence the async op is locally complete on both backends."""

    def program(img):
        co = img.allocate_coarray(4, np.float64)
        if img.rank == 0:
            co.write_async(1, np.full(4, 1.0))
            img.cofence()
        img.sync_all()
        return co.local[0]

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == 1.0
