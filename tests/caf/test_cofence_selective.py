"""Selective cofence (§3.5): separate PUT/GET request arrays."""

import numpy as np

from repro.caf import run_caf


def test_cofence_gets_only_completes_reads(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        co.local[:] = img.rank * 10.0
        img.sync_all()
        out = np.zeros(4)
        co.read_async((img.rank + 1) % img.nranks, out)
        img.cofence(puts=False, gets=True)
        return out[0]

    run = run_caf(program, 3, backend=backend)
    assert run.results == [10.0, 20.0, 0.0]


def test_cofence_puts_only_leaves_gets_pending(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        co.local[:] = 5.0
        img.sync_all()
        out = np.zeros(4)
        co.read_async((img.rank + 1) % img.nranks, out)
        co.write_async((img.rank + 1) % img.nranks, np.full(4, 1.0))
        img.cofence(puts=True, gets=False)  # write source reusable
        # The get may still be in flight; complete it now.
        img.cofence(puts=False, gets=True)
        img.sync_all()
        return out[0], co.local[0]

    run = run_caf(program, 2, backend=backend)
    for got, local in run.results:
        assert got == 5.0
        assert local == 1.0


def test_cofence_both_after_mixed_traffic(backend):
    def program(img):
        co = img.allocate_coarray(8, np.float64)
        img.sync_all()
        out = np.zeros(8)
        for i in range(4):
            co.write_async((img.rank + 1) % img.nranks, np.full(2, float(i)), offset=2 * i)
        co.read_async(img.rank, out)
        img.cofence()
        img.sync_all()
        return co.local.tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]


def test_selective_cofence_cheaper_than_full(backend):
    """Waiting only the PUT array must not wait for a slow GET."""

    def program(img):
        co = img.allocate_coarray(1 << 15, np.float64)
        img.sync_all()
        out = np.zeros(1 << 15)  # large (slow) get
        co.read_async((img.rank + 1) % img.nranks, out)
        co.write_async((img.rank + 1) % img.nranks, np.ones(1), offset=0)
        t0 = img.now
        img.cofence(puts=True, gets=False)
        puts_only = img.now - t0
        t1 = img.now
        img.cofence(puts=False, gets=True)
        gets_after = img.now - t1
        return puts_only, gets_after

    run = run_caf(program, 2, backend=backend)
    puts_only, gets_after = run.results[0]
    assert puts_only < puts_only + gets_after  # sanity
    assert gets_after >= 0
