"""Function-shipping futures."""

import numpy as np

from repro.caf import run_caf
from repro.util.errors import CafError


def _square(img, x):
    return x * x


def test_spawn_future_returns_value(backend):
    def program(img):
        if img.rank == 0:
            fut = img.spawn_future(1, _square, 7)
            return fut.wait()
        # Targets blocked outside CAF never run handlers (the Figure 2
        # lesson); serve the one incoming request explicitly.
        img.serve(1)

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == 49


def _read_local(img, offset):
    co = img.cluster.shared("fut-coarrays", dict)[img.rank]
    return float(co.local[offset])


def test_future_fetches_remote_state(backend):
    """The classic use: compute *where the data is* and return the answer."""

    def program(img):
        co = img.allocate_coarray(8, np.float64)
        co.local[:] = img.rank * 100.0 + np.arange(8)
        img.cluster.shared("fut-coarrays", dict)[img.rank] = co
        img.sync_all()
        fut = img.spawn_future((img.rank + 1) % img.nranks, _read_local, 3)
        value = fut.wait()  # waiting also serves the neighbor's request
        img.sync_all()
        return value

    run = run_caf(program, 4, backend=backend)
    assert run.results == [103.0, 203.0, 303.0, 3.0]


def test_multiple_outstanding_futures(backend):
    def program(img):
        if img.rank == 0:
            futures = [
                img.spawn_future(t, _square, t) for t in range(img.nranks)
            ]
            return [f.wait() for f in futures]
        img.serve(1)

    run = run_caf(program, 4, backend=backend)
    assert run.results[0] == [0, 1, 4, 9]


def test_future_done_flag_and_result(backend):
    def program(img):
        if img.rank == 0:
            fut = img.spawn_future(1, _square, 3)
            try:
                fut.result()
                raise AssertionError("result() before completion must raise")
            except CafError:
                pass
            fut.wait()
            assert fut.done
            return fut.result()
        img.serve(1)

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == 9


def _chain_future(img, depth):
    if depth == 0:
        return img.rank
    fut = img.spawn_future((img.rank + 1) % img.nranks, _chain_future, depth - 1)
    return fut.wait()


def test_nested_futures(backend):
    """A shipped function can itself spawn futures (progress reentrancy)."""

    def program(img):
        if img.rank == 0:
            fut = img.spawn_future(1, _chain_future, 2)
            return fut.wait()
        img.serve(1)

    run = run_caf(program, 3, backend=backend)
    # 0 ships depth2 to 1, 1 ships depth1 to 2, 2 ships depth0 to 0 -> 0.
    assert run.results[0] == 0
