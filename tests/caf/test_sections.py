"""Strided coarray sections: Fortran array-section remote access."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.util.errors import CafError


def test_write_column_of_2d_coarray(backend):
    def program(img):
        co = img.allocate_coarray((4, 6), np.float64)
        img.sync_all()
        if img.rank == 0:
            co.write_section(1, (slice(None), 2), np.arange(4, dtype=np.float64))
        img.sync_all()
        return co.local.copy()

    run = run_caf(program, 2, backend=backend)
    got = run.results[1]
    assert (got[:, 2] == np.arange(4)).all()
    got[:, 2] = 0
    assert (got == 0).all()


def test_read_strided_row(backend):
    def program(img):
        co = img.allocate_coarray(12, np.float64)
        co.local[:] = np.arange(12) + 100 * img.rank
        img.sync_all()
        sec = co.read_section((img.rank + 1) % img.nranks, slice(1, 12, 3))
        img.sync_all()
        return sec.tolist()

    run = run_caf(program, 3, backend=backend)
    assert run.results[0] == [101.0, 104.0, 107.0, 110.0]
    assert run.results[2] == [1.0, 4.0, 7.0, 10.0]


def test_block_subsection_roundtrip(backend):
    def program(img):
        co = img.allocate_coarray((6, 6), np.float64)
        img.sync_all()
        if img.rank == 0:
            block = np.arange(9, dtype=np.float64).reshape(3, 3)
            co.write_section(1, (slice(2, 5), slice(1, 4)), block)
        img.sync_all()
        if img.rank == 0:
            back = co.read_section(1, (slice(2, 5), slice(1, 4)))
            return back.tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == np.arange(9.0).reshape(3, 3).tolist()


def test_scalar_broadcast_into_section(backend):
    def program(img):
        co = img.allocate_coarray((3, 4), np.float64)
        img.sync_all()
        if img.rank == 0:
            co.write_section(1, (1, slice(None)), 7.0)  # whole row = 7
        img.sync_all()
        return co.local[1].tolist()

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == [7.0] * 4


def test_section_moves_one_message_per_direction():
    """Strided sections must not degrade into per-element messages."""

    def program(img):
        co = img.allocate_coarray((32, 32), np.float64)
        img.sync_all()
        if img.rank == 0:
            co.write_section(1, (slice(None), 5), np.ones(32))
        img.sync_all()

    run = run_caf(program, 2, backend="mpi", trace=True)
    # Count data transfers carrying the 32-element column (256 bytes).
    column_msgs = [
        e for e in run.tracer.of_kind("transfer") if e.detail["nbytes"] >= 256
    ]
    assert len(column_msgs) == 1


def test_empty_section_is_noop(backend):
    def program(img):
        co = img.allocate_coarray(8, np.float64)
        img.sync_all()
        co.write_section((img.rank + 1) % img.nranks, slice(4, 4), np.empty(0))
        sec = co.read_section((img.rank + 1) % img.nranks, slice(4, 4))
        img.sync_all()
        return sec.size

    run = run_caf(program, 2, backend=backend)
    assert run.results == [0, 0]


def test_too_many_dims_rejected(backend):
    def program(img):
        co = img.allocate_coarray(8, np.float64)
        co.read_section(0, (slice(None), slice(None)))

    with pytest.raises(CafError, match="dims"):
        run_caf(program, 1, backend=backend)


@pytest.mark.parametrize("nranks", [2, 4])
def test_halo_column_exchange_pattern(backend, nranks):
    """The CGPOP-east/west pattern: exchange boundary columns."""

    def program(img):
        ny, nx = 4, 5
        co = img.allocate_coarray((ny, nx), np.float64)
        co.local[...] = img.rank
        img.sync_all()
        right = (img.rank + 1) % img.nranks
        # Write my last interior column into the right neighbor's column 0.
        co.write_section(right, (slice(None), 0), co.local[:, -2].copy())
        img.sync_all()
        return co.local[:, 0].tolist()

    run = run_caf(program, nranks, backend=backend)
    for rank in range(nranks):
        left = (rank - 1) % nranks
        assert run.results[rank] == [float(left)] * 4
