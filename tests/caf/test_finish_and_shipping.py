"""finish blocks (fast + termination detection) and function shipping."""

import numpy as np

from repro.caf import run_caf


def test_fast_finish_completes_async_writes(backend):
    def program(img):
        co = img.allocate_coarray(1, np.float64)
        with img.finish(fast=True):
            co.write_async((img.rank + 1) % img.nranks, np.array([float(img.rank)]))
        return co.local[0]

    run = run_caf(program, 4, backend=backend)
    assert run.results == [3.0, 0.0, 1.0, 2.0]


def _bump(img, amount):
    shared = img.cluster.shared("ship-test-results", dict)
    shared[img.rank] = shared.get(img.rank, 0) + amount


def test_ship_function_runs_on_target(backend):
    def program(img):
        with img.finish():
            if img.rank == 0:
                img.spawn(1, _bump, 10)
                img.spawn(1, _bump, 5)
        shared = img.cluster.shared("ship-test-results", dict)
        return shared.get(img.rank, 0)

    run = run_caf(program, 2, backend=backend)
    assert run.results[1] == 15


def _chain(img, depth):
    if depth > 0:
        img.spawn((img.rank + 1) % img.nranks, _chain, depth - 1)
    _bump(img, 1)


def test_finish_detects_chained_shipping(backend):
    """Termination detection must cover functions spawned by functions."""

    def program(img):
        with img.finish():
            if img.rank == 0:
                img.spawn(1, _chain, 3)
        shared = img.cluster.shared("ship-test-results", dict)
        return shared.get(img.rank, 0)

    run = run_caf(program, 3, backend=backend)
    # Chain: depth 3 on rank 1 -> 2 on rank 2 -> 1 on rank 0 -> 0 on rank 1.
    assert sum(run.results) == 4
    assert run.results[1] == 2


def _write_back(img, origin, value):
    co = img.cluster.shared("ship-coarrays", dict)[img.rank]
    co.write(origin, np.array([value]))


def test_shipped_function_can_communicate(backend):
    """§2.1: shipped functions may perform the full range of CAF ops."""

    def program(img):
        co = img.allocate_coarray(1, np.float64)
        img.cluster.shared("ship-coarrays", dict)[img.rank] = co
        img.sync_all()
        with img.finish():
            if img.rank == 0:
                img.spawn(1, _write_back, 0, 7.5)
        img.sync_all()
        return co.local[0]

    run = run_caf(program, 2, backend=backend)
    assert run.results[0] == 7.5


def test_nested_finish_blocks(backend):
    def program(img):
        co = img.allocate_coarray(2, np.float64)
        with img.finish(fast=True):
            co.write_async((img.rank + 1) % img.nranks, np.array([1.0]), offset=0)
            with img.finish(fast=True):
                co.write_async((img.rank + 1) % img.nranks, np.array([2.0]), offset=1)
            # Inner block completed: slot 1 visible everywhere.
            assert co.local[1] == 2.0
        return co.local.tolist()

    run = run_caf(program, 3, backend=backend)
    for r in run.results:
        assert r == [1.0, 2.0]


def test_finish_auto_picks_fast_when_no_shipping(backend):
    def program(img):
        co = img.allocate_coarray(1, np.float64)
        with img.finish():  # auto mode
            co.write_async((img.rank + 1) % img.nranks, np.array([4.0]))
        return co.local[0]

    run = run_caf(program, 4, backend=backend)
    assert all(r == 4.0 for r in run.results)


def test_spawn_to_self(backend):
    def program(img):
        with img.finish():
            img.spawn(img.rank, _bump, 3)
        shared = img.cluster.shared("ship-test-results", dict)
        return shared.get(img.rank, 0)

    run = run_caf(program, 2, backend=backend)
    assert run.results == [3, 3]
