"""Teams: split, collectives isolation, identity (§2.1)."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.mpi.constants import MAX, SUM


def test_team_world_identity(backend):
    def program(img):
        return img.this_image(), img.num_images()

    run = run_caf(program, 4, backend=backend)
    assert run.results == [(r, 4) for r in range(4)]


def test_split_by_parity(backend):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        return img.this_image(team), img.num_images(team), team.members

    run = run_caf(program, 6, backend=backend)
    for rank, (idx, size, members) in enumerate(run.results):
        assert size == 3
        assert idx == rank // 2
        assert members == tuple(range(rank % 2, 6, 2))


def test_split_with_key_reorders(backend):
    def program(img):
        team = img.team_split(img.team_world, color=0, key=-img.rank)
        return img.this_image(team)

    run = run_caf(program, 4, backend=backend)
    assert run.results == [3, 2, 1, 0]


def test_negative_color_gets_none(backend):
    def program(img):
        team = img.team_split(img.team_world, color=0 if img.rank < 2 else -1)
        return None if team is None else team.size

    run = run_caf(program, 4, backend=backend)
    assert run.results == [2, 2, None, None]


@pytest.mark.parametrize("nranks", [4, 8])
def test_team_collectives_isolated(backend, nranks):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        send = np.array([float(img.rank)])
        recv = np.zeros(1)
        img.team_allreduce(send, recv, SUM, team=team)
        return recv[0]

    run = run_caf(program, nranks, backend=backend)
    evens = sum(r for r in range(nranks) if r % 2 == 0)
    odds = sum(r for r in range(nranks) if r % 2 == 1)
    for rank, got in enumerate(run.results):
        assert got == (evens if rank % 2 == 0 else odds)


def test_team_broadcast_and_reduce(backend):
    def program(img):
        buf = np.array([42.0]) if img.rank == 1 else np.zeros(1)
        img.team_broadcast(buf, root=1)
        send = buf * (img.rank + 1)
        recv = np.zeros(1)
        img.team_reduce(send, recv, MAX, root=0)
        return buf[0], (recv[0] if img.rank == 0 else None)

    run = run_caf(program, 4, backend=backend)
    assert all(b == 42.0 for b, _ in run.results)
    assert run.results[0][1] == 42.0 * 4


def test_team_alltoall(backend):
    def program(img):
        send = np.array([[img.rank * 10 + j] for j in range(img.nranks)], dtype=np.float64)
        recv = np.zeros_like(send)
        img.team_alltoall(send, recv)
        return recv[:, 0].tolist()

    run = run_caf(program, 4, backend=backend)
    for r in range(4):
        assert run.results[r] == [src * 10 + r for src in range(4)]


def test_team_allgather(backend):
    def program(img):
        send = np.array([float(img.rank)])
        recv = np.zeros((img.nranks, 1))
        img.team_allgather(send, recv)
        return recv[:, 0].tolist()

    run = run_caf(program, 5, backend=backend)
    for r in run.results:
        assert r == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_nested_splits(backend):
    def program(img):
        half = img.team_split(img.team_world, color=img.rank // 4)
        quarter = img.team_split(half, color=half.my_index // 2)
        return quarter.size, quarter.my_index

    run = run_caf(program, 8, backend=backend)
    assert all(size == 2 for size, _ in run.results)


def test_barrier_on_subteam_does_not_block_others(backend):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        if img.rank % 2 == 0:
            img.barrier(team)
            return img.now
        img.compute(10.0)  # odd images busy; evens must not wait for them
        img.barrier(team)
        return img.now

    run = run_caf(program, 4, backend=backend)
    assert run.results[0] < 5.0 and run.results[2] < 5.0
