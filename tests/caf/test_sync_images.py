"""Fortran 2008 SYNC IMAGES: pairwise synchronization."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.util.errors import CafError, DeadlockError


def test_pairwise_sync_orders_writes(backend):
    def program(img):
        co = img.allocate_coarray(4, np.float64)
        img.sync_all()
        result = None
        if img.rank == 0:
            img.compute(1.0)
            co.write_async(1, np.full(4, 7.0))
            img.sync_images([1])  # quiet + token: write visible at 1
        elif img.rank == 1:
            img.sync_images([0])
            result = (co.local.tolist(), img.now)
        img.sync_all()
        return result

    run = run_caf(program, 3, backend=backend)  # rank 2 uninvolved
    values, when = run.results[1]
    assert values == [7.0] * 4
    assert when >= 1.0


def test_uninvolved_images_do_not_wait(backend):
    def program(img):
        img.sync_all()
        if img.rank in (0, 1):
            img.compute(5.0)
            img.sync_images([1 - img.rank])
        done_at = img.now
        img.sync_all()
        return done_at

    run = run_caf(program, 4, backend=backend)
    assert run.results[2] < 1.0  # never blocked on the pair
    assert run.results[0] >= 5.0


def test_repeated_syncs_count_correctly(backend):
    def program(img):
        other = 1 - img.rank
        stamps = []
        for i in range(3):
            img.compute(0.5 if img.rank == 0 else 0.1)
            img.sync_images([other])
            stamps.append(img.now)
        return stamps

    run = run_caf(program, 2, backend=backend)
    # Each round both images leave at (roughly) the slower image's pace.
    for a, b in zip(run.results[0], run.results[1]):
        assert abs(a - b) < 0.4
    assert run.results[0][-1] >= 1.5


def test_sync_with_self_is_trivial(backend):
    def program(img):
        img.sync_images([img.rank])
        return True

    run = run_caf(program, 2, backend=backend)
    assert all(run.results)


def test_unmatched_sync_deadlocks(backend):
    def program(img):
        if img.rank == 0:
            img.sync_images([1])  # 1 never reciprocates

    with pytest.raises(DeadlockError):
        run_caf(program, 2, backend=backend)


def test_bad_partner_rejected(backend):
    def program(img):
        img.sync_images([9])

    with pytest.raises(CafError, match="out of range"):
        run_caf(program, 2, backend=backend)
