"""CAF 2.0 asynchronous collectives (§2.1) on both backends."""

import numpy as np
import pytest

from repro.caf import run_caf
from repro.mpi.constants import SUM


def test_allreduce_async_with_data_event(backend):
    def program(img):
        ev = img.allocate_events(1)
        send = np.array([float(img.rank + 1)])
        recv = np.zeros(1)
        img.team_allreduce_async(send, recv, SUM, data_event=(ev, 0))
        ev.wait()
        return recv[0]

    run = run_caf(program, 4, backend=backend)
    assert all(r == pytest.approx(10.0) for r in run.results)


def test_broadcast_async_with_cofence(backend):
    def program(img):
        buf = np.arange(4, dtype=np.float64) if img.rank == 1 else np.zeros(4)
        img.team_broadcast_async(buf, root=1)
        img.cofence()  # local completion of implicitly-synchronized async ops
        return buf.tolist()

    run = run_caf(program, 4, backend=backend)
    assert all(r == [0.0, 1.0, 2.0, 3.0] for r in run.results)


def test_reduce_async(backend):
    def program(img):
        ev = img.allocate_events(1)
        send = np.full(3, float(img.rank))
        recv = np.zeros(3)
        img.team_reduce_async(send, recv, SUM, root=0, data_event=(ev, 0))
        ev.wait()
        return recv.tolist() if img.rank == 0 else None

    run = run_caf(program, 4, backend=backend)
    assert run.results[0] == [6.0, 6.0, 6.0]


def test_alltoall_async(backend):
    def program(img):
        ev = img.allocate_events(1)
        send = np.array([[img.rank * 10 + j] for j in range(img.nranks)], dtype=np.float64)
        recv = np.zeros_like(send)
        img.team_alltoall_async(send, recv, op_event=(ev, 0))
        ev.wait()
        return recv[:, 0].tolist()

    run = run_caf(program, 4, backend=backend)
    for r in range(4):
        assert run.results[r] == [src * 10 + r for src in range(4)]


def test_allgather_async(backend):
    def program(img):
        ev = img.allocate_events(1)
        send = np.array([float(img.rank)])
        recv = np.zeros((img.nranks, 1))
        img.team_allgather_async(send, recv, data_event=(ev, 0))
        ev.wait()
        return recv[:, 0].tolist()

    run = run_caf(program, 3, backend=backend)
    assert all(r == [0.0, 1.0, 2.0] for r in run.results)


def test_async_collective_overlaps_computation(backend):
    """The point of asynchronous collectives: communication time hides
    behind local compute instead of adding to it."""

    def program(img):
        send = np.zeros((img.nranks, 256))
        recv = np.zeros_like(send)
        ev = img.allocate_events(1)
        t0 = img.now
        img.team_alltoall_async(send, recv, op_event=(ev, 0))
        img.compute(0.01)  # plenty of time for the collective to finish under it
        ev.wait()
        overlapped = img.now - t0
        t1 = img.now
        img.team_alltoall(send, recv)
        img.compute(0.01)
        serial = img.now - t1
        return overlapped, serial

    run = run_caf(program, 4, backend=backend)
    for overlapped, serial in run.results:
        assert overlapped == pytest.approx(0.01, rel=0.05)
        assert serial > overlapped


def test_two_outstanding_async_collectives(backend):
    def program(img):
        ev = img.allocate_events(2)
        a = np.array([1.0])
        ra = np.zeros(1)
        b = np.array([float(img.rank)])
        rb = np.zeros(1)
        img.team_allreduce_async(a, ra, SUM, data_event=(ev, 0))
        img.team_allreduce_async(b, rb, SUM, data_event=(ev, 1))
        ev.wait(slot=0)
        ev.wait(slot=1)
        return ra[0], rb[0]

    run = run_caf(program, 4, backend=backend)
    assert all(r == (4.0, 6.0) for r in run.results)


def test_async_collective_on_subteam(backend):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        ev = img.allocate_events(1, team=team)
        send = np.array([1.0])
        recv = np.zeros(1)
        img.team_allreduce_async(send, recv, SUM, team=team, data_event=(ev, 0))
        ev.wait()
        return recv[0]

    run = run_caf(program, 6, backend=backend)
    assert all(r == 3.0 for r in run.results)


def test_finish_covers_async_collectives(backend):
    def program(img):
        send = np.array([2.0])
        recv = np.zeros(1)
        with img.finish(fast=True):
            img.team_allreduce_async(send, recv, SUM)
            img.cofence()
        return recv[0]

    run = run_caf(program, 4, backend=backend)
    assert all(r == 8.0 for r in run.results)
