"""Resilient RandomAccess and CGPOP: verified answers under mid-run crashes.

Crash times are expressed as fractions of the fault-free makespan. Shrink
recovery has unprotected windows (a crash landing inside the checkpoint
collective can deadlock the agreement — the classic blocking-coordinated-
checkpoint caveat), so the shrink tests probe a few fractions and require
at least one to recover end-to-end; the simulator is deterministic, so
whichever fraction works keeps working.
"""

import numpy as np
import pytest

from repro.caf.program import run_caf
from repro.resilience import run_resilient
from repro.resilience.apps import (
    cg_true_residual,
    ra_reference,
    run_resilient_cgpop,
    run_resilient_randomaccess,
)
from repro.sim.faults import FaultPlan

NR = 4
RA_KW = dict(table_bits=6, updates_per_batch=64, batches=4)
CG_KW = dict(ny=32, nx=16, tol=1e-8)
SHRINK_FRACS = (0.55, 0.7, 0.85, 0.95)


def _ra_verified(cluster):
    tables = cluster.shared("ra-res-tables", dict)
    ref = ra_reference(42, NR, RA_KW["table_bits"], RA_KW["updates_per_batch"],
                       RA_KW["batches"])
    return (sorted(tables) == list(range(NR))
            and all(np.array_equal(tables[d], ref[d]) for d in range(NR)))


def _cg_verified(cluster):
    sol = cluster.shared("cgpop-res-solution", dict)
    return cg_true_residual(sol, CG_KW["ny"], CG_KW["nx"], 11) < 1e-6


def _work_elapsed(program, backend, **kw):
    return run_caf(program, NR, backend=backend, wait_timeout=None, **kw).elapsed


# -- RandomAccess ---------------------------------------------------------


def test_ra_faultfree_matches_reference(backend):
    run = run_caf(run_resilient_randomaccess, NR, backend=backend, **RA_KW)
    assert _ra_verified(run.cluster)
    assert all(r["recoveries"] == 0 for r in run.results)


def test_ra_restart_recovers_from_crash(backend):
    t = _work_elapsed(run_resilient_randomaccess, backend, **RA_KW) * 0.6
    plan = FaultPlan(seed=3, crashes=[(1, t)])
    out = run_resilient(run_resilient_randomaccess, NR, mode="restart",
                        backend=backend, checkpoint_every=2, faults=plan,
                        deadline=10.0, **RA_KW)
    assert out.restarts >= 1
    assert out.attempts[0]["failed_images"] == [1]
    assert _ra_verified(out.cluster)


def test_ra_shrink_recovers_from_crash(backend):
    elapsed = _work_elapsed(run_resilient_randomaccess, backend, **RA_KW)
    recovered = []
    for frac in SHRINK_FRACS:
        plan = FaultPlan(seed=3, crashes=[(1, elapsed * frac)])
        try:
            out = run_resilient(run_resilient_randomaccess, NR, mode="shrink",
                                backend=backend, checkpoint_every=2,
                                faults=plan, deadline=10.0,
                                recovery="shrink", **RA_KW)
        except Exception:
            continue  # crash landed in an unprotected collective window
        if 1 not in out.cluster.failed_ranks:
            continue  # run finished before the crash fired
        live = [r for r in out.results if r is not None]
        assert sorted(r["rank"] for r in live) == [0, 2, 3]
        assert all(r["team_size"] == NR - 1 for r in live)
        assert all(r["recoveries"] >= 1 for r in live)
        assert _ra_verified(out.cluster)
        recovered.append(frac)
    assert recovered, "no crash fraction produced a successful shrink recovery"


# -- CGPOP ----------------------------------------------------------------


def test_cgpop_faultfree_converges(backend):
    run = run_caf(run_resilient_cgpop, NR, backend=backend, **CG_KW)
    assert all(r["converged"] for r in run.results)
    assert _cg_verified(run.cluster)


def test_cgpop_restart_recovers_from_crash(backend):
    t = _work_elapsed(run_resilient_cgpop, backend, **CG_KW) * 0.5
    plan = FaultPlan(seed=5, crashes=[(2, t)])
    out = run_resilient(run_resilient_cgpop, NR, mode="restart",
                        backend=backend, checkpoint_every=10, faults=plan,
                        deadline=30.0, **CG_KW)
    assert out.restarts >= 1
    assert out.attempts[0]["failed_images"] == [2]
    assert all(r["converged"] for r in out.results)
    assert _cg_verified(out.cluster)


def test_cgpop_shrink_recovers_from_crash(backend):
    elapsed = _work_elapsed(run_resilient_cgpop, backend, **CG_KW)
    recovered = []
    for frac in SHRINK_FRACS:
        plan = FaultPlan(seed=5, crashes=[(2, elapsed * frac)])
        try:
            out = run_resilient(run_resilient_cgpop, NR, mode="shrink",
                                backend=backend, checkpoint_every=10,
                                faults=plan, deadline=30.0,
                                recovery="shrink", **CG_KW)
        except Exception:
            continue
        if 2 not in out.cluster.failed_ranks:
            continue
        live = [r for r in out.results if r is not None]
        assert all(r["team_size"] == NR - 1 for r in live)
        assert all(r["recoveries"] >= 1 for r in live)
        assert all(r["converged"] for r in live)
        assert _cg_verified(out.cluster)
        recovered.append(frac)
    assert recovered, "no crash fraction produced a successful shrink recovery"


def test_ra_rejects_non_power_of_two():
    from repro.util.errors import CafError

    with pytest.raises(CafError, match="power of two"):
        run_caf(run_resilient_randomaccess, 3, backend="mpi", **RA_KW)
