"""Chaos campaign harness: case derivation, invariants, ledger, CLI."""

import json

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import (
    APPS,
    FAILED_EXPLAINED,
    HANG_VIOLATION,
    VERIFIED,
    VERIFY_VIOLATION,
    VIOLATIONS,
    AppSpec,
    CampaignConfig,
    CampaignRunner,
    case_from_seed,
    run_campaign,
)
from repro.util.errors import CafError, SimTimeoutError


def _cfg(**kw):
    base = dict(
        runs=4, seed=77, apps=("ra",), backends=("mpi",), modes=("faults",),
        determinism_every=0, minimize=False, verbose=False,
    )
    base.update(kw)
    return CampaignConfig(**base)


# -- deterministic case derivation ---------------------------------------


def test_cases_are_pure_functions_of_seed_and_index():
    cfg = _cfg(modes=("faults", "restart", "shrink"))
    a = [case_from_seed(cfg, i) for i in range(20)]
    b = [case_from_seed(cfg, i) for i in range(20)]
    assert a == b
    # The space is actually explored, not constant.
    assert len({c["mode"] for c in a}) > 1
    assert len({c["drop_rate"] for c in a}) == 20


def test_crash_only_scheduled_for_recovery_modes():
    cfg = _cfg(modes=("faults",))
    assert all(case_from_seed(cfg, i)["victim"] is None for i in range(10))
    cfg = _cfg(modes=("restart",))
    cases = [case_from_seed(cfg, i) for i in range(10)]
    assert all(c["victim"] is not None for c in cases)
    assert all(0.25 <= c["crash_frac"] <= 0.95 for c in cases)
    assert all(1 <= c["victim"] < cfg.nranks for c in cases)


def test_rates_stay_feasible():
    cfg = _cfg()
    for i in range(50):
        c = case_from_seed(cfg, i)
        total = (c["drop_rate"] + c["corrupt_rate"] + c["dup_rate"]
                 + c["delay_rate"])
        assert total < 1.0


# -- campaigns ------------------------------------------------------------


def test_fault_campaign_all_verified(tmp_path):
    cfg = _cfg(runs=4, out=tmp_path / "camp")
    summary = run_campaign(cfg)
    assert summary["counts"] == {VERIFIED: 4}
    assert summary["unexplained"] == 0
    assert all(r["fault_events"] >= 0 for r in summary["records"])

    # The ledger and per-case RunReports landed on disk.
    ledger = json.loads((tmp_path / "camp" / "campaign.json").read_text())
    assert ledger["counts"] == {VERIFIED: 4}
    for i in range(4):
        reports = sorted((tmp_path / "camp" / f"case-{i:04d}").glob(
            "run-*.report.json"))
        assert reports
        body = json.loads(reports[-1].read_text())
        assert body["meta"]["outcome"] == "ok"


def test_restart_campaign_recovers(tmp_path):
    cfg = _cfg(runs=2, seed=101, modes=("restart",), out=tmp_path / "camp")
    summary = run_campaign(cfg)
    assert summary["unexplained"] == 0
    for r in summary["records"]:
        assert r["outcome"] in (VERIFIED, FAILED_EXPLAINED)
        assert r["crash_time"] is not None


def test_verify_violation_is_flagged_and_fails_cli(monkeypatch, tmp_path):
    broken = AppSpec(
        name="ra", program=APPS["ra"].program, kwargs=APPS["ra"].kwargs,
        verify=lambda cluster, kwargs: False,  # everything is "wrong"
        checkpoint_every=2,
    )
    monkeypatch.setitem(APPS, "ra", broken)
    summary = run_campaign(_cfg(runs=1))
    assert summary["counts"] == {VERIFY_VIOLATION: 1}
    assert summary["unexplained"] == 1

    rc = chaos.main(["--runs", "1", "--seed", "77", "--apps", "ra",
                     "--backends", "mpi", "--modes", "faults", "--quiet",
                     "--no-minimize", "--determinism-every", "0"])
    assert rc == 1


def test_cli_exits_zero_on_clean_campaign(tmp_path, capsys):
    rc = chaos.main(["--runs", "2", "--seed", "77", "--apps", "ra",
                     "--backends", "mpi", "--modes", "faults", "--quiet",
                     "--no-minimize", "--determinism-every", "0",
                     "--out", str(tmp_path / "camp")])
    assert rc == 0
    assert "no unexplained violations" in capsys.readouterr().out
    assert (tmp_path / "camp" / "campaign.json").exists()


def test_determinism_invariant_runs_clean():
    # Every case index is sampled (determinism_every=1): verified cases get
    # replayed twice under the order digest and must match bit-for-bit.
    summary = run_campaign(_cfg(runs=2, determinism_every=1))
    assert summary["counts"] == {VERIFIED: 2}


# -- failure classification ----------------------------------------------


class _FakeCluster:
    def __init__(self, failed):
        self.failed_ranks = set(failed)


def _runner():
    return CampaignRunner(_cfg())


def test_hang_without_a_corpse_is_a_violation():
    exc = SimTimeoutError(5.0, {1: "event_wait"})
    exc.caf_cluster = _FakeCluster([])
    case = dict(victim=None)
    assert _runner()._classify_failure(case, exc) == HANG_VIOLATION
    assert HANG_VIOLATION in VIOLATIONS


def test_failure_with_injected_crash_is_explained():
    exc = SimTimeoutError(5.0, {1: "event_wait"})
    exc.caf_cluster = _FakeCluster([2])
    case = dict(victim=2)
    outcome = _runner()._classify_failure(case, exc)
    assert outcome == FAILED_EXPLAINED
    assert outcome not in VIOLATIONS


def test_unplanned_error_is_a_violation():
    exc = CafError("boom")
    case = dict(victim=None)
    assert _runner()._classify_failure(case, exc) in VIOLATIONS


# -- minimization hookup --------------------------------------------------


def test_campaign_minimizes_unexplained_failures(monkeypatch):
    # An app whose verification always fails minimizes down to a short
    # fault script: every subset reproduces, so ddmin drives to one event.
    broken = AppSpec(
        name="ra", program=APPS["ra"].program, kwargs=APPS["ra"].kwargs,
        verify=lambda cluster, kwargs: False,
        checkpoint_every=2,
    )
    monkeypatch.setitem(APPS, "ra", broken)
    summary = run_campaign(
        _cfg(runs=1, minimize=True, max_minimize_tests=16)
    )
    (record,) = summary["records"]
    assert record["outcome"] == VERIFY_VIOLATION
    assert record["minimized"] is not None
    assert len(record["minimized"]["minimal_events"]) <= 3
    assert record["minimized"]["tests"] <= 16
