"""Restart-from-checkpoint driver: crash consumption, budgets, outcomes."""

import numpy as np
import pytest

from repro.caf.program import run_caf
from repro.resilience import run_resilient
from repro.resilience.recovery import _strip_fired_crashes
from repro.sim.faults import FaultPlan
from repro.util.errors import CafError, ResilienceError

NR = 4
ITERS = 8


def stepper(img, *, iters=ITERS):
    r = img.resilience
    co = img.allocate_coarray(4, np.float64)
    start = r.resume_step() if r is not None and r.resumed is not None else 0
    img.sync_all()
    for i in range(start, iters):
        co.local[:] += 1.0
        img.compute(seconds=1e-3)
        img.barrier()
        if r is not None:
            r.step(state={"i": i + 1})
    img.barrier()
    return float(co.local[0])


def _midpoint(backend):
    base = run_caf(stepper, NR, backend=backend)
    return base.elapsed * 0.6


def test_restart_completes_through_crash(backend):
    plan = FaultPlan(seed=7, crashes=[(2, _midpoint(backend))])
    out = run_resilient(stepper, NR, mode="restart", backend=backend,
                        checkpoint_every=3, faults=plan, deadline=5.0)
    assert out.results == [float(ITERS)] * NR
    assert out.restarts == 1
    (attempt,) = out.attempts
    assert attempt["failed_images"] == [2]
    # The rerun started from a committed checkpoint, not from scratch.
    assert attempt["checkpoint_step"] in (3, 6)
    # The fired crash was consumed: the final cluster saw no failure.
    assert not out.cluster.failed_ranks


def test_restart_budget_exhaustion(backend):
    plan = FaultPlan(seed=7, crashes=[(2, _midpoint(backend))])
    with pytest.raises(ResilienceError, match="restart budget"):
        run_resilient(stepper, NR, mode="restart", backend=backend,
                      checkpoint_every=3, faults=plan, deadline=5.0,
                      max_restarts=0)


def test_restart_survives_multiple_crashes(backend):
    t = _midpoint(backend)
    plan = FaultPlan(seed=7, crashes=[(1, t * 0.8), (3, t)])
    out = run_resilient(stepper, NR, mode="restart", backend=backend,
                        checkpoint_every=2, faults=plan, deadline=5.0)
    assert out.results == [float(ITERS)] * NR
    assert out.restarts == 2
    assert [a["failed_images"] for a in out.attempts] == [[1], [3]]


def test_non_failure_errors_pass_through(backend):
    def buggy(img):
        raise CafError("application bug, not a crash")

    with pytest.raises(CafError, match="application bug"):
        run_resilient(buggy, NR, mode="restart", backend=backend,
                      checkpoint_every=2, max_restarts=3)


def test_unknown_mode_rejected():
    with pytest.raises(ResilienceError, match="unknown recovery mode"):
        run_resilient(stepper, NR, mode="rollback")


def test_strip_fired_crashes_rewinds_plan():
    plan = FaultPlan(seed=1, drop_rate=0.5, crashes=[(0, 1.0), (1, 2.0)],
                     record=True)
    # Burn some RNG draws, as a partial run would.
    class _Msg:
        src, dst, nbytes = 0, 1, 64
    for _ in range(5):
        plan.draw(_Msg.src, _Msg.dst, _Msg.nbytes)

    class _FakeCluster:
        failure_log = [{"rank": 0, "time": 1.0, "reason": "crash"}]

    fresh = _strip_fired_crashes(plan, _FakeCluster())
    assert fresh.crashes == [(1, 2.0)]
    assert fresh.drawn == 0  # rewound for a deterministic replay
    assert fresh.seed == plan.seed
