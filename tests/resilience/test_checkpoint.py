"""Coordinated checkpointing: cadence, consistency, persistence, resume."""

import numpy as np
import pytest

from repro.caf.program import run_caf
from repro.resilience import CheckpointStore
from repro.resilience.checkpoint import CHECKPOINT_VERSION, Checkpoint, ResilienceService
from repro.util.errors import ResilienceError

NR = 4
ITERS = 8
EVERY = 3


def counter(img, *, iters=ITERS):
    """Tiny iterative program: one coarray, one event array, app state."""
    r = img.resilience
    co = img.allocate_coarray(4, np.float64)
    ev = img.allocate_events(2)
    start = r.resume_step() if r is not None and r.resumed is not None else 0
    img.sync_all()
    right = (img.rank + 1) % img.nranks
    for i in range(start, iters):
        co.local[:] += 1.0
        ev.notify(right, slot=0)
        ev.wait(slot=0)
        img.barrier()
        if r is not None:
            r.step(state={"i": i + 1})
    img.barrier()
    return float(co.local[0])


def test_checkpoint_cadence_and_content(backend):
    run = run_caf(counter, NR, backend=backend, checkpoint_every=EVERY)
    svc = run.cluster.resilience
    assert run.results == [float(ITERS)] * NR
    # Cadence: one checkpoint per EVERY completed iterations.
    assert [c.step for c in svc.store.checkpoints] == [3, 6]
    ck = svc.store.latest()
    assert ck.version == CHECKPOINT_VERSION
    assert ck.nranks == NR and ck.members == tuple(range(NR))
    for rank in range(NR):
        # Quiesced snapshot: every image's coarray holds exactly `step`
        # increments — no torn or in-flight state.
        assert np.all(ck.coarrays[rank][0] == float(ck.step))
        assert ck.app_state[rank] == {"i": ck.step}
        # Event counts captured (notify/wait balanced each iteration).
        assert ck.events[rank][0] == [0, 0]


def test_checkpoint_disk_roundtrip(backend, tmp_path):
    store = CheckpointStore(tmp_path)
    run_caf(counter, NR, backend=backend, checkpoint_every=EVERY,
            checkpoint_store=store)
    assert len(list(tmp_path.glob("ckpt-*.npz"))) == 2
    loaded = CheckpointStore.load(tmp_path)
    assert [c.step for c in loaded.checkpoints] == [3, 6]
    orig = store.latest()
    back = loaded.latest()
    assert back.members == orig.members
    for rank in range(NR):
        assert np.array_equal(back.coarrays[rank][0], orig.coarrays[rank][0])
        assert back.events[rank][0] == orig.events[rank][0]
        # JSON round-trips the app-state blob.
        assert back.app_state[rank] == orig.app_state[rank]


def test_resume_refills_allocations(backend):
    first = run_caf(counter, NR, backend=backend, checkpoint_every=EVERY)
    ckpt = first.cluster.resilience.store.latest()
    assert ckpt.step == 6

    def probe(img):
        co = img.allocate_coarray(4, np.float64)
        img.allocate_events(2)
        # Restore is transparent: the re-made allocation already holds the
        # checkpointed data before the program touches it.
        assert np.all(co.local == float(ckpt.step))
        assert img.resilience.resume_step() == ckpt.step
        assert img.resilience.resume_state() == {"i": ckpt.step}
        img.sync_all()
        return True

    assert run_caf(probe, NR, backend=backend, resume_from=ckpt).results == [True] * NR


def test_resume_latest_string_and_completion(backend):
    store = CheckpointStore()
    run_caf(counter, NR, backend=backend, checkpoint_every=EVERY,
            checkpoint_store=store)
    # Resume from "latest" and run to completion: final answer matches an
    # uninterrupted run because iterations 0..5 come from the checkpoint.
    done = run_caf(counter, NR, backend=backend, checkpoint_every=EVERY,
                   checkpoint_store=store, resume_from="latest")
    assert done.results == [float(ITERS)] * NR


def test_size_mismatch_skips_restore(backend):
    first = run_caf(counter, NR, backend=backend, checkpoint_every=EVERY)
    ckpt = first.cluster.resilience.store.latest()

    def probe(img):
        co = img.allocate_coarray(8, np.float64)  # different shape: no refill
        img.sync_all()
        return float(co.local.sum())

    run = run_caf(probe, NR, backend=backend, resume_from=ckpt)
    assert run.results == [0.0] * NR


def test_service_validation():
    with pytest.raises(ResilienceError):
        ResilienceService(object(), every=0)
    ck = Checkpoint(step=1, time=0.0, nranks=2, members=(0, 1))
    with pytest.raises(ResilienceError):
        ck.coarray_partition(0, 0)


def test_load_rejects_wrong_version(tmp_path):
    store = CheckpointStore(tmp_path)
    ck = Checkpoint(step=1, time=0.0, nranks=1, members=(0,),
                    coarrays={0: [np.zeros(2)]}, events={0: []})
    store.save(ck)
    json_path = tmp_path / "ckpt-00000001.json"
    json_path.write_text(json_path.read_text().replace(
        f'"version": {CHECKPOINT_VERSION}', '"version": 999'))
    with pytest.raises(ResilienceError):
        CheckpointStore.load(tmp_path)
