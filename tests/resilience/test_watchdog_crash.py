"""Watchdog firing on crash-induced hangs: both dispatchers, both backends.

An event wait whose notifier is a corpse can never complete; plain
deadlock detection may not fire (retransmission timers keep the heap
busy), so the virtual-time watchdog is the backstop. The diagnostic must
do the post-mortem for you: name every blocked survivor with its call
site, and stamp the failed-image set onto the error.
"""

import re

import pytest

from repro.caf.program import run_caf
from repro.sim.faults import FaultPlan
from repro.util.errors import SimTimeoutError

VICTIM = 2


def orphaned_wait(img):
    """Ranks 0/1 wait on a slot only the (about to die) rank 2 would post."""
    ev = img.allocate_events(1)
    img.sync_all()
    if img.rank == VICTIM:
        img.compute(seconds=1.0)  # killed long before this finishes
        return
    ev.wait(0)


@pytest.mark.parametrize("fastpath", ["0", "1"])
def test_watchdog_names_corpse_and_blocked_ranks(monkeypatch, backend, fastpath):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
    with pytest.raises(SimTimeoutError) as exc_info:
        run_caf(orphaned_wait, 3, backend=backend, deadline=0.05,
                faults=FaultPlan(seed=4, crashes=[(VICTIM, 1e-3)]))
    exc = exc_info.value

    # Both survivors are reported blocked, at a wait call site; the dead
    # image is not listed as blocked (it is listed as dead).
    assert sorted(exc.blocked) == [0, 1]
    assert all("wait" in why for why in exc.blocked.values())
    assert VICTIM not in exc.blocked

    # The error names the corpse, both structurally and in the message.
    assert exc.failed_ranks == [VICTIM]
    assert f"failed images: [{VICTIM}]" in str(exc)
    assert re.search(r"rank 0: \S+.*rank 1: \S+", str(exc), re.DOTALL)

    # Survivors last made progress before the deadline, not at zero.
    assert exc.last_progress
    assert all(0 < t < 0.05 for t in exc.last_progress.values())


@pytest.mark.parametrize("fastpath", ["0", "1"])
def test_watchdog_report_identical_across_dispatchers_is_deterministic(
    monkeypatch, backend, fastpath
):
    """The same hang produces the same diagnostic on either dispatcher."""
    monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
    msgs = []
    for _ in range(2):
        with pytest.raises(SimTimeoutError) as exc_info:
            run_caf(orphaned_wait, 3, backend=backend, deadline=0.05,
                    faults=FaultPlan(seed=4, crashes=[(VICTIM, 1e-3)]))
        msgs.append(str(exc_info.value))
    assert msgs[0] == msgs[1]
