"""event_wait(timeout) racing an injected network delay.

The notify's delivery time is stretched by a seeded fault-plan delay while
the waiter arms a timeout: whichever fires first is a genuine race in
virtual time. The simulator must pick the SAME winner on every run and on
both dispatchers (``REPRO_SIM_FASTPATH=0`` legacy scheduler-thread loop vs
the fast-path), pinned by the event-order digest being bit-identical.
"""

import pytest

from repro.caf.program import run_caf
from repro.sim.faults import FaultPlan
from repro.util.errors import CafTimeoutError

# Spans both sides of the delayed notify's arrival (notifier computes
# ~5 ms before sending, the fault plan stretches delivery by up to 2 ms):
# the small timeouts lose to the clock, the large ones see the post, and
# the middle ones sit inside the injected-delay window where the winner
# depends on the exact seeded draw. Each must be stable.
TIMEOUTS = (1e-4, 3e-3, 4e-3, 5e-3, 5e-2)


def racer(img, *, timeout):
    ev = img.allocate_events(1)
    img.sync_all()
    if img.rank == 0:
        img.compute(seconds=5e-3)  # let rank 1 arm its timeout first
        ev.notify(1)
        out = "sent"
    else:
        try:
            ev.wait(0, timeout=timeout)
            out = "posted"
        except CafTimeoutError:
            out = "timeout"
    img.sync_all()
    return out


def _race(timeout):
    plan = FaultPlan(seed=21, delay_rate=1.0, delay_jitter=2e-3)
    run = run_caf(racer, 2, backend="mpi", faults=plan, deadline=5.0,
                  timeout=timeout)
    return run.results[1], run.cluster.engine.order_digest()


@pytest.mark.parametrize("timeout", TIMEOUTS)
def test_race_winner_and_digest_pinned_across_dispatchers(monkeypatch, timeout):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    outcomes = {}
    for fastpath in ("0", "1"):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
        outcomes[fastpath] = [_race(timeout) for _ in range(2)]

    for fastpath, runs in outcomes.items():
        winners = [w for w, _ in runs]
        digests = [d for _, d in runs]
        assert winners[0] == winners[1], f"winner flapped (fastpath={fastpath})"
        assert winners[0] in ("posted", "timeout")
        assert digests[0] is not None and digests[0] == digests[1]

    # Same winner AND bit-identical event order on both dispatchers.
    assert outcomes["0"][0][0] == outcomes["1"][0][0]
    assert outcomes["0"][0][1] == outcomes["1"][0][1]


def test_race_actually_has_two_outcomes(monkeypatch):
    """The parametrized sweep is a real race: the extremes land on
    opposite sides of the delayed arrival."""
    monkeypatch.delenv("REPRO_SIM_DIGEST", raising=False)
    lose, _ = _race(TIMEOUTS[0])
    win, _ = _race(TIMEOUTS[-1])
    assert lose == "timeout"
    assert win == "posted"
