"""ddmin minimization: synthetic subsets and a real seeded-bug reproducer."""

import numpy as np
import pytest

from repro.caf.program import run_caf
from repro.resilience.minimize import ddmin, minimize_plan
from repro.sim.faults import FaultDecision, FaultEvent, FaultPlan
from repro.util.errors import DeadlockError, SimTimeoutError

DROP = FaultDecision(drop=True)


def _events(n):
    return [FaultEvent(i, 0, 1, 64, DROP) for i in range(n)]


# -- pure ddmin -----------------------------------------------------------


def test_ddmin_finds_conspiring_pair():
    evs = _events(16)
    culprits = {evs[3], evs[11]}

    result = ddmin(evs, lambda s: culprits <= set(s))
    assert set(result.events) == culprits
    assert result.initial == 16
    assert result.reduction == 1.0 - 2 / 16
    assert result.tests == len(result.history)


def test_ddmin_single_culprit():
    evs = _events(9)
    result = ddmin(evs, lambda s: evs[5] in s)
    assert result.events == [evs[5]]


def test_ddmin_rejects_passing_start():
    with pytest.raises(ValueError, match="failing starting point"):
        ddmin(_events(4), lambda s: False)


def test_ddmin_budget_returns_best_so_far():
    evs = _events(32)
    result = ddmin(evs, lambda s: evs[0] in s, max_tests=3)
    assert result.tests <= 3
    assert evs[0] in result.events
    assert len(result.events) < 32  # made at least some progress


def test_to_dict_roundtrips_events():
    result = ddmin(_events(4), lambda s: len(s) >= 1)
    d = result.to_dict()
    back = [FaultEvent.from_dict(e) for e in d["minimal_events"]]
    assert back == result.events


# -- the real thing: minimize a hang down to its one dropped message ------


def notify_chain(img, *, rounds=6):
    """Rank 0 streams ``rounds`` notifies to rank 1; any dropped message
    (without the reliable transport) hangs rank 1's wait forever."""
    ev = img.allocate_events(1)
    if img.rank == 0:
        for _ in range(rounds):
            ev.notify(1)
    elif img.rank == 1:
        ev.wait(0, count=rounds)
    img.sync_all()


def _hangs(plan):
    try:
        run_caf(notify_chain, 2, backend="mpi", faults=plan, deadline=2.0)
    except (SimTimeoutError, DeadlockError):
        return True
    return False


def test_minimize_plan_reduces_hang_to_single_drop():
    # Record the chaos-style failure: a lossy unreliable run that hangs.
    plan = FaultPlan(seed=1234, drop_rate=0.4, record=True)
    assert _hangs(plan)
    recorded = list(plan.events)
    assert len(recorded) > 1, "want a multi-event starting point"

    result = minimize_plan(recorded, _hangs, max_tests=64)
    # Acceptance: the reproducer names at most 3 fault events; here a
    # single dropped message is already sufficient to hang the wait.
    assert len(result.events) <= 3
    assert len(result.events) == 1
    assert result.events[0].decision.drop
    assert result.reduction > 0.0
    # And the minimal script really does reproduce, standalone.
    from repro.sim.faults import ScriptedFaultPlan

    assert _hangs(ScriptedFaultPlan(list(result.events)))


def test_minimize_plan_carries_crashes_into_candidates():
    seen = []

    def probe(plan):
        seen.append(list(plan.crashes))
        return True  # everything fails: minimize to nothing but keep crashes

    minimize_plan(_events(4), probe, crashes=[(2, 0.5)], max_tests=16)
    assert seen and all(c == [(2, 0.5)] for c in seen)
