"""Shared fixtures for resilience tests: everything runs on both backends."""

import pytest

BACKENDS = ["mpi", "gasnet"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param
