"""FFT: distributed spectrum must match numpy.fft on the same input."""

import numpy as np
import pytest

from repro.apps.fft import make_input, run_fft
from repro.caf import run_caf
from repro.util.errors import CafError


def gathered_output(run, nranks):
    chunks = run.cluster._shared["fft-output"]
    return np.concatenate([chunks[r] for r in range(nranks)])


@pytest.mark.parametrize("nranks", [1, 2, 4, 8])
def test_spectrum_matches_numpy(backend, nranks):
    m = 1 << 10
    run = run_caf(run_fft, nranks, backend=backend, m=m, seed=3)
    got = gathered_output(run, nranks)
    expected = np.fft.fft(make_input(3, m))
    assert np.allclose(got, expected, atol=1e-8)


@pytest.mark.parametrize("m_log", [8, 12, 14])
def test_various_sizes(backend, m_log):
    m = 1 << m_log
    run = run_caf(run_fft, 4, backend=backend, m=m)
    got = gathered_output(run, 4)
    expected = np.fft.fft(make_input(7, m))
    assert np.allclose(got, expected, atol=1e-7)


def test_gflops_metric(backend):
    run = run_caf(run_fft, 4, backend=backend, m=1 << 12)
    for res in run.results:
        assert res.gflops > 0
        assert res.m == 1 << 12


def test_non_power_of_two_rejected(backend):
    with pytest.raises(CafError, match="power of two"):
        run_caf(run_fft, 2, backend=backend, m=1000)


def test_too_many_ranks_rejected(backend):
    # m = 2^6: n1 = 8, n2 = 8; P = 16 cannot divide them.
    with pytest.raises(CafError, match="divisible"):
        run_caf(run_fft, 16, backend=backend, m=1 << 6)


def test_alltoall_dominates_profile():
    run = run_caf(run_fft, 8, backend="gasnet", m=1 << 14)
    prof = run.profiler
    assert prof.total("alltoall") > 0
    assert prof.counts[0]["alltoall"] == 3  # three transposes


def test_caf_mpi_fft_faster_than_caf_gasnet():
    """The Figure 6/7 headline: CAF-MPI wins FFT via MPI_ALLTOALL."""
    from repro.sim.network import MachineSpec

    spec = MachineSpec(name="t", ranks_per_node=1, gasnet_srq_threshold=8)
    m = 1 << 14
    mpi = run_caf(run_fft, 8, spec, backend="mpi", m=m)
    gas = run_caf(run_fft, 8, spec, backend="gasnet", m=m)
    assert mpi.results[0].gflops > gas.results[0].gflops
