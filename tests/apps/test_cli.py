"""The `python -m repro.apps` driver."""

import pytest

from repro.apps.__main__ import main


@pytest.mark.parametrize(
    "argv,needle",
    [
        (["randomaccess", "--procs", "4", "--updates", "128"], "GUPS"),
        (["fft", "--procs", "4", "--m", "4096"], "GFlop/s"),
        (["hpl", "--procs", "2", "--n", "64"], "TFlop/s"),
        (["cgpop", "--procs", "2", "--ny", "8", "--nx", "4"], "converged=True"),
        (["cgpop2d", "--procs", "4", "--ny", "8", "--nx", "8"], "converged=True"),
        (["micro", "--procs", "2", "--op", "notify"], "ops/s"),
    ],
)
def test_cli_runs_each_app(capsys, argv, needle):
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert needle in out
    assert "time decomposition" in out


def test_cli_verification_verdicts_printed(capsys):
    main(["randomaccess", "--procs", "2", "--updates", "64"])
    out = capsys.readouterr().out
    assert "[PASS]" in out


def test_cli_backend_and_platform_options(capsys):
    main(["fft", "--procs", "4", "--m", "4096", "--backend", "gasnet", "--platform", "edison"])
    out = capsys.readouterr().out
    assert "edison" in out and "CAF-GASNET" in out


def test_cli_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["teleport"])
