"""HPCC-style verification phases over real benchmark runs."""

import numpy as np
import pytest

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import make_input, run_fft
from repro.apps.hpl import run_hpl
from repro.apps.randomaccess import run_randomaccess
from repro.apps.verification import (
    verify_cgpop,
    verify_fft,
    verify_hpl,
    verify_randomaccess,
)
from repro.caf import run_caf


def test_randomaccess_verification_passes(backend):
    kw = dict(table_bits_per_image=6, updates_per_image=256, batches=4, seed=5)
    run = run_caf(run_randomaccess, 4, backend=backend, **kw)
    report = verify_randomaccess(
        run.cluster._shared["ra-tables"],
        seed=5,
        nranks=4,
        table_bits_per_image=6,
        updates_per_image=256,
    )
    assert report.passed
    assert report.value == 0.0  # our routing loses nothing


def test_randomaccess_verification_detects_corruption(backend):
    kw = dict(table_bits_per_image=6, updates_per_image=256, batches=4, seed=5)
    run = run_caf(run_randomaccess, 4, backend=backend, **kw)
    tables = run.cluster._shared["ra-tables"]
    tables[2][:10] ^= np.uint64(0xDEADBEEF)  # corrupt ten entries
    report = verify_randomaccess(
        tables, seed=5, nranks=4, table_bits_per_image=6, updates_per_image=256
    )
    assert not report.passed
    assert report.value == pytest.approx(10 / (4 * 64))


def test_fft_verification_passes(backend):
    m = 1 << 10
    run = run_caf(run_fft, 4, backend=backend, m=m, seed=9)
    report = verify_fft(run.cluster._shared["fft-output"], make_input(9, m))
    assert report.passed


def test_fft_verification_detects_wrong_spectrum():
    m = 1 << 10
    run = run_caf(run_fft, 2, backend="mpi", m=m, seed=9)
    chunks = run.cluster._shared["fft-output"]
    chunks[1] = chunks[1] * 1.01  # 1% amplitude error
    report = verify_fft(chunks, make_input(9, m))
    assert not report.passed


def test_hpl_verification_passes(backend):
    run = run_caf(run_hpl, 3, backend=backend, n=96, block=16, seed=4)
    report = verify_hpl(
        run.cluster._shared["hpl-factors"], n=96, block=16, seed=4
    )
    assert report.passed


def test_hpl_verification_detects_bad_factor():
    run = run_caf(run_hpl, 2, backend="mpi", n=64, block=16, seed=4)
    factors = run.cluster._shared["hpl-factors"]
    next(iter(factors[0].values()))[10, 3] += 0.5
    report = verify_hpl(factors, n=64, block=16, seed=4)
    assert not report.passed


def test_cgpop_verification_passes(backend):
    run = run_caf(run_cgpop, 4, backend=backend, ny=16, nx=8, seed=3, tol=1e-10)
    report = verify_cgpop(
        run.cluster._shared["cgpop-solution"], ny=16, nx=8, seed=3
    )
    assert report.passed


def test_report_renders():
    from repro.apps.verification import VerificationReport

    r = VerificationReport("X", "m", 1.0, 2.0, True)
    assert "PASS" in str(r)
    r2 = VerificationReport("X", "m", 3.0, 2.0, False)
    assert "FAIL" in str(r2)
