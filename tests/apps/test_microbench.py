"""Microbenchmark driver: correctness of the measurement plumbing."""

import pytest

from repro.apps.microbench import OPS, run_microbench
from repro.caf import run_caf
from repro.platforms import FUSION
from repro.util.errors import CafError


@pytest.mark.parametrize("op", OPS)
def test_each_op_produces_positive_rate(backend, op):
    run = run_caf(run_microbench, 4, FUSION, backend=backend, op=op, iterations=50)
    res = run.results[0]
    assert res.op == op
    assert res.iterations == 50
    assert res.ops_per_second > 0
    assert res.elapsed > 0


def test_bad_op_rejected(backend):
    with pytest.raises(CafError, match="op must be"):
        run_caf(run_microbench, 2, FUSION, backend=backend, op="teleport")


def test_rates_deterministic(backend):
    runs = [
        run_caf(run_microbench, 4, FUSION, backend=backend, op="write", iterations=50)
        for _ in range(2)
    ]
    assert runs[0].results[0].ops_per_second == runs[1].results[0].ops_per_second


def test_single_rank_self_ops():
    run = run_caf(run_microbench, 1, FUSION, backend="mpi", op="write", iterations=20)
    assert run.results[0].ops_per_second > 0


def test_gasnet_p2p_faster_than_mpi_on_fusion():
    """The Figure 3 mechanism at the op level: GASNet RMA has lower
    software overhead than MVAPICH2 RMA."""
    rates = {}
    for backend in ("mpi", "gasnet"):
        run = run_caf(
            run_microbench, 2, FUSION, backend=backend, op="write", iterations=100
        )
        rates[backend] = run.results[0].ops_per_second
    assert rates["gasnet"] > rates["mpi"]


def test_payload_size_slows_rate(backend):
    small = run_caf(
        run_microbench, 2, FUSION, backend=backend, op="write", iterations=50, nbytes=8
    ).results[0].ops_per_second
    big = run_caf(
        run_microbench,
        2,
        FUSION,
        backend=backend,
        op="write",
        iterations=50,
        nbytes=1 << 16,
    ).results[0].ops_per_second
    assert big < small
