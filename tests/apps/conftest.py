import pytest

BACKENDS = ["mpi", "gasnet"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param
