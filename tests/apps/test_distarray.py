"""DistributedArray: remote load/store conversion (the §7 use case)."""

import numpy as np
import pytest

from repro.apps.distarray import DistributedArray
from repro.caf import run_caf
from repro.util.errors import CafError


def test_fill_and_gather(backend):
    def program(img):
        arr = DistributedArray(img, 100)
        arr.fill(float(img.rank))
        img.sync_all()
        return arr.gather().tolist()

    run = run_caf(program, 4, backend=backend)
    expected = []
    block = 25
    for r in range(4):
        expected += [float(r)] * block
    for r in run.results:
        assert r == expected


def test_remote_scalar_read_write(backend):
    def program(img):
        arr = DistributedArray(img, 64)
        img.sync_all()
        if img.rank == 0:
            arr[63] = 4.5  # owned by the last image
            assert arr[63] == 4.5
        img.sync_all()
        lo, hi = arr.local_range
        return arr.local.tolist() if lo <= 63 < hi else None

    run = run_caf(program, 4, backend=backend)
    assert run.results[3][-1] == 4.5


def test_slice_spanning_images(backend):
    def program(img):
        arr = DistributedArray(img, 40)
        lo, hi = arr.local_range
        arr.local[:] = np.arange(lo, hi, dtype=np.float64)
        img.sync_all()
        return arr[5:35].tolist()

    run = run_caf(program, 4, backend=backend)
    for r in run.results:
        assert r == list(np.arange(5.0, 35.0))


def test_strided_and_fancy_indexing(backend):
    def program(img):
        arr = DistributedArray(img, 32)
        lo, hi = arr.local_range
        arr.local[:] = np.arange(lo, hi, dtype=np.float64)
        img.sync_all()
        strided = arr[::7]
        fancy = arr[np.array([31, 0, 16])]
        return strided.tolist(), fancy.tolist()

    run = run_caf(program, 4, backend=backend)
    for strided, fancy in run.results:
        assert strided == [0.0, 7.0, 14.0, 21.0, 28.0]
        assert fancy == [31.0, 0.0, 16.0]


def test_slice_assignment_across_images(backend):
    def program(img):
        arr = DistributedArray(img, 24)
        img.sync_all()
        if img.rank == 0:
            arr[4:20] = np.arange(16, dtype=np.float64)
        img.sync_all()
        return arr.gather().tolist()

    run = run_caf(program, 3, backend=backend)
    expected = [0.0] * 4 + list(np.arange(16.0)) + [0.0] * 4
    assert run.results[0] == expected


def test_add_at_accumulates(backend):
    def program(img):
        arr = DistributedArray(img, 16)
        img.sync_all()
        # Images take turns (barrier-synchronized rounds, like GFMC phases).
        for r in range(img.nranks):
            if img.rank == r:
                arr.add_at(np.array([3, 8, 3]), np.array([1.0, 2.0, 1.0]))
            img.barrier()
        img.sync_all()
        return arr.gather()[np.array([3, 8])].tolist()

    run = run_caf(program, 4, backend=backend)
    assert run.results[0] == [8.0, 8.0]  # 2 per image at idx 3, 2 at idx 8


def test_global_sum(backend):
    def program(img):
        arr = DistributedArray(img, 50)
        arr.fill(1.0)
        img.sync_all()
        return arr.global_sum()

    run = run_caf(program, 4, backend=backend)
    # Tail image's logical block is short: only 50 real elements exist.
    assert all(r == 50.0 for r in run.results)


def test_uneven_distribution_tail(backend):
    def program(img):
        arr = DistributedArray(img, 10)  # block=4 over 3 images: 4,4,2
        return arr.local_range, arr.local.size

    run = run_caf(program, 3, backend=backend)
    assert run.results == [((0, 4), 4), ((4, 8), 4), ((8, 10), 2)]


def test_out_of_range_rejected(backend):
    def program(img):
        arr = DistributedArray(img, 8)
        arr[8]

    with pytest.raises(CafError, match="outside"):
        run_caf(program, 2, backend=backend)


def test_on_subteam(backend):
    def program(img):
        team = img.team_split(img.team_world, color=img.rank % 2)
        arr = DistributedArray(img, 20, team=team)
        arr.fill(float(img.rank % 2))
        img.barrier(team)
        total = arr.global_sum()
        img.barrier()
        return total

    run = run_caf(program, 4, backend=backend)
    assert run.results[0] == 0.0  # even team filled with 0
    assert run.results[1] == 20.0  # odd team filled with 1
