"""CGPOP 2-D decomposition: 4-neighbor halos with strided sections."""

import numpy as np
import pytest

from repro.apps.cgpop import (
    apply_laplacian_2d,
    assemble_2d_solution,
    make_rhs,
    run_cgpop,
    run_cgpop_2d,
)
from repro.caf import run_caf
from repro.util.errors import CafError

from tests.apps.test_cgpop import gathered_solution, laplacian_matrix


def test_apply_laplacian_2d_matches_matrix():
    ny, nx = 6, 5
    rng = np.random.default_rng(0)
    v = rng.standard_normal((ny, nx))
    out = apply_laplacian_2d(
        v, np.zeros(nx), np.zeros(nx), np.zeros(ny), np.zeros(ny)
    )
    a = laplacian_matrix(ny, nx)
    assert np.allclose(out.reshape(-1), a @ v.reshape(-1))


@pytest.mark.parametrize("nranks,px,py", [(4, 2, 2), (6, 3, 2), (8, 4, 2)])
def test_2d_converges_to_true_solution(backend, nranks, px, py):
    ny, nx = 8 * py, 4 * px
    run = run_caf(
        run_cgpop_2d, nranks, backend=backend, ny=ny, nx=nx, px=px, py=py, seed=2
    )
    assert all(r.converged for r in run.results)
    x = assemble_2d_solution(run.cluster._shared["cgpop2d-solution"], ny, nx)
    a = laplacian_matrix(ny, nx)
    b = make_rhs(2, ny, nx)
    assert (
        np.linalg.norm(a @ x.reshape(-1) - b.reshape(-1))
        < 1e-5 * np.linalg.norm(b)
    )


def test_2d_matches_1d_solution(backend):
    ny, nx = 16, 8
    run1 = run_caf(run_cgpop, 4, backend=backend, ny=ny, nx=nx, seed=7)
    run2 = run_caf(run_cgpop_2d, 4, backend=backend, ny=ny, nx=nx, px=2, py=2, seed=7)
    x1 = gathered_solution(run1, 4)
    x2 = assemble_2d_solution(run2.cluster._shared["cgpop2d-solution"], ny, nx)
    assert np.allclose(x1, x2, atol=1e-7)


def test_auto_factorization():
    run = run_caf(run_cgpop_2d, 6, backend="mpi", ny=12, nx=12, seed=1)
    assert all(r.converged for r in run.results)


def test_bad_grid_divisibility_rejected(backend):
    with pytest.raises(CafError, match="not divisible"):
        run_caf(run_cgpop_2d, 4, backend=backend, ny=9, nx=10, px=2, py=2)


def test_bad_factorization_rejected(backend):
    with pytest.raises(CafError, match="!="):
        run_caf(run_cgpop_2d, 4, backend=backend, ny=8, nx=8, px=3, py=2)


def test_east_west_halos_use_single_messages():
    """Column halos must travel as one strided message, not per-element."""
    run = run_caf(
        run_cgpop_2d, 4, backend="mpi", ny=16, nx=16, px=2, py=2,
        max_iter=2, tol=0.0, trace=True,
    )
    transfers = run.tracer.of_kind("transfer")
    # Column payloads are 8 doubles = 64 bytes; count messages of that size
    # (plus the RMA envelope) — there should be few, not 8x-per-element.
    col_sized = [e for e in transfers if 64 <= e.detail["nbytes"] <= 200]
    per_exchange_links = 4 * 2  # 4 images x (east+west averages 1 each)
    exchanges = 1 + 2  # initial residual + 2 iterations
    assert len(col_sized) <= 4 * per_exchange_links * exchanges
