"""CGPOP: the CG solver must converge to the true Laplacian solution."""

import numpy as np
import pytest

from repro.apps.cgpop import apply_laplacian, make_rhs, run_cgpop
from repro.caf import run_caf
from repro.util.errors import CafError


def laplacian_matrix(ny, nx):
    import scipy.sparse as sp

    n = ny * nx
    main = 4.0 * np.ones(n)
    east = -np.ones(n - 1)
    east[np.arange(1, n) % nx == 0] = 0.0
    south = -np.ones(n - nx)
    return sp.diags(
        [main, east, east, south, south], [0, 1, -1, nx, -nx], format="csr"
    )


def gathered_solution(run, nranks):
    sol = run.cluster._shared["cgpop-solution"]
    return np.vstack([sol[r] for r in range(nranks)])


@pytest.mark.parametrize("mode", ["push", "pull"])
@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_converges_to_true_solution(backend, mode, nranks):
    ny, nx = 16, 8
    run = run_caf(run_cgpop, nranks, backend=backend, ny=ny, nx=nx, mode=mode, seed=4)
    assert all(r.converged for r in run.results)
    x = gathered_solution(run, nranks).reshape(-1)
    a = laplacian_matrix(ny, nx)
    b = make_rhs(4, ny, nx).reshape(-1)
    assert np.linalg.norm(a @ x - b) < 1e-5 * np.linalg.norm(b)


def test_push_and_pull_agree(backend):
    ny, nx = 16, 8
    push = run_caf(run_cgpop, 4, backend=backend, ny=ny, nx=nx, mode="push")
    pull = run_caf(run_cgpop, 4, backend=backend, ny=ny, nx=nx, mode="pull")
    xp = gathered_solution(push, 4)
    xq = gathered_solution(pull, 4)
    assert np.allclose(xp, xq, atol=1e-8)
    assert push.results[0].iterations == pull.results[0].iterations


def test_apply_laplacian_matches_matrix():
    ny, nx = 6, 5
    rng = np.random.default_rng(0)
    v = rng.standard_normal((ny, nx))
    out = apply_laplacian(v, np.zeros(nx), np.zeros(nx))
    a = laplacian_matrix(ny, nx)
    assert np.allclose(out.reshape(-1), a @ v.reshape(-1))


def test_bad_mode_rejected(backend):
    with pytest.raises(CafError, match="push.*pull"):
        run_caf(run_cgpop, 2, backend=backend, ny=8, nx=4, mode="sideways")


def test_indivisible_rows_rejected(backend):
    with pytest.raises(CafError, match="divide"):
        run_caf(run_cgpop, 3, backend=backend, ny=16, nx=4)


def test_backends_indistinguishable_on_cgpop():
    """Figures 11-12: halo exchange costs are comparable across runtimes."""
    from repro.sim.network import MachineSpec

    spec = MachineSpec(name="t", ranks_per_node=1)
    kw = dict(ny=32, nx=16)
    times = {}
    for be in ("mpi", "gasnet"):
        run = run_caf(run_cgpop, 4, spec, backend=be, mode="push", **kw)
        times[be] = run.results[0].elapsed
    ratio = times["mpi"] / times["gasnet"]
    assert 0.5 < ratio < 2.0


def test_hybrid_uses_real_mpi_reduction():
    run = run_caf(run_cgpop, 2, backend="gasnet", ny=8, nx=4)
    # Hybrid CGPOP under CAF-GASNet must have initialized MPI too (Fig. 1).
    mb = run.memory.rank_mb(0, prefix="mpi/")
    assert mb > 0
