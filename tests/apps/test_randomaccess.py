"""RandomAccess: routing correctness against the serial reference."""

import pytest

from repro.apps.randomaccess import (
    generate_updates,
    reference_tables,
    run_randomaccess,
)
from repro.caf import run_caf
from repro.util.errors import CafError


@pytest.mark.parametrize("nranks", [1, 2, 4, 8])
def test_tables_match_serial_reference(backend, nranks):
    kw = dict(table_bits_per_image=6, updates_per_image=256, batches=4, seed=9)
    run = run_caf(run_randomaccess, nranks, backend=backend, **kw)
    tables = run.cluster._shared["ra-tables"]
    expected = reference_tables(9, nranks, 6, 256)
    for rank in range(nranks):
        assert (tables[rank] == expected[rank]).all(), f"rank {rank} table differs"


def test_gups_metric_positive(backend):
    run = run_caf(
        run_randomaccess,
        4,
        backend=backend,
        table_bits_per_image=6,
        updates_per_image=128,
        batches=2,
    )
    for res in run.results:
        assert res.gups > 0
        assert res.elapsed > 0
        assert res.nranks == 4


def test_non_power_of_two_rejected(backend):
    with pytest.raises(CafError, match="power-of-two"):
        run_caf(run_randomaccess, 3, backend=backend, updates_per_image=16)


def test_updates_deterministic():
    a = generate_updates(1, 2, 100, 20)
    b = generate_updates(1, 2, 100, 20)
    c = generate_updates(1, 3, 100, 20)
    assert (a == b).all()
    assert not (a == c).all()


def test_single_batch_roundtrip(backend):
    run = run_caf(
        run_randomaccess,
        2,
        backend=backend,
        table_bits_per_image=5,
        updates_per_image=64,
        batches=1,
    )
    tables = run.cluster._shared["ra-tables"]
    expected = reference_tables(42, 2, 5, 64)
    for rank in range(2):
        assert (tables[rank] == expected[rank]).all()


def test_profile_categories_present():
    run = run_caf(
        run_randomaccess,
        4,
        backend="mpi",
        table_bits_per_image=6,
        updates_per_image=256,
        batches=4,
    )
    cats = run.profiler.categories()
    for needed in ("coarray_write", "event_notify", "event_wait", "computation"):
        assert needed in cats


def test_checksum_consistent_across_backends():
    kw = dict(table_bits_per_image=6, updates_per_image=256, batches=4, seed=1)
    mpi = run_caf(run_randomaccess, 4, backend="mpi", **kw)
    gas = run_caf(run_randomaccess, 4, backend="gasnet", **kw)
    assert [r.table_checksum for r in mpi.results] == [
        r.table_checksum for r in gas.results
    ]
