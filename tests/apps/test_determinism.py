"""End-to-end determinism: identical runs produce identical virtual times.

The engine is deterministic by construction; these tests pin that property
at the application level, where any hidden ordering dependence (dict
iteration, set ordering, unseeded RNG) would surface as timing jitter.
"""

import pytest

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import run_fft
from repro.apps.hpl import run_hpl
from repro.apps.randomaccess import run_randomaccess
from repro.caf import run_caf
from repro.platforms import FUSION

CASES = [
    ("randomaccess", run_randomaccess, dict(table_bits_per_image=6, updates_per_image=128, batches=2)),
    ("fft", run_fft, dict(m=1 << 10)),
    ("hpl", run_hpl, dict(n=64, block=16)),
    ("cgpop", run_cgpop, dict(ny=16, nx=8, max_iter=20, tol=0.0)),
]


@pytest.mark.parametrize("name,app,kwargs", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_repeated_runs_bitwise_identical(name, app, kwargs, backend):
    runs = [
        run_caf(app, 4, FUSION, backend=backend, **kwargs) for _ in range(2)
    ]
    assert runs[0].elapsed == runs[1].elapsed
    assert runs[0].fabric.messages_sent == runs[1].fabric.messages_sent
    assert runs[0].fabric.bytes_sent == runs[1].fabric.bytes_sent
    assert runs[0].profiler.breakdown() == runs[1].profiler.breakdown()


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_different_sim_seed_same_answers(backend):
    """The simulator seed must not change application *results* (apps seed
    their own RNGs), only incidental per-rank noise sources."""
    a = run_caf(run_fft, 4, FUSION, backend=backend, m=1 << 10, sim_seed=1)
    b = run_caf(run_fft, 4, FUSION, backend=backend, m=1 << 10, sim_seed=2)
    import numpy as np

    for r in range(4):
        assert np.allclose(
            a.cluster._shared["fft-output"][r],
            b.cluster._shared["fft-output"][r],
        )


def test_backend_choice_changes_time_not_answers():
    import numpy as np

    runs = {
        backend: run_caf(run_fft, 4, FUSION, backend=backend, m=1 << 10)
        for backend in ("mpi", "gasnet")
    }
    for r in range(4):
        assert np.allclose(
            runs["mpi"].cluster._shared["fft-output"][r],
            runs["gasnet"].cluster._shared["fft-output"][r],
        )
    assert runs["mpi"].elapsed != runs["gasnet"].elapsed
