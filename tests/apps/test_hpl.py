"""HPL: the distributed factorization must reproduce L @ U = A."""

import numpy as np
import pytest

from repro.apps.hpl import assemble_lu, make_matrix, run_hpl
from repro.caf import run_caf
from repro.util.errors import CafError


@pytest.mark.parametrize("nranks", [1, 2, 3, 4])
def test_lu_reconstructs_matrix(backend, nranks):
    n, block = 96, 16
    run = run_caf(run_hpl, nranks, backend=backend, n=n, block=block, seed=2)
    lower, upper = assemble_lu(run.cluster._shared["hpl-factors"], n, block)
    a = make_matrix(2, n)
    assert np.allclose(lower @ upper, a, atol=1e-6 * n)


def test_solve_linear_system(backend):
    """End-to-end: use the distributed factors to solve Ax = b."""
    n, block = 64, 8
    run = run_caf(run_hpl, 4, backend=backend, n=n, block=block, seed=6)
    lower, upper = assemble_lu(run.cluster._shared["hpl-factors"], n, block)
    a = make_matrix(6, n)
    rng = np.random.default_rng(1)
    b = rng.standard_normal(n)
    from scipy.linalg import solve_triangular

    y = solve_triangular(lower, b, lower=True, unit_diagonal=True)
    x = solve_triangular(upper, y)
    assert np.allclose(a @ x, b, atol=1e-6)


def test_tflops_metric(backend):
    run = run_caf(run_hpl, 2, backend=backend, n=64, block=16)
    for res in run.results:
        assert res.tflops > 0
        assert res.elapsed > 0


def test_bad_block_size_rejected(backend):
    with pytest.raises(CafError, match="divide"):
        run_caf(run_hpl, 2, backend=backend, n=100, block=16)


def test_backends_indistinguishable_on_hpl():
    """Figures 9-10: HPL is compute-bound; runtimes within a few percent.

    The paper's N is millions; at simulation scale we recreate the
    compute-bound regime by slowing the modeled flop rate instead.
    """
    from repro.sim.network import MachineSpec

    spec = MachineSpec(name="t", ranks_per_node=1, flops_per_sec=2e8)
    kw = dict(n=128, block=16)
    mpi = run_caf(run_hpl, 4, spec, backend="mpi", **kw)
    gas = run_caf(run_hpl, 4, spec, backend="gasnet", **kw)
    ratio = mpi.results[0].tflops / gas.results[0].tflops
    assert 0.8 < ratio < 1.25
