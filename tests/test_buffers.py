"""repro.util.buffers: the flatten/snapshot zero-copy privacy contract."""

import array

import numpy as np

from repro.util.buffers import flatten, snapshot


def test_flatten_ndarray_is_shared_not_private():
    a = np.arange(4, dtype=np.float64)
    flat, private = flatten(a, np.float64)
    assert not private
    assert np.shares_memory(flat, a)


def test_flatten_list_coercion_is_private():
    flat, private = flatten([1.0, 2.0], np.float64)
    assert private
    assert flat.tolist() == [1.0, 2.0]


def test_flatten_dtype_conversion_is_private():
    a = np.arange(4, dtype=np.int64)
    flat, private = flatten(a, np.float64)
    assert private
    assert not np.shares_memory(flat, a)


def test_flatten_noncontiguous_is_private():
    a = np.arange(8, dtype=np.float64)[::2]
    flat, private = flatten(a, np.float64)
    assert private
    assert not np.shares_memory(flat, a)


def test_flatten_buffer_protocol_inputs_are_not_private():
    """Regression: np.asarray *aliases* buffer-protocol objects (memoryview,
    array.array), so flatten must not mark them private — snapshot would
    skip the defensive copy and retain caller-mutable memory."""
    src = array.array("d", [1.0, 2.0, 3.0])
    flat, private = flatten(src, np.float64)
    assert not private

    mv = memoryview(np.arange(4, dtype=np.float64))
    flat, private = flatten(mv, np.float64)
    assert not private


def test_snapshot_of_buffer_protocol_input_is_immune_to_mutation():
    src = array.array("d", [1.0, 2.0, 3.0])
    snap = snapshot(src, np.float64)
    src[0] = -1.0
    assert snap[0] == 1.0


def test_snapshot_of_ndarray_is_immune_to_mutation():
    a = np.arange(4, dtype=np.float64)
    snap = snapshot(a, np.float64)
    a[0] = -1.0
    assert snap[0] == 0.0
