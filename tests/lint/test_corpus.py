"""Fixture corpus for repro.lint: every rule has at least one true
positive (``cafNNN_bad.py``) and one near-miss that must stay clean
(``cafNNN_ok.py``).

Bad fixtures mark each expected finding with a trailing
``# expected: CAFNNN`` comment; the test asserts the linter reports
exactly that set of (rule, line) pairs — right rule, right line, nothing
else. Ok fixtures must produce zero findings from *any* rule.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import PROTOCOL_RULES, lint_file

FIXTURES = Path(__file__).parent / "fixtures"
BAD = sorted(FIXTURES.glob("caf*_bad.py"))
OK = sorted(FIXTURES.glob("caf*_ok.py"))

_MARKER = re.compile(r"#\s*expected:\s*(CAF\d{3})")


def expected_findings(path: Path) -> list[tuple[str, int]]:
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _MARKER.finditer(line):
            pairs.append((match.group(1), lineno))
    return pairs


@pytest.mark.parametrize("path", BAD, ids=[p.stem for p in BAD])
def test_bad_fixture_flagged_exactly(path):
    findings = lint_file(str(path))
    got = sorted((f.rule, f.line) for f in findings)
    want = sorted(expected_findings(path))
    assert want, f"{path.name} has no '# expected:' markers"
    assert got == want
    for f in findings:
        assert f.path == str(path)
        assert not f.suppressed
        assert f"{path.name}:{f.line}" in f.site


@pytest.mark.parametrize("path", OK, ids=[p.stem for p in OK])
def test_ok_fixture_clean(path):
    findings = lint_file(str(path))
    assert findings == [], [f.format() for f in findings]


def test_every_protocol_rule_has_fixture_pair():
    stems = {p.stem for p in BAD} | {p.stem for p in OK}
    for rule_id in PROTOCOL_RULES:
        slug = rule_id.lower()
        assert f"{slug}_bad" in stems, f"missing true-positive fixture for {rule_id}"
        assert f"{slug}_ok" in stems, f"missing near-miss fixture for {rule_id}"


def test_bad_fixtures_cover_all_protocol_rules():
    covered = set()
    for path in BAD:
        covered.update(rule for rule, _ in expected_findings(path))
    assert covered == set(PROTOCOL_RULES)
