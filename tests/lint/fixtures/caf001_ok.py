"""CAF001 near-misses that must stay clean.

The key one is the branch-*matched* collective: rank-dependent control
flow is fine as long as every arm reaches the same collectives the same
number of times (root broadcasts the pivot, everyone else receives it).
"""


def matched_broadcast(img, panel, scratch):
    if img.rank == 0:
        panel.scale(2.0)
        img.team_broadcast(panel)
    else:
        img.team_broadcast(scratch)


def uniform_guard(img):
    # `nranks` is the same on every image: not rank-dependent.
    if img.nranks > 1:
        img.sync_all()


def rank_dependent_local_work(img, log):
    if img.rank == 0:
        log.append("step")
    img.sync_all()


def symmetric_returns(img):
    # Both arms return; no image reaches code the other skipped.
    if img.rank == 0:
        return 1
    return 2
