"""CAF011 true positive: the paper's Fig. 4 FLUSH_ALL scaling cliff.

``flush_all`` walks every rank in the window group, so calling it once
per update-loop iteration pays O(P) per iteration — the exact hot-loop
shape whose measured cliff is the paper's Figure 4.
"""

import numpy as np


def update_loop(img):
    win = img.mpi().win_allocate(1 << 10)
    win.lock_all()
    for _ in range(256):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
        win.flush_all()  # expected: CAF011
    win.unlock_all()


def param_trip(img, iters):
    win = img.mpi().win_allocate(1 << 10)
    win.lock_all()
    for _ in range(iters):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
        win.flush_local_all()  # expected: CAF011
    win.unlock_all()
