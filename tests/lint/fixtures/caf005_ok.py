"""CAF005 near-misses: bounded probes and properly paired waits."""


def bounded_wait_without_notify(img):
    # A timed wait / trywait is a probe, not a hang: legal without a
    # module-local notify (e.g. polling for a remote image's signal).
    ev = img.allocate_events(1)
    ev.wait(timeout=0.001)
    return ev.trywait()


def paired_wait(img):
    ev = img.allocate_events(1)
    right = (img.rank + 1) % img.nranks
    ev.notify(right)
    ev.wait()
