"""CAF012 near-misses: the same interprocedural/loop-carried shapes,
correctly synchronized, must stay clean."""

import numpy as np


def _halo_push(img, co):
    co.write((img.rank + 1) % img.nranks, np.ones(8))


def interprocedural_synced(img):
    co = img.allocate_coarray(8)
    comm = img.mpi().COMM_WORLD
    img.sync_all()
    _halo_push(img, co)
    img.sync_all()  # completes the helper's put before MPI
    comm.barrier()


def loop_carried_synced(img):
    co = img.allocate_coarray(8)
    comm = img.mpi().COMM_WORLD
    for _ in range(4):
        co.write((img.rank + 1) % img.nranks, np.ones(8))
        img.sync_all()  # nothing pending when the collective runs
        comm.allreduce(np.zeros(1))


def events_balanced(img):
    # One notify delivered to each rank, one consumed by each rank.
    ev = img.allocate_events(1)
    ev.notify((img.rank + 1) % img.nranks, slot=0)
    ev.wait(slot=0)


def sends_match_recvs(img):
    # A clean shift: every rank sends right and receives from the left.
    comm = img.mpi().COMM_WORLD
    buf = np.zeros(4)
    if img.rank == 0:
        comm.send(np.ones(4), (img.rank + 1) % img.nranks)
        comm.recv(buf, (img.rank - 1) % img.nranks)
    else:
        comm.recv(buf, (img.rank - 1) % img.nranks)
        comm.send(np.ones(4), (img.rank + 1) % img.nranks)
