"""CAF010 true positive: a lock epoch left open at function end."""


def epoch_left_open(comm):
    win = comm.win_allocate(64)
    win.lock(1)  # expected: CAF010
    win.put([2.0], 1)
