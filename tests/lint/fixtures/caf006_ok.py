"""CAF006 near-misses: CAF completion precedes every blocking MPI call.

This is exactly the discipline the paper's hybrid CGPOP follows: finish
the coarray phase (sync_all / event wait) before handing control to MPI.
"""


def figure2_fixed(img):
    co = img.allocate_coarray(4)
    mpi = img.mpi()
    img.sync_all()
    if img.rank == 0:
        co.write(1, [1.0] * 4)
    img.sync_all()  # completes the put before entering MPI
    mpi.COMM_WORLD.barrier()


def halo_then_mpi_reduce(img):
    co = img.allocate_coarray(8)
    ev = img.allocate_events(1)
    mpi = img.mpi()
    right = (img.rank + 1) % img.nranks
    co.write(right, [1.0] * 8)
    ev.notify(right)
    ev.wait()  # event wait is a CAF synchronization point
    mpi.COMM_WORLD.allreduce([1.0], [0.0], "sum")
