"""CAF011 near-misses: per-target flush in the loop, flush_all outside.

This is the paper's own remedy for Fig. 4: flush only the target the
iteration touched, and settle the whole window once after the loop.
"""

import numpy as np


def flush_per_target(img):
    win = img.mpi().win_allocate(1 << 10)
    win.lock_all()
    for _ in range(256):
        target = (img.rank + 1) % img.nranks
        win.put(np.ones(8), target)
        win.flush(target)  # O(1): only the touched rank
    win.unlock_all()


def flush_all_hoisted(img):
    win = img.mpi().win_allocate(1 << 10)
    win.lock_all()
    for _ in range(256):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
    win.flush_all()  # once, after the loop
    win.unlock_all()
