"""CAF009 true positive: window RMA with no epoch open."""


def rma_outside_epoch(comm):
    win = comm.win_allocate(64)
    win.put([1.0], 1)  # expected: CAF009
    win.lock_all()
    win.flush(1)
    win.unlock_all()
