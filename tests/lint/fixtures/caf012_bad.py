"""CAF012 true positives: Fig. 2 variants only the stream tier can see.

The syntactic CAF006 scan is per-function, so a put issued inside a
helper, or left pending by an earlier loop iteration, is invisible to
it.  The symbolic compiler inlines calls and unrolls loops, so the
cross-rank matcher recovers exactly these hangs — plus the counting
hangs (event and recv starvation) that need all P streams side by side.
"""

import numpy as np


def _halo_push(img, co):
    # The put lives here; the blocking MPI call lives in the caller.
    co.write((img.rank + 1) % img.nranks, np.ones(8))


def interprocedural_fig2(img):
    co = img.allocate_coarray(8)
    comm = img.mpi().COMM_WORLD
    img.sync_all()
    _halo_push(img, co)
    comm.barrier()  # expected: CAF012


def loop_carried_fig2(img):
    co = img.allocate_coarray(8)
    comm = img.mpi().COMM_WORLD
    for step in range(4):
        if step > 0:
            comm.allreduce(np.zeros(1))  # expected: CAF012
        co.write((img.rank + 1) % img.nranks, np.ones(8))
    img.sync_all()


def event_overconsumed(img):
    # Every rank notifies its right neighbor once, then waits for two
    # notifies: delivery 1 < consumption 2 on every rank, a sure hang.
    ev = img.allocate_events(1)
    ev.notify((img.rank + 1) % img.nranks, slot=0)
    ev.wait(slot=0, count=2)  # expected: CAF012


def recv_starved(img):
    # Rank 0 sends one message to rank 1 only; every other rank still
    # posts a blocking recv from 0 that nothing will ever match.
    comm = img.mpi().COMM_WORLD
    buf = np.zeros(4)
    if img.rank == 0:
        comm.send(np.ones(4), 1)
    else:
        comm.recv(buf, 0)  # expected: CAF012
