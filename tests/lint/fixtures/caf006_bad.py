"""CAF006 true positives: the paper's Figure 2 interoperability deadlock."""

from repro.gasnet.core import GasnetWorld
from repro.mpi.world import MpiWorld


def figure2(img):
    # Verbatim shape of the paper's Figure 2: rank 0 writes a coarray,
    # then every image enters MPI_BARRIER with the write unsynced.
    co = img.allocate_coarray(4)
    mpi = img.mpi()
    img.sync_all()
    if img.rank == 0:
        co.write(1, [1.0] * 4)
    mpi.COMM_WORLD.barrier()  # expected: CAF006


def blocks_in_both_runtimes(cluster, ctx):
    gas = GasnetWorld.get(cluster).attach(ctx, 1 << 16)
    mpi = MpiWorld.get(cluster).init(ctx)
    gas.barrier()
    mpi.COMM_WORLD.barrier()  # expected: CAF006
