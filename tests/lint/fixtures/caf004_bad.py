"""CAF004 true positive: an event notified but never waited anywhere."""


def lost_notification(img):
    ev = img.allocate_events(1)
    right = (img.rank + 1) % img.nranks
    ev.notify(right)  # expected: CAF004
