"""CAF004 near-misses: notifications with a matching consumer."""


def notify_and_wait_same_function(img):
    ev = img.allocate_events(1)
    right = (img.rank + 1) % img.nranks
    ev.notify(right)
    ev.wait()


def producer(img, right):
    # Waited in `consumer` below: pairing is module-wide.
    flag = img.allocate_events(1)
    flag.notify(right)


def consumer(img):
    flag = img.allocate_events(1)
    flag.wait()


def escaped_event(img, helper, right):
    # Passed to a helper the linter cannot see into: assume it waits.
    handoff = img.allocate_events(1)
    handoff.notify(right)
    helper(handoff)
