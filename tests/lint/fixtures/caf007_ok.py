"""CAF007 near-misses: handlers doing only local work and short replies."""

AM_PING = 7


def good_handler(token, value):
    token.reply_short(AM_PING + 1, value + 1)


def setup(gas):
    gas.register_handler(AM_PING, good_handler)


def not_a_handler(img):
    # Blocking is fine here: this function is never registered.
    img.sync_all()
