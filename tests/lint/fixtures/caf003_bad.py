"""CAF003 true positive: async transfer abandoned without completion."""


def abandoned_async(img):
    co = img.allocate_coarray(8)
    right = (img.rank + 1) % img.nranks
    co.write_async(right, [3.0] * 8)  # expected: CAF003
    return True
