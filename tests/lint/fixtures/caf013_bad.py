"""CAF013 true positive: per-iteration WIN_SYNC on a separate-model
window — each call pays a full public/private copy reconciliation."""

import numpy as np


def sync_per_iteration(img):
    win = img.mpi().win_allocate(1 << 10, memory_model="separate")
    win.lock_all()
    for _ in range(128):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
        win.sync()  # expected: CAF013
    win.unlock_all()
