"""CAF003 near-misses: every async transfer is completed somehow."""


def async_with_completion_event(img):
    co = img.allocate_coarray(8)
    done = img.allocate_events(1)
    right = (img.rank + 1) % img.nranks
    co.write_async(right, [3.0] * 8, dest_event=(done, 0))
    done.wait()
    return co.local[0]


def async_then_cofence(img):
    co = img.allocate_coarray(8)
    right = (img.rank + 1) % img.nranks
    co.write_async(right, [3.0] * 8)
    img.cofence()
    return co.local[0]
