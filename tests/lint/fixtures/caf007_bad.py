"""CAF007 true positive: a registered AM handler that can block."""

AM_PING = 7


def blocking_handler(token, ev):
    ev.wait()  # expected: CAF007
    token.reply_short(AM_PING + 1, 0)


def setup(gas):
    gas.register_handler(AM_PING, blocking_handler)
