"""CAF010 near-misses: every opened epoch is closed."""


def balanced_lock(comm):
    win = comm.win_allocate(64)
    win.lock(1, exclusive=True)
    win.put([2.0], 1)
    win.unlock(1)


def nested_lock_all(comm):
    win = comm.win_allocate(64)
    win.lock_all()
    win.lock(1)
    win.put([2.0], 1)
    win.unlock(1)
    win.unlock_all()
