"""CAF014 true positive: an eager-size message per peer, per iteration.

The loop trip grows with the image count P, so the rank injects O(P)
latency-bound tiny messages where one aggregated transfer (or a single
collective) would do — the §4.2 eager-protocol message-rate hazard.
"""

import numpy as np


def scatter_flags(img):
    co = img.allocate_coarray(img.nranks)
    for peer in range(img.nranks):
        # 8 bytes per message, img.nranks messages: O(P) injections.
        co.write_section(peer, np.ones(1), start=img.rank, count=1)  # expected: CAF014
    img.sync_all()
