"""CAF005 true positive: unbounded wait on an event nobody notifies."""


def waits_forever(img):
    ev = img.allocate_events(1)
    ev.wait()  # expected: CAF005
