"""CAF008 true positive: finish() created but never entered."""


def forgot_with(img, owner, task):
    img.finish()  # expected: CAF008
    img.spawn(owner, task)
