"""CAF013 near-misses: unified windows never need the reconciliation,
and a separate-model window synced once after the loop is the remedy."""

import numpy as np


def unified_sync_in_loop(img):
    win = img.mpi().win_allocate(1 << 10)  # unified: sync is a no-op fence
    win.lock_all()
    for _ in range(128):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
        win.sync()
    win.unlock_all()


def separate_sync_after_loop(img):
    win = img.mpi().win_allocate(1 << 10, memory_model="separate")
    win.lock_all()
    for _ in range(128):
        win.put(np.ones(8), (img.rank + 1) % img.nranks)
    win.sync()  # one reconciliation for the whole batch
    win.unlock_all()
