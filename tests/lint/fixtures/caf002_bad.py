"""CAF002 true positive: coarray put, then local read, no sync between."""


def put_then_local_read(img):
    co = img.allocate_coarray(8)
    right = (img.rank + 1) % img.nranks
    co.write(right, [1.0] * 8)
    return co.local[0]  # expected: CAF002
