"""CAF008 near-misses: finish entered directly or via a named block."""


def with_block(img, owner, task):
    with img.finish():
        img.spawn(owner, task)


def named_block(img, owner, task):
    fb = img.finish()
    with fb:
        img.spawn(owner, task)
