"""CAF009 near-misses: RMA inside passive-target and fence epochs."""


def passive_target(comm):
    win = comm.win_allocate(64)
    win.lock_all()
    win.put([1.0], 1)
    win.flush(1)
    win.unlock_all()


def active_target(comm):
    win = comm.win_allocate(64)
    win.fence()
    win.put([1.0], 1)
    win.fence()
