"""CAF002 near-misses: the put is properly synchronized before the read."""


def put_sync_all_read(img):
    co = img.allocate_coarray(8)
    right = (img.rank + 1) % img.nranks
    co.write(right, [1.0] * 8)
    img.sync_all()
    return co.local[0]


def put_event_wait_read(img):
    co = img.allocate_coarray(8)
    ev = img.allocate_events(1)
    right = (img.rank + 1) % img.nranks
    co.write(right, [2.0] * 8)
    ev.notify(right)
    ev.wait()
    return co.local[0]


def read_before_put(img):
    co = img.allocate_coarray(8)
    right = (img.rank + 1) % img.nranks
    stale = co.local[0]
    co.write(right, [stale] * 8)
    img.sync_all()
    return stale
