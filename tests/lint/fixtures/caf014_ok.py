"""CAF014 near-misses: the batched remedy, and tiny-in-a-loop shapes
whose trip count does not grow with P (a latency microbenchmark's
``range(iterations)`` loop is the classic case)."""

import numpy as np


def batched_scatter(img):
    co = img.allocate_coarray(img.nranks)
    payload = np.ones(img.nranks)
    for peer in range(img.nranks):
        pass  # compute per-peer values locally ...
    co.write((img.rank + 1) % img.nranks, payload)  # ... one big transfer
    img.sync_all()


def latency_microbench(img, iterations=1000):
    # Tiny messages on purpose, but the trip is constant in P.
    co = img.allocate_coarray(1)
    for _ in range(iterations):
        co.write((img.rank + 1) % img.nranks, np.ones(1))
    img.sync_all()
