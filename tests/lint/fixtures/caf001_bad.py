"""CAF001 true positives: collectives under rank-dependent control flow."""


def unmatched_broadcast(img, data):
    # Only rank 0 enters the collective; every other image never arrives.
    if img.rank == 0:
        img.team_broadcast(data)  # expected: CAF001


def collective_after_early_return(img, total):
    if img.rank == 0:
        return None
    img.team_allreduce([1.0], total, "sum")  # expected: CAF001
    return total


def derived_rank_guard(img, data):
    # Rank-taint must follow through arithmetic on .rank.
    color = img.rank % 2
    if color == 0:
        img.sync_all()  # expected: CAF001
