"""Static comm-volume predictions validated against recorded traces.

For each paper app the symbolic streams are evaluated with the same
parameters the instrumented run uses, then compared to the PR 7 trace
the run actually recorded.  Contract:

* per-op-kind **call counts are exact** — the apps' communication
  structure is deterministic, and the interpreter resolves every trip
  count and peer concretely;
* **total bytes** match within a per-app documented tolerance:
  RandomAccess buckets its updates by data-dependent destination, which
  the interpreter models as the expected-value half-split (the
  ``mask-half`` heuristic), so its bytes carry a ≤10% modeling error;
  FFT and CGPOP transfer sizes are closed-form in the parameters and
  must agree exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.lint.stream import compare_to_trace, predict_file
from repro.platforms import PLATFORMS
from tests.ir.conftest import APPS, record_run

REPO = Path(__file__).parents[2]

#: app -> (source file, entry qualname, total-bytes tolerance)
VALIDATION = {
    "ra": (REPO / "src/repro/apps/randomaccess.py", "run_randomaccess", 0.10),
    "fft": (REPO / "src/repro/apps/fft.py", "run_fft", 0.0),
    "cgpop": (REPO / "src/repro/apps/cgpop.py", "run_cgpop", 0.0),
}


@pytest.mark.parametrize("app", sorted(VALIDATION))
def test_static_prediction_matches_recorded_trace(app, tmp_path):
    path, entry, tol = VALIDATION[app]
    _, kwargs = APPS[app]
    _, trace = record_run(tmp_path, app, "mpi", "laptop", nranks=4)

    (pred,) = predict_file(path, entry=entry, nranks=4, bindings=dict(kwargs))
    assert pred.aborted == [], pred.aborted

    cmp = compare_to_trace(pred, trace)
    for k in cmp.per_kind:
        assert k.calls_exact, (
            f"{app}/{k.kind}: static {k.static_calls} calls vs "
            f"recorded {k.recorded_calls}"
        )
    assert cmp.total_bytes_rel_err <= tol + 1e-12, (
        f"{app}: static {cmp.static_total_bytes} B vs recorded "
        f"{cmp.recorded_total_bytes} B "
        f"({cmp.total_bytes_rel_err:.2%} > {tol:.0%} tolerance)"
    )


def test_prediction_comm_matrix_tracks_p2p_volume(tmp_path):
    ring = tmp_path / "ring.py"
    ring.write_text(
        "import numpy as np\n"
        "\n"
        "def ring(img, reps=3):\n"
        "    co = img.allocate_coarray(8)\n"
        "    for _ in range(reps):\n"
        "        co.write((img.rank + 1) % img.nranks, np.ones(8))\n"
        "        img.sync_all()\n"
    )
    (pred,) = predict_file(ring, nranks=4, bindings={"reps": 3})
    m = pred.comm_matrix
    assert m is not None and m.shape == (4, 4)
    # each rank sends 3 * 64 B to its right neighbor, nothing else
    for origin in range(4):
        for target in range(4):
            want = 192 if target == (origin + 1) % 4 else 0
            assert m[origin, target] == want
    assert int(m.sum()) == pred.by_kind["caf.coarray_write"].nbytes


def test_prediction_with_machine_spec_prices_ops():
    from repro.sim.network import MachineSpec

    spec = MachineSpec(name="probe", latency=1e-6, ranks_per_node=1)
    path, entry, _ = VALIDATION["fft"]
    (pred,) = predict_file(
        path, entry=entry, nranks=4, bindings={"m": 256}, spec=spec
    )
    assert pred.total_seconds > 0.0
    assert all(t.seconds >= 0.0 for t in pred.by_kind.values())
