"""CLI behavior of ``python -m repro.lint``: exit codes, rule listing,
selection, suppression accounting, and syntax-error handling."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.rules import RULES

FIXTURES = Path(__file__).parent / "fixtures"


def test_dirty_file_exits_nonzero(capsys):
    rc = main([str(FIXTURES / "caf002_bad.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CAF002" in out
    assert "caf002_bad.py:8" in out


def test_clean_file_exits_zero(capsys):
    rc = main([str(FIXTURES / "caf002_ok.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out


def test_directory_walk_finds_all_bad_fixtures(capsys):
    rc = main([str(FIXTURES)])
    out = capsys.readouterr().out
    assert rc == 1
    for rule_id in RULES:
        if rule_id == "CAF000":
            continue
        assert rule_id in out


def test_select_filters_rules(capsys):
    rc = main(["--select", "CAF006", str(FIXTURES)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CAF006" in out
    assert "CAF002" not in out


def test_select_can_turn_a_dirty_file_clean(capsys):
    rc = main(["--select", "CAF009", str(FIXTURES / "caf002_bad.py")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_unknown_rule_id_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--select", "CAF999", str(FIXTURES)])
    assert exc.value.code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_no_paths_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_list_rules(capsys):
    rc = main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule_id in RULES:
        assert rule_id in out
    assert "Fig. 2" in out


def test_syntax_error_reports_caf000(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    rc = main([str(broken)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CAF000" in out


def test_suppressed_finding_counts_only_under_no_ignore(tmp_path, capsys):
    src = FIXTURES / "caf002_bad.py"
    suppressed = tmp_path / "suppressed.py"
    suppressed.write_text(
        src.read_text().replace(
            "# expected: CAF002", "# repro: lint-ignore[CAF002]"
        )
    )
    assert main([str(suppressed)]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["--no-ignore", str(suppressed)]) == 1
    out = capsys.readouterr().out
    assert "CAF002" in out
    assert "suppressed" in out
