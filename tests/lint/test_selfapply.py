"""Self-application: the linter must be clean over the repo's own
examples and apps — zero false positives — with exactly one suppressed,
intentional finding: the Fig. 2 deadlock demo's CAF006."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_file, lint_paths

REPO = Path(__file__).parents[2]
GATE = [str(REPO / "examples"), str(REPO / "src" / "repro" / "apps")]


def test_examples_and_apps_lint_clean():
    report = lint_paths(GATE)
    assert report.nfiles >= 10
    assert report.clean, "\n" + report.to_text()


def test_deadlock_demo_carries_exactly_one_suppressed_caf006():
    findings = lint_file(str(REPO / "examples" / "deadlock_demo.py"))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "CAF006"
    assert finding.suppressed
    assert "Fig. 2" in finding.message


def test_the_demo_finding_is_the_only_suppression_in_the_gate():
    suppressed = [f for p in GATE for f in _all_suppressed(Path(p))]
    assert len(suppressed) == 1
    assert suppressed[0].rule == "CAF006"
    assert suppressed[0].path.endswith("deadlock_demo.py")


def _all_suppressed(root: Path):
    for path in sorted(root.rglob("*.py")):
        for finding in lint_file(str(path)):
            if finding.suppressed:
                yield finding
