"""Inline suppression: ``# repro: lint-ignore[RULE]`` semantics."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.suppress import ALL_RULES, is_suppressed, suppressions

PUT_READ = textwrap.dedent(
    """\
    def f(img):
        co = img.allocate_coarray(4)
        co.write((img.rank + 1) % img.nranks, [1.0] * 4){comment}
        return co.local[0]{comment2}
    """
)


def _lint(comment: str = "", comment2: str = "") -> list:
    return lint_source(PUT_READ.format(comment=comment, comment2=comment2), "mem.py")


def test_unsuppressed_baseline():
    findings = _lint()
    assert [f.rule for f in findings] == ["CAF002"]
    assert not findings[0].suppressed


def test_targeted_suppression_on_finding_line():
    findings = _lint(comment2="  # repro: lint-ignore[CAF002]")
    assert [f.rule for f in findings] == ["CAF002"]
    assert findings[0].suppressed


def test_suppression_of_other_rule_does_not_apply():
    findings = _lint(comment2="  # repro: lint-ignore[CAF006]")
    assert not findings[0].suppressed


def test_bare_ignore_suppresses_any_rule():
    findings = _lint(comment2="  # repro: lint-ignore")
    assert findings[0].suppressed


def test_suppression_is_per_line_not_per_file():
    # An ignore on the *put* line does not cover the read line.
    findings = _lint(comment="  # repro: lint-ignore[CAF002]")
    assert not findings[0].suppressed


def test_multiple_rules_in_one_marker():
    table = suppressions("x = 1  # repro: lint-ignore[CAF002, CAF006]\n")
    assert table == {1: {"CAF002", "CAF006"}}
    assert is_suppressed("CAF002", 1, table)
    assert is_suppressed("CAF006", 1, table)
    assert not is_suppressed("CAF004", 1, table)


def test_bare_marker_yields_wildcard():
    table = suppressions("x = 1  # repro: lint-ignore\n")
    assert table == {1: {ALL_RULES}}
    assert is_suppressed("CAF009", 1, table)


def test_unrelated_comments_do_not_suppress():
    table = suppressions("x = 1  # expected: CAF002\ny = 2  # noqa\n")
    assert table == {}
