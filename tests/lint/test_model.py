"""Unit tests for the analysis model: handle tagging, rank taint,
event escape, and AM-handler discovery."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.model import build_model


def _model(source: str):
    text = textwrap.dedent(source)
    return build_model(ast.parse(text), "mem.py")


def test_handle_tagging_through_aliases_and_subscripts():
    model = _model(
        """\
        def f(img, comm):
            co = img.allocate_coarray(8)
            alias = co
            bank = [img.allocate_events(1) for _ in range(2)]
            first = bank[0]
            win = comm.win_allocate(64)
            mpi = img.mpi()
        """
    )
    assert model.tags["co"] == "coarray"
    assert model.tags["alias"] == "coarray"
    assert model.tags["bank"] == "event"
    assert model.tags["first"] == "event"
    assert model.tags["win"] == "window"
    assert model.tags["mpi"] == "mpi"


def test_self_attributes_are_tracked():
    model = _model(
        """\
        class Halo:
            def __init__(self, img):
                self.co = img.allocate_coarray(8)

            def push(self, right):
                self.co.write(right, [1.0] * 8)
        """
    )
    assert model.tags["self.co"] == "coarray"


def test_rank_taint_propagates_but_nranks_does_not():
    model = _model(
        """\
        def f(img):
            me = img.rank
            color = me % 2
            world = img.nranks
            half = world // 2
        """
    )
    assert "me" in model.rank_tainted
    assert "color" in model.rank_tainted
    assert "world" not in model.rank_tainted
    assert "half" not in model.rank_tainted


def test_event_escape_via_call_argument():
    model = _model(
        """\
        def f(img, helper, right):
            kept = img.allocate_events(1)
            given = img.allocate_events(1)
            kept.notify(right)
            kept.wait()
            helper(given)
        """
    )
    assert "given" in model.escaped_events
    assert "kept" not in model.escaped_events


def test_am_handler_registration_is_discovered():
    model = _model(
        """\
        def pong(token, x):
            token.reply_short(8, x)

        def setup(gas):
            gas.register_handler(7, pong)
        """
    )
    assert model.am_handlers == {"pong"}
