"""Regression tests for the stream-tier memo.

The memo exists because compiling op streams dominates lint time, but it
must be keyed on *content*, never on path alone: an edited file has to
recompile (the stale-reuse bug these tests pin down), and a memo hit
must hand back fresh Finding copies so one caller's suppression marking
cannot leak into another's results.
"""

from __future__ import annotations

import textwrap

from repro.lint.engine import _STREAM_MEMO, lint_file

BUGGY = textwrap.dedent(
    """
    import numpy as np

    def _push(img, co):
        co.write((img.rank + 1) % img.nranks, np.ones(8))

    def main(img):
        co = img.allocate_coarray(8)
        comm = img.mpi().COMM_WORLD
        _push(img, co)
        comm.barrier()
    """
)

FIXED = BUGGY.replace("_push(img, co)\n", "_push(img, co)\n    img.sync_all()\n")


def test_editing_a_file_between_runs_recompiles(tmp_path):
    path = tmp_path / "app.py"
    path.write_text(BUGGY)
    first = lint_file(str(path))
    assert [f.rule for f in first] == ["CAF012"]

    # Same path, new content: a path-keyed memo would replay the stale
    # CAF012 here.
    path.write_text(FIXED)
    second = lint_file(str(path))
    assert second == [], [f.format() for f in second]

    # And back again — both variants stay independently cached.
    path.write_text(BUGGY)
    third = lint_file(str(path))
    assert [f.rule for f in third] == ["CAF012"]


def test_memo_hit_returns_fresh_copies(tmp_path):
    path = tmp_path / "app.py"
    path.write_text(BUGGY)
    first = lint_file(str(path))
    first[0].suppressed = True  # caller-side mutation
    second = lint_file(str(path))
    assert second[0] is not first[0]
    assert not second[0].suppressed


def test_same_content_at_two_paths_keeps_paths_straight(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    a.write_text(BUGGY)
    b.write_text(BUGGY)
    fa = lint_file(str(a))
    fb = lint_file(str(b))
    assert fa[0].path == str(a)
    assert fb[0].path == str(b)


def test_memo_is_bounded(tmp_path):
    before = len(_STREAM_MEMO)
    for i in range(3):
        p = tmp_path / f"m{i}.py"
        p.write_text(BUGGY + f"\n# variant {i}\n")
        lint_file(str(p))
    assert len(_STREAM_MEMO) >= min(3, before + 3) - 3  # grew, still bounded
    assert len(_STREAM_MEMO) <= 512
