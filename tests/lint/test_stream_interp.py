"""Unit tests for the symbolic op-stream compiler (repro.lint.stream)."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.model import build_model
from repro.lint.stream.interp import (
    StreamCompiler,
    entry_functions,
    launch_hints,
)
from repro.lint.stream.sym import (
    ORDER_CONST,
    ORDER_LINEAR,
    ORDER_LOG,
    Sym,
    from_ast,
    trip_from_range,
)


def compile_src(source: str, **kw):
    source = textwrap.dedent(source)
    model = build_model(ast.parse(source), "test.py")
    return StreamCompiler(model, **kw).compile()


# -- symbolic expressions -------------------------------------------------


def test_sym_orders():
    p = Sym.var("P")
    assert p.order_in_p() == ORDER_LINEAR
    assert Sym.const(7).order_in_p() == ORDER_CONST
    assert Sym.call("log2", p).order_in_p() == ORDER_LOG
    assert Sym.op("*", p, Sym.const(3)).order_in_p() == ORDER_LINEAR


def test_sym_evaluate_and_text():
    expr = from_ast(ast.parse("n * 2 + 1", mode="eval").body, {"n"})
    assert expr.evaluate({"n": 10}) == 21
    assert "n" in expr.text()


def _range_call(src: str) -> ast.Call:
    node = ast.parse(src, mode="eval").body
    assert isinstance(node, ast.Call)
    return node


def test_trip_from_range():
    one_arg = trip_from_range(_range_call("range(n)"), {"n"})
    assert one_arg.evaluate({"n": 5}) == 5
    two_arg = trip_from_range(_range_call("range(2, n)"), {"n"})
    assert two_arg.evaluate({"n": 10}) == 8


# -- entry discovery ------------------------------------------------------


def test_entry_convention_and_launch_hints():
    source = textwrap.dedent(
        """
        def kernel(img, n=8):
            img.sync_all()

        def helper(img):
            pass

        def driver():
            for _ in range(3):
                helper(None)

        def main():
            launch(kernel, 2)
        """
    )
    model = build_model(ast.parse(source), "test.py")
    names = [fn.qualname for fn in entry_functions(model)]
    # helper() is called in-module; kernel is only *referenced* (launched).
    assert names == ["kernel"]
    assert launch_hints(model) == {"kernel": 2}


def test_launch_hint_pins_probe_size():
    streams = compile_src(
        """
        def two_rank_only(img):
            img.sync_all()

        def main():
            run(two_rank_only, 2)
        """,
        nranks=4,
    )
    (entry,) = streams.entries
    assert entry.nranks == 2
    assert len(entry.ranks) == 2


# -- stream compilation ---------------------------------------------------


def test_ring_streams_resolve_peers_concretely():
    streams = compile_src(
        """
        import numpy as np

        def ring(img):
            co = img.allocate_coarray(8)
            co.write((img.rank + 1) % img.nranks, np.ones(8))
            img.sync_all()
        """
    )
    (entry,) = streams.entries
    assert entry.qualname == "ring"
    for rs in entry.ranks:
        kinds = [op.kind for op in rs.ops]
        assert kinds == ["caf.coarray_write", "caf.coll.barrier"]
        put = rs.ops[0]
        assert put.peer == (rs.rank + 1) % entry.nranks
        assert put.nbytes == 64  # 8 float64
        assert put.is_caf_put and not put.tentative


def test_rank_dependent_branch_is_concrete_per_rank():
    streams = compile_src(
        """
        import numpy as np

        def onesided(img):
            co = img.allocate_coarray(4)
            if img.rank == 0:
                co.write(1, np.ones(4))
            img.sync_all()
        """
    )
    (entry,) = streams.entries
    writes = {rs.rank: sum(op.kind == "caf.coarray_write" for op in rs.ops)
              for rs in entry.ranks}
    assert writes == {0: 1, 1: 0, 2: 0, 3: 0}


def test_loop_cap_truncates_and_taints_accounting():
    streams = compile_src(
        """
        import numpy as np

        def hot(img):
            co = img.allocate_coarray(1)
            for _ in range(1000):
                co.write((img.rank + 1) % img.nranks, np.ones(1))
            img.sync_all()
        """,
        loop_cap=8,
    )
    (entry,) = streams.entries
    rs = entry.ranks[0]
    assert rs.truncated
    assert not rs.sound_for_accounting
    # capped at 8 iterations, but the symbolic trip stays exact
    puts = [op for op in rs.ops if op.kind == "caf.coarray_write"]
    assert len(puts) == 8
    assert puts[0].trip_product().evaluate({}) == 1000


def test_interprocedural_ops_attributed_to_callee_site():
    streams = compile_src(
        """
        import numpy as np

        def push(img, co):
            co.write((img.rank + 1) % img.nranks, np.ones(2))

        def main(img):
            co = img.allocate_coarray(2)
            push(img, co)
            img.sync_all()
        """
    )
    (entry,) = streams.entries
    put = entry.ranks[0].ops[0]
    assert put.kind == "caf.coarray_write"
    assert put.func == "push"  # attributed where the call actually is


def test_dunder_main_block_is_skipped():
    streams = compile_src(
        """
        def kernel(img):
            img.sync_all()

        if __name__ == "__main__":
            raise SystemExit(kernel(None))
        """
    )
    assert [e.qualname for e in streams.entries] == ["kernel"]


def test_param_bound_loop_trip_stays_symbolic():
    streams = compile_src(
        """
        import numpy as np

        def sweep(img, iters=16):
            co = img.allocate_coarray(1)
            for _ in range(iters):
                co.write((img.rank + 1) % img.nranks, np.ones(1))
            img.sync_all()
        """,
        loop_cap=4,
    )
    (entry,) = streams.entries
    put = next(op for op in entry.ranks[0].ops if op.is_caf_put)
    trip = put.trip_product()
    assert trip.evaluate({"iters": 100}) == 100
    assert trip.order_in_p() == ORDER_CONST  # iters is not P


def test_step_budget_aborts_instead_of_spinning():
    streams = compile_src(
        """
        def spin(img):
            total = 0
            while True:
                total = total + 1
        """,
        step_budget=200,
    )
    (entry,) = streams.entries
    assert all(rs.aborted or rs.warnings for rs in entry.ranks)
