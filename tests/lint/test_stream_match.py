"""Cross-rank matcher tests: the Fig. 2 variants the syntactic tier
misses, the counting hangs, and no-new-findings over the entire
existing fixture corpus."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.model import build_model
from repro.lint.stream import check_stream, compile_streams
from repro.lint.stream.match import analyze_entry

FIXTURES = Path(__file__).parent / "fixtures"
#: The corpus that predates the stream tier (CAF001–CAF010).
LEGACY = sorted(
    p
    for p in FIXTURES.glob("caf*.py")
    if p.stem.split("_")[0][3:].isdigit() and int(p.stem.split("_")[0][3:]) <= 10
)


def stream_findings(source: str, path: str = "test.py"):
    source = textwrap.dedent(source)
    model = build_model(ast.parse(source), path)
    syntactic = lint_source(source, path, stream=False)
    return check_stream(model, syntactic)


def problems_for(source: str):
    source = textwrap.dedent(source)
    model = build_model(ast.parse(source), "test.py")
    out = []
    for entry in compile_streams(model).entries:
        out.extend(analyze_entry(entry))
    return out


# -- legacy corpus stays as-is under the new tier -------------------------


@pytest.mark.parametrize("path", LEGACY, ids=[p.stem for p in LEGACY])
def test_stream_tier_adds_nothing_on_legacy_fixtures(path):
    """The symbolic matcher must not re-report (or newly report) anything
    on the 20 pre-existing fixtures: bad ones already carry their exact
    expected set, ok ones must stay clean."""
    source = path.read_text()
    model = build_model(ast.parse(source), str(path))
    syntactic = lint_source(source, str(path), stream=False)
    assert stream_findings(source, str(path)) == [] or all(
        f.rule.startswith("CAF01") for f in check_stream(model, syntactic)
    )
    # and the full pipeline (syntactic + stream) equals the marker set,
    # which test_corpus.py asserts exactly — here we only need "no CAF012
    # leaks through the dedupe" on the CAF006 fixtures.
    full = lint_source(source, str(path))
    assert not any(f.rule == "CAF012" for f in full)


# -- Fig. 2 variants ------------------------------------------------------


def test_interprocedural_fig2_found_by_matcher_not_syntactic():
    src = """
    import numpy as np

    def _push(img, co):
        co.write((img.rank + 1) % img.nranks, np.ones(8))

    def main(img):
        co = img.allocate_coarray(8)
        comm = img.mpi().COMM_WORLD
        _push(img, co)
        comm.barrier()
    """
    syntactic = lint_source(textwrap.dedent(src), "t.py", stream=False)
    assert syntactic == []  # per-function scan cannot see across the call
    findings = stream_findings(src)
    assert [f.rule for f in findings] == ["CAF012"]
    assert "pending" in findings[0].message


def test_loop_carried_fig2():
    src = """
    import numpy as np

    def main(img):
        co = img.allocate_coarray(8)
        comm = img.mpi().COMM_WORLD
        for step in range(4):
            if step > 0:
                comm.allreduce(np.zeros(1))
            co.write((img.rank + 1) % img.nranks, np.ones(8))
        img.sync_all()
    """
    assert [f.rule for f in stream_findings(src)] == ["CAF012"]


def test_sync_between_put_and_block_is_clean():
    src = """
    import numpy as np

    def main(img):
        co = img.allocate_coarray(8)
        comm = img.mpi().COMM_WORLD
        co.write((img.rank + 1) % img.nranks, np.ones(8))
        img.sync_all()
        comm.barrier()
    """
    assert stream_findings(src) == []


def test_caf006_same_function_suppresses_caf012():
    # Single-function Fig. 2: syntactic CAF006 fires; the stream tier
    # must not echo it as a second CAF012.
    src = """
    import numpy as np

    def main(img):
        co = img.allocate_coarray(4)
        comm = img.mpi().COMM_WORLD
        co.write((img.rank + 1) % img.nranks, np.ones(4))
        comm.barrier()
    """
    source = textwrap.dedent(src)
    syntactic = lint_source(source, "t.py", stream=False)
    assert any(f.rule == "CAF006" for f in syntactic)
    full = lint_source(source, "t.py")
    assert not any(f.rule == "CAF012" for f in full)


def test_peer_that_keeps_progressing_is_clean():
    # Rank 0 blocks in MPI with a put pending toward rank 1, but rank 1
    # never enters that barrier — it sits in CAF-side progress, so the
    # put completes and there is no hang to report.
    src = """
    import numpy as np

    def main(img):
        co = img.allocate_coarray(4)
        comm = img.mpi().COMM_WORLD
        if img.rank == 0:
            co.write(1, np.ones(4))
            comm.send(np.ones(1), 1)
        else:
            img.sync_images([0])
    """
    problems = [p for p in problems_for(src) if p.kind == "dual-runtime"]
    assert problems == []


# -- counting hangs -------------------------------------------------------


def test_event_starvation_reported_once():
    src = """
    def main(img):
        ev = img.allocate_events(1)
        ev.notify((img.rank + 1) % img.nranks, slot=0)
        ev.wait(slot=0, count=2)
    """
    problems = [p for p in problems_for(src) if p.kind == "event-starvation"]
    assert len(problems) == 1
    assert "2 notif" in problems[0].message


def test_balanced_events_clean():
    src = """
    def main(img):
        ev = img.allocate_events(1)
        ev.notify((img.rank + 1) % img.nranks, slot=0)
        ev.wait(slot=0)
    """
    assert problems_for(src) == []


def test_timed_wait_never_counts_as_hang():
    src = """
    def main(img):
        ev = img.allocate_events(1)
        ev.wait(slot=0, timeout=1e-3)
    """
    assert [p for p in problems_for(src) if p.kind == "event-starvation"] == []


def test_recv_starvation():
    src = """
    import numpy as np

    def main(img):
        comm = img.mpi().COMM_WORLD
        buf = np.zeros(4)
        if img.rank == 0:
            comm.send(np.ones(4), 1)
        else:
            comm.recv(buf, 0)
    """
    problems = [p for p in problems_for(src) if p.kind == "recv-starvation"]
    assert len(problems) == 1


def test_truncated_streams_skip_counting_but_keep_fig2():
    # A huge loop forces truncation at the probe cap: the event ledger
    # would be wrong, so it must stay silent; the prefix-sound Fig. 2
    # scan still fires on what was compiled.
    src = """
    import numpy as np

    def main(img):
        co = img.allocate_coarray(4)
        comm = img.mpi().COMM_WORLD
        ev = img.allocate_events(1)
        for _ in range(10_000):
            ev.notify((img.rank + 1) % img.nranks, slot=0)
        co.write((img.rank + 1) % img.nranks, np.ones(4))
        comm.barrier()
        ev.wait(slot=0, count=3)
    """
    problems = problems_for(src)
    kinds = {p.kind for p in problems}
    assert "dual-runtime" in kinds
    assert "event-starvation" not in kinds
