"""Every registered experiment regenerates at quick scale and renders.

This is the harness's own integration test: ids resolve, `run("quick")`
produces a well-formed table, and the render round-trips through the
formatter. (Shape assertions live in benchmarks/.)
"""

import pytest

from repro.experiments.registry import EXPERIMENTS

#: Experiments light enough for the unit-test tier; the rest are covered
#: by the benchmark harness.
QUICK_IDS = [
    "table1",
    "fig01",
    "fig02",
    "fig04",
    "fig08",
    "fig09",
    "fig10",
    "abl_event",
    "abl_eager",
    "abl_decomp",
    "abl_faults",
]


@pytest.mark.parametrize("exp_id", QUICK_IDS)
def test_experiment_regenerates_quick(exp_id):
    result = EXPERIMENTS[exp_id].load()("quick")
    assert result.exp_id == exp_id
    assert result.rows, "experiment produced no rows"
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.render()
    assert f"[{exp_id}]" in text
    assert len(text.splitlines()) >= 3


@pytest.mark.parametrize("exp_id", QUICK_IDS)
def test_experiment_rejects_bad_scale(exp_id):
    with pytest.raises(ValueError):
        EXPERIMENTS[exp_id].load()("huge")
