"""Experiment harness plumbing: registry, result rendering, CLI."""

import pytest

from repro.experiments.common import ExperimentResult, check_scale, ideal_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment


def test_registry_covers_every_paper_artifact():
    # Table 1, Figures 1-12, two microbenchmark datasets.
    for required in ["table1"] + [f"fig{i:02d}" for i in range(1, 13)] + [
        "micro_mira",
        "micro_edison",
    ]:
        assert required in EXPERIMENTS, f"missing {required}"


def test_registry_modules_all_import_and_expose_run():
    for spec in EXPERIMENTS.values():
        fn = spec.load()
        assert callable(fn)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_check_scale():
    assert check_scale("quick") == "quick"
    with pytest.raises(ValueError):
        check_scale("enormous")


def test_ideal_scale_is_linear_from_first_point():
    assert ideal_scale([4, 8, 16], 2.0) == [2.0, 4.0, 8.0]


def test_result_render_contains_title_and_rows():
    result = ExperimentResult(
        exp_id="x", title="demo", headers=["a", "b"], rows=[[1, 2.5]], notes="note!"
    )
    text = result.render()
    assert "[x] demo" in text
    assert "note!" in text
    assert "2.5" in text


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig03" in out and "abl_rflush" in out


def test_cli_runs_one_experiment(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["table1", "--scale", "quick", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()
    assert "fusion" in (tmp_path / "table1.txt").read_text().lower()
