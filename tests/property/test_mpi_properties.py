"""Property-based tests for the MPI layer: matching and collectives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import SUM
from repro.sim.network import MachineSpec

from tests.mpi.conftest import mpi_run


@settings(max_examples=25, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    messages=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # src (mod nranks)
            st.integers(min_value=0, max_value=5),  # dst (mod nranks)
            st.integers(min_value=0, max_value=3),  # tag
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_all_sends_match_all_recvs(nranks, messages):
    """For any message pattern, posting matching recvs on each destination
    (in per-(src,tag) FIFO order) delivers every payload intact.

    Message length is a function of the (src, dst, tag) stream so FIFO
    reordering within a stream cannot change buffer sizes.
    """
    plan = [
        (src % nranks, dst % nranks, tag, 1 + (src % nranks) + 3 * (dst % nranks) + 17 * tag)
        for src, dst, tag in messages
    ]

    def program(mpi, ctx):
        comm = mpi.COMM_WORLD
        reqs = []
        for i, (src, dst, tag, length) in enumerate(plan):
            if src == ctx.rank:
                payload = np.full(length, i, dtype=np.int64)
                reqs.append(comm.isend(payload, dest=dst, tag=tag))
        got = {}
        for i, (src, dst, tag, length) in enumerate(plan):
            if dst == ctx.rank:
                buf = np.zeros(length, np.int64)
                comm.recv(buf, source=src, tag=tag)
                got[i] = buf.copy()
        for r in reqs:
            r.wait()
        return got

    _, results = mpi_run(program, nranks)
    # Per (src, dst, tag) stream, FIFO delivery means the k-th posted recv
    # gets the k-th send of that stream; every payload must carry an index
    # from its own stream and have the right length & constant content.
    for rank_result in results:
        for i, buf in rank_result.items():
            src, dst, tag, length = plan[i]
            assert len(buf) == length
            j = int(buf[0])
            assert (buf == j).all()
            assert plan[j][:3] == (src, dst, tag)  # same stream


@settings(max_examples=20, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    nelems=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_allreduce_sum_matches_numpy(nranks, nelems, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((nranks, nelems))

    def program(mpi, ctx):
        recv = np.zeros(nelems)
        mpi.COMM_WORLD.allreduce(data[ctx.rank].copy(), recv, SUM)
        return recv

    _, results = mpi_run(program, nranks)
    expected = data.sum(axis=0)
    for r in results:
        assert np.allclose(r, expected, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    chunk=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_alltoall_is_block_transpose(nranks, chunk, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1000, size=(nranks, nranks, chunk))

    def program(mpi, ctx):
        recv = np.zeros((nranks, chunk), dtype=data.dtype)
        mpi.COMM_WORLD.alltoall(data[ctx.rank].copy(), recv)
        return recv

    _, results = mpi_run(program, nranks)
    for dst in range(nranks):
        for src in range(nranks):
            assert (results[dst][src] == data[src][dst]).all()


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    offsets=st.lists(st.integers(min_value=0, max_value=28), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_rma_put_get_roundtrip(nranks, offsets, seed):
    """Data PUT at any offset is readable back by anyone after a flush+barrier."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(len(offsets))

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=32, dtype=np.float64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        if ctx.rank == 0:
            for off, val in zip(offsets, values):
                win.put(np.array([val]), target=1, offset=off)
            win.flush(1)
        mpi.COMM_WORLD.barrier()
        out = np.zeros(32)
        win.rget(out, target=1).wait()
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return out

    _, results = mpi_run(program, nranks)
    expected = np.zeros(32)
    for off, val in zip(offsets, values):
        expected[off] = val  # later writes to the same offset win (FIFO)
    for r in results:
        assert np.allclose(r, expected)


@settings(max_examples=15, deadline=None)
@given(
    nbytes=st.integers(min_value=0, max_value=1 << 16),
    threshold=st.sampled_from([0, 256, 8192, 1 << 20]),
)
def test_protocol_choice_never_changes_payload(nbytes, threshold):
    spec = MachineSpec(name="t", mpi_eager_threshold=threshold)
    payload = np.arange(nbytes, dtype=np.uint8)

    def program(mpi, ctx):
        if ctx.rank == 0:
            mpi.COMM_WORLD.send(payload, dest=1)
        else:
            buf = np.zeros(nbytes, np.uint8)
            st_ = mpi.COMM_WORLD.recv(buf, source=0)
            assert st_.count == nbytes
            return buf

    _, results = mpi_run(program, 2, spec=spec)
    assert (results[1] == payload).all()


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=8),
    arrival_spread=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=2, max_size=8
    ),
)
def test_barrier_release_never_before_last_arrival(nranks, arrival_spread):
    spread = (arrival_spread * nranks)[:nranks]

    def program(mpi, ctx):
        ctx.compute(spread[ctx.rank] + 1e-9)
        mpi.COMM_WORLD.barrier()
        return ctx.now

    _, results = mpi_run(program, nranks)
    assert min(results) >= max(spread)


def test_reduce_matches_numpy_for_all_ops():
    ops = {"SUM": np.sum, "PROD": np.prod, "MAX": np.max, "MIN": np.min}
    from repro.mpi import MAX, MIN, PROD, SUM as S

    mpi_ops = {"SUM": S, "PROD": PROD, "MAX": MAX, "MIN": MIN}
    rng = np.random.default_rng(0)
    data = rng.uniform(0.5, 1.5, size=(5, 7))
    for name, npop in ops.items():
        def program(mpi, ctx, op_name=name):
            recv = np.zeros(7)
            mpi.COMM_WORLD.reduce(data[ctx.rank].copy(), recv, mpi_ops[op_name], root=2)
            return recv if ctx.rank == 2 else None

        _, results = mpi_run(program, 5)
        assert np.allclose(results[2], npop(data, axis=0)), name
