"""Property-based tests for utilities and the segment allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gasnet.segment import SegmentAllocator
from repro.util.errors import GasnetError
from repro.util.rng import rank_rng
from repro.util.tables import format_table


@settings(max_examples=50, deadline=None)
@given(
    headers=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=5),
    nrows=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
def test_format_table_alignment(headers, nrows, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    rows = [
        [float(rng.standard_normal()) for _ in headers] for _ in range(nrows)
    ]
    text = format_table(headers, rows)
    lines = text.split("\n")
    assert len(lines) == 2 + nrows  # header + rule + rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width (aligned columns)


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [[1]])


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1 << 30),
    rank_a=st.integers(min_value=0, max_value=100),
    rank_b=st.integers(min_value=0, max_value=100),
)
def test_rank_rngs_reproducible_and_distinct(seed, rank_a, rank_b):
    a1 = rank_rng(seed, rank_a).integers(0, 1 << 30, 8)
    a2 = rank_rng(seed, rank_a).integers(0, 1 << 30, 8)
    assert (a1 == a2).all()
    if rank_a != rank_b:
        b = rank_rng(seed, rank_b).integers(0, 1 << 30, 8)
        assert not (a1 == b).all()


def test_rank_rng_streams_distinct():
    base = rank_rng(1, 2).integers(0, 1 << 30, 8)
    named = rank_rng(1, 2, "updates").integers(0, 1 << 30, 8)
    assert not (base == named).all()


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20),
)
def test_segment_allocator_never_overlaps(sizes):
    allocator = SegmentAllocator(1 << 20)
    regions = []
    for nbytes in sizes:
        off = allocator.alloc(nbytes)
        assert off % 16 == 0
        for prev_off, prev_len in regions:
            assert off >= prev_off + prev_len or off + nbytes <= prev_off
        regions.append((off, nbytes))
    assert allocator.used <= allocator.capacity


@settings(max_examples=30, deadline=None)
@given(
    first=st.integers(min_value=1, max_value=500),
    second=st.integers(min_value=1, max_value=500),
)
def test_segment_mark_release_restores_top(first, second):
    allocator = SegmentAllocator(1 << 16)
    allocator.alloc(first)
    marker = allocator.mark()
    allocator.alloc(second)
    allocator.release(marker)
    assert allocator.used == marker
    # Reuse after release lands at (aligned) marker.
    assert allocator.alloc(8) >= marker


def test_segment_exhaustion_raises():
    allocator = SegmentAllocator(64)
    allocator.alloc(48)
    with pytest.raises(GasnetError, match="exhausted"):
        allocator.alloc(32)


def test_segment_bad_release_rejected():
    allocator = SegmentAllocator(64)
    with pytest.raises(GasnetError, match="marker"):
        allocator.release(10)
