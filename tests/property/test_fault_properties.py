"""Property: reliable delivery restores exactly-once under any fault plan.

RandomAccess is the oracle: every update XORs into a distributed table, so
a single lost or double-applied landing-zone write leaves the final tables
differing from the serial reference. If the ack/retransmit/dedup transport
is correct, any seeded mix of drops, corruption, duplicates and delays
must still reproduce the reference bit-for-bit, on both backends.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.randomaccess import reference_tables, run_randomaccess
from repro.caf import run_caf
from repro.sim.faults import FaultPlan

NRANKS = 4
TABLE_BITS = 5
UPDATES = 64
RA_SEED = 42  # run_randomaccess's default update-stream seed


@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    fault_seed=st.integers(min_value=0, max_value=1 << 16),
    drop=st.floats(min_value=0.0, max_value=0.05),
    corrupt=st.floats(min_value=0.0, max_value=0.03),
    dup=st.floats(min_value=0.0, max_value=0.05),
    delay=st.floats(min_value=0.0, max_value=0.05),
)
def test_randomaccess_exactly_once_under_any_fault_plan(
    backend, fault_seed, drop, corrupt, dup, delay
):
    plan = FaultPlan(
        seed=fault_seed,
        drop_rate=drop,
        corrupt_rate=corrupt,
        dup_rate=dup,
        delay_rate=delay,
    )
    run = run_caf(
        run_randomaccess,
        NRANKS,
        backend=backend,
        faults=plan,
        reliable=True,
        table_bits_per_image=TABLE_BITS,
        updates_per_image=UPDATES,
        batches=2,
    )
    ref = reference_tables(RA_SEED, NRANKS, TABLE_BITS, UPDATES)
    tables = run.cluster._shared["ra-tables"]
    for rank in range(NRANKS):
        assert np.array_equal(tables[rank], ref[rank]), (
            f"rank {rank} diverged under {plan!r}"
        )
    # The transport never silently gave a message up.
    rel = run.fabric.reliable
    assert rel is not None and rel.gave_up == 0


@settings(max_examples=6, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    fault_seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_faulty_runs_replay_bit_for_bit(backend, fault_seed):
    def once():
        run = run_caf(
            run_randomaccess,
            NRANKS,
            backend=backend,
            faults=FaultPlan(seed=fault_seed, drop_rate=0.02, dup_rate=0.02),
            reliable=True,
            table_bits_per_image=TABLE_BITS,
            updates_per_image=UPDATES,
            batches=2,
        )
        return (
            run.elapsed,
            run.fabric.messages_sent,
            run.fabric.dropped,
            run.fabric.duplicated,
            run.fabric.reliable.retransmits,
        )

    assert once() == once()
