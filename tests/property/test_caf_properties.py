"""Property-based tests for the CAF layer, on both backends."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.randomaccess import reference_tables, run_randomaccess
from repro.caf import run_caf


@settings(max_examples=12, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    nranks=st.integers(min_value=1, max_value=6),
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # writer (mod nranks)
            st.integers(min_value=0, max_value=5),  # target (mod nranks)
            st.integers(min_value=0, max_value=15),  # offset
            st.integers(min_value=1, max_value=200),  # value
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_coarray_writes_land_exactly_where_aimed(backend, nranks, writes):
    plan = [(w % nranks, t % nranks, off, val) for w, t, off, val in writes]

    def program(img):
        co = img.allocate_coarray(16, np.int64)
        img.sync_all()
        for writer, target, off, val in plan:
            if writer == img.rank:
                co.write(target, np.array([val], np.int64), offset=off)
            # Writes to the same slot must apply in plan order: order them
            # with a barrier each step (the property under test is placement
            # and ordering, not racing).
            img.barrier()
        img.sync_all()
        return co.local.copy()

    run = run_caf(program, nranks, backend=backend)
    expected = [np.zeros(16, np.int64) for _ in range(nranks)]
    for _writer, target, off, val in plan:
        expected[target][off] = val
    for rank in range(nranks):
        assert (run.results[rank] == expected[rank]).all()


@settings(max_examples=10, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    nranks=st.sampled_from([1, 2, 4, 8]),
    table_bits=st.integers(min_value=4, max_value=8),
    updates=st.integers(min_value=16, max_value=256),
    batches=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_randomaccess_routing_always_matches_reference(
    backend, nranks, table_bits, updates, batches, seed
):
    """The hypercube router delivers every update to its owner, exactly
    once, for arbitrary table sizes / update counts / batch splits."""
    run = run_caf(
        run_randomaccess,
        nranks,
        backend=backend,
        table_bits_per_image=table_bits,
        updates_per_image=updates,
        batches=batches,
        seed=seed,
    )
    tables = run.cluster._shared["ra-tables"]
    expected = reference_tables(seed, nranks, table_bits, updates)
    for rank in range(nranks):
        assert (tables[rank] == expected[rank]).all()


@settings(max_examples=10, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    nranks=st.integers(min_value=2, max_value=6),
    notifications=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # notifier (mod nranks)
            st.integers(min_value=0, max_value=5),  # target (mod nranks)
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_event_counts_conserved(backend, nranks, notifications):
    """Total notifications posted == total observed, per target slot."""
    plan = [(a % nranks, b % nranks) for a, b in notifications]
    incoming = [sum(1 for _a, b in plan if b == r) for r in range(nranks)]

    def program(img):
        ev = img.allocate_events(1)
        for notifier, target in plan:
            if notifier == img.rank:
                ev.notify(target)
        if incoming[img.rank]:
            ev.wait(count=incoming[img.rank])
        leftover = ev.count()
        img.sync_all()
        return leftover

    run = run_caf(program, nranks, backend=backend)
    assert all(left == 0 for left in run.results)


@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(["mpi", "gasnet"]),
    colors=st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=8),
)
def test_team_split_partitions_world(backend, colors):
    nranks = len(colors)

    def program(img):
        team = img.team_split(img.team_world, color=colors[img.rank])
        return team.members, team.my_index

    run = run_caf(program, nranks, backend=backend)
    seen = set()
    for rank, (members, my_index) in enumerate(run.results):
        assert members[my_index] == rank
        assert all(colors[m] == colors[rank] for m in members)
        seen.add(members)
    # Teams of the same color are identical tuples; union covers the world.
    covered = sorted(r for members in seen for r in members)
    assert covered == list(range(nranks))
