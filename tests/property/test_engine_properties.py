"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

SLEEPS = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=6),
    min_size=1,
    max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(sleep_plan=SLEEPS)
def test_per_proc_time_is_sum_of_sleeps(sleep_plan):
    eng = Engine()
    results = []

    def body(p, sleeps):
        for s in sleeps:
            p.sleep(s)
        results.append(eng.now)

    for sleeps in sleep_plan:
        eng.spawn(lambda p, s=sleeps: body(p, s))
    eng.run()
    # Each proc finishes exactly at the sum of its sleeps; global clock ends
    # at the max.
    expected = sorted(sum(s) for s in sleep_plan)
    assert sorted(results) == expected
    assert eng.now == max(expected)


@settings(max_examples=25, deadline=None)
@given(sleep_plan=SLEEPS, data=st.randoms())
def test_runs_are_deterministic(sleep_plan, data):
    def run_once():
        eng = Engine()
        trace = []

        def body(p, i, sleeps):
            for s in sleeps:
                p.sleep(s)
                trace.append((i, eng.now))

        for i, sleeps in enumerate(sleep_plan):
            eng.spawn(lambda p, i=i, s=sleeps: body(p, i, s))
        eng.run()
        return trace

    assert run_once() == run_once()


@settings(max_examples=25, deadline=None)
@given(
    n_items=st.integers(min_value=1, max_value=30),
    n_consumers=st.integers(min_value=1, max_value=5),
)
def test_channel_conserves_items(n_items, n_consumers):
    from repro.sim.sync import Channel

    eng = Engine()
    ch = Channel("c")
    got = []

    def producer(p):
        for i in range(n_items):
            p.sleep(0.1)
            ch.put(i)

    def consumer(p, share):
        for _ in range(share):
            got.append(ch.get(p))

    shares = [n_items // n_consumers] * n_consumers
    shares[0] += n_items - sum(shares)
    eng.spawn(producer)
    for share in shares:
        eng.spawn(lambda p, s=share: consumer(p, s))
    eng.run()
    assert sorted(got) == list(range(n_items))
