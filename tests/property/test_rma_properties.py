"""Property-based tests for RMA atomics and coarray section runs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import SUM

from tests.mpi.conftest import mpi_run


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    increments=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=5),
)
def test_concurrent_atomic_sums_never_lose_updates(nranks, increments):
    """Every rank fires the same accumulate sequence at rank 0 with no
    synchronization between ops; the final counter must be exact."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        for inc in increments:
            win.accumulate(np.array([inc], np.int64), target=0, op=SUM)
        win.flush(0)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return int(win.local[0])

    _, results = mpi_run(program, nranks)
    assert results[0] == nranks * sum(increments)


@settings(max_examples=20, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_fetch_and_op_returns_unique_prefix_sums(nranks, seed):
    """Atomic fetch-and-add must hand out distinct, gap-free tickets."""

    def program(mpi, ctx):
        win = mpi.win_allocate(shape=1, dtype=np.int64)
        win.lock_all()
        mpi.COMM_WORLD.barrier()
        got = np.zeros(1, np.int64)
        win.fetch_and_op(np.ones(1, np.int64), got, target=0, op=SUM)
        mpi.COMM_WORLD.barrier()
        win.unlock_all()
        return int(got[0])

    _, results = mpi_run(program, nranks, seed=seed)
    assert sorted(results) == list(range(nranks))


@settings(max_examples=60, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
    ),
    start0=st.integers(min_value=0, max_value=7),
    stop0=st.integers(min_value=0, max_value=8),
    step0=st.integers(min_value=1, max_value=3),
    start1=st.integers(min_value=0, max_value=7),
    stop1=st.integers(min_value=0, max_value=8),
    step1=st.integers(min_value=1, max_value=3),
)
def test_section_runs_reconstruct_numpy_selection(
    shape, start0, stop0, step0, start1, stop1, step1
):
    """The run decomposition must cover exactly the indices NumPy selects,
    in order, with no overlaps."""
    from repro.caf.coarray import Coarray

    key = (slice(start0, stop0, step0), slice(start1, stop1, step1))

    class _FakeCoarray:
        pass

    fake = _FakeCoarray()
    fake.shape = shape
    fake.nelems = int(np.prod(shape))
    runs, out_shape = Coarray._section_runs(fake, key)

    expected = np.arange(fake.nelems).reshape(shape)[key]
    assert out_shape == expected.shape
    flattened = [i for off, length in runs for i in range(off, off + length)]
    assert flattened == expected.reshape(-1).tolist()
    # Runs are maximal: adjacent runs are never contiguous.
    for (o1, l1), (o2, _l2) in zip(runs, runs[1:]):
        assert o1 + l1 != o2
