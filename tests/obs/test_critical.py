"""Critical-path analysis over synthetic and real traces."""

import math

import numpy as np
import pytest

from repro.caf import run_caf
from repro.obs.critical import critical_path
from repro.sim.trace import TraceEvent


def region(rank, t0, t1, category):
    return TraceEvent("region", rank, t0, t1, {"category": category})


def transfer(src, dst, t0, t1, nbytes=8):
    return TraceEvent("transfer", src, t0, t1, {"dst": dst, "nbytes": nbytes})


def test_empty_trace_yields_empty_path():
    cp = critical_path([])
    assert cp.steps == []
    assert cp.coverage == 0.0


def test_single_rank_chain_fully_attributed():
    events = [
        region(0, 0.0, 2.0, "compute"),
        region(0, 2.0, 3.0, "barrier"),
    ]
    cp = critical_path(events)
    assert cp.makespan == 3.0
    assert [s.category for s in cp.steps] == ["compute", "barrier"]
    assert cp.by_category == {
        "compute": pytest.approx(2.0),
        "barrier": pytest.approx(1.0),
    }
    assert cp.coverage == pytest.approx(1.0)


def test_path_hops_along_the_unblocking_message():
    # Rank 0 computes then sends; rank 1 waits and finishes last. The path
    # must be: r0 compute -> wire -> r1 tail region.
    events = [
        region(0, 0.0, 2.0, "compute"),
        transfer(0, 1, 2.0, 2.5, nbytes=64),
        region(1, 0.0, 2.5, "event_wait"),
        region(1, 2.5, 3.0, "compute"),
    ]
    cp = critical_path(events)
    kinds = [s.kind for s in cp.steps]
    assert "transfer" in kinds
    hop = cp.steps[kinds.index("transfer")]
    assert (hop.rank, hop.detail["dst"]) == (0, 1)
    assert cp.by_category["network"] == pytest.approx(0.5)
    # Time before the hop is attributed on rank 0, after it on rank 1.
    assert cp.steps[0].rank == 0
    assert cp.steps[-1].rank == 1


def test_unattributed_gap_becomes_idle_step():
    events = [
        region(0, 0.0, 1.0, "compute"),
        region(0, 3.0, 4.0, "compute"),
    ]
    cp = critical_path(events)
    idle = [s for s in cp.steps if s.kind == "idle"]
    assert len(idle) == 1
    assert idle[0].duration == pytest.approx(2.0)
    assert cp.by_category["idle"] == pytest.approx(2.0)
    assert cp.coverage == pytest.approx(1.0)


def test_faulted_and_undelivered_transfers_are_ignored():
    events = [
        region(0, 0.0, 1.0, "compute"),
        TraceEvent("transfer", 1, 0.0, math.inf, {"dst": 0, "nbytes": 8}),
        TraceEvent(
            "transfer", 1, 0.0, 0.5, {"dst": 0, "nbytes": 8, "fault": "corrupt"}
        ),
    ]
    cp = critical_path(events)
    assert all(s.kind != "transfer" for s in cp.steps)


def test_explicit_makespan_scales_coverage():
    cp = critical_path([region(0, 0.0, 1.0, "c")], makespan=4.0)
    assert cp.makespan == 4.0
    assert cp.coverage == pytest.approx(0.25)


def test_deterministic_across_event_order():
    events = [
        region(0, 0.0, 2.0, "compute"),
        transfer(0, 1, 2.0, 2.5),
        region(1, 2.5, 3.0, "compute"),
        region(1, 0.0, 2.5, "event_wait"),
    ]
    a = critical_path(events).to_dict()
    b = critical_path(list(reversed(events))).to_dict()
    assert a == b


def test_real_run_path_covers_most_of_the_makespan():
    def program(img):
        co = img.allocate_coarray(32, np.float64)
        img.sync_all()
        co.write((img.rank + 1) % img.nranks, np.full(32, img.rank))
        img.sync_all()

    run = run_caf(program, 4, backend="mpi", trace=True)
    cp = critical_path(run.tracer.events, makespan=run.elapsed)
    assert cp.steps
    assert 0.5 < cp.coverage <= 1.0 + 1e-9
    # Steps are time-ordered from start toward the makespan.
    for prev, nxt in zip(cp.steps, cp.steps[1:]):
        assert prev.t1 <= nxt.t1 + 1e-12
    assert cp.steps[-1].t1 == pytest.approx(run.elapsed)
