"""The ``python -m repro.obs`` CLI: render, validate, diff, exit codes."""

import json

import numpy as np
import pytest

from repro.caf import run_caf
from repro.obs.cli import main


def ring_program(img):
    co = img.allocate_coarray(8, np.float64)
    img.sync_all()
    co.write((img.rank + 1) % img.nranks, np.ones(8))
    img.sync_all()


@pytest.fixture(scope="module")
def report_path(tmp_path_factory):
    run = run_caf(ring_program, 2, backend="mpi", metrics=True)
    path = tmp_path_factory.mktemp("obs") / "run.report.json"
    run.report(label="cli-test").to_json(str(path))
    return path


def test_render(report_path, capsys):
    assert main(["render", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "run report: cli-test" in out
    assert "op-level metrics" in out


def test_render_prometheus(report_path, capsys):
    assert main(["render", str(report_path), "--prom"]) == 0
    out = capsys.readouterr().out
    assert "repro_run_makespan_seconds" in out


def test_validate_ok(report_path, capsys):
    assert main(["validate", str(report_path), str(report_path)]) == 0
    assert capsys.readouterr().out.count(": ok") == 2


def test_validate_bad_schema_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    assert main(["validate", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_missing_file_exits_2(tmp_path, capsys):
    assert main(["render", str(tmp_path / "absent.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_diff_self_is_clean(report_path, capsys):
    assert main(["diff", str(report_path), str(report_path), "--fail"]) == 0
    assert "no differences" in capsys.readouterr().out


def test_diff_fail_trips_on_regression(report_path, tmp_path, capsys):
    data = json.loads(report_path.read_text())
    data["meta"]["makespan"] *= 2.0
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(data))
    assert main(["diff", str(report_path), str(worse), "--threshold", "5"]) == 0
    assert (
        main(["diff", str(report_path), str(worse), "--threshold", "5", "--fail"])
        == 1
    )
    out = capsys.readouterr().out
    assert "meta.makespan" in out


def test_diff_multiple_news_requires_all(report_path, capsys):
    with pytest.raises(SystemExit):
        main(["diff", str(report_path), str(report_path), str(report_path)])


def test_diff_all_compares_each_against_baseline(report_path, tmp_path, capsys):
    data = json.loads(report_path.read_text())
    data["meta"]["makespan"] *= 2.0
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(data))
    same = tmp_path / "same.json"
    same.write_text(report_path.read_text())
    rc = main(
        ["diff", str(report_path), str(same), str(worse), "--all",
         "--threshold", "5", "--fail"]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert f"== {report_path.name} vs same.json ==" in out
    assert f"== {report_path.name} vs worse.json ==" in out
    assert "no differences" in out
    assert "1/2 report(s) regressed beyond 5.0%" in out
    # All-clean set exits 0 even with --fail.
    assert (
        main(["diff", str(report_path), str(same), str(same), "--all", "--fail"])
        == 0
    )


def test_module_entrypoint_runs(report_path):
    import os
    import pathlib
    import subprocess
    import sys

    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "validate", str(report_path)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert ": ok" in proc.stdout


# -- failed runs: capture emits a partial report the CLI can read ---------


@pytest.fixture(scope="module")
def failed_report_path(tmp_path_factory):
    from repro.obs import capture
    from repro.sim.faults import FaultPlan
    from repro.util.errors import ReproError

    def doomed(img):
        img.sync_all()
        if img.rank == 1:
            img.compute(seconds=1.0)
            return
        img.compute(seconds=6e-3)
        img.barrier()

    out = tmp_path_factory.mktemp("obs-failed")
    with capture.capture(out):
        with pytest.raises(ReproError):
            run_caf(doomed, 2, backend="mpi", metrics=True, deadline=5.0,
                    faults=FaultPlan(seed=2, crashes=[(1, 2e-3)]))
    (path,) = sorted(out.glob("run-*.report.json"))
    return path


def test_capture_marks_failed_outcome(failed_report_path):
    body = json.loads(failed_report_path.read_text())
    assert body["meta"]["outcome"] == "failed"
    assert body["failure"]["failed_images"] == [1]


def test_render_failed_report(failed_report_path, capsys):
    assert main(["render", str(failed_report_path)]) == 0
    out = capsys.readouterr().out
    assert "outcome: FAILED" in out
    assert "failed images: [1]" in out


def test_validate_failed_report(failed_report_path, capsys):
    assert main(["validate", str(failed_report_path)]) == 0
    assert ": ok" in capsys.readouterr().out


# -- diff --all exit-code edge cases --------------------------------------


def test_diff_all_single_new_is_allowed(report_path, capsys):
    assert main(["diff", str(report_path), str(report_path), "--all"]) == 0
    out = capsys.readouterr().out
    assert "0/1 report(s) regressed" in out


def test_diff_all_regression_exit_codes(report_path, tmp_path, capsys):
    data = json.loads(report_path.read_text())
    data["meta"]["makespan"] *= 2.0
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(data))
    argv = ["diff", str(report_path), str(report_path), str(worse), "--all"]
    # Regressions alone don't fail the invocation...
    assert main(argv) == 0
    # ...until --fail arms the tripwire; exactly one of two regressed.
    assert main(argv + ["--fail"]) == 1
    assert "1/2 report(s) regressed" in capsys.readouterr().out


def test_diff_all_missing_new_exits_2(report_path, tmp_path, capsys):
    argv = [
        "diff", str(report_path), str(report_path),
        str(tmp_path / "absent.json"), "--all",
    ]
    assert main(argv) == 2
    assert "error:" in capsys.readouterr().err


def test_diff_all_invalid_new_exits_2(report_path, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    argv = ["diff", str(report_path), str(report_path), str(bad), "--all"]
    assert main(argv) == 2
    assert "error:" in capsys.readouterr().err


# -- top: telemetry streams through the same CLI --------------------------


@pytest.fixture(scope="module")
def telemetry_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-live") / "run.telemetry.jsonl"
    run_caf(ring_program, 2, backend="mpi", live=path, live_interval=0.0)
    return path


def test_top_renders_stream(telemetry_path, capsys):
    assert main(["top", str(telemetry_path)]) == 0
    out = capsys.readouterr().out
    assert "live telemetry" in out
    assert "FINAL (ok)" in out


def test_top_missing_file_exits_2(tmp_path, capsys):
    assert main(["top", str(tmp_path / "absent.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_top_malformed_stream_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"type": "meta", "schema": "nope"}) + "\n")
    assert main(["top", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_validate_sniffs_telemetry_streams(telemetry_path, capsys):
    assert main(["validate", str(telemetry_path)]) == 0
    assert "telemetry" in capsys.readouterr().out
