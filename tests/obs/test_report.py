"""RunReport assembly, schema validation, exporters, and diffing."""

import json

import numpy as np
import pytest

from repro.caf import run_caf
from repro.obs import (
    RunReport,
    SchemaError,
    build_report,
    diff_reports,
    validate_report,
)


def ring_program(img, *, nbytes=64):
    co = img.allocate_coarray(nbytes // 8, np.float64)
    img.sync_all()
    co.write((img.rank + 1) % img.nranks, np.full(nbytes // 8, float(img.rank)))
    img.sync_all()


@pytest.fixture(scope="module")
def run():
    return run_caf(ring_program, 4, backend="mpi", metrics=True, trace=True)


@pytest.fixture(scope="module")
def report(run):
    return run.report(label="ring-x4", app="ring")


def test_report_meta_and_ops(run, report):
    assert report.meta["nranks"] == 4
    assert report.meta["backend"] == "mpi"
    assert report.meta["label"] == "ring-x4"
    assert report.meta["metrics_enabled"] is True
    assert report.makespan == pytest.approx(run.elapsed)
    # The ring writes are visible as op-level metrics on every rank.
    writes = report.op("caf.coarray_write")
    assert writes["calls"] == 4
    assert writes["bytes"] == 4 * 64
    assert report.op("nonexistent.kind") == {"calls": 0, "bytes": 0, "time": 0.0}


def test_report_sections_present(report):
    data = report.data
    assert data["schema"] == "repro.obs/run-report"
    assert data["profiler"]["breakdown"]
    assert data["fabric"]["messages"] > 0
    cm = data["comm_matrix"]
    assert cm["total_messages"] > 0
    assert len(cm["messages"]) == 4  # dense form kept at small P
    assert data["critical_path"]["steps"]


def test_to_json_round_trips_via_load(tmp_path, report):
    path = tmp_path / "r.json"
    text = report.to_json(str(path))
    assert json.loads(text) == report.data
    loaded = RunReport.load(str(path))
    assert loaded.data == report.data


def test_to_json_is_byte_deterministic(report):
    assert report.to_json() == report.to_json()


def test_validate_rejects_malformed_documents(report):
    for broken in [
        None,
        {},
        {"schema": "other", "version": 1},
        {**report.data, "version": 999},
        {**report.data, "meta": {}},
        {**report.data, "profiler": {"breakdown": {}}},
        {**report.data, "fabric": {"messages": "many", "bytes": 0}},
    ]:
        with pytest.raises(SchemaError):
            validate_report(broken)
    validate_report(report.data)  # the real thing passes


def test_prometheus_export_contains_scalars(report):
    text = report.to_prometheus()
    assert "# TYPE repro_run_makespan_seconds gauge" in text
    assert 'repro_op_calls_total{kind="caf.coarray_write"' in text
    assert "repro_fabric_messages_total" in text
    assert text.endswith("\n")


def test_render_mentions_key_tables(report):
    text = report.render()
    assert "run report: ring-x4" in text
    assert "op-level metrics" in text
    assert "heaviest traffic pairs" in text
    assert "critical path" in text


def test_report_without_metrics_or_trace_still_builds():
    run = run_caf(ring_program, 2, backend="mpi")
    report = build_report(run.cluster, backend="mpi")
    assert report.meta["metrics_enabled"] is False
    assert report.data["ops"]["kinds"] == {}
    assert report.data["comm_matrix"] is None
    assert report.data["critical_path"] is None
    validate_report(report.data)
    assert "time decomposition" in report.render()


def test_diff_identical_reports_has_no_changes(report):
    diff = diff_reports(report, report)
    assert diff.regressions(0.0) == []
    assert "no differences" in diff.render()


def test_diff_flags_regressions_beyond_threshold(run):
    a = run.report()
    b = RunReport.from_dict(json.loads(a.to_json()))
    b.data["meta"]["makespan"] = a.makespan * 1.5
    b.data["ops"]["kinds"]["caf.coarray_write"]["calls"] += 4
    diff = diff_reports(a, b, a_label="old", b_label="new")
    bad = {m for m, *_ in diff.regressions(0.10)}
    assert "meta.makespan" in bad
    assert "ops.caf.coarray_write.calls" in bad
    assert not {m for m, *_ in diff.regressions(2.0)}
    text = diff.render(threshold=0.10)
    assert "old" in text and "new" in text


def test_diff_handles_metrics_present_on_one_side_only(report):
    other = RunReport.from_dict(json.loads(report.to_json()))
    del other.data["ops"]["kinds"]["caf.coarray_write"]
    diff = diff_reports(report, other)
    rows = {m: rel for m, _, _, rel in diff.rows}
    # Present -> absent reads as a change to zero, not a crash.
    assert rows["ops.caf.coarray_write.calls"] == pytest.approx(-1.0)


# -- partial reports for failed runs --------------------------------------


def _doomed(img):
    img.sync_all()
    if img.rank == 1:
        img.compute(seconds=1.0)  # killed mid-flight
        return
    img.compute(seconds=6e-3)
    img.barrier()  # names the corpse


def _failed_cluster():
    from repro.sim.faults import FaultPlan
    from repro.util.errors import ReproError

    with pytest.raises(ReproError) as exc_info:
        run_caf(_doomed, 2, backend="mpi", metrics=True,
                faults=FaultPlan(seed=2, crashes=[(1, 2e-3)]), deadline=5.0)
    return exc_info.value


def test_failed_run_builds_partial_report():
    exc = _failed_cluster()
    report = build_report(exc.caf_cluster, backend="mpi", failure=exc)
    assert report.meta["outcome"] == "failed"
    fail = report.data["failure"]
    assert fail["error"] == type(exc).__name__
    assert fail["failed_images"] == [1]
    assert any(e["reason"] == "crash" for e in fail["failure_log"])
    validate_report(report.data)
    text = report.render()
    assert "outcome: FAILED" in text
    assert "failed images: [1]" in text


def test_validate_rejects_failure_with_ok_outcome():
    exc = _failed_cluster()
    report = build_report(exc.caf_cluster, backend="mpi", failure=exc)
    data = json.loads(report.to_json())
    data["meta"]["outcome"] = "ok"  # lie about the outcome
    with pytest.raises(SchemaError, match="outcome"):
        validate_report(data)
