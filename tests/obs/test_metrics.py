"""Unit tests for the metrics registry: OpStats, histograms, CommMatrix."""

import pytest

from repro.obs.metrics import (
    CommMatrix,
    Metrics,
    OpStats,
    bucket_bounds,
    latency_bucket,
    size_bucket,
)


def test_size_bucket_is_log2():
    assert size_bucket(0) == 0
    assert size_bucket(1) == 1
    assert size_bucket(2) == 2
    assert size_bucket(3) == 2
    assert size_bucket(4) == 3
    assert size_bucket(1024) == 11


def test_latency_bucket_over_nanoseconds():
    assert latency_bucket(0.0) == 0
    assert latency_bucket(1e-9) == 1
    assert latency_bucket(3e-9) == 2
    assert latency_bucket(1e-6) == 10  # 1000 ns -> bit_length 10


def test_bucket_bounds_cover_the_bucketed_value():
    for nbytes in [0, 1, 2, 7, 8, 255, 256, 10_000]:
        lo, hi = bucket_bounds(size_bucket(nbytes))
        assert lo <= max(nbytes, 0) < hi or (nbytes == 0 and (lo, hi) == (0, 1))


def test_opstats_add_and_merge():
    a = OpStats()
    a.add(100, 1e-6)
    a.add(100, 3e-6)
    assert a.calls == 2
    assert a.nbytes == 200
    assert a.time == pytest.approx(4e-6)
    assert a.time_per_call == pytest.approx(2e-6)
    b = OpStats()
    b.add(8, 1e-9)
    b.merge(a)
    assert b.calls == 3
    assert b.nbytes == 208
    assert sum(b.size_hist.values()) == 3
    assert sum(b.lat_hist.values()) == 3


def test_opstats_empty_time_per_call_is_zero():
    assert OpStats().time_per_call == 0.0


def test_opstats_to_dict_sorted_buckets():
    s = OpStats()
    for nbytes in [1024, 1, 64]:
        s.add(nbytes, 1e-6)
    d = s.to_dict()
    assert list(d["size_hist"]) == sorted(d["size_hist"], key=int)
    assert d["calls"] == 3 and d["bytes"] == 1089


def test_metrics_record_and_aggregate():
    m = Metrics(3)
    m.record(0, "mpi.rput", 64, 1e-6)
    m.record(0, "mpi.rput", 64, 1e-6)
    m.record(2, "mpi.rput", 128, 2e-6)
    m.record(1, "caf.event_notify", 0, 5e-7)
    agg = m.aggregate("mpi.rput")
    assert agg.calls == 3
    assert agg.nbytes == 256
    assert agg.time == pytest.approx(4e-6)
    assert m.kinds() == ["caf.event_notify", "mpi.rput"]
    assert m.total_calls() == 4
    assert m.op(2, "mpi.rput").calls == 1
    # op() creates empty records without disturbing totals
    assert m.op(1, "never.seen").calls == 0
    assert m.total_calls() == 4


def test_metrics_counters_and_gauges():
    m = Metrics(1)
    m.count("windows_created")
    m.count("windows_created", 2)
    m.gauge("peak_inflight", 7.0)
    d = m.to_dict()
    assert d["counters"] == {"windows_created": 3}
    assert d["gauges"] == {"peak_inflight": 7.0}


def test_metrics_to_dict_is_deterministic():
    def build():
        m = Metrics(2)
        m.record(1, "b.op", 8, 1e-9)
        m.record(0, "a.op", 4, 2e-9)
        m.record(0, "b.op", 8, 1e-9)
        return m.to_dict()

    assert build() == build()
    assert list(build()["kinds"]) == ["a.op", "b.op"]


def test_comm_matrix_records_and_totals():
    cm = CommMatrix(4)
    cm.record(0, 1, 100)
    cm.record(0, 1, 100)
    cm.record(3, 2, 50)
    assert cm.total_messages() == 3
    assert cm.total_bytes() == 250
    assert cm.messages[0, 1] == 2
    assert cm.bytes[3, 2] == 50


def test_comm_matrix_top_pairs_deterministic_order():
    cm = CommMatrix(4)
    cm.record(2, 3, 10)  # tie in bytes with (1, 0): ordered by (src, dst)
    cm.record(1, 0, 10)
    cm.record(0, 1, 999)
    top = cm.top_pairs(3)
    assert top[0] == (0, 1, 1, 999)
    assert top[1] == (1, 0, 1, 10)
    assert top[2] == (2, 3, 1, 10)
    assert cm.top_pairs(1) == [(0, 1, 1, 999)]


def test_comm_matrix_to_dict_round_trips_shape():
    cm = CommMatrix(2)
    cm.record(0, 1, 5)
    d = cm.to_dict()
    assert d["nranks"] == 2
    assert d["messages"] == [[0, 1], [0, 0]]
    assert d["bytes"] == [[0, 5], [0, 0]]
