"""Live telemetry tap: digest identity, stream schema, failure stamping.

The contract under test is the tentpole's: the heartbeat only *reads*
engine state, so event-order digests, makespans, and profiler totals are
bit-identical with telemetry on or off — on both dispatchers and under
``REPRO_SIM_SHARDS`` in {1, 2} — while the stream itself is a valid,
renderable progress trail that failure diagnostics can stamp.
"""

import json

import pytest

from repro.apps.randomaccess import run_randomaccess
from repro.caf import run_caf
from repro.obs.live import (
    LiveTelemetry,
    follow_top,
    read_telemetry,
    render_top,
    validate_meta,
    validate_snapshot,
)
from repro.obs.report import SchemaError
from repro.util.errors import DeadlockError, SimTimeoutError

RA_KW = dict(table_bits_per_image=8, updates_per_image=64, batches=4)


def _ra(tmp_path, *, live, shards=None, name="t.jsonl"):
    kwargs = dict(RA_KW)
    if live:
        kwargs.update(live=tmp_path / name, live_interval=0.0)
    return run_caf(run_randomaccess, 4, shards=shards, **kwargs)


def _fingerprint(run):
    return (
        run.cluster.engine.order_digest(),
        run.elapsed,
        run.profiler.breakdown(),
    )


@pytest.mark.parametrize("fastpath", ["0", "1"])
def test_digest_makespan_profiler_identical_on_off(tmp_path, monkeypatch, fastpath):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
    off = _fingerprint(_ra(tmp_path, live=False))
    on = _fingerprint(_ra(tmp_path, live=True))
    assert off[0] is not None
    assert off == on


def test_digest_identical_under_shards(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    seq = _fingerprint(_ra(tmp_path, live=False))
    sharded_off = _fingerprint(_ra(tmp_path, live=False, shards=2))
    sharded_on = _fingerprint(_ra(tmp_path, live=True, shards=2, name="s.jsonl"))
    assert seq == sharded_off == sharded_on


def test_stream_is_schema_valid(tmp_path):
    run = _ra(tmp_path, live=True)
    meta, snaps = read_telemetry(tmp_path / "t.jsonl")
    validate_meta(meta)
    assert meta["nranks"] == 4
    assert meta["backend"] == "mpi"
    assert meta["app"] == "run_randomaccess"
    assert meta["shards"] == 1
    for snap in snaps:
        validate_snapshot(snap, nranks=4)
    assert [s["seq"] for s in snaps] == list(range(len(snaps)))
    assert len(snaps) == run.cluster.telemetry.snapshots_written
    last = snaps[-1]
    assert last["final"] is True
    assert last["outcome"] == "ok"
    assert last["ranks"] == {"total": 4, "running": 0, "blocked": 0, "done": 4}
    assert last["rss_bytes"] > 0
    assert last["sim_s"] == run.elapsed
    assert last["shards"] is None  # sequential run: no shard section


def test_shard_section_under_sharded_dispatcher(tmp_path):
    run = _ra(tmp_path, live=True, shards=2)
    meta, snaps = read_telemetry(tmp_path / "t.jsonl")
    assert meta["shards"] == 2
    assert meta["shard_ranks"] == [2, 2]
    sh = snaps[-1]["shards"]
    assert sh["nshards"] == 2
    assert len(sh["events_per_shard"]) == 2
    assert sh["cross_messages"] > 0
    assert sh["null_messages"] >= 0
    assert set(sh["window"]) == {"start", "bound", "lookahead"}
    st = run.cluster.engine.shard_stats()
    assert sh["cross_messages"] == st["cross_messages"]


def test_interval_and_check_every_control_density(tmp_path):
    dense = LiveTelemetry(tmp_path / "dense.jsonl", interval_s=0.0, check_every=64)
    run_caf(run_randomaccess, 4, live=dense, **RA_KW)
    sparse = LiveTelemetry(tmp_path / "sparse.jsonl", interval_s=3600.0)
    run_caf(run_randomaccess, 4, live=sparse, **RA_KW)
    assert dense.snapshots_written > sparse.snapshots_written
    # A huge interval still lands the first-check and final snapshots.
    _meta, snaps = read_telemetry(tmp_path / "sparse.jsonl")
    assert len(snaps) == 2 and snaps[-1]["final"] is True


def test_telemetry_is_single_run(tmp_path):
    tel = LiveTelemetry(tmp_path / "t.jsonl", interval_s=0.0)
    run_caf(run_randomaccess, 4, live=tel, **RA_KW)
    with pytest.raises(SchemaError, match="already attached"):
        run_caf(run_randomaccess, 4, live=tel, **RA_KW)


# -- failure stamping (satellite: hung runs die with a progress trail) ----


def _lonely_sync(img):
    if img.rank == 0:
        img.sync_all()


def _crawl(img):
    for _ in range(100):
        img.ctx.proc.sleep(1.0)


def test_deadlock_carries_final_snapshot(tmp_path):
    with pytest.raises(DeadlockError) as excinfo:
        run_caf(_lonely_sync, 4, live=tmp_path / "d.jsonl", live_interval=0.0)
    exc = excinfo.value
    assert exc.telemetry is not None
    assert exc.telemetry["final"] is True
    assert exc.telemetry["outcome"] == "failed"
    # The engine unwound the fibers before the error surfaced; the snapshot
    # must reflect the watchdog's bookkeeping, not the post-mortem states.
    assert exc.telemetry["ranks"]["blocked"] == 1
    (row,) = exc.telemetry["blocked"]
    assert row["rank"] == 0
    assert "telemetry:" in str(exc)
    _meta, snaps = read_telemetry(tmp_path / "d.jsonl")
    assert snaps[-1]["outcome"] == "failed"


def test_timeout_carries_final_snapshot(tmp_path):
    with pytest.raises(SimTimeoutError) as excinfo:
        run_caf(
            _crawl, 4, live=tmp_path / "t.jsonl", live_interval=0.0, deadline=5.0
        )
    exc = excinfo.value
    assert exc.telemetry is not None
    assert exc.telemetry["outcome"] == "failed"
    assert exc.telemetry["ranks"]["blocked"] == 4
    assert "telemetry:" in str(exc)


def test_errors_without_tap_have_none_telemetry():
    with pytest.raises(DeadlockError) as excinfo:
        run_caf(_lonely_sync, 4)
    assert excinfo.value.telemetry is None


# -- the report ties back to the stream -----------------------------------


def test_run_report_records_telemetry_meta(tmp_path):
    run = _ra(tmp_path, live=True)
    report = run.report(label="ra-x4", app="randomaccess")
    tel = report.meta["telemetry"]
    assert tel["path"].endswith("t.jsonl")
    assert tel["snapshots"] == run.cluster.telemetry.snapshots_written
    assert "live telemetry" in report.render()


# -- stream reading and rendering -----------------------------------------


def test_read_telemetry_rejects_empty_and_gapped(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        read_telemetry(empty)
    _ra(tmp_path, live=True, name="g.jsonl")
    lines = (tmp_path / "g.jsonl").read_text().splitlines()
    assert len(lines) >= 3  # meta + at least two snapshots
    gapped = tmp_path / "gapped.jsonl"
    gapped.write_text("\n".join([lines[0]] + lines[2:]) + "\n")
    with pytest.raises(SchemaError, match="gap"):
        read_telemetry(gapped)


def test_read_telemetry_tolerates_truncated_tail(tmp_path):
    _ra(tmp_path, live=True)
    text = (tmp_path / "t.jsonl").read_text()
    full_meta, full_snaps = read_telemetry(tmp_path / "t.jsonl")
    cut = tmp_path / "cut.jsonl"
    cut.write_text(text[:-20])  # mid-record crash
    meta, snaps = read_telemetry(cut)
    assert meta == full_meta
    assert len(snaps) == len(full_snaps) - 1


def test_render_top_shows_progress(tmp_path):
    _ra(tmp_path, live=True, shards=2)
    meta, snaps = read_telemetry(tmp_path / "t.jsonl")
    out = render_top(meta, snaps)
    assert "live telemetry" in out
    assert "FINAL (ok)" in out
    assert "shards: 2" in out
    assert "recent snapshots" in out


def test_follow_top_returns_on_final_and_times_out(tmp_path, capsys):
    _ra(tmp_path, live=True)
    assert follow_top(tmp_path / "t.jsonl", interval=0.01) == 0
    # Strip the final marker: the stream never finishes, max_wait trips.
    lines = [
        json.loads(line) for line in (tmp_path / "t.jsonl").read_text().splitlines()
    ]
    for rec in lines:
        rec["final"] = False
        rec.pop("outcome", None)
    hung = tmp_path / "hung.jsonl"
    hung.write_text("".join(json.dumps(r) + "\n" for r in lines))
    assert follow_top(hung, interval=0.01, max_wait=0.05) == 2
    capsys.readouterr()
