"""Scaling-law analytics: order fitting, the RA sweep, mismatch detection.

The acceptance contract: ``mpi.flush_all`` per-call cost fits linear-in-P
and GASNet ``event_notify`` fits constant from 4/8/16-rank RandomAccess
RunReports, each agreeing with the static cost model's prediction — and a
doctored sweep trips the mismatch path.
"""

import copy
import json
import math

import pytest

from repro.apps.randomaccess import run_randomaccess
from repro.caf import run_caf
from repro.obs.cli import main as obs_main
from repro.obs.report import RunReport, SchemaError
from repro.obs.scaling import (
    DEFAULT_EXPECTATIONS,
    ScalingReport,
    fit_order,
    fit_scaling,
    parse_expectations,
    static_order,
    validate_scaling_report,
)
from repro.platforms import PLATFORMS

RA_KW = dict(table_bits_per_image=8, updates_per_image=64, batches=4)
SWEEP_RANKS = (4, 8, 16)


@pytest.fixture(scope="module")
def ra_reports():
    """4/8/16-rank RA RunReports per backend — the sweep the CI job fits."""
    out = {}
    for backend in ("mpi", "gasnet"):
        out[backend] = [
            run_caf(run_randomaccess, p, backend=backend, metrics=True, **RA_KW)
            .report(label=f"ra-{backend}-x{p}", app="randomaccess")
            for p in SWEEP_RANKS
        ]
    return out


# -- fit_order: the lattice classifier ------------------------------------


@pytest.mark.parametrize(
    "name,fn",
    [
        ("const", lambda p: 3.0),
        ("log", lambda p: 1.0 + 0.5 * math.log2(p)),
        ("linear", lambda p: 0.2 + 0.4 * p),
        ("poly", lambda p: 1.0 + 0.01 * p * p),
    ],
)
def test_fit_order_recovers_exact_curves(name, fn):
    ranks = [4, 8, 16, 32, 64]
    fit = fit_order(ranks, [fn(p) for p in ranks])
    assert fit.name == name
    assert fit.nrmse < 1e-9
    assert fit.candidates[name] < 1e-9


def test_fit_order_shrinking_cost_is_not_growth():
    ranks = [4, 8, 16, 32]
    fit = fit_order(ranks, [1.0 / p for p in ranks])
    # A negative slope fits "linear" perfectly; the classifier must refuse
    # to call a shrinking cost a growth order.
    assert fit.name == "const"


def test_fit_order_needs_three_distinct_ranks():
    with pytest.raises(ValueError, match=">= 3 distinct"):
        fit_order([4, 8], [1.0, 2.0])
    with pytest.raises(ValueError, match=">= 3 distinct"):
        fit_order([4, 4, 4], [1.0, 1.0, 1.0])
    with pytest.raises(ValueError, match="value"):
        fit_order([4, 8, 16], [1.0, 2.0])


def test_fit_order_all_zero_is_const():
    fit = fit_order([4, 8, 16], [0.0, 0.0, 0.0])
    assert fit.name == "const" and fit.nrmse == 0.0


# -- static predictions ----------------------------------------------------


def test_static_orders_match_the_paper():
    from repro.lint.stream.sym import ORDER_CONST, ORDER_LINEAR

    spec = PLATFORMS["laptop"]
    assert static_order("mpi.flush_all", "mpi", spec) == ORDER_LINEAR
    assert static_order("mpi.flush_all.idle", "mpi", spec) == ORDER_CONST
    assert static_order("caf.event_notify", "gasnet", spec) == ORDER_CONST
    assert static_order("gasnet.am", "gasnet", spec) == ORDER_CONST
    # MPI notify's O(P) lives in the flush_all lowering — no separate model.
    assert static_order("caf.event_notify", "mpi", spec) is None
    # Blocking-dominated kinds have no meaningful per-call model.
    assert static_order("caf.event_wait", "mpi", spec) is None


# -- the RA sweep: the paper's Fig. 4 asymmetry ----------------------------


def test_mpi_sweep_fits_flush_all_linear(ra_reports):
    sc = fit_scaling(ra_reports["mpi"])
    fa = sc.kind("mpi.flush_all")
    assert fa["order"] == "linear"
    assert fa["static_order"] == "linear"
    assert fa["static_agrees"] is True
    idle = sc.kind("mpi.flush_all.idle")
    assert idle["order"] == "const"
    assert idle["static_agrees"] is True
    assert sc.kind("caf.event_notify")["order"] == "linear"
    assert sc.expectation_mismatches == []
    assert sc.crosscheck_mismatches == []


def test_gasnet_sweep_fits_notify_const(ra_reports):
    sc = fit_scaling(ra_reports["gasnet"])
    assert sc.kind("caf.event_notify")["order"] == "const"
    assert sc.kind("caf.event_notify")["static_agrees"] is True
    assert sc.kind("gasnet.am")["order"] == "const"
    assert sc.expectation_mismatches == []
    assert sc.crosscheck_mismatches == []


def test_scaling_report_roundtrip_and_render(ra_reports, tmp_path):
    sc = fit_scaling(ra_reports["mpi"])
    path = tmp_path / "scaling.json"
    sc.to_json(str(path))
    loaded = ScalingReport.load(str(path))
    assert loaded.data == sc.data
    out = sc.render()
    assert "mpi.flush_all" in out
    assert "O(P)" in out
    assert "0 expectation mismatch(es)" in out


# -- the seeded negative: mismatch path must trip --------------------------


def _doctored_gasnet(ra_reports):
    """GASNet sweep with event_notify times grown linearly in P — the
    regression a tree-less notify rewrite would introduce."""
    reports = [copy.deepcopy(r.data) for r in ra_reports["gasnet"]]
    for data in reports:
        p = data["meta"]["nranks"]
        entry = data["ops"]["kinds"]["caf.event_notify"]
        entry["time"] = entry["calls"] * (0.2e-6 + 0.4e-6 * p)
    return [RunReport.from_dict(d) for d in reports]


def test_doctored_gasnet_sweep_trips_both_detectors(ra_reports):
    sc = fit_scaling(_doctored_gasnet(ra_reports))
    assert sc.kind("caf.event_notify")["order"] == "linear"
    assert sc.kind("caf.event_notify")["static_agrees"] is False
    assert "caf.event_notify" in sc.crosscheck_mismatches
    assert any(
        e["kind"] == "caf.event_notify" for e in sc.expectation_mismatches
    )
    assert sc.data["summary"]["expectation_mismatches"] >= 1
    assert sc.data["summary"]["crosscheck_mismatches"] >= 1


def test_cli_scaling_fail_exits_1_on_mismatch(ra_reports, tmp_path, capsys):
    paths = []
    for rep in _doctored_gasnet(ra_reports):
        p = tmp_path / f"ra-{rep.meta['nranks']}.json"
        rep.to_json(str(p))
        paths.append(str(p))
    assert obs_main(["scaling", *paths]) == 0  # report-only mode
    assert obs_main(["scaling", *paths, "--fail"]) == 1
    out = capsys.readouterr().out
    assert "MISMATCH" in out


def test_cli_scaling_happy_path_writes_artifact(ra_reports, tmp_path, capsys):
    paths = []
    for rep in ra_reports["mpi"]:
        p = tmp_path / f"ra-{rep.meta['nranks']}.json"
        rep.to_json(str(p))
        paths.append(str(p))
    out_path = tmp_path / "scaling.json"
    assert obs_main(["scaling", *paths, "--out", str(out_path), "--fail"]) == 0
    validate_scaling_report(json.loads(out_path.read_text()))
    assert obs_main(["validate", str(out_path)]) == 0
    assert "scaling report" in capsys.readouterr().out


def test_cli_scaling_expect_overrides(ra_reports, tmp_path):
    paths = []
    for rep in ra_reports["mpi"]:
        p = tmp_path / f"ra-{rep.meta['nranks']}.json"
        rep.to_json(str(p))
        paths.append(str(p))
    # Declare the wrong expectation: the detector must trip on it.
    assert (
        obs_main(
            ["scaling", *paths, "--expect", "mpi.flush_all=const", "--fail"]
        )
        == 1
    )
    # Without defaults and with only a satisfied expectation: clean. The
    # crosscheck still runs, so disable it to isolate the expectation path.
    assert (
        obs_main(
            [
                "scaling", *paths,
                "--no-default-expectations",
                "--no-crosscheck",
                "--expect", "mpi.flush_all=linear",
                "--fail",
            ]
        )
        == 0
    )


# -- input validation ------------------------------------------------------


def test_fit_scaling_rejects_bad_sweeps(ra_reports):
    mpi = ra_reports["mpi"]
    with pytest.raises(SchemaError, match=">= 3 reports"):
        fit_scaling(mpi[:2])
    with pytest.raises(SchemaError, match="duplicate rank"):
        fit_scaling([mpi[0], mpi[0], mpi[1]])
    with pytest.raises(SchemaError, match="one backend"):
        fit_scaling([mpi[0], mpi[1], ra_reports["gasnet"][2]])


def test_fit_scaling_warns_on_absent_expectation_kind(ra_reports):
    sc = fit_scaling(
        ra_reports["mpi"], expectations={"caf.nonexistent_op": "const"}
    )
    assert any("caf.nonexistent_op" in w for w in sc.data["warnings"])


def test_parse_expectations():
    assert parse_expectations(["a.b=linear", "c=const"]) == {
        "a.b": "linear",
        "c": "const",
    }
    with pytest.raises(SchemaError, match="bad expectation"):
        parse_expectations(["a.b=quadratic"])
    with pytest.raises(SchemaError, match="bad expectation"):
        parse_expectations(["nosep"])


def test_default_expectations_cover_both_backends():
    assert DEFAULT_EXPECTATIONS["mpi"]["mpi.flush_all"] == "linear"
    assert DEFAULT_EXPECTATIONS["gasnet"]["caf.event_notify"] == "const"


def test_validate_rejects_malformed_reports(ra_reports):
    good = fit_scaling(ra_reports["mpi"]).data
    bad = copy.deepcopy(good)
    bad["kinds"]["mpi.flush_all"]["order"] = "quadratic"
    with pytest.raises(SchemaError):
        validate_scaling_report(bad)
    bad = copy.deepcopy(good)
    bad["meta"]["nranks"] = [4, 8]
    with pytest.raises(SchemaError):
        validate_scaling_report(bad)
    with pytest.raises(SchemaError):
        validate_scaling_report({"schema": "nope"})
