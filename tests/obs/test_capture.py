"""Process-wide capture: run_caf emits per-run artifacts while active."""

import json

import numpy as np

from repro.caf import run_caf
from repro.obs import capture
from repro.obs.report import RunReport


def program(img):
    co = img.allocate_coarray(8, np.float64)
    img.sync_all()
    co.write((img.rank + 1) % img.nranks, np.ones(8))
    img.sync_all()


def test_inactive_by_default():
    assert not capture.active()
    assert not capture.trace_forced()


def test_capture_context_emits_one_report_per_run(tmp_path):
    out = tmp_path / "obs"
    with capture.capture(out):
        assert capture.active()
        run_caf(program, 2, backend="mpi")
        run_caf(program, 2, backend="gasnet")
    assert not capture.active()
    reports = sorted(out.glob("run-*.report.json"))
    assert [p.name for p in reports] == [
        "run-0000.report.json",
        "run-0001.report.json",
    ]
    r0 = RunReport.load(str(reports[0]))
    assert r0.meta["backend"] == "mpi"
    assert r0.meta["metrics_enabled"] is True  # capture force-enables metrics
    assert r0.op("caf.coarray_write")["calls"] == 2
    assert RunReport.load(str(reports[1])).meta["backend"] == "gasnet"


def test_capture_with_trace_also_writes_chrome_json(tmp_path):
    out = tmp_path / "obs"
    capture.start(out, trace=True)
    try:
        assert capture.trace_forced()
        run_caf(program, 2, backend="mpi")
    finally:
        written = capture.stop()
    names = sorted(p.name for p in written)
    assert names == ["run-0000.report.json", "run-0000.trace.json"]
    trace = json.loads((out / "run-0000.trace.json").read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
    report = RunReport.load(str(out / "run-0000.report.json"))
    assert report.meta["traced"] is True
    assert report.data["critical_path"] is not None


def test_stop_returns_written_paths_and_resets(tmp_path):
    capture.start(tmp_path / "a")
    run_caf(program, 2)
    first = capture.stop()
    assert len(first) == 1
    # A fresh capture restarts the sequence at run-0000.
    capture.start(tmp_path / "b")
    run_caf(program, 2)
    second = capture.stop()
    assert [p.name for p in second] == ["run-0000.report.json"]
    assert capture.stop() == []  # idempotent when inactive


def test_emit_without_active_capture_is_a_noop(tmp_path):
    run = run_caf(program, 2)
    capture.emit(run.cluster, backend="mpi")  # must not raise or write
    assert list(tmp_path.iterdir()) == []


# -- capture under the sharded dispatcher (REPRO_SIM_SHARDS > 1) ----------


def test_capture_under_sharded_dispatcher(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")
    out = tmp_path / "obs"
    with capture.capture(out):
        run_caf(program, 4)
    (path,) = sorted(out.glob("run-*.report.json"))
    report = RunReport.load(str(path))
    assert report.meta["shards"] == 2
    assert report.data["shards"]["nshards"] == 2
    assert report.data["shards"]["lookahead_violations"] == 0


def test_capture_digest_identical_with_telemetry_under_shards(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")

    def digest(shards, live):
        kwargs = {}
        if live:
            kwargs.update(
                live=tmp_path / f"s{shards}-{live}.jsonl", live_interval=0.0
            )
        run = run_caf(program, 4, shards=shards, **kwargs)
        return run.cluster.engine.order_digest()

    baseline = digest(None, False)
    assert baseline is not None
    assert digest(None, True) == baseline
    assert digest(2, False) == baseline
    assert digest(2, True) == baseline


def test_capture_live_emits_telemetry_stream_per_run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
    out = tmp_path / "obs"
    capture.start(out, live=True, live_interval=0.0)
    try:
        assert capture.live_forced()
        run_caf(program, 4)
        run_caf(program, 4)
    finally:
        written = capture.stop()
    assert not capture.live_forced()
    names = sorted(p.name for p in written)
    assert names == [
        "run-0000.report.json",
        "run-0000.telemetry.jsonl",
        "run-0001.report.json",
        "run-0001.telemetry.jsonl",
    ]
    from repro.obs.live import read_telemetry

    for seq in (0, 1):
        meta, snaps = read_telemetry(out / f"run-{seq:04d}.telemetry.jsonl")
        assert meta["shards"] == 2
        assert snaps[-1]["final"] is True and snaps[-1]["outcome"] == "ok"
        report = RunReport.load(str(out / f"run-{seq:04d}.report.json"))
        assert report.meta["telemetry"]["snapshots"] == len(snaps)
