"""End-to-end metrics instrumentation: coverage, zero perturbation, and the
paper's flush/event_notify linear-in-P story read off a RunReport."""

import numpy as np
import pytest

from repro.apps.randomaccess import run_randomaccess
from repro.caf import run_caf

RA_KW = dict(table_bits_per_image=6, updates_per_image=128, batches=4)


def ring_program(img):
    co = img.allocate_coarray(16, np.float64)
    ev = img.allocate_events(1)
    img.sync_all()
    co.write((img.rank + 1) % img.nranks, np.full(16, float(img.rank)))
    ev.notify(target=(img.rank + 1) % img.nranks)
    ev.wait()
    got = co.read(img.rank)
    img.sync_all()
    return float(got[0])


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_caf_ops_recorded_on_both_backends(backend):
    run = run_caf(ring_program, 4, backend=backend, metrics=True)
    kinds = set(run.metrics.kinds())
    assert {"caf.coarray_write", "caf.coarray_read",
            "caf.event_notify", "caf.event_wait"} <= kinds
    writes = run.metrics.aggregate("caf.coarray_write")
    assert writes.calls == 4
    assert writes.nbytes == 4 * 16 * 8
    assert writes.time > 0.0
    # Backend-level ops appear under their namespace.
    if backend == "gasnet":
        assert any(k.startswith("gasnet.") for k in kinds)
    else:
        assert any(k.startswith("mpi.") for k in kinds)


def test_comm_matrix_matches_fabric_totals():
    run = run_caf(ring_program, 4, backend="mpi", metrics=True)
    cm = run.comm_matrix
    assert cm.total_messages() == run.fabric.messages_sent
    assert cm.total_bytes() == run.fabric.bytes_sent
    # The ring writes produce off-diagonal traffic between neighbours.
    assert all(cm.messages[r, (r + 1) % 4] > 0 for r in range(4))


def test_metrics_disabled_by_default():
    run = run_caf(ring_program, 2, backend="mpi")
    assert run.metrics is None
    assert run.comm_matrix is None


def test_collectives_recorded():
    from repro.mpi.constants import SUM

    def program(img):
        x = np.full(4, float(img.rank))
        out = np.empty_like(x)
        img.team_allreduce(x, out, SUM)
        img.barrier()

    run = run_caf(program, 4, backend="mpi", metrics=True)
    ar = run.metrics.aggregate("caf.coll.allreduce")
    assert ar.calls == 4
    assert ar.nbytes == 4 * 4 * 8
    assert run.metrics.aggregate("caf.coll.barrier").calls == 4


@pytest.mark.parametrize("backend", ["mpi", "gasnet"])
def test_virtual_time_identical_with_metrics_on_and_off(backend):
    off = run_caf(ring_program, 4, backend=backend, **{})
    on = run_caf(ring_program, 4, backend=backend, metrics=True)
    assert on.elapsed == off.elapsed
    assert on.results == off.results


def test_event_order_digest_bit_identical_with_metrics(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_DIGEST", "1")

    def digest(metrics):
        run = run_caf(run_randomaccess, 4, metrics=metrics, **RA_KW)
        return run.cluster.engine.order_digest()

    d_off, d_on = digest(False), digest(True)
    assert d_off is not None
    assert d_off == d_on


def test_randomaccess_flush_cost_grows_with_ranks():
    """The paper's Fig. 4 observation: event_notify rides MPI_Win_flush_all,
    whose per-call cost is linear in P — readable straight off the metrics."""

    def per_call(nranks, kind):
        run = run_caf(run_randomaccess, nranks, metrics=True, **RA_KW)
        return run.metrics.aggregate(kind).time_per_call

    notify4, notify8 = per_call(4, "caf.event_notify"), per_call(8, "caf.event_notify")
    flush4, flush8 = per_call(4, "mpi.flush_all"), per_call(8, "mpi.flush_all")
    assert notify8 > notify4 > 0.0
    assert flush8 > flush4 > 0.0
    # Doubling P roughly doubles the linear term (loose bounds: the constant
    # part dilutes the ratio below 2x).
    assert notify8 / notify4 > 1.2
    assert flush8 / flush4 > 1.2


def test_report_from_randomaccess_has_the_decomposition():
    run = run_caf(run_randomaccess, 4, metrics=True, trace=True, **RA_KW)
    report = run.report(label="ra-x4", app="randomaccess")
    assert report.op("caf.event_notify")["calls"] > 0
    assert report.op("mpi.flush_all")["calls"] > 0
    assert "event_notify" in report.data["profiler"]["breakdown"]
    assert report.data["critical_path"]["coverage"] > 0.5
