"""Shared helpers for GASNet-layer tests."""

import pytest

from repro.gasnet.core import GasnetWorld
from repro.sim.cluster import Cluster
from repro.sim.network import MachineSpec

SEGMENT_BYTES = 1 << 20


def gasnet_run(program, nranks, *, spec=None, seed=1, segment=SEGMENT_BYTES, **kwargs):
    """Run ``program(gasnet, ctx, **kwargs)`` on every rank under GASNet."""
    spec = spec or MachineSpec(name="test")
    cluster = Cluster(nranks, spec, seed=seed)

    def wrapper(ctx, **kw):
        g = GasnetWorld.get(ctx.cluster).attach(ctx, segment)
        return program(g, ctx, **kw)

    results = cluster.run(wrapper, program_kwargs=kwargs)
    return cluster, results


@pytest.fixture
def run():
    return gasnet_run
