"""GASNet core semantics: AMs, polling progress, RDMA put/get, SRQ."""

import numpy as np
import pytest

from repro.sim.network import MachineSpec
from repro.util.errors import DeadlockError, GasnetError

from tests.gasnet.conftest import gasnet_run


def test_put_writes_remote_segment(run):
    def program(g, ctx):
        if ctx.rank == 0:
            g.put(1, 100, np.arange(8, dtype=np.uint8))
            g.am_request_short(1, 1, 0)  # tell rank 1 it can look
        else:
            done = []
            g.register_handler(1, lambda token, x: done.append(x))
            g.block_until(lambda: done, "waiting for signal")
            return g.segment[100:108].tolist()

    _, results = gasnet_run(program, 2)
    assert results[1] == list(range(8))


def test_blocking_put_is_remotely_complete_on_return(run):
    def program(g, ctx):
        if ctx.rank == 0:
            g.put(1, 0, np.array([123], dtype=np.uint8))
            # No further synchronization: remote memory must already be set.
            assert g.segment_of(1)[0] == 123

    gasnet_run(program, 2)


def test_get_reads_remote_segment(run):
    def program(g, ctx):
        g.segment[:4] = ctx.rank + 10
        # Everyone reads from rank 0. No sync needed: rank 0 wrote its own
        # segment before any remote get can arrive... make it robust anyway:
        buf = np.zeros(4, np.uint8)
        g.get(buf, 0, 0)
        return buf.tolist()

    _, results = gasnet_run(program, 3)
    assert results[0] == [10] * 4


def test_put_nb_handle_completion(run):
    def program(g, ctx):
        if ctx.rank == 0:
            h = g.put_nb(1, 0, np.full(16, 5, np.uint8))
            assert not h.done
            g.wait_syncnb(h)
            assert h.done
            assert g.segment_of(1)[0] == 5

    gasnet_run(program, 2)


def test_am_short_args_and_reply(run):
    def program(g, ctx):
        log = []
        g.register_handler(1, lambda token, a, b: token.reply_short(2, a + b))
        g.register_handler(2, lambda token, s: log.append((token.src, s)))
        if ctx.rank == 0:
            g.am_request_short(1, 1, 20, 22)
            g.block_until(lambda: log, "waiting for reply")
            return log[0]
        # The target must re-enter GASNet for the request handler to run.
        g.block_until(lambda: g.am_handled >= 1, "serving one request")

    _, results = gasnet_run(program, 2)
    assert results[0] == (1, 42)


def test_am_medium_payload(run):
    def program(g, ctx):
        got = []

        def handler(token, payload, tag):
            got.append((tag, payload.view(np.float64).copy()))

        g.register_handler(3, handler)
        if ctx.rank == 0:
            g.am_request_medium(1, 3, np.array([2.5, 3.5]), 9)
        else:
            g.block_until(lambda: got, "waiting for medium AM")
            tag, data = got[0]
            return tag, data.tolist()

    _, results = gasnet_run(program, 2)
    assert results[1] == (9, [2.5, 3.5])


def test_am_long_lands_payload_in_segment(run):
    def program(g, ctx):
        got = []

        def handler(token, offset, nbytes, tag):
            got.append((offset, nbytes, tag))

        g.register_handler(4, handler)
        if ctx.rank == 0:
            g.am_request_long(1, 4, np.arange(4, dtype=np.uint8), 64, 7)
        else:
            g.block_until(lambda: got, "waiting for long AM")
            offset, nbytes, tag = got[0]
            assert (offset, nbytes, tag) == (64, 4, 7)
            return g.segment[64:68].tolist()

    _, results = gasnet_run(program, 2)
    assert results[1] == [0, 1, 2, 3]


def test_am_handlers_only_run_when_target_polls(run):
    def program(g, ctx):
        hits = []
        g.register_handler(1, lambda token: hits.append(ctx.now))
        if ctx.rank == 0:
            g.am_request_short(1, 1)
        else:
            ctx.compute(5.0)  # not in a GASNet call: no handler progress
            assert not hits
            g.poll()
            assert hits and hits[0] >= 5.0
            return hits[0]

    _, results = gasnet_run(program, 2)
    assert results[1] >= 5.0


def test_blocked_outside_gasnet_never_handles_am():
    """The Figure 2 hazard: an AM round-trip deadlocks if the target never
    re-enters GASNet."""

    def program(g, ctx):
        acked = []
        g.register_handler(1, lambda token: token.reply_short(2))
        g.register_handler(2, lambda token: acked.append(1))
        if ctx.rank == 0:
            g.am_request_short(1, 1)
            g.block_until(lambda: acked, "waiting for ack")
        # rank 1 simply returns: never polls, never handles the request.

    with pytest.raises(DeadlockError):
        gasnet_run(program, 2)


def test_am_ordering_preserved_per_pair(run):
    def program(g, ctx):
        got = []
        g.register_handler(1, lambda token, i: got.append(i))
        if ctx.rank == 0:
            for i in range(10):
                g.am_request_short(1, 1, i)
        else:
            g.block_until(lambda: len(got) == 10, "waiting for 10 AMs")
            return got

    _, results = gasnet_run(program, 2)
    assert results[1] == list(range(10))


def test_srq_threshold_slows_am_handling():
    fast = MachineSpec(
        name="t", ranks_per_node=1, gasnet_srq_threshold=None, gasnet_srq_penalty=1e-4
    )
    slow = MachineSpec(
        name="t", ranks_per_node=1, gasnet_srq_threshold=2, gasnet_srq_penalty=1e-4
    )

    def program(g, ctx):
        count = []
        g.register_handler(1, lambda token, i: count.append(i))
        if ctx.rank == 0:
            t0 = ctx.now
            for i in range(50):
                g.am_request_short(1, 1, i)
            g.put(1, 0, np.array([1], np.uint8))  # remotely-complete fence
            return ctx.now - t0
        g.block_until(lambda: len(count) == 50, "collecting")

    _, r_fast = gasnet_run(program, 2, spec=fast)
    _, r_slow = gasnet_run(program, 2, spec=slow)
    assert r_slow[0] > r_fast[0] * 2


def test_segment_bounds_checked(run):
    def program(g, ctx):
        g.put(0, 1 << 20, np.zeros(16, np.uint8))

    with pytest.raises(GasnetError, match="outside rank"):
        gasnet_run(program, 1)


def test_double_attach_rejected(run):
    def program(g, ctx):
        from repro.gasnet.core import GasnetWorld

        GasnetWorld.get(ctx.cluster).attach(ctx, 1024)

    with pytest.raises(GasnetError, match="twice"):
        gasnet_run(program, 1)


def test_medium_payload_size_limit(run):
    def program(g, ctx):
        g.am_request_medium(0, 1, np.zeros(1 << 20, np.uint8))

    with pytest.raises(GasnetError, match="AMMaxMedium"):
        gasnet_run(program, 1)


def test_too_many_am_args_rejected(run):
    def program(g, ctx):
        g.register_handler(1, lambda token, *a: None)
        g.am_request_short(0, 1, *range(20))

    with pytest.raises(GasnetError, match="AMMaxArgs"):
        gasnet_run(program, 1)


def test_memory_model_srq_vs_nosrq():
    srq_spec = MachineSpec(name="t", gasnet_srq_threshold=2)
    nosrq_spec = MachineSpec(name="t", gasnet_srq_threshold=None)

    def program(g, ctx):
        return ctx.memory.rank_mb(ctx.rank, prefix="gasnet/")

    _, with_srq = gasnet_run(program, 4, spec=srq_spec)
    _, without = gasnet_run(program, 4, spec=nosrq_spec)
    assert without[0] > with_srq[0]  # SRQ saves memory


def test_gasnet_and_mpi_memory_duplicate():
    """Figure 1: initializing both runtimes doubles the footprint."""
    from repro.mpi.world import MpiWorld
    from repro.sim.cluster import Cluster

    spec = MachineSpec(name="t")
    cluster = Cluster(4, spec, seed=1)

    def program(ctx):
        from repro.gasnet.core import GasnetWorld

        GasnetWorld.get(ctx.cluster).attach(ctx, 1 << 16)
        MpiWorld.get(ctx.cluster).init(ctx)
        both = ctx.memory.rank_mb(ctx.rank)
        gasnet_only = ctx.memory.rank_mb(ctx.rank, prefix="gasnet/")
        mpi_only = ctx.memory.rank_mb(ctx.rank, prefix="mpi/")
        return gasnet_only, mpi_only, both

    results = cluster.run(program)
    gasnet_mb, mpi_mb, both_mb = results[0]
    assert both_mb == pytest.approx(gasnet_mb + mpi_mb)
    assert mpi_mb > gasnet_mb  # MPI's footprint dominates (paper Fig. 1)
