"""Hand-rolled GASNet collectives: correctness and cost shape."""

import numpy as np
import pytest

from repro.gasnet.collectives import TeamExchange
from repro.gasnet.segment import SegmentAllocator
from repro.mpi.constants import SUM
from repro.sim.network import MachineSpec

from tests.gasnet.conftest import gasnet_run


def with_team(program, nranks, **kw):
    def wrapper(g, ctx):
        allocator = SegmentAllocator(g.segment.nbytes)
        team = TeamExchange(
            g, team_id=0, members=tuple(range(ctx.nranks)),
            my_index=ctx.rank, allocator=allocator,
        )
        return program(team, g, ctx)

    return gasnet_run(wrapper, nranks, **kw)


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 8])
def test_barrier_synchronizes(nranks):
    def program(team, g, ctx):
        ctx.compute(float(ctx.rank))
        team.barrier()
        return ctx.now

    _, results = with_team(program, nranks)
    assert min(results) >= nranks - 1


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_broadcast(nranks, root):
    def program(team, g, ctx):
        buf = np.arange(6, dtype=np.float64) if ctx.rank == root else np.zeros(6)
        team.broadcast(buf, root_index=root)
        return buf.tolist()

    _, results = with_team(program, nranks)
    for r in results:
        assert r == list(range(6))


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_reduce_sum(nranks):
    def program(team, g, ctx):
        send = np.full(3, float(ctx.rank + 1))
        recv = np.zeros(3)
        team.reduce(send, recv, SUM, root_index=0)
        return recv.tolist() if ctx.rank == 0 else None

    _, results = with_team(program, nranks)
    total = nranks * (nranks + 1) / 2
    assert results[0] == [total] * 3


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_allreduce(nranks):
    def program(team, g, ctx):
        send = np.array([float(ctx.rank)])
        recv = np.zeros(1)
        team.allreduce(send, recv, SUM)
        return recv[0]

    _, results = with_team(program, nranks)
    expected = sum(range(nranks))
    assert all(r == expected for r in results)


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_allgather(nranks):
    def program(team, g, ctx):
        send = np.array([ctx.rank * 1.0, ctx.rank + 0.5])
        recv = np.zeros((ctx.nranks, 2))
        team.allgather(send, recv)
        return recv.tolist()

    _, results = with_team(program, nranks)
    expected = [[r * 1.0, r + 0.5] for r in range(nranks)]
    for r in results:
        assert r == expected


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_alltoall_transpose(nranks):
    def program(team, g, ctx):
        send = np.array(
            [[ctx.rank * 100 + j, ctx.rank] for j in range(ctx.nranks)],
            dtype=np.float64,
        )
        recv = np.zeros_like(send)
        team.alltoall(send, recv)
        return recv[:, 0].tolist()

    _, results = with_team(program, nranks)
    for r in range(nranks):
        assert results[r] == [src * 100 + r for src in range(nranks)]


def test_consecutive_collectives_reuse_scratch():
    def program(team, g, ctx):
        for round_i in range(3):
            send = np.full((ctx.nranks, 4), float(ctx.rank + round_i))
            recv = np.zeros_like(send)
            team.alltoall(send, recv)
            assert recv[:, 0].tolist() == [
                float(s + round_i) for s in range(ctx.nranks)
            ]
        return team.allocator.used

    _, results = with_team(program, 4)
    assert all(u == 0 for u in results)  # scratch fully released


def test_two_teams_do_not_interfere():
    def program(g, ctx):
        allocator = SegmentAllocator(g.segment.nbytes)
        whole = TeamExchange(
            g, 0, tuple(range(ctx.nranks)), ctx.rank, allocator
        )
        color = ctx.rank % 2
        members = tuple(r for r in range(ctx.nranks) if r % 2 == color)
        sub = TeamExchange(g, 1 + color, members, ctx.rank // 2, allocator)
        send = np.array([1.0])
        recv = np.zeros(1)
        sub.allreduce(send, recv, SUM)
        whole.barrier()
        return recv[0]

    _, results = gasnet_run(program, 8)
    assert all(r == 4.0 for r in results)


def test_naive_alltoall_slower_than_mpi_pairwise_at_scale():
    """The Figure 8 mechanism: hand-rolled all-to-all loses to MPI_ALLTOALL."""
    from repro.mpi.world import MpiWorld
    from repro.sim.cluster import Cluster

    spec = MachineSpec(name="t", ranks_per_node=1, gasnet_srq_threshold=8)
    nranks, chunk = 16, 1 << 11

    def gasnet_prog(team, g, ctx):
        send = np.zeros((ctx.nranks, chunk))
        recv = np.zeros_like(send)
        t0 = ctx.now
        for _ in range(3):
            team.alltoall(send, recv)
        return ctx.now - t0

    def mpi_prog(ctx):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        send = np.zeros((ctx.nranks, chunk))
        recv = np.zeros_like(send)
        mpi.COMM_WORLD.barrier()
        t0 = ctx.now
        for _ in range(3):
            mpi.COMM_WORLD.alltoall(send, recv)
        return ctx.now - t0

    _, gasnet_times = with_team(gasnet_prog, nranks, spec=spec)
    cluster = Cluster(nranks, spec, seed=1)
    mpi_times = cluster.run(mpi_prog)
    assert max(gasnet_times) > max(mpi_times) * 1.3
