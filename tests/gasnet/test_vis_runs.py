"""GASNet VIS-style strided puts/gets."""

import numpy as np
import pytest

from repro.util.errors import GasnetError

from tests.gasnet.conftest import gasnet_run


def test_put_runs_nb_scatters(run):
    def program(g, ctx):
        if ctx.rank == 0:
            h = g.put_runs_nb(1, [(0, 3), (10, 3)], np.arange(6, dtype=np.uint8))
            g.wait_syncnb(h)
            assert g.segment_of(1)[:13].tolist() == [
                0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 3, 4, 5,
            ]

    gasnet_run(program, 2)


def test_get_runs_nb_gathers(run):
    def program(g, ctx):
        g.segment[:16] = np.arange(16, dtype=np.uint8) + 100 * (ctx.rank % 2)
        # Ensure both segments are initialized before anyone reads.
        g.put(1 - ctx.rank, 100, np.array([1], np.uint8))
        out = np.zeros(4, np.uint8)
        h = g.get_runs_nb(out, 1 - ctx.rank, [(2, 2), (12, 2)])
        g.wait_syncnb(h)
        return out.tolist()

    _, results = gasnet_run(program, 2)
    assert results[0] == [102, 103, 112, 113]
    assert results[1] == [2, 3, 12, 13]


def test_put_runs_size_mismatch(run):
    def program(g, ctx):
        g.put_runs_nb(0, [(0, 4)], np.zeros(2, np.uint8))

    with pytest.raises(GasnetError, match="runs cover"):
        gasnet_run(program, 1)


def test_put_runs_bounds_checked(run):
    def program(g, ctx):
        g.put_runs_nb(0, [(1 << 20, 4)], np.zeros(4, np.uint8))

    with pytest.raises(GasnetError, match="outside rank"):
        gasnet_run(program, 1)


def test_runs_single_wire_message(run):
    def program(g, ctx):
        before = ctx.cluster.fabric.messages_sent
        if ctx.rank == 0:
            h = g.put_runs_nb(1, [(i * 8, 4) for i in range(8)], np.ones(32, np.uint8))
            g.wait_syncnb(h)
        return ctx.cluster.fabric.messages_sent - before

    _, results = gasnet_run(program, 2)
    assert results[0] == 1
