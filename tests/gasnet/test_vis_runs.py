"""GASNet VIS-style strided puts/gets."""

import numpy as np
import pytest

from repro.util.errors import GasnetError

from tests.gasnet.conftest import gasnet_run


def test_put_runs_nb_scatters(run):
    def program(g, ctx):
        if ctx.rank == 0:
            h = g.put_runs_nb(1, [(0, 3), (10, 3)], np.arange(6, dtype=np.uint8))
            g.wait_syncnb(h)
            assert g.segment_of(1)[:13].tolist() == [
                0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 3, 4, 5,
            ]

    gasnet_run(program, 2)


def test_get_runs_nb_gathers(run):
    def program(g, ctx):
        g.segment[:16] = np.arange(16, dtype=np.uint8) + 100 * (ctx.rank % 2)
        # Ensure both segments are initialized before anyone reads.
        g.put(1 - ctx.rank, 100, np.array([1], np.uint8))
        out = np.zeros(4, np.uint8)
        h = g.get_runs_nb(out, 1 - ctx.rank, [(2, 2), (12, 2)])
        g.wait_syncnb(h)
        return out.tolist()

    _, results = gasnet_run(program, 2)
    assert results[0] == [102, 103, 112, 113]
    assert results[1] == [2, 3, 12, 13]


def test_put_runs_size_mismatch(run):
    def program(g, ctx):
        g.put_runs_nb(0, [(0, 4)], np.zeros(2, np.uint8))

    with pytest.raises(GasnetError, match="runs cover"):
        gasnet_run(program, 1)


def test_put_runs_bounds_checked(run):
    def program(g, ctx):
        g.put_runs_nb(0, [(1 << 20, 4)], np.zeros(4, np.uint8))

    with pytest.raises(GasnetError, match="outside rank"):
        gasnet_run(program, 1)


def test_runs_single_wire_message(run):
    def program(g, ctx):
        before = ctx.cluster.fabric.messages_sent
        if ctx.rank == 0:
            h = g.put_runs_nb(1, [(i * 8, 4) for i in range(8)], np.ones(32, np.uint8))
            g.wait_syncnb(h)
        return ctx.cluster.fabric.messages_sent - before

    _, results = gasnet_run(program, 2)
    assert results[0] == 1


def test_put_runs_non_uniform_lengths(run):
    def program(g, ctx):
        if ctx.rank == 0:
            data = np.arange(1, 7, dtype=np.uint8)
            h = g.put_runs_nb(1, [(0, 1), (5, 3), (12, 2)], data)
            g.wait_syncnb(h)
            seg = g.segment_of(1)[:14].tolist()
            assert seg == [1, 0, 0, 0, 0, 2, 3, 4, 0, 0, 0, 0, 5, 6]

    gasnet_run(program, 2)


def test_interleaved_runs_from_two_origins(run):
    def program(g, ctx):
        if ctx.rank < 2:
            fill = np.full(4, ctx.rank + 1, np.uint8)
            runs = [(0, 2), (4, 2)] if ctx.rank == 0 else [(2, 2), (6, 2)]
            g.wait_syncnb(g.put_runs_nb(2, runs, fill))
        # Everyone settles before rank 2 inspects its segment.
        g.put((ctx.rank + 1) % 3, 100, np.array([1], np.uint8))
        g.block_until(lambda: g.segment[100] == 1, "settle")
        return g.segment[:8].tolist()

    _, results = gasnet_run(program, 3)
    assert results[2] == [1, 1, 2, 2, 1, 1, 2, 2]
