"""Top-level package surface."""


def test_root_exports():
    import repro

    assert callable(repro.run_caf)
    assert repro.FUSION.name == "fusion"
    assert set(repro.PLATFORMS) == {"fusion", "edison", "mira", "laptop"}
    assert repro.__version__


def test_subpackages_importable():
    import importlib

    for mod in [
        "repro.sim", "repro.mpi", "repro.gasnet", "repro.caf",
        "repro.apps", "repro.platforms", "repro.experiments", "repro.util",
        "repro.obs",
    ]:
        importlib.import_module(mod)


def test_version_matches_metadata():
    import repro

    try:
        from importlib.metadata import version
    except ImportError:  # pragma: no cover
        return
    try:
        assert version("repro") == repro.__version__
    except Exception:
        pass  # metadata absent in some install modes
