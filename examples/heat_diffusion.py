#!/usr/bin/env python3
"""2-D heat diffusion with coarray halo exchange.

The QMCPACK/GFMC motivation from the paper's introduction: a domain whose
arrays outgrow one node is strip-partitioned across images; each Jacobi
step exchanges one halo row with each neighbor through coarray writes and
events, then the residual is reduced with a team collective.

Validated against a serial NumPy reference at the end.

    python examples/heat_diffusion.py
"""

import numpy as np

from repro.caf import run_caf
from repro.mpi.constants import MAX
from repro.platforms import LAPTOP

NY, NX = 64, 32
STEPS = 200
ALPHA = 0.2


def serial_reference():
    grid = np.zeros((NY, NX))
    grid[0, :] = 1.0  # hot top edge
    for _ in range(STEPS):
        padded = np.pad(grid, 1)
        lap = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
            - 4 * grid
        )
        grid = grid + ALPHA * lap
        grid[0, :] = 1.0
    return grid


def program(img):
    p = img.nranks
    rows = NY // p
    r0 = img.rank * rows
    grid = np.zeros((rows, NX))
    if img.rank == 0:
        grid[0, :] = 1.0

    halo = img.allocate_coarray((2, NX), np.float64)  # [0]=from above, [1]=from below
    arrive = img.allocate_events(2)
    drained = img.allocate_events(2)
    up = img.rank - 1 if img.rank > 0 else None
    down = img.rank + 1 if img.rank < p - 1 else None

    for step in range(STEPS):
        if step > 0:
            if up is not None:
                drained.wait(slot=0)
            if down is not None:
                drained.wait(slot=1)
        if up is not None:
            halo.write_async(up, grid[0], offset=NX)
            arrive.notify(up, slot=1)
        if down is not None:
            halo.write_async(down, grid[-1], offset=0)
            arrive.notify(down, slot=0)
        top = np.zeros(NX)
        bottom = np.zeros(NX)
        if up is not None:
            arrive.wait(slot=0)
            top = halo.local[0].copy()
            drained.notify(up, slot=1)
        if down is not None:
            arrive.wait(slot=1)
            bottom = halo.local[1].copy()
            drained.notify(down, slot=0)

        padded = np.vstack([top, grid, bottom])
        padded = np.pad(padded, ((0, 0), (1, 1)))
        lap = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
            - 4 * grid
        )
        grid = grid + ALPHA * lap
        if img.rank == 0:
            grid[0, :] = 1.0
        img.compute(flops=6.0 * grid.size)

    img.sync_all()
    img.cluster.shared("heat-result", dict)[img.rank] = grid
    hottest = np.zeros(1)
    img.team_allreduce(np.array([grid.max()]), hottest, MAX)
    return float(hottest[0])


def main():
    nranks = 8
    run = run_caf(program, nranks, LAPTOP, backend="mpi")
    strips = run.cluster._shared["heat-result"]
    parallel = np.vstack([strips[r] for r in range(nranks)])
    serial = serial_reference()
    err = np.abs(parallel - serial).max()
    print(f"max |parallel - serial| = {err:.2e}")
    assert err < 1e-12, "parallel result must match the serial reference"
    print(
        f"hottest interior point {run.results[0]:.4f}; "
        f"virtual time {run.elapsed * 1e3:.2f} ms on {nranks} images"
    )


if __name__ == "__main__":
    main()
