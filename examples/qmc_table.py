#!/usr/bin/env python3
"""The QMCPACK/GFMC scenario from the paper's introduction.

Monte-Carlo codes keep a large lookup table ("potential" values here) that
every walker consults each step. When the table outgrows one node, the
paper's proposed fix (§1, §7) is to make it a coarray and let the runtime
convert indexed loads into remote reads — which is exactly what
``DistributedArray`` does. Walkers then sample energies against the
distributed table, and a hybrid MPI reduction aggregates the estimate:
CAF for data distribution, MPI for the statistics, one runtime.

    python examples/qmc_table.py
"""

import numpy as np

from repro.apps.distarray import DistributedArray
from repro.caf import run_caf
from repro.mpi.constants import SUM
from repro.platforms import LAPTOP

TABLE_SIZE = 4096
WALKERS_PER_IMAGE = 64
STEPS = 20


def potential(i: np.ndarray) -> np.ndarray:
    """The physics stand-in: a smooth potential over table indices."""
    x = i / TABLE_SIZE
    return 0.5 * (x - 0.5) ** 2 + 0.1 * np.sin(8 * np.pi * x) ** 2


def program(img):
    # The "too big for one node" table, block-distributed across images.
    table = DistributedArray(img, TABLE_SIZE)
    lo, hi = table.local_range
    table.local[:] = potential(np.arange(lo, hi))
    img.sync_all()

    # Each image's walkers hop around the *global* index space; every
    # lookup that leaves the local block becomes a coarray read.
    rng = np.random.default_rng(1000 + img.rank)
    walkers = rng.integers(0, TABLE_SIZE, size=WALKERS_PER_IMAGE)
    local_energy = 0.0
    remote_fraction = 0.0
    for _ in range(STEPS):
        walkers = (walkers + rng.integers(-64, 65, size=walkers.size)) % TABLE_SIZE
        values = table[np.sort(walkers)]
        local_energy += float(values.sum())
        remote_fraction += float(
            np.mean((walkers < lo) | (walkers >= hi))
        )
        img.compute(flops=8.0 * walkers.size)

    # Hybrid MPI+CAF: the statistics use MPI directly (as QMCPACK would).
    mpi = img.mpi()
    send = np.array([local_energy, float(WALKERS_PER_IMAGE * STEPS)])
    recv = np.zeros(2)
    mpi.COMM_WORLD.allreduce(send, recv, SUM)
    return recv[0] / recv[1], remote_fraction / STEPS


def main():
    nranks = 8
    run = run_caf(program, nranks, LAPTOP, backend="mpi")
    energy, remote_frac = run.results[0]
    # Reference: the table's mean potential (walkers are ~uniform).
    reference = float(potential(np.arange(TABLE_SIZE)).mean())
    print(f"estimated mean energy : {energy:.5f}")
    print(f"table-mean reference  : {reference:.5f}")
    print(f"remote lookups        : {remote_frac * 100:.0f}% of all walker reads")
    print(f"virtual time          : {run.elapsed * 1e3:.2f} ms on {nranks} images")
    assert abs(energy - reference) < 0.02


if __name__ == "__main__":
    main()
