#!/usr/bin/env python3
"""Distributed bucket sort: function shipping + finish + alltoall.

Each image owns a shard of random keys. Keys are range-partitioned with
``team_alltoall`` (counts) plus per-bucket coarray writes driven by
*function shipping*: each image ships a deposit closure to the bucket's
owner and an enclosing termination-detecting ``finish`` block guarantees
global completion — exercising the CAF 2.0 features (spawn, finish, teams)
beyond what the HPCC benchmarks use.

    python examples/bucket_sort.py
"""

import numpy as np

from repro.caf import run_caf
from repro.platforms import LAPTOP

KEYS_PER_IMAGE = 512
KEY_RANGE = 1 << 16


def _deposit(img, keys_list):
    box = img.cluster.shared("sort-inbox", dict).setdefault(img.rank, [])
    box.append(np.asarray(keys_list, dtype=np.int64))


def program(img):
    p = img.nranks
    rng = np.random.default_rng(100 + img.rank)
    keys = rng.integers(0, KEY_RANGE, size=KEYS_PER_IMAGE, dtype=np.int64)
    img.cluster.shared("sort-input", dict)[img.rank] = keys.copy()

    bucket_width = KEY_RANGE // p
    owners = np.minimum(keys // bucket_width, p - 1)

    with img.finish():
        for owner in range(p):
            mine = keys[owners == owner]
            if mine.size:
                img.spawn(int(owner), _deposit, mine.tolist())

    inbox = img.cluster.shared("sort-inbox", dict).get(img.rank, [])
    local_sorted = np.sort(np.concatenate(inbox)) if inbox else np.empty(0, np.int64)
    img.compute(flops=max(local_sorted.size, 1) * 17)  # n log n sort cost
    img.cluster.shared("sort-output", dict)[img.rank] = local_sorted
    img.sync_all()
    return int(local_sorted.size)


def main():
    nranks = 8
    run = run_caf(program, nranks, LAPTOP, backend="mpi")
    shared = run.cluster._shared
    output = np.concatenate([shared["sort-output"][r] for r in range(nranks)])
    reference = np.sort(
        np.concatenate([shared["sort-input"][r] for r in range(nranks)])
    )
    assert (output == reference).all(), "distributed sort must match np.sort"
    print(
        f"sorted {output.size} keys across {nranks} images "
        f"(bucket sizes: {run.results}); verified against np.sort"
    )
    print(f"virtual time: {run.elapsed * 1e6:.1f} us")


if __name__ == "__main__":
    main()
