#!/usr/bin/env python3
"""Hiding communication under computation with CAF 2.0's async machinery.

Runs the same reduce-and-broadcast working set three ways and compares the
modeled time per step:

1. blocking collectives (communication fully exposed),
2. asynchronous collectives with completion events (§2.1) overlapping a
   compute phase,
3. asynchronous coarray copies (`copy_async`) double-buffering a halo
   while computing.

    python examples/async_overlap.py
"""

import numpy as np

from repro.caf import run_caf
from repro.mpi.constants import SUM
from repro.platforms import FUSION
from repro.util.tables import format_table

STEPS = 30
NELEMS = 1 << 14
COMPUTE_S = 120e-6  # per-step local work


def blocking(img):
    send = np.zeros(NELEMS)
    recv = np.zeros(NELEMS)
    img.sync_all()
    t0 = img.now
    for _ in range(STEPS):
        img.team_allreduce(send, recv, SUM)
        img.compute(COMPUTE_S)
    return (img.now - t0) / STEPS


def overlapped(img):
    send = np.zeros(NELEMS)
    recv = np.zeros(NELEMS)
    ev = img.allocate_events(1)
    img.sync_all()
    t0 = img.now
    for _ in range(STEPS):
        img.team_allreduce_async(send, recv, SUM, data_event=(ev, 0))
        img.compute(COMPUTE_S)  # the collective progresses underneath
        ev.wait()
    return (img.now - t0) / STEPS


def double_buffered_halo(img):
    co = img.allocate_coarray((2, NELEMS // 8), np.float64)
    done = img.allocate_events(2)
    right = (img.rank + 1) % img.nranks
    img.sync_all()
    t0 = img.now
    for step in range(STEPS):
        parity = step % 2
        co.write_async(
            right, np.zeros(NELEMS // 8), offset=parity * (NELEMS // 8),
            dest_event=(done, parity),
        )
        img.compute(COMPUTE_S)
        done.wait(slot=parity)
    img.sync_all()
    return (img.now - t0) / STEPS


def main():
    nranks = 8
    rows = []
    for label, program in (
        ("blocking collectives", blocking),
        ("async collectives + events", overlapped),
        ("copy_async double buffering", double_buffered_halo),
    ):
        per_step = {}
        for backend in ("mpi", "gasnet"):
            run = run_caf(program, nranks, FUSION, backend=backend)
            per_step[backend] = max(run.results) * 1e6
        rows.append([label, per_step["mpi"], per_step["gasnet"]])
    print(
        format_table(
            ["strategy", "CAF-MPI us/step", "CAF-GASNet us/step"],
            rows,
            title=f"{nranks} images, {STEPS} steps, {COMPUTE_S * 1e6:.0f} us compute/step",
        )
    )
    print(
        "\nAsync variants approach the compute floor "
        f"({COMPUTE_S * 1e6:.0f} us): latency hidden, as §2.1 intends."
    )


if __name__ == "__main__":
    main()
