#!/usr/bin/env python3
"""Fault injection and fault-tolerant runtime paths, live.

Three demonstrations on the simulated cluster:

1. **Lossy fabric + reliable delivery** — a seeded FaultPlan drops 2% of
   all messages; the ack/retransmit transport recovers every one and the
   RandomAccess tables still verify against the serial reference.
2. **Image crash, surviving gracefully** — image 3 is killed mid-run;
   survivors observe it through ``failed_images()``, get eager
   ``ImageFailedError`` from operations naming it, and bound their waits
   with ``event_wait(timeout=...)`` instead of hanging.
3. **The watchdog** — when a crash leaves a survivor retransmitting into
   a dead NIC forever, ``deadline=`` converts the hang into a
   ``SimTimeoutError`` naming who is stuck where.

    python examples/fault_demo.py
"""

import numpy as np

from repro.apps.randomaccess import reference_tables, run_randomaccess
from repro.caf import run_caf
from repro.sim.faults import FaultPlan
from repro.util.errors import CafTimeoutError, ImageFailedError, SimTimeoutError


def demo_reliable_delivery():
    print("== 1. RandomAccess over a fabric that drops 2% of messages ==")
    kwargs = dict(table_bits_per_image=9, updates_per_image=1024, batches=8)
    clean = run_caf(run_randomaccess, 8, backend="mpi", **kwargs)
    lossy = run_caf(
        run_randomaccess,
        8,
        backend="mpi",
        faults=FaultPlan(seed=2014, drop_rate=0.02),
        reliable=True,
        **kwargs,
    )
    ref = reference_tables(42, 8, 9, 1024)
    tables = lossy.cluster._shared["ra-tables"]
    ok = all(np.array_equal(tables[r], ref[r]) for r in range(8))
    rel = lossy.fabric.reliable
    print(f"  messages dropped by the fabric : {lossy.fabric.dropped}")
    print(f"  retransmissions by the transport: {rel.retransmits}")
    print(f"  duplicates filtered             : {rel.duplicates_filtered}")
    print(f"  virtual time: {clean.elapsed * 1e3:.2f} ms clean -> "
          f"{lossy.elapsed * 1e3:.2f} ms lossy "
          f"({lossy.elapsed / clean.elapsed:.2f}x)")
    print(f"  tables match serial reference   : {ok}")


def _crash_program(img):
    co = img.allocate_coarray(8, np.float64)
    ev = img.allocate_events(1)
    img.sync_all()
    if img.rank == 3:
        img.compute(seconds=1.0)  # killed at t=2ms, long before this ends
        return "unreachable"
    img.compute(seconds=6e-3)  # survivors: let the crash land
    report = [f"image {img.rank}: failed_images() -> {img.failed_images()}"]
    try:
        co.write(3, np.ones(8))
    except ImageFailedError as exc:
        report.append(f"  write to 3 raised ImageFailedError (rank {exc.failed_image})")
    try:
        ev.wait(slot=0, timeout=1e-3)  # image 3 was the notifier
    except CafTimeoutError:
        report.append("  event_wait(timeout=1ms) timed out instead of hanging")
    return report


def demo_crash_surfacing():
    print("\n== 2. Image 3 crashes at t=2ms; survivors carry on ==")
    run = run_caf(
        _crash_program,
        4,
        backend="mpi",
        faults=FaultPlan(seed=1, crashes=[(3, 2e-3)]),
    )
    for rank, lines in enumerate(run.results):
        if rank == 3:
            print(f"image 3: {lines!r} (crashed before returning)")
        else:
            print("\n".join(lines))


def _hang_program(img):
    # The survivor must block in an operation naming no peer: eager
    # ULFM-style checks fail pending point-to-point traffic with the
    # corpse as MpiProcFailedError, so only a peer-less event wait can
    # still hang and reach the watchdog.
    comm = img.mpi().COMM_WORLD
    ev = img.allocate_events(1)
    buf = np.zeros(4)
    comm.barrier()
    t_after_barrier = img.now
    if img.rank == 0:
        comm.send(np.ones(4), 1)  # frame in flight when image 1 dies
        ev.wait(0)  # only (dead) image 1 would notify
    else:
        comm.recv(buf, 0)
        img.compute(seconds=1.0)  # killed long before notifying
        ev.notify(0)
    return t_after_barrier


def demo_watchdog():
    print("\n== 3. A crash-induced hang, caught by the watchdog ==")
    from repro.sim.network import MachineSpec

    spec = MachineSpec(name="demo", latency=1e-3, ranks_per_node=1)
    # Deterministic replay: a fault-free probe run finds when the exchange
    # starts, so the crash lands while rank 0's frame is on the wire.
    probe = run_caf(_hang_program, 2, spec, backend="mpi", reliable=True)
    crash_at = max(probe.results) + 0.5e-3
    try:
        run_caf(
            _hang_program,
            2,
            spec,
            backend="mpi",
            faults=FaultPlan(seed=1, crashes=[(1, crash_at)]),
            reliable=True,
            deadline=crash_at + 0.05,
        )
    except SimTimeoutError as exc:
        print(f"SimTimeoutError: {exc}")
        for rank, why in sorted(exc.blocked.items()):
            print(f"  image {rank} blocked in: {why} "
                  f"(last progress t={exc.last_progress[rank]:.6f}s)")


def main():
    demo_reliable_delivery()
    demo_crash_surfacing()
    demo_watchdog()


if __name__ == "__main__":
    main()
