#!/usr/bin/env python3
"""The hybrid MPI+CAF CGPOP miniapp — the paper's interoperability demo.

Halo exchange runs on CAF coarrays (PUSH or PULL), while the global sums
call ``MPI_Allreduce`` directly from the same program: under CAF-MPI both
share one runtime; under CAF-GASNet a second runtime is initialized
beside GASNet (compare the reported memory footprints — Figure 1).

    python examples/hybrid_cgpop.py
"""

from repro.apps.cgpop import run_cgpop
from repro.caf import run_caf
from repro.platforms import FUSION
from repro.util.tables import format_table


def main():
    nranks = 8
    rows = []
    for backend in ("mpi", "gasnet"):
        for mode in ("push", "pull"):
            run = run_caf(
                run_cgpop, nranks, FUSION, backend=backend, ny=64, nx=32, mode=mode
            )
            res = run.results[0]
            mem = run.memory.rank_mb(0)
            rows.append(
                [
                    f"CAF-{backend.upper()}",
                    mode.upper(),
                    res.iterations,
                    f"{res.residual:.2e}",
                    res.converged,
                    run.elapsed * 1e3,
                    mem,
                ]
            )
    print(
        format_table(
            ["runtime", "halo", "iters", "residual", "converged", "time (ms)", "mem (MB)"],
            rows,
            title="CGPOP, 8 images, 64x32 grid (hybrid MPI+CAF)",
        )
    )
    print(
        "\nNote the memory column: CAF-GASNet + application MPI duplicates\n"
        "runtimes (the paper's Figure 1); CAF-MPI shares one."
    )


if __name__ == "__main__":
    main()
