#!/usr/bin/env python3
"""Quickstart: coarrays, events, and collectives in 40 lines.

Runs the same SPMD program on both runtime backends — the paper's CAF-MPI
design and the original CAF-GASNet — and prints what each image computed
plus the modeled (virtual) execution time.

    python examples/quickstart.py
"""

import numpy as np

from repro.caf import run_caf
from repro.mpi.constants import SUM
from repro.platforms import LAPTOP


def program(img):
    # A coarray: every image owns a same-shaped array, remotely accessible.
    co = img.allocate_coarray(8, np.float64)
    co.local[:] = img.rank

    # Events: first-class pairwise synchronization (notify/wait).
    ev = img.allocate_events(1)

    # One-sided write into the right neighbor, then release + notify.
    right = (img.rank + 1) % img.nranks
    co.write_async(right, np.full(8, float(img.rank)))
    ev.notify(right)

    # Wait for the left neighbor's notification; its data is then visible.
    ev.wait()
    left = (img.rank - 1) % img.nranks
    assert (co.local == float(left)).all()

    # A team collective: global sum of what everyone received.
    total = np.zeros(1)
    img.team_allreduce(np.array([co.local.sum()]), total, SUM)
    return float(total[0])


def main():
    nranks = 8
    expected = 8 * sum(range(nranks))
    for backend in ("mpi", "gasnet"):
        run = run_caf(program, nranks, LAPTOP, backend=backend)
        assert all(r == expected for r in run.results)
        print(
            f"{backend:7s} backend: global sum {run.results[0]:.0f} "
            f"(expected {expected}), virtual time {run.elapsed * 1e6:.1f} us"
        )


if __name__ == "__main__":
    main()
