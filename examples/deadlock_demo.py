#!/usr/bin/env python3
"""The paper's Figure 2 program, live.

Image 0 writes a coarray, then every image enters MPI_BARRIER. When
coarray writes need target-side CAF progress (Active-Message based
writes), the program deadlocks: image 1 is stuck inside MPI and never
runs the AM handler. The simulator detects global quiescence and reports
exactly which call each image is blocked in. The same program completes
under CAF-MPI's one-sided design.

    python examples/deadlock_demo.py
"""

import numpy as np

from repro.caf import run_caf
from repro.platforms import FUSION
from repro.util.errors import DeadlockError


def figure2(img):
    co = img.allocate_coarray(4, np.float64)
    mpi = img.mpi()
    img.sync_all()
    if img.rank == 0:
        co.write(1, np.full(4, 1.0))  # line 8 of the paper's Figure 2
    # This blocking MPI call after an unsynced coarray write IS the
    # paper's Figure 2 hazard — this demo exists to trigger it, so the
    # static checker's (correct) CAF006 finding is suppressed here.
    mpi.COMM_WORLD.barrier()  # line 11  # repro: lint-ignore[CAF006]
    return float(co.local[0])


def main():
    configs = [
        ("CAF-GASNet with AM-based writes", "gasnet", {"am_writes": True}),
        ("CAF-GASNet with RDMA writes", "gasnet", None),
        ("CAF-MPI (the paper's design)", "mpi", None),
    ]
    for label, backend, options in configs:
        print(f"\n== {label} ==")
        try:
            run = run_caf(figure2, 2, FUSION, backend=backend, backend_options=options)
            print(f"completes; image 1 sees {run.results[1]}")
        except DeadlockError as exc:
            print("DEADLOCK detected:")
            for rank, why in sorted(exc.blocked.items()):
                print(f"  image {rank} blocked in: {why}")


if __name__ == "__main__":
    main()
