"""``finish`` blocks: collective global-completion scopes (§2.1, §3.5).

A ``finish`` block guarantees that, on exit, all asynchronous operations
issued *by any team member inside the block* are globally complete. Two
implementations, per the paper:

* **Fast** (no function shipping inside): ``MPI_WIN_FLUSH_ALL`` on every
  window the image touched, followed by an ``MPI_BARRIER`` over the team
  (or the GASNet equivalents).
* **Termination detection** (Yang's algorithm): repeated SUM reductions of
  ``shipped - completed`` across the team until the global difference is
  zero — needed because shipped functions can ship further functions, so
  no single barrier suffices. Worst case ``n`` rounds for a depth-``n``
  shipping chain.

Blocks nest: inner blocks only complete work issued inside themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.constants import SUM
from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.image import Image
    from repro.caf.teams import Team


class FinishBlock:
    def __init__(self, img: "Image", team: "Team", fast: bool | None):
        self.img = img
        self.team = team
        self.fast = fast
        self._entered = False
        self._ship_baseline = 0

    def __enter__(self) -> "FinishBlock":
        if self._entered:
            raise CafError("finish block entered twice")
        self._entered = True
        # A finish is collective: members line up on entry.
        self.img.backend.barrier(self.team)
        self._ship_baseline = self.img.backend.shipped_minus_completed()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return  # don't mask the exception with collective waits
        backend = self.img.backend
        with self.img.profile("finish"):
            use_fast = self.fast
            if use_fast is None:
                # Auto: TD only if anyone may have shipped functions. Cheap
                # agreement: one allreduce of the local shipping deltas.
                local = np.array(
                    [backend.shipped_minus_completed() - self._ship_baseline],
                    dtype=np.int64,
                )
                total = np.zeros(1, np.int64)
                backend.allreduce(self.team, local, total, SUM)
                use_fast = total[0] == 0
            if use_fast:
                self._finish_fast()
            else:
                self._finish_termination_detection()

    def _finish_fast(self) -> None:
        """Flush everything this image issued, then a team barrier (§3.5)."""
        backend = self.img.backend
        backend.quiet()
        backend.barrier(self.team)

    def _finish_termination_detection(self) -> None:
        """Yang's repeated-SUM-reduction termination detection (§3.5)."""
        backend = self.img.backend
        while True:
            backend.poll()  # run any shipped functions that have arrived
            backend.quiet()
            local = np.array([backend.shipped_minus_completed()], dtype=np.int64)
            total = np.zeros(1, np.int64)
            backend.allreduce(self.team, local, total, SUM)
            if total[0] == 0:
                break
        backend.barrier(self.team)
