"""The runtime-backend interface CAF 2.0's language layer is written against.

Everything communication-related funnels through this ABC; the CAF-MPI and
CAF-GASNet backends implement it. A backend instance is per-image.

Conventions:

* ``team`` arguments are :class:`repro.caf.teams.Team` objects; the backend
  stores its per-team handle in ``team.handle``.
* Coarray storage handles are backend-specific objects stored on the
  :class:`~repro.caf.coarray.Coarray`.
* All blocking entry points must drive the common progress engine (poll
  incoming Active Messages) while waiting, because shipped functions and
  destination-event writes complete only through AM handlers.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sim.sync import SimEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.teams import Team


class AsyncHandle:
    """Completion events of one asynchronous operation.

    ``local`` fires when the source/local buffer is reusable;
    ``remote`` fires when the data is visible at the destination.
    ``kind`` ("put" / "get" / "coll") supports the selective ``cofence``
    of §3.5, which may wait on only the PUT or only the GET array.
    """

    def __init__(self, label: str, kind: str = "put"):
        self.kind = kind
        self.local = SimEvent(f"{label}.local")
        self.remote = SimEvent(f"{label}.remote")


class EventStorage:
    """Per-image event-coarray state, shared by both backends.

    ``event_id`` is agreed collectively (same allocation order on every
    image), so a notifier can name the target's storage in an AM. Posting
    kicks the owning backend's progress engine, so an ``event_wait`` wakes
    even when the post arrives through a non-AM path (e.g. an RGET
    completion firing a local event).
    """

    def __init__(self, backend: "RuntimeBackend", event_id: int, team: "Team", nslots: int):
        self.backend = backend
        self.event_id = event_id
        self.team = team
        self.nslots = nslots
        self.counters = [0] * nslots
        self.listener: Callable[[int], None] | None = None

    def post(self, slot: int) -> None:
        self.counters[slot] += 1
        self.post_hooks_only(slot)

    def post_hooks_only(self, slot: int) -> None:
        """Run subscriber callbacks and wake the progress engine (for
        storages whose counters live elsewhere, e.g. in an RMA window)."""
        if self.listener is not None:
            self.listener(slot)
        self.backend.kick()


class RuntimeBackend(abc.ABC):
    """Per-image communication backend."""

    name: str = "abstract"

    # -- teams -----------------------------------------------------------

    @abc.abstractmethod
    def make_world_team_handle(self, team: "Team") -> Any:
        """Build the backend handle for TEAM_WORLD."""

    @abc.abstractmethod
    def split_team_handle(self, parent: "Team", color: int, key: int, entry) -> Any:
        """Collective over ``parent``: backend handle for the split team.

        ``entry`` is ``(team_id, members, my_index)`` from the language
        layer's agreement protocol, or None when this image passed
        ``color < 0``. Every parent member calls this (backends may run
        their own collective underneath).
        """

    def shrink_team_handle(self, parent: "Team", team: "Team") -> Any:
        """Survivor-only handle construction for a post-failure shrink.

        ``team`` is the already-agreed survivor team (fresh id, contiguous
        renumbering). Dead images cannot participate, so implementations
        must not run collectives over ``parent`` — only barrier-free
        survivor agreement (see
        :func:`repro.caf.backends.common.survivor_agree`).
        """
        raise NotImplementedError(
            f"backend {self.name} does not support team shrink"
        )

    # -- coarrays -----------------------------------------------------------

    @abc.abstractmethod
    def allocate_coarray(self, team: "Team", nelems: int, dtype: np.dtype) -> Any:
        """Collective over ``team``: symmetric allocation; returns storage handle."""

    @abc.abstractmethod
    def local_view(self, storage: Any) -> np.ndarray:
        """This image's segment of the coarray."""

    @abc.abstractmethod
    def coarray_write(self, storage: Any, target: int, offset: int, data: np.ndarray) -> None:
        """Blocking remote write; remotely complete on return (§3.1)."""

    @abc.abstractmethod
    def coarray_read(self, storage: Any, target: int, offset: int, out: np.ndarray) -> None:
        """Blocking remote read."""

    @abc.abstractmethod
    def coarray_write_async(
        self,
        storage: Any,
        target: int,
        offset: int,
        data: np.ndarray,
        *,
        want_local: bool,
        dest_event: tuple[Any, int] | None,
    ) -> AsyncHandle:
        """Start an asynchronous write (the §3.3 four-case mapping).

        ``dest_event`` is ``(event_storage, slot)``: when given, the backend
        must post that event *at the target image* once the data is visible
        there (case 4: the Active-Message path under CAF-MPI, a long AM
        under CAF-GASNet).
        """

    @abc.abstractmethod
    def coarray_read_async(
        self, storage: Any, target: int, offset: int, out: np.ndarray
    ) -> AsyncHandle:
        """Start an asynchronous read (always request-based: §3.3 case 2)."""

    @abc.abstractmethod
    def coarray_write_runs(
        self, storage: Any, target: int, runs: list[tuple[int, int]], data: np.ndarray
    ) -> None:
        """Blocking strided write: scatter ``data`` over the (element
        offset, length) runs of the target's coarray — Fortran array
        sections like ``A(1:n:2)[p] = ...`` (derived datatypes under MPI,
        VIS strided puts under GASNet)."""

    @abc.abstractmethod
    def coarray_read_runs(
        self, storage: Any, target: int, runs: list[tuple[int, int]], out: np.ndarray
    ) -> None:
        """Blocking strided read of the target's runs into ``out``."""

    # -- events ----------------------------------------------------------------

    @abc.abstractmethod
    def allocate_events(self, team: "Team", nslots: int) -> Any:
        """Collective: allocate an event coarray; returns storage handle."""

    @abc.abstractmethod
    def event_notify(self, storage: Any, target: int, slot: int) -> None:
        """Post an event at ``target`` after completing all prior ops (§3.4)."""

    def event_post_local(self, storage: EventStorage, slot: int) -> None:
        """Post one of this image's own slots (local-completion events)."""
        storage.post(slot)

    def event_count(self, storage: EventStorage, slot: int) -> int:
        """Current un-consumed notification count of a local event slot."""
        return storage.counters[slot]

    def event_consume(self, storage: EventStorage, slot: int, n: int) -> None:
        """Consume ``n`` notifications (caller guarantees availability)."""
        storage.counters[slot] -= n

    def event_wait(self, storage: EventStorage, slot: int, count: int) -> None:
        """Block until ``count`` notifications are pending, then consume them.

        The default drives the progress engine (the paper's chosen
        send/recv event design); backends may substitute e.g. a busy-wait
        on one-sided atomics (§3.4's other candidate).
        """
        self.progress_wait(
            lambda: self.event_count(storage, slot) >= count,
            f"event_wait(slot={slot}, count={count})",
        )
        self.event_consume(storage, slot, count)

    @abc.abstractmethod
    def poll(self) -> None:
        """Drain and run any pending incoming Active Messages (nonblocking)."""

    @abc.abstractmethod
    def kick(self) -> None:
        """Wake this image's progress engine so it re-evaluates predicates."""

    def kick_rank(self, world_rank: int) -> None:
        """Wake *another* image's progress engine (scheduler-safe).

        Survivor-only agreement deposits into a shared board and then must
        wake the other participants' ``progress_wait`` loops — a barrier
        would hang on the dead images, so a direct cross-rank kick is the
        only wake-up channel available.
        """
        raise NotImplementedError(
            f"backend {self.name} cannot kick remote progress engines"
        )

    # -- deferred work (runtime continuations) --------------------------------

    def defer(self, fn: Callable[[], None]) -> None:
        """Queue work to run on this image's own execution context at its
        next progress poll (completion callbacks fire in scheduler context
        and may not issue communication themselves)."""
        if not hasattr(self, "_continuations"):
            self._continuations = []
        self._continuations.append(fn)
        self.kick()

    def run_continuations(self) -> None:
        """Execute deferred work; called at the top of every poll."""
        pending = getattr(self, "_continuations", None)
        while pending:
            fn = pending.pop(0)
            fn()

    # -- implicit synchronization ----------------------------------------------------

    @abc.abstractmethod
    def cofence(self, *, puts: bool = True, gets: bool = True) -> None:
        """Local completion of implicitly-synchronized async ops (§3.5).

        The paper's runtime keeps one array of request handles for implicit
        PUTs and another for implicit GETs; the optional arguments select
        which array (or both) to MPI_WAITALL.
        """

    @abc.abstractmethod
    def quiet(self) -> None:
        """Remote completion of everything this image issued (finish helper)."""

    # -- collectives -------------------------------------------------------------------

    @abc.abstractmethod
    def barrier(self, team: "Team") -> None: ...

    @abc.abstractmethod
    def broadcast(self, team: "Team", buf: np.ndarray, root: int) -> None: ...

    @abc.abstractmethod
    def reduce(self, team: "Team", send: np.ndarray, recv, op, root: int) -> None: ...

    @abc.abstractmethod
    def allreduce(self, team: "Team", send: np.ndarray, recv: np.ndarray, op) -> None: ...

    @abc.abstractmethod
    def alltoall(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None: ...

    @abc.abstractmethod
    def allgather(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None: ...

    @abc.abstractmethod
    def collective_async(self, team: "Team", kind: str, args: tuple) -> SimEvent:
        """Start an asynchronous collective (§2.1); the event fires when the
        operation completes on this image.

        ``kind`` is one of broadcast/reduce/allreduce/alltoall/allgather;
        ``args`` are that collective's buffer/op arguments. Under CAF-MPI
        these map to MPI-3 nonblocking collectives; under CAF-GASNet a
        progress agent drives a hand-rolled "async twin" of the team.
        """

    # -- function shipping ------------------------------------------------------------------

    @abc.abstractmethod
    def ship_function(self, team: "Team", target: int, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` on image ``target`` (under its progress engine)."""

    # -- progress ---------------------------------------------------------------------------

    @abc.abstractmethod
    def progress_wait(
        self, pred: Callable[[], bool], reason: str, extras: tuple[SimEvent, ...] = ()
    ) -> None:
        """Block until ``pred()``; runs AM handlers while waiting; also wakes
        on any of ``extras`` firing."""

    @abc.abstractmethod
    def shipped_minus_completed(self) -> int:
        """Local term of Yang's termination-detection sum (finish, §3.5)."""

    def completed_count(self) -> int:
        """How many shipped functions this image has executed so far."""
        return self._completed  # both backends maintain this counter
