"""CAF 2.0 teams: first-class process groups (§2.1).

A team (a) is a domain for coarray allocation, (b) renames images by
relative index, and (c) isolates collective communication — the three
purposes the paper lists. ``TEAM_WORLD`` exists at startup; new teams come
from :meth:`Image.team_split`.

The membership agreement protocol is backend-neutral (a shared board plus
a barrier on the parent team); backends only build their per-team handle
(an MPI communicator / a GASNet TeamExchange) from the agreed membership.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.image import Image


class Team:
    """One image's view of a team."""

    def __init__(self, team_id: int, members: tuple[int, ...], my_index: int):
        self.team_id = team_id
        self.members = members  # team index -> world rank
        self.my_index = my_index
        self.handle: Any = None  # backend-specific
        # Per-image split sequence number (collective-call agreement).
        self._split_seq = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def world_rank(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise CafError(f"image index {index} out of range [0, {self.size})")
        return self.members[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Team {self.team_id} image {self.my_index}/{self.size}>"


def split_team(img: "Image", parent: Team, color: int, key: int | None) -> Team | None:
    """Collective team split over ``parent`` (CAF 2.0 team_split).

    Returns the new team, or None for ``color < 0``.
    """
    if key is None:
        key = parent.my_index
    seq = parent._split_seq
    parent._split_seq += 1
    boards = img.cluster.shared("caf-team-splits", dict)
    board = boards.setdefault(
        (parent.team_id, seq), {"args": {}, "result": None}
    )
    board["args"][parent.my_index] = (color, key)
    img.backend.barrier(parent)
    if board["result"] is None:
        ids = img.cluster.shared("caf-team-ids", lambda: [1])  # 0 = TEAM_WORLD
        groups: dict[int, list[tuple[int, int]]] = {}
        for idx, (c, k) in board["args"].items():
            if c >= 0:
                groups.setdefault(c, []).append((k, idx))
        result: dict[int, tuple[int, tuple[int, ...], int]] = {}
        for c in sorted(groups):
            team_id = ids[0]
            ids[0] += 1
            indices = [idx for _k, idx in sorted(groups[c])]
            members = tuple(parent.members[idx] for idx in indices)
            for new_index, idx in enumerate(indices):
                result[idx] = (team_id, members, new_index)
        board["result"] = result
    img.backend.barrier(parent)
    entry = board["result"].get(parent.my_index)
    # Every parent member participates in handle construction (the MPI
    # backend's comm split is itself collective), even color<0 images.
    handle = img.backend.split_team_handle(parent, color, key, entry)
    if entry is None:
        return None
    team_id, members, my_index = entry
    team = Team(team_id, members, my_index)
    team.handle = handle
    return team
