"""Futures for function shipping: spawn a remote function, await its value.

CAF 2.0's function-shipping model (§2.1, Yang's thesis) lets shipped
functions perform the full range of operations; returning a value to the
spawner is the natural companion. A :class:`CafFuture` completes when the
target has executed the function and shipped the result back (a second
Active Message), so waiting on it drives the progress engine — and, like
all AM traffic, it only progresses while the peer is inside CAF calls.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.sim.sync import SimEvent
from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.image import Image
    from repro.caf.teams import Team

_future_ids = itertools.count()


class CafFuture:
    """Completion handle for a shipped function's return value."""

    def __init__(self, img: "Image"):
        self.img = img
        self._event = SimEvent(f"caf-future-{next(_future_ids)}")

    @property
    def done(self) -> bool:
        return self._event.is_set

    def wait(self) -> Any:
        """Block (driving the progress engine) until the result arrives."""
        backend = self.img.backend
        backend.progress_wait(
            lambda: self._event.is_set, "future.wait", extras=(self._event,)
        )
        return self._event.value

    def result(self) -> Any:
        if not self.done:
            raise CafError("future not yet complete; wait() for it")
        return self._event.value


def spawn_future(
    img: "Image", team: "Team", target: int, fn, args: tuple
) -> CafFuture:
    """Ship ``fn(img, *args)`` to ``target``; resolve a future with its value."""
    future = CafFuture(img)
    origin_index = team.my_index

    def remote_body(target_img: "Image") -> None:
        value = fn(target_img, *args)

        def deliver_result(origin_img: "Image") -> None:
            future._event.fire(value)
            origin_img.backend.kick()

        # Ship the result back as another function (so completion follows
        # the same progress rules, and finish's termination detection
        # naturally covers the reply leg too).
        target_img.spawn(origin_index, deliver_result, team=team)

    img.spawn(target, remote_body, team=team)
    return future
