"""Coarray Fortran 2.0 runtime as a Python library — the paper's subject.

The CAF 2.0 feature set of §2.1, backend-neutral:

* **images** running SPMD programs (:class:`Image`),
* first-class **teams** with ``team_world`` and ``team_split``,
* **coarrays** with one-sided remote read/write (:class:`Coarray`),
* **events** — first-class counting semaphores allocatable as coarrays,
  with ``event_notify`` / ``event_wait`` / ``event_trywait``,
* **asynchronous operations** — ``copy_async`` with predicate / source /
  destination events, plus the implicit model: ``cofence`` and collective
  ``finish`` blocks (fast flush+barrier variant and Yang's
  termination-detection variant for function shipping),
* **asynchronous/team collectives** and **function shipping** (``spawn``).

Two interchangeable runtime backends implement the communication layer:

* :class:`~repro.caf.backends.mpi_backend.MpiBackend` — **CAF-MPI**, the
  paper's contribution: MPI-3 windows + passive target sync for coarrays,
  Active Messages over ``MPI_ISEND``, events via send/recv with a
  ``WAITALL`` + ``WIN_FLUSH_ALL`` release barrier on notify (§3).
* :class:`~repro.caf.backends.gasnet_backend.GasnetBackend` —
  **CAF-GASNet**, the original runtime: segment-based coarrays, RDMA
  put/get, AM-based events, hand-rolled collectives.

Entry point: :func:`repro.caf.program.run_caf`.
"""

from repro.caf.coarray import Coarray
from repro.caf.events import EventArray
from repro.caf.futures import CafFuture
from repro.caf.image import Image
from repro.caf.program import run_caf
from repro.caf.teams import Team

__all__ = ["CafFuture", "Coarray", "EventArray", "Image", "Team", "run_caf"]
