"""Run CAF programs on a simulated cluster.

A CAF *program* is a Python callable ``program(img, **kwargs)`` executed
SPMD on every image. :func:`run_caf` builds the cluster, instantiates the
chosen runtime backend on each image, and returns a :class:`CafRun` with
per-image results plus the run's profiler / memory / fabric meters.

Example::

    from repro.caf import run_caf

    def hello(img):
        co = img.allocate_coarray(4)
        co.local[:] = img.rank
        img.sync_all()
        return co.read((img.rank + 1) % img.nranks).tolist()

    run = run_caf(hello, nranks=4, backend="mpi")
    print(run.results)
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.caf.backends.gasnet_backend import GasnetBackend
from repro.caf.backends.mpi_backend import MpiBackend
from repro.caf.image import Image
from repro.sim.cluster import Cluster
from repro.sim.faults import FaultPlan
from repro.sim.memory import MemoryMeter
from repro.sim.network import MachineSpec, NetFabric
from repro.sim.profiler import Profiler
from repro.util.errors import CafError

BACKENDS = {
    "mpi": MpiBackend,
    "gasnet": GasnetBackend,
}


@dataclass
class CafRun:
    """Outcome of one simulated CAF program run."""

    cluster: Cluster
    results: list[Any]
    backend: str
    elapsed: float  # virtual makespan (seconds)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def profiler(self) -> Profiler:
        return self.cluster.profiler

    @property
    def memory(self) -> MemoryMeter:
        return self.cluster.memory

    @property
    def fabric(self) -> NetFabric:
        return self.cluster.fabric

    @property
    def tracer(self):
        return self.cluster.tracer

    @property
    def sanitizer(self):
        """The run's :class:`~repro.sanitizer.Sanitizer` (None unless
        ``sanitize=True``); its ``report`` holds the diagnostics."""
        return self.cluster.sanitizer

    @property
    def metrics(self):
        """The run's :class:`~repro.obs.metrics.Metrics` registry (None
        unless ``metrics=True``)."""
        return self.cluster.metrics

    @property
    def comm_matrix(self):
        """The run's P x P :class:`~repro.obs.metrics.CommMatrix` (None
        unless ``metrics=True``)."""
        return self.cluster.comm_matrix

    def report(self, *, label: str = "", app: str = ""):
        """Assemble a :class:`~repro.obs.report.RunReport` for this run."""
        from repro.obs.report import build_report

        return build_report(
            self.cluster, backend=self.backend, label=label, app=app
        )


def run_caf(
    program: Callable[..., Any],
    nranks: int,
    spec: MachineSpec | None = None,
    *,
    backend: str = "mpi",
    backend_options: dict[str, Any] | None = None,
    sim_seed: int = 12345,
    trace: bool = False,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    deadline: float | None = None,
    sanitize: bool = False,
    metrics: bool = False,
    live: Any | None = None,
    live_interval: float | None = None,
    shards: int | None = None,
    digest_partition: int | None = None,
    checkpoint_every: int | None = None,
    checkpoint_store: Any | None = None,
    resume_from: Any | None = None,
    **program_kwargs: Any,
) -> CafRun:
    """Run ``program(img, **program_kwargs)`` on ``nranks`` images.

    ``sim_seed`` seeds the per-rank simulator RNGs (``img.ctx.rng``); any
    other keyword — including one named ``seed`` — is forwarded verbatim to
    the program.

    ``faults`` installs a deterministic :class:`FaultPlan` on the fabric
    (message drops / duplicates / delays plus scheduled image crashes);
    ``reliable=True`` arms the ack/retransmit transport so lossy runs still
    deliver exactly once; ``deadline`` arms the engine watchdog, turning a
    fault-induced hang into :class:`~repro.util.errors.SimTimeoutError`.

    ``sanitize=True`` runs the program under the happens-before checker
    (see :mod:`repro.sanitizer`); diagnostics land on
    ``run.sanitizer.report`` and the virtual timeline is unchanged.

    ``shards`` selects the conservative sharded dispatcher
    (:class:`~repro.sim.engine.ShardedEngine`): ``None`` reads
    ``REPRO_SIM_SHARDS`` (unset means sequential), any value > 1
    partitions the ranks per :func:`repro.sim.shard.plan_shards`. The
    executed schedule — virtual times, order digest, profiler totals,
    figure outputs — is bit-identical to the sequential dispatcher;
    ``run.cluster.shard_plan`` and ``run.report()``'s ``shards`` section
    expose the partition and protocol statistics. Not combinable with IR
    recording or the sanitizer (both raise ``NotImplementedError``).
    ``digest_partition=K`` enables the order digest plus per-shard digests
    for a K-way partition on *any* dispatcher — it is how a sequential
    baseline produces the partition-local fingerprints a ``shards=K``
    run's ``engine.shard_digests()`` must match bit-for-bit.

    ``metrics=True`` arms the op-level observability layer (see
    :mod:`repro.obs`): call counts, bytes, and modeled latencies per op
    kind land on ``run.metrics``, the P x P traffic matrix on
    ``run.comm_matrix``, and ``run.report()`` assembles the full
    :class:`~repro.obs.report.RunReport`. Recording never touches the
    engine, so the virtual timeline (and its event-order digest) is
    bit-identical with metrics on or off.

    ``live`` arms the streaming telemetry tap (see :mod:`repro.obs.live`):
    a path (or a prebuilt :class:`~repro.obs.live.LiveTelemetry`) to which
    the run appends JSONL progress snapshots — sim/wall time, events/s,
    blocked ranks with call sites, shard window state, host RSS — every
    ``live_interval`` wall seconds (default 0.5). Like metrics, the tap
    never touches the engine: digests and makespans are bit-identical
    with telemetry on or off. Render streams with
    ``python -m repro.obs top``.

    ``checkpoint_every`` / ``checkpoint_store`` / ``resume_from`` attach a
    :class:`~repro.resilience.checkpoint.ResilienceService`: images reach
    it via ``img.resilience``, checkpoints are cut every N calls of
    ``img.resilience.step()``, and ``resume_from`` (a
    :class:`~repro.resilience.checkpoint.Checkpoint`, or ``"latest"`` to
    take the store's newest) transparently refills re-made allocations.

    When the run fails — a fault-induced hang, a crash surfacing as an
    error, a program bug — the raised exception carries the half-built
    cluster as ``exc.caf_cluster`` (with ``elapsed`` set to the time of
    death), and an active obs capture still emits a partial RunReport
    with ``meta.outcome == "failed"`` plus the failure record.
    """
    if backend not in BACKENDS:
        raise CafError(f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}")
    spec = spec or MachineSpec(name="generic")
    from repro.ir import record as _ir_record
    from repro.obs import capture as _capture

    captured = _capture.active()
    if captured:
        # Process-wide capture (the experiments runner's --metrics DIR):
        # force metrics on, and tracing too when the capture asks for it.
        metrics = True
        trace = trace or _capture.trace_forced()
        if live is None and _capture.live_forced():
            # --live capture: stream run-NNNN.telemetry.jsonl next to the
            # run-NNNN.report.json this run will emit.
            live = _capture.telemetry_path()
            if live_interval is None:
                live_interval = _capture.live_interval()
    # Trace recording (--record-ir): pattern-changing faults invalidate a
    # trace, so fault-injected / lossy runs are skipped, not recorded.
    recording = _ir_record.active() and faults is None and not reliable
    if recording:
        # The obs side table rides in the trace, so the metrics layer must
        # be armed for the hooks to fire.
        metrics = True
    telemetry = None
    if live is not None:
        from repro.obs.live import LiveTelemetry

        if isinstance(live, LiveTelemetry):
            telemetry = live
        else:
            telemetry = LiveTelemetry(
                live,
                interval_s=live_interval,
                backend=backend,
                app=getattr(program, "__name__", ""),
            )
    cluster = Cluster(
        nranks, spec, seed=sim_seed, faults=faults, reliable=reliable,
        sanitize=sanitize, metrics=metrics, shards=shards,
        digest_partition=digest_partition, live=telemetry,
    )
    if recording:
        _ir_record.attach(
            cluster, backend=backend, app=getattr(program, "__name__", "")
        )
    if trace:
        cluster.tracer.enable()
    if (
        checkpoint_every is not None
        or checkpoint_store is not None
        or resume_from is not None
    ):
        from repro.resilience.checkpoint import CheckpointStore, ResilienceService

        store = checkpoint_store if checkpoint_store is not None else CheckpointStore()
        resume = resume_from
        if resume == "latest":
            resume = store.latest()
        cluster.resilience = ResilienceService(
            cluster, every=checkpoint_every, store=store, resume=resume
        )
    backend_cls = BACKENDS[backend]

    def wrapper(ctx, **kwargs):
        be = backend_cls(ctx, backend_options)
        img = Image(ctx, be)
        ctx.cluster.shared("caf-images", dict)[ctx.rank] = img
        return program(img, **kwargs)

    try:
        results = cluster.run(
            wrapper, program_kwargs=dict(program_kwargs), deadline=deadline
        )
    except Exception as exc:
        # The run died (fault-induced hang, crash surfacing as an error, a
        # program bug). Stamp the cluster onto the exception so resilience
        # drivers can read the failure log, and still emit a (partial)
        # observability artifact for post-mortem triage.
        cluster.elapsed = cluster.engine.now
        exc.caf_cluster = cluster  # type: ignore[attr-defined]
        if recording:
            # A failed run has no meaningful makespan; drop the recording
            # rather than persist a trace that cannot validate.
            _ir_record.abort()
        if captured:
            _capture.emit(
                cluster,
                backend=backend,
                app=getattr(program, "__name__", ""),
                failure=exc,
            )
        raise
    if recording:
        _ir_record.emit(
            cluster, backend=backend, app=getattr(program, "__name__", "")
        )
    if captured:
        _capture.emit(
            cluster, backend=backend, app=getattr(program, "__name__", "")
        )
    return CafRun(
        cluster=cluster,
        results=results,
        backend=backend,
        elapsed=cluster.elapsed,
    )
