"""CAF 2.0 events: first-class counting synchronization objects (§2.1).

Events are allocated as coarrays so remote images can post them.
``event_notify`` posts an event on another image **after all previous
operations issued by the notifier are remotely complete** — the
release-barrier semantics whose CAF-MPI implementation
(``MPI_WAITALL`` + ``MPI_WIN_FLUSH_ALL`` + AM over ``MPI_ISEND``) the
paper analyzes at length (§3.4, Figure 4). ``event_wait`` blocks (driving
the progress engine) until posted; ``event_trywait`` is its nonblocking
test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.errors import CafError, CafTimeoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.image import Image
    from repro.caf.teams import Team


class EventArray:
    """``nslots`` events on every image of a team (an event coarray)."""

    def __init__(self, img: "Image", team: "Team", nslots: int):
        if nslots <= 0:
            raise CafError(f"event array needs at least one slot, got {nslots}")
        self.img = img
        self.team = team
        self.nslots = nslots
        self.storage = img.backend.allocate_events(team, nslots)
        # Cached metrics handle (fixed at cluster construction): the
        # notify/wait guards cost one attribute load when disabled.
        self._obs = img.ctx.metrics
        # Local-post subscribers: slot -> callbacks run on next post
        # (predicate events of asynchronous operations).
        self._subscribers: dict[int, list] = {}
        self.storage.listener = self._run_subscribers

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.nslots:
            raise CafError(f"event slot {slot} out of range [0, {self.nslots})")

    # -- posting ------------------------------------------------------------

    def notify(self, target: int, slot: int = 0) -> None:
        """event_notify: post slot ``slot`` on image ``target``."""
        self._check_slot(slot)
        if not 0 <= target < self.team.size:
            raise CafError(f"image index {target} out of range [0, {self.team.size})")
        self.img._check_alive(self.team, target)
        obs = self._obs
        ctx = self.img.ctx
        t0 = ctx.engine.now if obs is not None else 0.0
        with self.img.profile("event_notify"):
            self.img.backend.event_notify(self.storage, target, slot)
        if obs is not None:
            obs.record(ctx.rank, "caf.event_notify", 0, ctx.engine.now - t0)

    def _post_local(self, slot: int) -> None:
        """Post this image's own slot (used for source/local completion events).

        Subscribers run via the storage listener.
        """
        self.img.backend.event_post_local(self.storage, slot)

    def _run_subscribers(self, slot: int) -> None:
        for cb in self._subscribers.pop(slot, []):
            cb()

    def _san_consumed(self, slot: int, count: int) -> None:
        """Sanitized runs: a consumed wait is the happens-before edge from
        every matching notify (the notifier's clock merges into ours)."""
        san = self.img.ctx.sanitizer
        if san is not None:
            me = self.img.ctx.rank
            san.event_consumed(me, (self.storage.event_id, me, slot), count)

    # -- waiting --------------------------------------------------------------

    def wait(self, slot: int = 0, count: int = 1, *, timeout: float | None = None) -> None:
        """event_wait: block until ``count`` notifications; consumes them.

        ``timeout`` (virtual seconds) bounds the wait: if the posts do not
        arrive in time — e.g. the notifier crashed — the call raises
        :class:`CafTimeoutError` instead of hanging, consuming nothing.
        """
        self._check_slot(slot)
        obs = self._obs
        ctx = self.img.ctx
        t0 = ctx.engine.now if obs is not None else 0.0
        if timeout is None:
            with self.img.profile("event_wait"):
                self.img.backend.event_wait(self.storage, slot, count)
            if obs is not None:
                obs.record(ctx.rank, "caf.event_wait", 0, ctx.engine.now - t0)
            self._san_consumed(slot, count)
            return
        if timeout < 0:
            raise CafError(f"event_wait timeout must be >= 0, got {timeout!r}")
        backend = self.img.backend
        expired = [False]

        def fire() -> None:
            expired[0] = True
            backend.kick()  # wake the progress engine so the predicate reruns

        self.img.ctx.engine.call_in(timeout, fire)
        with self.img.profile("event_wait"):
            backend.progress_wait(
                lambda: expired[0]
                or backend.event_count(self.storage, slot) >= count,
                f"event_wait(slot={slot}, timeout={timeout})",
            )
        if obs is not None:
            obs.record(ctx.rank, "caf.event_wait", 0, ctx.engine.now - t0)
        have = backend.event_count(self.storage, slot)
        if have >= count:
            backend.event_consume(self.storage, slot, count)
            self._san_consumed(slot, count)
            return
        raise CafTimeoutError(
            f"event_wait(slot={slot}) timed out after {timeout}s "
            f"with {have}/{count} notifications"
        )

    def trywait(self, slot: int = 0, count: int = 1) -> bool:
        """event_trywait: nonblocking; consumes and returns True if posted."""
        self._check_slot(slot)
        backend = self.img.backend
        backend.poll()
        if backend.event_count(self.storage, slot) >= count:
            backend.event_consume(self.storage, slot, count)
            self._san_consumed(slot, count)
            return True
        return False

    def count(self, slot: int = 0) -> int:
        """Un-consumed notifications currently pending on a local slot."""
        self._check_slot(slot)
        return self.img.backend.event_count(self.storage, slot)

    def on_next_post(self, slot: int, cb) -> None:
        """Run ``cb`` when the slot next becomes posted (now, if it already is).

        Used for predicate events of asynchronous operations.
        """
        self._check_slot(slot)
        if self.img.backend.event_count(self.storage, slot) > 0:
            cb()
        else:
            self._subscribers.setdefault(slot, []).append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventArray slots={self.nslots} team={self.team.team_id}>"
