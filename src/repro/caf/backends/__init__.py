"""Runtime backends: CAF-MPI (the paper's contribution) and CAF-GASNet."""

from repro.caf.backends.gasnet_backend import GasnetBackend
from repro.caf.backends.mpi_backend import MpiBackend

__all__ = ["GasnetBackend", "MpiBackend"]
