"""Agreement helpers shared by both backends.

Collective allocations (event arrays, GASNet team ids, coarray offset
tables) need all team members to agree on an identifier or a table. The
pattern is the standard board-plus-barrier protocol: every member deposits
its contribution keyed by a per-image collective sequence number, a
barrier makes all deposits visible, the first image out of the barrier
computes the result, and a second barrier publishes it.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.backend import RuntimeBackend
    from repro.caf.teams import Team
    from repro.sim.cluster import Cluster


def collective_agree(
    backend: "RuntimeBackend",
    cluster: "Cluster",
    team: "Team",
    board_space: str,
    seq_space: dict[int, int],
    contribution: Any,
    combine: Callable[[dict[int, Any]], Any],
) -> Any:
    """Run one board-plus-barrier agreement round over ``team``.

    ``seq_space`` maps team_id -> this image's next sequence number for
    ``board_space`` (each image keeps its own copy, advanced identically
    because the call is collective). ``combine`` maps the full
    {my_index: contribution} dict to the agreed value.
    """
    seq = seq_space.get(team.team_id, 0)
    seq_space[team.team_id] = seq + 1
    boards = cluster.shared(board_space, dict)
    board = boards.setdefault((team.team_id, seq), {"args": {}, "result": _UNSET})
    board["args"][team.my_index] = contribution
    backend.barrier(team)
    if board["result"] is _UNSET:
        board["result"] = combine(board["args"])
    backend.barrier(team)
    return board["result"]


def survivor_agree(
    backend: "RuntimeBackend",
    cluster: "Cluster",
    key: Any,
    my_world: int,
    participants: tuple[int, ...],
    contribution: Any,
    combine: Callable[[dict[int, Any]], Any],
) -> Any:
    """Barrier-free agreement among ``participants`` (world ranks).

    After an image failure the regular board-plus-barrier protocol is
    unusable: dead images never reach the barrier. Survivors instead
    deposit into a board keyed by ``key``, kick every other participant's
    progress engine, and spin in ``progress_wait`` until the board is
    full. The first image to see a full board computes the combined
    result; everyone returns it. Every participant must call with the
    same ``key`` and ``participants`` (guaranteed upstream by deriving
    both from the agreed survivor set).
    """
    boards = cluster.shared("caf-survivor-agree", dict)
    board = boards.setdefault(key, {"args": {}, "result": _UNSET})
    board["args"][my_world] = contribution
    for w in participants:
        if w != my_world:
            try:
                backend.kick_rank(w)
            except KeyError:  # participant not yet registered; it will poll
                pass
    backend.progress_wait(
        lambda: len(board["args"]) >= len(participants),
        f"survivor_agree({key!r})",
    )
    if board["result"] is _UNSET:
        board["result"] = combine(board["args"])
    return board["result"]


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


def next_global_id(cluster: "Cluster", space: str) -> int:
    """Draw from a cluster-wide monotone counter (call under agreement)."""
    box = cluster.shared(space, lambda: [0])
    value = box[0]
    box[0] += 1
    return value
