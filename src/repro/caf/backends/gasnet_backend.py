"""CAF-GASNet: the original CAF 2.0 runtime design over GASNet.

* **Coarrays** live at segment offsets; remote references are
  ``(image, address)`` tuples (the paper's §3.1 description of the
  original runtime). Blocking read/write are RDMA get/put — lower per-op
  software overhead than MPICH RMA, which is why CAF-GASNet wins the
  fine-grained RandomAccess benchmark at low scale (Figure 3).
* **Events**: ``event_notify`` waits on the image's outstanding put
  handles (GASNet tracks remote completion per handle, so there is no
  FLUSH_ALL analogue) and then fires a single short AM — near-zero cost,
  matching the Figure 4 decomposition where CAF-GASNet's notify time is
  negligible and the waiting shows up in ``event_wait`` instead.
* **Collectives**: GASNet has none, so the runtime hand-rolls them from
  puts and AMs (:mod:`repro.gasnet.collectives`) — the FFT-losing
  all-to-all of Figures 6-8.
* ``am_writes=True`` switches coarray writes to the Active-Message path
  (data + ack via AMs), which *requires target-side progress*: the
  configuration that makes the paper's Figure 2 program deadlock.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.caf.backend import AsyncHandle, EventStorage, RuntimeBackend
from repro.caf.backends.common import collective_agree, next_global_id, survivor_agree
from repro.gasnet.collectives import TEAM_SIGNAL_HANDLER_BASE, TeamExchange
from repro.gasnet.core import GasnetWorld, Handle, Token
from repro.gasnet.segment import SegmentAllocator
from repro.sim.agent import WorkerAgent
from repro.mpi.world import MpiWorld
from repro.sim.sync import SimEvent
from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.teams import Team
    from repro.sim.cluster import RankCtx

#: AM handler indices used by the runtime (team signal handlers live at
#: TEAM_SIGNAL_HANDLER_BASE and above).
H_EVENT_POST = 1
H_THUNK = 2

_am_seq = itertools.count()

DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024


class _CoarrayStorage:
    """(image, address) remote references: per-member segment offsets."""

    def __init__(self, team: "Team", offsets: tuple[int, ...], nelems: int, dtype: np.dtype):
        self.team = team
        self.offsets = offsets  # team index -> byte offset in that image's segment
        self.nelems = nelems
        self.dtype = np.dtype(dtype)

    def byte_range(self, index: int, offset_elems: int, count: int) -> tuple[int, int]:
        start = self.offsets[index] + offset_elems * self.dtype.itemsize
        return start, count * self.dtype.itemsize


class GasnetBackend(RuntimeBackend):
    name = "caf-gasnet"

    def __init__(self, ctx: "RankCtx", options: dict[str, Any] | None = None):
        self.ctx = ctx
        self.options = dict(options or {})
        segment_bytes = int(self.options.get("segment_bytes", DEFAULT_SEGMENT_BYTES))
        #: Figure 2 mode: writes go via AMs and need target progress.
        self.am_writes = bool(self.options.get("am_writes", False))
        self.gasnet = GasnetWorld.get(ctx.cluster).attach(ctx, segment_bytes)
        self.allocator = SegmentAllocator(segment_bytes)
        self._event_registry: dict[int, EventStorage] = {}
        self._agree_seq: dict[int, int] = {}
        #: Outstanding nonblocking handles (the release barrier), split by
        #: direction for §3.5's selective cofence.
        self._outstanding_puts: list[Handle] = []
        self._outstanding_gets: list[Handle] = []
        self._shipped = 0
        self._completed = 0
        self._ack_counter = 0
        self._mpi = None
        self._am_board: dict[tuple[int, int], Callable[[], None]] = ctx.cluster.shared(
            "caf-gasnet-am-board", dict
        )
        self._backends: dict[int, "GasnetBackend"] = ctx.cluster.shared(
            "caf-gasnet-backends", dict
        )
        self._backends[ctx.rank] = self
        self.gasnet.register_handler(H_EVENT_POST, self._on_event_post)
        self.gasnet.register_handler(H_THUNK, self._on_thunk)
        # Runtime continuations execute on the image's own context at any
        # GASNet poll (never on a clone's agent context).
        self.gasnet.poll_hooks.append(self._pump_continuations)

    def _pump_continuations(self) -> None:
        if self.ctx.engine._current is self.ctx.proc:
            self.run_continuations()

    # -- facade for hybrid applications ------------------------------------

    def mpi_facade(self):
        """Hybrid MPI+CAF: initializes a *second*, independent runtime —
        the duplicated-resources situation of Figure 1."""
        if self._mpi is None:
            self._mpi = MpiWorld.get(self.ctx.cluster).init(self.ctx)
        return self._mpi

    # -- AM handlers ------------------------------------------------------------

    def _on_event_post(self, token: Token, event_id: int, slot: int) -> None:
        storage = self._event_registry.get(event_id)
        if storage is None:
            raise CafError(f"event {event_id} posted before allocation on target")
        storage.post(slot)

    def _on_thunk(self, token: Token, *rest) -> None:
        # Short form: (seq,). Medium form: (payload, seq) — the payload is
        # padding that models the wire size; the real arguments travel on
        # the out-of-band board.
        seq = rest[-1]
        thunk = self._am_board.pop((token.src, seq))
        thunk()

    def _send_thunk(self, target_world: int, wire_bytes: int, thunk: Callable[[], None]) -> None:
        seq = next(_am_seq)
        self._am_board[(self.ctx.rank, seq)] = thunk
        if wire_bytes > 64:
            pad = np.zeros(wire_bytes - 32, np.uint8)
            self.gasnet.am_request_medium(target_world, H_THUNK, pad, seq)
        else:
            self.gasnet.am_request_short(target_world, H_THUNK, seq)

    # -- teams ----------------------------------------------------------------------

    def make_world_team_handle(self, team: "Team") -> TeamExchange:
        # Constructed first thing on every image, before any allocation can
        # skew segment tops, so the symmetric-base default is valid.
        return TeamExchange(
            self.gasnet, team.team_id, team.members, team.my_index, self.allocator
        )

    def split_team_handle(self, parent: "Team", color: int, key: int, entry):
        # Sibling teams of different sizes skew segment tops, so members
        # exchange their arena/flag base offsets over the parent team.
        exchange = None
        contribution = None
        if entry is not None:
            team_id, members, my_index = entry
            exchange = TeamExchange(
                self.gasnet, team_id, members, my_index, self.allocator
            )
            contribution = (exchange.arena_base, exchange.flags_base)
        table = collective_agree(
            self,
            self.ctx.cluster,
            parent,
            "caf-gasnet-team-bases",
            self._agree_seq,
            contribution,
            lambda args: dict(args),
        )
        if exchange is None:
            return None
        by_world = {
            parent.members[idx]: bases
            for idx, bases in table.items()
            if bases is not None
        }
        exchange.peer_arena_bases = tuple(by_world[w][0] for w in members)
        exchange.peer_flag_bases = tuple(by_world[w][1] for w in members)
        exchange.peer_drain_bases = tuple(
            b + (exchange.drain_base - exchange.flags_base)
            for b in exchange.peer_flag_bases
        )
        return exchange

    def shrink_team_handle(self, parent: "Team", team: "Team"):
        # Survivor-only base exchange: same shape as split_team_handle but
        # over the barrier-free agreement (dead images can't barrier).
        exchange = TeamExchange(
            self.gasnet, team.team_id, team.members, team.my_index, self.allocator
        )
        my_world = team.members[team.my_index]
        table = survivor_agree(
            self,
            self.ctx.cluster,
            ("caf-gasnet-shrink-bases", team.team_id),
            my_world,
            team.members,
            (exchange.arena_base, exchange.flags_base),
            lambda args: dict(args),
        )
        exchange.peer_arena_bases = tuple(table[w][0] for w in team.members)
        exchange.peer_flag_bases = tuple(table[w][1] for w in team.members)
        exchange.peer_drain_bases = tuple(
            b + (exchange.drain_base - exchange.flags_base)
            for b in exchange.peer_flag_bases
        )
        return exchange

    # -- coarrays ----------------------------------------------------------------------

    def allocate_coarray(self, team: "Team", nelems: int, dtype: np.dtype):
        dtype = np.dtype(dtype)
        my_offset = self.allocator.alloc(nelems * dtype.itemsize)
        offsets = collective_agree(
            self,
            self.ctx.cluster,
            team,
            "caf-gasnet-coarray-offsets",
            self._agree_seq,
            my_offset,
            lambda args: tuple(args[i] for i in range(len(args))),
        )
        return _CoarrayStorage(team, offsets, nelems, dtype)

    def local_view(self, storage: _CoarrayStorage) -> np.ndarray:
        start, nbytes = storage.byte_range(storage.team.my_index, 0, storage.nelems)
        seg = self.gasnet.segment
        view = seg[start : start + nbytes].view(storage.dtype)
        san = self.ctx.sanitizer
        if san is not None:
            from repro.sanitizer.view import tracked_view

            return tracked_view(
                view, san, ("seg", self.ctx.rank), self.ctx.rank, base=seg
            )
        return view

    def coarray_write(self, storage: _CoarrayStorage, target: int, offset: int, data: np.ndarray) -> None:
        target_world = storage.team.world_rank(target)
        start, _ = storage.byte_range(target, offset, data.size)
        if self.am_writes:
            self._am_write(storage, target, target_world, start, data)
        else:
            self.gasnet.put(target_world, start, data)

    def _am_write(
        self,
        storage: _CoarrayStorage,
        target: int,
        target_world: int,
        start: int,
        data: np.ndarray,
    ) -> None:
        """Figure 2 mode: write needs the target to run an AM handler."""
        acks = [0]
        me = self.ctx.rank
        me_backend = self

        def on_target() -> None:
            seg = self.gasnet.segment_of(target_world)
            raw = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
            seg[start : start + raw.nbytes] = raw
            san = self.ctx.sanitizer
            if san is not None:
                # Handler runs on the target after merging the sender clock,
                # so this write is ordered like a local store there.
                san.record_local(
                    target_world, ("seg", target_world),
                    [(start, start + raw.nbytes)], "am-write",
                )

            def ack() -> None:
                acks[0] += 1
                me_backend.gasnet.activity.add()

            target_backend = self.ctx.cluster.shared("caf-gasnet-backends", dict)[
                target_world
            ]
            target_backend._send_thunk(me, 32, ack)

        self._send_thunk(target_world, 32 + data.nbytes, on_target)
        self.gasnet.block_until(lambda: acks[0] > 0, "am_write ack")

    def coarray_read(self, storage: _CoarrayStorage, target: int, offset: int, out: np.ndarray) -> None:
        target_world = storage.team.world_rank(target)
        start, _ = storage.byte_range(target, offset, out.size)
        self.gasnet.get(out, target_world, start)

    def _byte_runs(
        self, storage: _CoarrayStorage, target: int, runs: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        item = storage.dtype.itemsize
        base = storage.offsets[target]
        return [(base + off * item, length * item) for off, length in runs]

    def coarray_write_runs(
        self, storage: _CoarrayStorage, target: int, runs: list[tuple[int, int]], data: np.ndarray
    ) -> None:
        target_world = storage.team.world_rank(target)
        handle = self.gasnet.put_runs_nb(
            target_world, self._byte_runs(storage, target, runs), data
        )
        self.gasnet.wait_syncnb(handle)

    def coarray_read_runs(
        self, storage: _CoarrayStorage, target: int, runs: list[tuple[int, int]], out: np.ndarray
    ) -> None:
        target_world = storage.team.world_rank(target)
        handle = self.gasnet.get_runs_nb(
            out, target_world, self._byte_runs(storage, target, runs)
        )
        self.gasnet.wait_syncnb(handle)

    def coarray_write_async(
        self,
        storage: _CoarrayStorage,
        target: int,
        offset: int,
        data: np.ndarray,
        *,
        want_local: bool,
        dest_event: tuple[Any, int] | None,
    ) -> AsyncHandle:
        handle = AsyncHandle("caf-gasnet.write_async")
        target_world = storage.team.world_rank(target)
        start, _ = storage.byte_range(target, offset, data.size)
        if dest_event is not None:
            # Long-AM style: data lands in the target coarray, then the
            # handler posts the destination event there.
            ev_storage, slot = dest_event
            event_id = ev_storage.event_id

            def on_target() -> None:
                seg = self.gasnet.segment_of(target_world)
                raw = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
                seg[start : start + raw.nbytes] = raw
                san = self.ctx.sanitizer
                if san is not None:
                    san.record_local(
                        target_world, ("seg", target_world),
                        [(start, start + raw.nbytes)], "am-write",
                    )
                backends = self.ctx.cluster.shared("caf-gasnet-backends", dict)
                backends[target_world]._event_registry[event_id].post(slot)
                handle.remote.fire()

            self._send_thunk(target_world, 32 + data.nbytes, on_target)
            handle.local.fire()
        else:
            h = self.gasnet.put_nb(target_world, start, data)
            self._outstanding_puts.append(h)
            h.event.subscribe(handle.local.fire)
            h.event.subscribe(handle.remote.fire)
        return handle

    def coarray_read_async(
        self, storage: _CoarrayStorage, target: int, offset: int, out: np.ndarray
    ) -> AsyncHandle:
        handle = AsyncHandle("caf-gasnet.read_async", kind="get")
        target_world = storage.team.world_rank(target)
        start, _ = storage.byte_range(target, offset, out.size)
        h = self.gasnet.get_nb(out, target_world, start)
        self._outstanding_gets.append(h)
        h.event.subscribe(handle.local.fire)
        h.event.subscribe(handle.remote.fire)
        return handle

    # -- events --------------------------------------------------------------------------

    def allocate_events(self, team: "Team", nslots: int) -> EventStorage:
        event_id = collective_agree(
            self,
            self.ctx.cluster,
            team,
            "caf-event-ids",
            self._agree_seq,
            None,
            lambda args: next_global_id(self.ctx.cluster, "caf-event-id-counter"),
        )
        storage = EventStorage(self, event_id, team, nslots)
        self._event_registry[event_id] = storage
        return storage

    def kick(self) -> None:
        self.gasnet.activity.add()

    def kick_rank(self, world_rank: int) -> None:
        self._backends[world_rank].gasnet.activity.add()

    def event_notify(self, storage: EventStorage, target: int, slot: int) -> None:
        # GASNet handles already represent remote completion, so the release
        # barrier is a (usually instant) handle sync — no FLUSH_ALL analogue.
        outstanding = self._outstanding_puts + self._outstanding_gets
        self._outstanding_puts = []
        self._outstanding_gets = []
        self.gasnet.wait_syncnb_all(outstanding)
        target_world = storage.team.world_rank(target)
        san = self.ctx.sanitizer
        if san is not None:
            # Handles synced above: our snapshot dominates every completed op.
            san.event_notified(self.ctx.rank, (storage.event_id, target_world, slot))
        self.gasnet.am_request_short(
            target_world, H_EVENT_POST, storage.event_id, slot
        )

    # -- implicit synchronization -------------------------------------------------------------

    def cofence(self, *, puts: bool = True, gets: bool = True) -> None:
        handles: list[Handle] = []
        if puts:
            handles += self._outstanding_puts
            self._outstanding_puts = []
        if gets:
            handles += self._outstanding_gets
            self._outstanding_gets = []
        self.gasnet.wait_syncnb_all(handles)

    def quiet(self) -> None:
        self.cofence()

    # -- collectives -----------------------------------------------------------------------------

    def barrier(self, team: "Team") -> None:
        team.handle.barrier()

    def broadcast(self, team: "Team", buf: np.ndarray, root: int) -> None:
        team.handle.broadcast(buf, root_index=root)

    def reduce(self, team: "Team", send: np.ndarray, recv, op, root: int) -> None:
        team.handle.reduce(send, recv, op, root_index=root)

    def allreduce(self, team: "Team", send: np.ndarray, recv: np.ndarray, op) -> None:
        team.handle.allreduce(send, recv, op)

    def alltoall(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None:
        team.handle.alltoall(send, recv)

    def allgather(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None:
        team.handle.allgather(send, recv)

    def _async_twin(self, team: "Team"):
        """Per-team machinery for asynchronous collectives: a progress
        agent plus an "async twin" TeamExchange (own AM handler index,
        arena and flags), so agent-driven collectives never race the
        application's blocking ones.
        """
        if not hasattr(self, "_twins"):
            self._twins: dict[int, tuple[WorkerAgent, TeamExchange]] = {}
        if team.team_id not in self._twins:
            # Collectively agree on the twin's id and exchange segment bases.
            def combine(args):
                # Twin ids draw from the team-id space (0 = TEAM_WORLD, so
                # it starts at 1) so their AM handler indices can never
                # collide with real teams'.
                ids = self.ctx.cluster.shared("caf-team-ids", lambda: [1])
                twin_id = ids[0]
                ids[0] += 1
                return (twin_id, dict(args))

            # Allocate before agreeing so bases can be exchanged in one round.
            agent = WorkerAgent(self.ctx, name=f"caf-async{self.ctx.rank}.t{team.team_id}")
            gasnet_view = self.gasnet.clone_for(agent.ctx)
            provisional = TeamExchange(
                gasnet_view,
                # Temporary unique id; re-registered below once agreed. Use
                # a per-image placeholder far above the shared space.
                team_id=None,  # type: ignore[arg-type]
                members=team.members,
                my_index=team.my_index,
                allocator=self.allocator,
                defer_handler=True,
            )
            twin_id, bases = collective_agree(
                self,
                self.ctx.cluster,
                team,
                "caf-gasnet-twin-bases",
                self._agree_seq,
                (provisional.arena_base, provisional.flags_base),
                combine,
            )
            provisional.team_id = twin_id
            provisional.register_handler()
            # The agent may only ever run this twin's signal handler.
            gasnet_view.default_handler_filter = {
                TEAM_SIGNAL_HANDLER_BASE + twin_id
            }
            provisional.peer_arena_bases = tuple(
                bases[i][0] for i in range(team.size)
            )
            provisional.peer_flag_bases = tuple(bases[i][1] for i in range(team.size))
            provisional.peer_drain_bases = tuple(
                b + (provisional.drain_base - provisional.flags_base)
                for b in provisional.peer_flag_bases
            )
            self._twins[team.team_id] = (agent, provisional)
        return self._twins[team.team_id]

    def collective_async(self, team: "Team", kind: str, args: tuple):
        agent, twin = self._async_twin(team)
        method = {
            "broadcast": lambda a: twin.broadcast(a[0], root_index=a[1]),
            "reduce": lambda a: twin.reduce(a[0], a[1], a[2], root_index=a[3]),
            "allreduce": lambda a: twin.allreduce(a[0], a[1], a[2]),
            "alltoall": lambda a: twin.alltoall(a[0], a[1]),
            "allgather": lambda a: twin.allgather(a[0], a[1]),
        }.get(kind)
        if method is None:
            raise CafError(f"unknown async collective {kind!r}")
        return agent.submit(lambda agent_ctx: method(args))

    # -- function shipping ----------------------------------------------------------------------------

    def ship_function(self, team: "Team", target: int, payload) -> None:
        fn, args = payload
        target_world = team.world_rank(target)
        self._shipped += 1

        def run_on_target() -> None:
            backends = self.ctx.cluster.shared("caf-gasnet-backends", dict)
            tbe = backends[target_world]
            images = self.ctx.cluster.shared("caf-images", dict)
            img = images.get(target_world)
            if img is None:
                raise CafError("target image not initialized for function shipping")
            try:
                fn(img, *args)
            finally:
                tbe._completed += 1

        self._send_thunk(target_world, 240, run_on_target)

    def shipped_minus_completed(self) -> int:
        return self._shipped - self._completed

    # -- progress -----------------------------------------------------------------------------------------

    def poll(self) -> None:
        self.run_continuations()
        self.gasnet.poll()

    def progress_wait(
        self,
        pred: Callable[[], bool],
        reason: str,
        extras: tuple[SimEvent, ...] = (),
    ) -> None:
        for ev in extras:
            ev.subscribe(lambda: self.gasnet.activity.add())

        def pred_with_continuations() -> bool:
            # Runtime continuations (e.g. copy_async forwarding legs) run
            # on this image's context as part of its progress engine.
            self.run_continuations()
            return pred()

        self.gasnet.block_until(pred_with_continuations, reason)
