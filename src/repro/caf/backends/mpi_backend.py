"""CAF-MPI: the paper's runtime design (§3), implemented point for point.

Mapping summary:

* **Coarrays** (§3.1): ``MPI_WIN_ALLOCATE`` per coarray over the team's
  communicator; ``MPI_WIN_LOCK_ALL`` at allocation (passive target);
  remote references are ``(window, rank, displacement)``; blocking
  read/write are ``MPI_GET``/``MPI_PUT`` + ``MPI_WIN_FLUSH``.
* **Active Messages** (§3.2): built on ``MPI_ISEND``; a near-replica of
  the GASNet core AM API. The MPI library cannot run the handlers — only
  the CAF progress engine does, by probing/receiving AM-tagged messages
  inside blocking CAF calls. An application blocked in a *pure MPI* call
  makes no AM progress (the §5 discussion and the Figure 2 hazard).
* **Asynchronous operations** (§3.3), the four-case mapping:
  no events → ``MPI_PUT``; local-completion events → ``MPI_RPUT``
  request; GET-style → ``MPI_RGET`` (request is local+remote); remote
  destination events → the AM path (data travels by send/recv and the
  target posts the event after copying).
* **Events** (§3.4): send/recv design (the paper's chosen approach 2).
  ``event_notify`` = ``MPI_WAITALL`` on the release barrier's request
  handles + ``MPI_WIN_FLUSH_ALL`` on every touched window (the
  linear-in-P cost of Figure 4) + a short AM via ``MPI_ISEND``.
  ``event_wait`` = blocking poll using MPI receive internally.
* **cofence / finish** (§3.5): ``MPI_WAITALL`` on stored request handles;
  fast finish = ``FLUSH_ALL`` per touched window + ``MPI_BARRIER``.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.caf.backend import AsyncHandle, EventStorage, RuntimeBackend
from repro.caf.backends.common import collective_agree, next_global_id
from repro.mpi.constants import ANY_SOURCE, SUM
from repro.mpi.request import Request
from repro.mpi.world import MpiWorld
from repro.sim.sync import SimEvent
from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.teams import Team
    from repro.sim.cluster import RankCtx

#: Tag used for all CAF Active Messages on the dedicated AM communicator.
AM_TAG = 77

_am_seq = itertools.count()

_AM_HEADER_BYTES = 16  # modeled (kind, seq) header on the wire


class _CoarrayStorage:
    """(window, rank, displacement) remote references — §3.1."""

    def __init__(self, win, team: "Team"):
        self.win = win
        self.team = team


class _AtomicEventStorage(EventStorage):
    """Event coarray backed by an RMA window of counters (§3.4 approach 1).

    Notification is an ``MPI_ACCUMULATE``; waiting busy-polls the local
    window counter (the unified memory model makes plain loads legal). The
    paper chose the send/recv design instead; this one exists for the
    ablation comparing the two.
    """

    def __init__(self, backend, event_id, team, nslots, win):
        super().__init__(backend, event_id, team, nslots)
        self.win = win
        self.consumed = [0] * nslots


class MpiBackend(RuntimeBackend):
    name = "caf-mpi"

    def __init__(self, ctx: "RankCtx", options: dict[str, Any] | None = None):
        self.ctx = ctx
        self.options = dict(options or {})
        #: §3.4 event mechanism: "sendrecv" (the paper's choice) or
        #: "atomics" (FETCH_AND_OP notify + busy-wait; the ablation).
        self.event_impl = self.options.get("event_impl", "sendrecv")
        if self.event_impl not in ("sendrecv", "atomics"):
            raise CafError(f"event_impl must be sendrecv|atomics, got {self.event_impl!r}")
        #: §5 future work, implemented: complete remote ops with the
        #: request-based MPI_WIN_RFLUSH_ALL extension (constant software
        #: cost, overlappable) instead of the blocking linear FLUSH_ALL.
        self.use_rflush = bool(self.options.get("use_rflush", False))
        world = MpiWorld.get(ctx.cluster)
        self.mpi = world.init(ctx)
        # The runtime's own contexts, isolated from any MPI the hybrid
        # application does on COMM_WORLD.
        self._team_world_comm = self.mpi.COMM_WORLD.dup()
        self.am_comm = self.mpi.COMM_WORLD.dup()
        self._am_matching = self.am_comm.state.user
        # Release barrier (§3.4): request handles of every async op
        # initiated locally since the last notify/quiet.
        self._release_requests: list[Request] = []
        # §3.5: the runtime "internally maintains an array of request
        # handles of implicitly synchronized PUT operations and another
        # array ... of GET operations"; cofence WAITALLs them selectively.
        self._implicit_puts: list[Request] = []
        self._implicit_gets: list[Request] = []
        #: Every coarray window this image allocated. event_notify/quiet
        #: FLUSH_ALL each of them — MPICH walks all ranks per window even
        #: when the epoch is idle (cheaply) and linearly when dirty (§4.1).
        self._windows: list = []
        self._event_registry: dict[int, EventStorage] = {}
        self._agree_seq: dict[int, int] = {}
        self._shipped = 0
        self._completed = 0
        # Out-of-band python payloads for AMs (the wire carries sizes only).
        self._am_board: dict[tuple[int, int], Callable[[], None]] = ctx.cluster.shared(
            "caf-mpi-am-board", dict
        )
        self._backends: dict[int, "MpiBackend"] = ctx.cluster.shared(
            "caf-mpi-backends", dict
        )
        self._backends[ctx.rank] = self

    # -- facade for hybrid applications -----------------------------------

    def mpi_facade(self):
        """The application-visible MPI handle (hybrid MPI+CAF programs)."""
        return self.mpi

    # -- teams ----------------------------------------------------------------

    def make_world_team_handle(self, team: "Team"):
        return self._team_world_comm

    def split_team_handle(self, parent: "Team", color: int, key: int, entry):
        return parent.handle.split(color, key)

    def shrink_team_handle(self, parent: "Team", team: "Team"):
        # ULFM MPIX_COMM_SHRINK over the survivors; agreement runs through
        # the cluster board, not a barrier, so dead images are not needed.
        return parent.handle.shrink()

    # -- Active Messages over MPI_ISEND (§3.2) ------------------------------------

    def _send_am(self, target_world: int, wire_bytes: int, thunk: Callable[[], None]) -> None:
        """Inject an AM: an eager MPI_ISEND plus an out-of-band thunk."""
        seq = next(_am_seq)
        self._am_board[(self.ctx.rank, seq)] = thunk
        header = np.array([seq], dtype=np.int64)
        payload = np.zeros(max(wire_bytes, header.nbytes), np.uint8)
        payload[: header.nbytes] = header.view(np.uint8)
        req = self.am_comm.isend(payload, dest=target_world, tag=AM_TAG)
        self._release_requests.append(req)

    def poll(self) -> None:
        """Drain arrived AMs and run their handlers (the progress engine)."""
        self.run_continuations()
        while True:
            ok, status = self.am_comm.iprobe(source=ANY_SOURCE, tag=AM_TAG)
            if not ok:
                return
            buf = np.zeros(status.count, np.uint8)
            st = self.am_comm.recv(buf, source=status.source, tag=AM_TAG)
            seq = int(buf[:8].view(np.int64)[0])
            thunk = self._am_board.pop((st.source, seq))
            thunk()

    def progress_wait(
        self,
        pred: Callable[[], bool],
        reason: str,
        extras: tuple[SimEvent, ...] = (),
    ) -> None:
        arrivals = self._am_matching.arrivals[self.ctx.rank]
        first = True
        while True:
            self.poll()
            if pred():
                return
            if first:
                for ev in extras:
                    # Spurious arrival bumps are harmless: they just rescan.
                    ev.subscribe(lambda: arrivals.add())
                first = False
            seen = arrivals.count
            if pred():
                return
            arrivals.wait_geq(self.ctx.proc, seen + 1)

    # -- coarrays (§3.1) ---------------------------------------------------------------

    def allocate_coarray(self, team: "Team", nelems: int, dtype: np.dtype):
        win = self.mpi.win_allocate(shape=nelems, dtype=dtype, comm=team.handle)
        win.lock_all()  # passive-target epoch held until deallocation
        self._windows.append(win)
        return _CoarrayStorage(win, team)

    def local_view(self, storage: _CoarrayStorage) -> np.ndarray:
        return storage.win.local

    def coarray_write(self, storage: _CoarrayStorage, target: int, offset: int, data: np.ndarray) -> None:
        storage.win.put(data, target, offset)
        storage.win.flush(target)

    def coarray_read(self, storage: _CoarrayStorage, target: int, offset: int, out: np.ndarray) -> None:
        req = storage.win.rget(out, target, offset)
        self.progress_wait(lambda: req.completed, "coarray_read", extras=(req._event,))

    def coarray_write_runs(
        self, storage: _CoarrayStorage, target: int, runs: list[tuple[int, int]], data: np.ndarray
    ) -> None:
        # A derived-datatype MPI_PUT followed by a flush (§3.1 semantics).
        storage.win.put_runs(data, target, runs)
        storage.win.flush(target)

    def coarray_read_runs(
        self, storage: _CoarrayStorage, target: int, runs: list[tuple[int, int]], out: np.ndarray
    ) -> None:
        req = storage.win.get_runs(out, target, runs)
        self.progress_wait(
            lambda: req.completed, "coarray_read_runs", extras=(req._event,)
        )

    def coarray_write_async(
        self,
        storage: _CoarrayStorage,
        target: int,
        offset: int,
        data: np.ndarray,
        *,
        want_local: bool,
        dest_event: tuple[Any, int] | None,
    ) -> AsyncHandle:
        handle = AsyncHandle("caf-mpi.write_async")
        win = storage.win
        if dest_event is not None:
            # Case 4: remote-completion event -> Active Message path (§3.3).
            ev_storage, slot = dest_event
            target_world = storage.team.world_rank(target)
            data_copy = data.copy()
            event_id = ev_storage.event_id

            def deliver_on_target() -> None:
                tbe = self._backends[target_world]
                tb = win.state.buffers[target]
                tb[offset : offset + data_copy.size] = data_copy
                san = self.ctx.sanitizer
                if san is not None:
                    # AM handler runs on the target after the sender-clock
                    # merge, so this lands like an ordered local store.
                    item = tb.itemsize
                    san.record_local(
                        target_world,
                        ("win", win.win_id, target_world),
                        [(offset * item, (offset + data_copy.size) * item)],
                        "am-write",
                    )
                tbe._event_registry[event_id].post(slot)
                handle.remote.fire()

            self._send_am(
                target_world, _AM_HEADER_BYTES + data_copy.nbytes, deliver_on_target
            )
            handle.local.fire()  # buffered by the AM layer
        elif want_local:
            # Case 3: local-completion event -> MPI_RPUT request.
            req = win.rput(data, target, offset)
            self._release_requests.append(req)
            self._implicit_puts.append(req)
            req._event.subscribe(handle.local.fire)
        else:
            # Case 1: no events -> MPI_RPUT whose request feeds the
            # implicit-PUT array for cofence; FLUSH_ALL covers the rest.
            req = win.rput(data, target, offset)
            self._release_requests.append(req)
            self._implicit_puts.append(req)
            req._event.subscribe(handle.local.fire)
        return handle

    def coarray_read_async(
        self, storage: _CoarrayStorage, target: int, offset: int, out: np.ndarray
    ) -> AsyncHandle:
        # Case 2: MPI_RGET — request completion is local *and* remote.
        handle = AsyncHandle("caf-mpi.read_async", kind="get")
        req = storage.win.rget(out, target, offset)
        self._release_requests.append(req)
        self._implicit_gets.append(req)
        req._event.subscribe(handle.local.fire)
        req._event.subscribe(handle.remote.fire)
        return handle

    # -- events (§3.4) ------------------------------------------------------------------------

    def allocate_events(self, team: "Team", nslots: int) -> EventStorage:
        event_id = collective_agree(
            self,
            self.ctx.cluster,
            team,
            "caf-event-ids",
            self._agree_seq,
            None,
            lambda args: next_global_id(self.ctx.cluster, "caf-event-id-counter"),
        )
        if self.event_impl == "atomics":
            win = self.mpi.win_allocate(shape=nslots, dtype=np.int64, comm=team.handle)
            win.lock_all()
            san = self.ctx.sanitizer
            if san is not None:
                # Runtime-internal counter storage: the busy-poll reads and
                # accumulate notifies are synchronization, not data accesses.
                san.exempt_window(win.win_id)
            storage: EventStorage = _AtomicEventStorage(
                self, event_id, team, nslots, win
            )
        else:
            storage = EventStorage(self, event_id, team, nslots)
        self._event_registry[event_id] = storage
        return storage

    def kick(self) -> None:
        self._am_matching.arrivals[self.ctx.rank].add()

    def kick_rank(self, world_rank: int) -> None:
        self._backends[world_rank]._am_matching.arrivals[world_rank].add()

    def _release_barrier(self) -> None:
        """§3.4: local completion of all initiated ops, then remote
        completion via the (linear when active) FLUSH_ALL walk."""
        requests, self._release_requests = self._release_requests, []
        self.progress_wait(
            lambda: all(r.completed for r in requests),
            "event_notify.waitall",
            extras=tuple(r._event for r in requests),
        )
        if self.use_rflush:
            # The paper's §5 proposal: request-based completion at constant
            # software cost; wait on all requests while polling AMs.
            reqs = [win.rflush_all() for win in self._windows]
            self.progress_wait(
                lambda: all(r.completed for r in reqs),
                "release.rflush_all",
                extras=tuple(r._event for r in reqs),
            )
            return
        # MPI_WIN_FLUSH_ALL on every window — the linear-in-P cost of
        # Figure 4 when the epoch has activity, a cheap constant-cost walk
        # when idle (which is why the paper's NOTIFY *microbenchmark*
        # stays flat in P).
        for win in self._windows:
            win.flush_all()

    def event_notify(self, storage: EventStorage, target: int, slot: int) -> None:
        self._release_barrier()
        target_world = storage.team.world_rank(target)
        san = self.ctx.sanitizer
        if san is not None:
            # The release barrier above makes everything we did so far
            # happen-before the matching consumed wait on the target.
            san.event_notified(self.ctx.rank, (storage.event_id, target_world, slot))
        if isinstance(storage, _AtomicEventStorage):
            # §3.4 approach 1: MPI_FETCH_AND_OP-style one-sided increment.
            storage.win.accumulate(
                np.ones(1, np.int64), target, offset=slot, op=SUM
            )
            storage.win.flush(target)
            return
        # §3.4 approach 2 (the paper's choice): a short AM via MPI_ISEND
        # (nonblocking to avoid notify/wait deadlock cycles).
        event_id = storage.event_id

        def deliver() -> None:
            self._backends[target_world]._event_registry[event_id].post(slot)

        self._send_am(target_world, _AM_HEADER_BYTES, deliver)

    def event_count(self, storage: EventStorage, slot: int) -> int:
        if isinstance(storage, _AtomicEventStorage):
            return int(storage.win.local[slot]) - storage.consumed[slot]
        return super().event_count(storage, slot)

    def event_consume(self, storage: EventStorage, slot: int, n: int) -> None:
        if isinstance(storage, _AtomicEventStorage):
            storage.consumed[slot] += n
            return
        super().event_consume(storage, slot, n)

    def event_post_local(self, storage: EventStorage, slot: int) -> None:
        if isinstance(storage, _AtomicEventStorage):
            storage.win.local[slot] += 1
            storage.post_hooks_only(slot)
            return
        super().event_post_local(storage, slot)

    _ATOMIC_POLL_INTERVAL = 2.5e-7
    _ATOMIC_POLL_LIMIT = 200_000  # ~50 ms of virtual spinning before giving up

    def event_wait(self, storage: EventStorage, slot: int, count: int) -> None:
        if isinstance(storage, _AtomicEventStorage):
            # Busy-wait on the local counter (the MPI_COMPARE_AND_SWAP
            # polling loop of §3.4), making AM progress as we spin.
            for _ in range(self._ATOMIC_POLL_LIMIT):
                self.poll()
                if self.event_count(storage, slot) >= count:
                    self.event_consume(storage, slot, count)
                    return
                self.ctx.proc.sleep(self._ATOMIC_POLL_INTERVAL)
            raise CafError(
                f"atomic event_wait(slot={slot}, count={count}) spun out "
                "(event never posted?)"
            )
        super().event_wait(storage, slot, count)

    # -- implicit synchronization (§3.5) ----------------------------------------------------------

    def cofence(self, *, puts: bool = True, gets: bool = True) -> None:
        requests: list[Request] = []
        if puts:
            requests += self._implicit_puts
            self._implicit_puts = []
        if gets:
            requests += self._implicit_gets
            self._implicit_gets = []
        self.progress_wait(
            lambda: all(r.completed for r in requests),
            "cofence.waitall",
            extras=tuple(r._event for r in requests),
        )

    def quiet(self) -> None:
        self.cofence()
        # The release barrier also waits AM sends and any remaining handles.
        remaining = list(self._release_requests)
        self.progress_wait(
            lambda: all(r.completed for r in remaining),
            "quiet.waitall",
            extras=tuple(r._event for r in remaining),
        )
        self._release_requests.clear()
        if self.use_rflush:
            reqs = [win.rflush_all() for win in self._windows]
            self.progress_wait(
                lambda: all(r.completed for r in reqs),
                "quiet.rflush_all",
                extras=tuple(r._event for r in reqs),
            )
            return
        for win in self._windows:
            win.flush_all()

    # -- collectives --------------------------------------------------------------------------------

    def barrier(self, team: "Team") -> None:
        team.handle.barrier()

    def broadcast(self, team: "Team", buf: np.ndarray, root: int) -> None:
        team.handle.bcast(buf, root=root)

    def reduce(self, team: "Team", send: np.ndarray, recv, op, root: int) -> None:
        team.handle.reduce(send, recv, op, root=root)

    def allreduce(self, team: "Team", send: np.ndarray, recv: np.ndarray, op) -> None:
        team.handle.allreduce(send, recv, op)

    def alltoall(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None:
        team.handle.alltoall(send, recv)

    def allgather(self, team: "Team", send: np.ndarray, recv: np.ndarray) -> None:
        team.handle.allgather(send, recv)

    _NBC_METHODS = {
        "broadcast": "ibcast",
        "reduce": "ireduce",
        "allreduce": "iallreduce",
        "alltoall": "ialltoall",
        "allgather": "iallgather",
    }

    def collective_async(self, team: "Team", kind: str, args: tuple):
        """CAF 2.0 asynchronous collectives map straight onto the MPI-3
        nonblocking collectives (one of the paper's interoperability wins)."""
        method = self._NBC_METHODS.get(kind)
        if method is None:
            raise CafError(f"unknown async collective {kind!r}")
        req = getattr(team.handle, method)(*args)
        return req._event

    # -- function shipping ------------------------------------------------------------------------------

    def ship_function(self, team: "Team", target: int, payload) -> None:
        fn, args = payload
        target_world = team.world_rank(target)
        self._shipped += 1

        def run_on_target() -> None:
            tbe = self._backends[target_world]
            images = self.ctx.cluster.shared("caf-images", dict)
            img = images.get(target_world)
            if img is None:
                raise CafError("target image not initialized for function shipping")
            try:
                fn(img, *args)
            finally:
                tbe._completed += 1

        self._send_am(target_world, _AM_HEADER_BYTES + 240, run_on_target)

    def shipped_minus_completed(self) -> int:
        return self._shipped - self._completed
