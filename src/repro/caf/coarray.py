"""Coarrays: symmetric distributed arrays with one-sided remote access.

A coarray allocated over a team gives every member image a same-shaped
local array plus one-sided access to any other member's copy via the
codimension (the image index). ``A(:)[p]`` in CAF syntax becomes
``A.read(p)`` / ``A.write(p, data)`` here; both are blocking and remotely
complete on return, per §3.1 of the paper. Asynchronous variants
(``copy_async``, §3.3) take optional predicate / source / destination
events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.util.errors import CafError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.events import EventArray
    from repro.caf.image import Image
    from repro.caf.teams import Team


class Coarray:
    """One image's handle on a coarray."""

    def __init__(self, img: "Image", team: "Team", shape, dtype):
        self.img = img
        self.team = team
        self.shape = tuple(np.atleast_1d(np.asarray(shape, int)).tolist()) if not np.isscalar(shape) else (int(shape),)
        self.dtype = np.dtype(dtype)
        self.nelems = int(np.prod(self.shape))
        self.storage = img.backend.allocate_coarray(team, self.nelems, self.dtype)
        # Cached metrics handle (fixed at cluster construction).
        self._obs = img.ctx.metrics

    # -- local access ------------------------------------------------------

    @property
    def local(self) -> np.ndarray:
        """This image's segment, shaped as allocated."""
        return self.img.backend.local_view(self.storage).reshape(self.shape)

    def _check(self, target: int, offset: int, count: int) -> None:
        if not 0 <= target < self.team.size:
            raise CafError(
                f"image index {target} out of range [0, {self.team.size})"
            )
        self.img._check_alive(self.team, target)
        if offset < 0 or offset + count > self.nelems:
            raise CafError(
                f"coarray access [{offset}, {offset + count}) outside "
                f"{self.nelems}-element coarray"
            )

    # -- blocking remote access ------------------------------------------------

    def write(self, target: int, data, offset: int = 0) -> None:
        """``A(offset:...)[target] = data`` — blocking, remotely complete."""
        arr = np.ascontiguousarray(data, dtype=self.dtype).reshape(-1)
        self._check(target, offset, arr.size)
        obs = self._obs
        ctx = self.img.ctx
        t0 = ctx.engine.now if obs is not None else 0.0
        with self.img.profile("coarray_write"):
            self.img.backend.coarray_write(self.storage, target, offset, arr)
        if obs is not None:
            obs.record(
                ctx.rank, "caf.coarray_write", arr.nbytes, ctx.engine.now - t0
            )

    def read(self, target: int, offset: int = 0, count: int | None = None) -> np.ndarray:
        """``A(offset:offset+count)[target]`` — blocking read."""
        if count is None:
            count = self.nelems - offset
        self._check(target, offset, count)
        out = np.empty(count, self.dtype)
        obs = self._obs
        ctx = self.img.ctx
        t0 = ctx.engine.now if obs is not None else 0.0
        with self.img.profile("coarray_read"):
            self.img.backend.coarray_read(self.storage, target, offset, out)
        if obs is not None:
            obs.record(ctx.rank, "caf.coarray_read", out.nbytes, ctx.engine.now - t0)
        return out

    # -- strided section access (Fortran array sections) -------------------------

    def _section_runs(self, key) -> tuple[list[tuple[int, int]], tuple[int, ...]]:
        """Map an ndim slice key to flat (offset, length) runs + the shape."""
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > len(self.shape):
            raise CafError(
                f"section key has {len(key)} dims for a {len(self.shape)}-d coarray"
            )
        index_grid = np.arange(self.nelems).reshape(self.shape)[key]
        shape = index_grid.shape
        flat = np.atleast_1d(index_grid).reshape(-1)
        if flat.size == 0:
            return [], shape
        breaks = np.nonzero(np.diff(flat) != 1)[0] + 1
        starts = flat[np.concatenate([[0], breaks])]
        bounds = np.concatenate([[0], breaks, [flat.size]])
        lengths = np.diff(bounds)
        return [
            (int(s), int(n)) for s, n in zip(starts, lengths)
        ], shape

    def write_section(self, target: int, key, data) -> None:
        """``A(section)[target] = data``: a strided remote write.

        ``key`` is anything NumPy basic indexing accepts (slices / ints per
        dimension). Moves as one derived-datatype/VIS message, not one
        message per element.
        """
        runs, shape = self._section_runs(key)
        arr = np.ascontiguousarray(
            np.broadcast_to(np.asarray(data, dtype=self.dtype), shape)
        ).reshape(-1)
        if not 0 <= target < self.team.size:
            raise CafError(f"image index {target} out of range [0, {self.team.size})")
        self.img._check_alive(self.team, target)
        if not runs:
            return
        obs = self._obs
        ctx = self.img.ctx
        t0 = ctx.engine.now if obs is not None else 0.0
        with self.img.profile("coarray_write"):
            self.img.backend.coarray_write_runs(self.storage, target, runs, arr)
        if obs is not None:
            obs.record(
                ctx.rank, "caf.coarray_write", arr.nbytes, ctx.engine.now - t0
            )

    def read_section(self, target: int, key) -> np.ndarray:
        """``A(section)[target]``: a strided remote read, shaped like the section."""
        runs, shape = self._section_runs(key)
        if not 0 <= target < self.team.size:
            raise CafError(f"image index {target} out of range [0, {self.team.size})")
        self.img._check_alive(self.team, target)
        out = np.empty(int(np.prod(shape)) if shape else 1, self.dtype)
        if runs:
            obs = self._obs
            ctx = self.img.ctx
            t0 = ctx.engine.now if obs is not None else 0.0
            with self.img.profile("coarray_read"):
                self.img.backend.coarray_read_runs(self.storage, target, runs, out)
            if obs is not None:
                obs.record(
                    ctx.rank, "caf.coarray_read", out.nbytes, ctx.engine.now - t0
                )
        return out.reshape(shape)

    # -- asynchronous remote access (§3.3) -----------------------------------------

    def write_async(
        self,
        target: int,
        data,
        offset: int = 0,
        *,
        predicate: "tuple[EventArray, int] | None" = None,
        src_event: "tuple[EventArray, int] | None" = None,
        dest_event: "tuple[EventArray, int] | None" = None,
    ) -> None:
        """``copy_async`` with a remote destination (§2.1).

        ``predicate`` delays the copy until that event is posted;
        ``src_event`` posts when the source buffer is reusable;
        ``dest_event`` posts *at the target image* when the data has
        arrived (the §3.3 case-4 AM path under CAF-MPI).
        """
        arr = np.ascontiguousarray(data, dtype=self.dtype).reshape(-1)
        self._check(target, offset, arr.size)
        img = self.img

        dest = None
        if dest_event is not None:
            ev, slot = dest_event
            dest = (ev.storage, slot)

        def start() -> None:
            handle = img.backend.coarray_write_async(
                self.storage,
                target,
                offset,
                arr,
                want_local=src_event is not None,
                dest_event=dest,
            )
            img._register_async(handle)
            if src_event is not None:
                sev, sslot = src_event
                handle.local.subscribe(lambda: sev._post_local(sslot))

        if predicate is None:
            start()
        else:
            img._defer_on_event(predicate, start)

    def read_async(
        self,
        target: int,
        out: np.ndarray,
        offset: int = 0,
        *,
        predicate: "tuple[EventArray, int] | None" = None,
        dest_event: "tuple[EventArray, int] | None" = None,
    ) -> None:
        """Asynchronous read into ``out`` (local completion == data ready)."""
        out_arr = np.asarray(out)
        if out_arr.dtype != self.dtype:
            raise CafError(
                f"read_async buffer dtype {out_arr.dtype} != coarray dtype {self.dtype}"
            )
        self._check(target, offset, out_arr.size)
        img = self.img

        def start() -> None:
            handle = img.backend.coarray_read_async(
                self.storage, target, offset, out_arr
            )
            img._register_async(handle)
            if dest_event is not None:
                ev, slot = dest_event
                handle.remote.subscribe(lambda: ev._post_local(slot))

        if predicate is None:
            start()
        else:
            img._defer_on_event(predicate, start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Coarray shape={self.shape} dtype={self.dtype} "
            f"team={self.team.team_id} image={self.team.my_index}>"
        )
