"""The per-image CAF 2.0 facade — what a CAF "program" is written against.

An :class:`Image` corresponds to one CAF process image. It exposes the
language-level operations of §2.1 (coarrays, events, teams, collectives,
``cofence``, ``finish``, function shipping) and hides the backend.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.caf.backend import AsyncHandle, RuntimeBackend
from repro.caf.coarray import Coarray
from repro.caf.events import EventArray
from repro.caf.finish import FinishBlock
from repro.caf.teams import Team, split_team
from repro.util.errors import CafError, ImageFailedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import RankCtx


def _sync_images_mark(img: "Image", from_rank: int) -> None:
    """Shipped token for :meth:`Image.sync_images`."""
    board = img.cluster.shared("caf-sync-images", dict)
    board[(img.rank, from_rank)] = board.get((img.rank, from_rank), 0) + 1
    img.backend.kick()


class Image:
    """One CAF image: identity, teams, and the CAF 2.0 operation set."""

    def __init__(self, ctx: "RankCtx", backend: RuntimeBackend):
        self.ctx = ctx
        self.backend = backend
        self.cluster = ctx.cluster
        self.team_world = Team(0, tuple(range(ctx.nranks)), ctx.rank)
        self.team_world.handle = backend.make_world_team_handle(self.team_world)
        #: Async handles registered since the last cofence (implicit model).
        self._implicit_handles: list[AsyncHandle] = []

    # -- identity (CAF intrinsics) ------------------------------------------

    def this_image(self, team: Team | None = None) -> int:
        """Image index within ``team`` (0-based; Fortran's is 1-based)."""
        return (team or self.team_world).my_index

    def num_images(self, team: Team | None = None) -> int:
        return (team or self.team_world).size

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def nranks(self) -> int:
        return self.ctx.nranks

    # -- failure awareness ----------------------------------------------------

    def failed_images(self, team: Team | None = None) -> list[int]:
        """Team indices of images known to have crashed (CAF analogue of
        ULFM's failure query; fed by injected :class:`FaultPlan` crashes)."""
        team = team or self.team_world
        failed = self.cluster.failed_ranks
        return [i for i in range(team.size) if team.world_rank(i) in failed]

    def _check_alive(self, team: Team, index: int) -> None:
        """Raise :class:`ImageFailedError` when an operation names a dead image.

        Called from API entry points only — never from delivery callbacks,
        which must tolerate a peer dying with traffic in flight.
        """
        w = team.world_rank(index)
        if w in self.cluster.failed_ranks:
            raise ImageFailedError(
                w, f"image {index} of team {team.team_id} (world rank {w}) has failed"
            )

    # -- allocation -------------------------------------------------------------

    @property
    def resilience(self):
        """This image's resilience handle (checkpoint/restore hooks), or
        None when the run has no resilience service attached."""
        service = getattr(self.cluster, "resilience", None)
        if service is None:
            return None
        return service.image_handle(self)

    def allocate_coarray(self, shape, dtype=np.float64, team: Team | None = None) -> Coarray:
        """Collective over ``team``: allocate a symmetric coarray."""
        co = Coarray(self, team or self.team_world, shape, dtype)
        service = getattr(self.cluster, "resilience", None)
        if service is not None:
            service.register_coarray(self, co)
        return co

    def allocate_events(self, nslots: int = 1, team: Team | None = None) -> EventArray:
        """Collective: allocate ``nslots`` events on every team member
        (event_init on an event coarray)."""
        ev = EventArray(self, team or self.team_world, nslots)
        service = getattr(self.cluster, "resilience", None)
        if service is not None:
            service.register_events(self, ev)
        return ev

    # -- teams ---------------------------------------------------------------------

    def team_split(self, team: Team, color: int, key: int | None = None) -> Team | None:
        """CAF 2.0 team_split (collective over ``team``)."""
        return split_team(self, team, color, key)

    def shrink_team(self, team: Team | None = None) -> Team:
        """Survivor-only team over ``team``'s live members (ULFM shrink).

        Every *surviving* member of ``team`` must call this after a
        failure; dead images are excluded and never participate (the
        agreement is barrier-free). Survivors keep their relative order
        and are renumbered contiguously.
        """
        team = team or self.team_world
        failed = self.cluster.failed_ranks
        if self.rank in failed:  # pragma: no cover - defensive
            raise CafError("shrink_team() called by a failed image")
        survivors = tuple(w for w in team.members if w not in failed)
        if self.rank not in survivors:
            raise CafError(
                f"image {self.rank} is not a member of team {team.team_id}"
            )

        def fresh_id() -> int:
            ids = self.cluster.shared("caf-team-ids", lambda: [1])
            team_id = ids[0]
            ids[0] += 1
            return team_id

        team_id = self.cluster.shared(
            ("caf-shrink-id", team.team_id, survivors), fresh_id
        )
        new_team = Team(team_id, survivors, survivors.index(self.rank))
        new_team.handle = self.backend.shrink_team_handle(team, new_team)
        return new_team

    # -- synchronization --------------------------------------------------------------

    def cofence(self, *, puts: bool = True, gets: bool = True) -> None:
        """Local completion of implicitly-synchronized async ops (§3.5).

        Under CAF-MPI this is an ``MPI_WAITALL`` on the stored request
        handles of implicitly synchronized PUTs and/or GETs — the optional
        arguments are the statement's selective form ("a user can use to
        request local completion notification of PUT or GET operations").
        Asynchronous collectives always complete here.
        """
        def selected(handle) -> bool:
            if handle.kind == "coll":
                return True
            return (puts and handle.kind == "put") or (gets and handle.kind == "get")

        with self.profile("cofence"):
            self.backend.cofence(puts=puts, gets=gets)
            waiting = [h for h in self._implicit_handles if selected(h)]
            self._implicit_handles = [
                h for h in self._implicit_handles if not selected(h)
            ]
            self.backend.progress_wait(
                lambda: all(h.local.is_set for h in waiting),
                "cofence",
                extras=tuple(h.local for h in waiting),
            )

    def finish(self, team: Team | None = None, *, fast: bool | None = None) -> FinishBlock:
        """A collective ``finish`` block (use as a context manager).

        ``fast=True`` forces the flush+barrier variant (valid when no
        function shipping happens inside); ``fast=False`` forces Yang's
        termination-detection reductions; default picks automatically
        (TD when any image shipped functions inside the block).
        """
        return FinishBlock(self, team or self.team_world, fast=fast)

    def sync_all(self, team: Team | None = None) -> None:
        """Barrier + remote completion of everything this image issued."""
        self.backend.quiet()
        self.barrier(team)

    def sync_images(self, partners) -> None:
        """Fortran 2008 ``SYNC IMAGES``: pairwise synchronization with the
        named images only (who must name this image in a matching call).

        Completes this image's outstanding operations first (release
        semantics), then exchanges sync tokens with each partner — built
        on function shipping, so partners must be inside CAF calls.
        """
        partners = [int(p) for p in partners]
        for p in partners:
            if not 0 <= p < self.nranks:
                raise CafError(f"sync_images partner {p} out of range [0, {self.nranks})")
            self._check_alive(self.team_world, p)
        self.backend.quiet()
        board = self.cluster.shared("caf-sync-images", dict)
        if not hasattr(self, "_sync_consumed"):
            self._sync_consumed = {}
        # Each matching call consumes exactly one token per partner,
        # regardless of how early the partner's token arrived.
        needed = {
            p: self._sync_consumed.get(p, 0) + 1 for p in partners
        }
        for p in partners:
            if p == self.rank:
                board[(p, p)] = board.get((p, p), 0) + 1
            else:
                self.spawn(p, _sync_images_mark, self.rank)
        self.backend.progress_wait(
            lambda: all(board.get((self.rank, p), 0) >= needed[p] for p in partners),
            f"sync_images({partners})",
        )
        for p in partners:
            self._sync_consumed[p] = needed[p]

    # -- collectives ----------------------------------------------------------------------

    def _obs_coll(self, kind: str, nbytes: int, t0: float) -> None:
        """Charge a finished team collective to the metrics registry."""
        obs = self.ctx.metrics
        if obs is None:  # pragma: no cover - callers guard already
            return
        obs.record(
            self.ctx.rank, "caf.coll." + kind, nbytes, self.ctx.engine.now - t0
        )

    def barrier(self, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        with self.profile("barrier"):
            self.backend.barrier(team or self.team_world)
        if obs is not None:
            self._obs_coll("barrier", 0, t0)

    def team_broadcast(self, buf, root: int = 0, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        arr = np.asarray(buf)
        with self.profile("broadcast"):
            self.backend.broadcast(team or self.team_world, arr, root)
        if obs is not None:
            self._obs_coll("broadcast", arr.nbytes, t0)

    def team_reduce(self, send, recv, op, root: int = 0, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        arr = np.asarray(send)
        with self.profile("reduce"):
            self.backend.reduce(team or self.team_world, arr, recv, op, root)
        if obs is not None:
            self._obs_coll("reduce", arr.nbytes, t0)

    def team_allreduce(self, send, recv, op, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        arr = np.asarray(send)
        with self.profile("reduce"):
            self.backend.allreduce(
                team or self.team_world, arr, np.asarray(recv), op
            )
        if obs is not None:
            self._obs_coll("allreduce", arr.nbytes, t0)

    def team_alltoall(self, send, recv, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        arr = np.asarray(send)
        with self.profile("alltoall"):
            self.backend.alltoall(team or self.team_world, arr, np.asarray(recv))
        if obs is not None:
            self._obs_coll("alltoall", arr.nbytes, t0)

    def team_allgather(self, send, recv, team: Team | None = None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        arr = np.asarray(send)
        with self.profile("allgather"):
            self.backend.allgather(team or self.team_world, arr, np.asarray(recv))
        if obs is not None:
            self._obs_coll("allgather", arr.nbytes, t0)

    # -- asynchronous collectives (§2.1) -----------------------------------------------

    def _collective_async(self, kind, args, team, data_event, op_event):
        done = self.backend.collective_async(team or self.team_world, kind, args)
        handle = AsyncHandle(f"coll_async.{kind}", kind="coll")
        done.subscribe(handle.local.fire)
        done.subscribe(handle.remote.fire)
        self._register_async(handle)
        for spec_ in (data_event, op_event):
            if spec_ is not None:
                ev, slot = spec_
                done.subscribe(lambda ev=ev, slot=slot: ev._post_local(slot))

    def team_broadcast_async(
        self, buf, root: int = 0, team: Team | None = None, *,
        data_event=None, op_event=None,
    ) -> None:
        """Nonblocking broadcast; ``data_event`` posts when the local buffer
        holds the data, ``op_event`` when the operation is fully complete."""
        self._collective_async(
            "broadcast", (np.asarray(buf), root), team, data_event, op_event
        )

    def team_reduce_async(
        self, send, recv, op, root: int = 0, team: Team | None = None, *,
        data_event=None, op_event=None,
    ) -> None:
        self._collective_async(
            "reduce", (np.asarray(send), recv, op, root), team, data_event, op_event
        )

    def team_allreduce_async(
        self, send, recv, op, team: Team | None = None, *,
        data_event=None, op_event=None,
    ) -> None:
        self._collective_async(
            "allreduce", (np.asarray(send), np.asarray(recv), op), team,
            data_event, op_event,
        )

    def team_alltoall_async(
        self, send, recv, team: Team | None = None, *,
        data_event=None, op_event=None,
    ) -> None:
        self._collective_async(
            "alltoall", (np.asarray(send), np.asarray(recv)), team,
            data_event, op_event,
        )

    def team_allgather_async(
        self, send, recv, team: Team | None = None, *,
        data_event=None, op_event=None,
    ) -> None:
        self._collective_async(
            "allgather", (np.asarray(send), np.asarray(recv)), team,
            data_event, op_event,
        )

    # -- function shipping ---------------------------------------------------------------------

    def spawn(self, target: int, fn: Callable[..., Any], *args: Any, team: Team | None = None) -> None:
        """Ship ``fn(img, *args)`` to run on image ``target`` of ``team``.

        The shipped function may perform the full range of CAF operations,
        including spawning more functions (§2.1). Completion is observed
        through an enclosing termination-detecting ``finish`` block.
        """
        team = team or self.team_world
        if not 0 <= target < team.size:
            raise CafError(f"spawn target {target} out of range [0, {team.size})")
        self._check_alive(team, target)
        with self.profile("spawn"):
            self.backend.ship_function(team, target, (fn, args))

    def spawn_future(self, target: int, fn: Callable[..., Any], *args: Any, team: Team | None = None):
        """Ship ``fn(img, *args)`` and get a :class:`~repro.caf.futures.CafFuture`
        that resolves to its return value (shipped back as a second AM)."""
        from repro.caf.futures import spawn_future

        team = team or self.team_world
        return spawn_future(self, team, target, fn, args)

    def serve(self, count: int = 1) -> None:
        """Drive the progress engine until ``count`` more shipped functions
        have executed on this image.

        A server-style image blocked *outside* CAF (e.g. in a pure MPI
        call) never runs Active-Message handlers — the Figure 2 lesson —
        so code expecting incoming spawns must either be inside blocking
        CAF operations or call this explicitly.
        """
        baseline = self.backend.completed_count()
        self.backend.progress_wait(
            lambda: self.backend.completed_count() >= baseline + count,
            f"serve({count})",
        )

    # -- copy_async (§2.1: source and destination may be local or remote) ---------------

    def copy_async(
        self,
        dest: "Coarray",
        dest_image: int,
        src: "Coarray",
        src_image: int,
        count: int | None = None,
        *,
        dest_offset: int = 0,
        src_offset: int = 0,
        predicate=None,
        src_event=None,
        dest_event=None,
    ) -> None:
        """CAF 2.0 ``copy_async``: move ``count`` elements from
        ``src(src_offset...)[src_image]`` to ``dest(dest_offset...)[dest_image]``.

        Either side may be this image or a remote one. The three optional
        events follow §2.1: ``predicate`` gates the start, ``src_event``
        posts when the source buffer is reusable, ``dest_event`` posts *at
        the destination image* when the data has landed.
        """
        if src.dtype != dest.dtype:
            raise CafError(
                f"copy_async dtype mismatch: {src.dtype} -> {dest.dtype}"
            )
        if count is None:
            count = min(src.nelems - src_offset, dest.nelems - dest_offset)
        me_src = src.team.world_rank(src_image) == self.rank

        def start() -> None:
            if me_src:
                data = src.local.reshape(-1)[src_offset : src_offset + count].copy()
                self._copy_deliver(dest, dest_image, dest_offset, data, src_event, dest_event)
            else:
                # Remote source: fetch first, then forward. The source
                # buffer is never ours, so src_event (buffer reuse) can
                # post as soon as the fetched copy exists.
                staging = np.empty(count, src.dtype)
                handle = self.backend.coarray_read_async(
                    src.storage, src_image, src_offset, staging
                )
                self._register_async(handle)
                if src_event is not None:
                    ev, slot = src_event
                    handle.local.subscribe(lambda: ev._post_local(slot))

                def forward() -> None:
                    self._copy_deliver(
                        dest, dest_image, dest_offset, staging, None, dest_event
                    )

                # Completion fires in scheduler context; the forwarding leg
                # issues communication, so it runs as a runtime
                # continuation on this image's next progress poll.
                handle.remote.subscribe(lambda: self.backend.defer(forward))

        if predicate is None:
            start()
        else:
            ev, slot = predicate
            ev.on_next_post(slot, start)

    def _copy_deliver(self, dest, dest_image, dest_offset, data, src_event, dest_event):
        if dest.team.world_rank(dest_image) == self.rank:
            # Local destination: a memcpy, completion is immediate.
            dest.local.reshape(-1)[dest_offset : dest_offset + data.size] = data
            if src_event is not None:
                ev, slot = src_event
                ev._post_local(slot)
            if dest_event is not None:
                ev, slot = dest_event
                ev._post_local(slot)
            return
        dest.write_async(
            dest_image,
            data,
            offset=dest_offset,
            src_event=src_event,
            dest_event=dest_event,
        )

    # -- interoperability ---------------------------------------------------------------------------

    def mpi(self):
        """The MPI facade for hybrid MPI+CAF programs (e.g. CGPOP).

        Under CAF-MPI this is the very runtime CAF uses — one runtime, full
        interoperability (the paper's goal). Under CAF-GASNet this
        initializes a *second*, independent MPI runtime beside GASNet: the
        duplicated-resources configuration of Figure 1.
        """
        return self.backend.mpi_facade()

    # -- misc -------------------------------------------------------------------------------------

    def compute(self, seconds: float | None = None, *, flops: float | None = None) -> None:
        """Charge modeled local computation time."""
        self.ctx.compute(seconds, flops=flops)

    def profile(self, category: str):
        return self.ctx.profile(category)

    @property
    def now(self) -> float:
        return self.ctx.now

    def _register_async(self, handle: AsyncHandle) -> None:
        self._implicit_handles.append(handle)

    def _defer_on_event(self, predicate, start: Callable[[], None]) -> None:
        ev, slot = predicate
        ev.on_next_post(slot, start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Image {self.rank}/{self.nranks} backend={self.backend.name}>"
