"""Process-wide hook registry for `repro.ir` trace recording.

This module is the *only* coupling between the simulator core and the IR
recorder: hot paths (``Proc.sleep``, ``Engine.call_at``,
``NetFabric.transfer``, the sync primitives, ``Metrics.record``) guard on
the module global ``RECORDER`` — one attribute load plus one ``is None``
test when recording is off, mirroring the sanitizer/metrics cost
discipline — and annotation sites declare *why* a sleep costs what it
costs via :func:`annotate` so replay can re-price it under a different
:class:`~repro.sim.network.MachineSpec`.

Cost symbols
------------
A cost annotation is ``(kind, c0, c1, c2)`` describing the IEEE-float
expression the live code is about to evaluate, with spec fields referenced
by index into :data:`COST_FIELDS`. Replay re-evaluates the same expression
(same operations, same order) against the target spec, so re-priced sleeps
are bit-identical to what a live run under that spec would charge.
Unannotated sleeps fall back to ``CK_LIT`` — the recorded duration is
replayed verbatim, which keeps same-spec calibration exact by
construction and degrades gracefully (documented in ``docs/ir.md``) for
cross-spec sweeps.

Sharded runs (``REPRO_SIM_SHARDS>1``) refuse recording outright: the
sharded dispatcher routes events by shard without threading them through
the recorder's ``on_call_at`` issuer chains, so an attached recorder
would emit a silently partial op stream. ``repro.ir.record.attach`` and
``Cluster`` both raise ``NotImplementedError`` for the combination
instead (see docs/architecture.md, "Parallel simulation model").
"""

from __future__ import annotations

#: The active :class:`repro.ir.record.Recorder`, or None (recording off).
RECORDER = None

# -- cost expression kinds (see repro.ir.costs.eval_costs) ---------------
CK_LIT = 0  # recorded duration, replayed verbatim
CK_PARAM = 1  # spec.<field c0>
CK_PARAM2 = 2  # spec.<field c0> + spec.<field c1>
CK_COPY = 3  # c0 / spec.mem_copy_bw
CK_PARAM_COPY = 4  # spec.<field c0> + c1 / spec.mem_copy_bw
CK_PARAM2_COPY = 5  # (spec.<field c0> + spec.<field c1>) + c2 / spec.mem_copy_bw
CK_FLOPS = 6  # c0 / spec.flops_per_sec
CK_MUL = 7  # c1 * spec.<field c0>
CK_ACK = 8  # spec.loopback_latency if same node(c0, c1) else spec.latency
CK_HANDLER = 9  # spec.gasnet_handler_overhead (+ srq penalty when active)

#: Spec fields addressable from CK_PARAM-family annotations. Order is part
#: of the trace format (the manifest embeds this table); append only.
COST_FIELDS = (
    "latency",
    "loopback_latency",
    "mpi_p2p_overhead",
    "mpi_match_overhead",
    "mpi_rma_overhead",
    "mpi_atomic_overhead",
    "mpi_flush_overhead",
    "mpi_flush_all_per_target",
    "mpi_flush_all_idle",
    "mpi_coll_overhead",
    "mpi_sendrecv_rma_extra",
    "gasnet_put_overhead",
    "gasnet_get_overhead",
    "gasnet_am_overhead",
    "gasnet_handler_overhead",
    "gasnet_poll_overhead",
    "gasnet_srq_penalty",
)

# Index constants for annotation sites (F_<FIELD> = COST_FIELDS.index).
F_LATENCY = 0
F_LOOPBACK = 1
F_MPI_P2P = 2
F_MPI_MATCH = 3
F_MPI_RMA = 4
F_MPI_ATOMIC = 5
F_MPI_FLUSH = 6
F_MPI_FLUSH_ALL_PER_TARGET = 7
F_MPI_FLUSH_ALL_IDLE = 8
F_MPI_COLL = 9
F_MPI_SENDRECV_EXTRA = 10
F_GASNET_PUT = 11
F_GASNET_GET = 12
F_GASNET_AM = 13
F_GASNET_HANDLER = 14
F_GASNET_POLL = 15
F_GASNET_SRQ_PENALTY = 16


def annotate(kind: int, c0: float = 0.0, c1: float = 0.0, c2: float = 0.0) -> None:
    """Declare the cost expression of the *next* recorded sleep/callback.

    A no-op when recording is off. The pending annotation is consumed by
    the next ``Proc.sleep`` or ``Engine.call_at`` hook (they always
    directly follow the annotation at every instrumented site) and dropped
    otherwise.
    """
    rec = RECORDER
    if rec is not None:
        rec.pending_cost = (kind, c0, c1, c2)


class CbThunk:
    """A scheduled callback bound to its recorded IR chain.

    Wrapping happens at record time (``Engine.call_at`` /
    ``NetFabric.transfer`` hooks); ``__call__`` brackets the original
    callback so any ops it records attribute to the right chain.
    """

    __slots__ = ("rec", "chain", "fn")

    def __init__(self, rec, chain: int, fn):
        self.rec = rec
        self.chain = chain
        self.fn = fn

    def __call__(self) -> None:
        rec = self.rec
        prev = rec.current_cb
        rec.current_cb = self.chain
        try:
            self.fn()
        finally:
            rec.current_cb = prev
