"""Machine description and the shared network fabric.

:class:`MachineSpec` collects every modeled cost knob for a platform: wire
latency/bandwidth, per-operation software overheads of the MPI and GASNet
stacks, behavioural switches (Cray-style send/recv-backed RMA, MPICH's
linear ``MPI_WIN_FLUSH_ALL``, GASNet's SRQ), the floating-point rate used to
convert flop counts into virtual compute time, and the runtime memory
model. Platform instances calibrated from the paper's own microbenchmarks
live in :mod:`repro.platforms`.

:class:`NetFabric` moves bytes between ranks with per-NIC injection and
delivery serialization, which is what makes naive all-at-once all-to-alls
(CAF-GASNet's hand-rolled collective) suffer incast contention while
schedule-aware algorithms (MPI's pairwise exchange) do not.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.sim import irhook as _irhook
from repro.sim.engine import Engine
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.faults import FaultPlan
    from repro.sim.reliable import ReliableTransport


@dataclass(frozen=True)
class MachineSpec:
    """Modeled cost parameters of one experimental platform."""

    name: str

    # --- fabric -------------------------------------------------------
    latency: float = 1.5e-6  # one-way inter-node wire latency (s)
    bandwidth: float = 3.2e9  # NIC injection/delivery bandwidth (B/s)
    header_bytes: int = 64  # per-message wire header
    tx_msg_overhead: float = 0.1e-6  # per-message NIC injection occupancy (s)
    rx_msg_overhead: float = 0.2e-6  # per-message NIC delivery occupancy (s)
    loopback_latency: float = 3.0e-7  # same-node message latency (s)
    ranks_per_node: int = 8

    # --- CPU ------------------------------------------------------------
    flops_per_sec: float = 8.0e9  # per-core double-precision rate
    mem_copy_bw: float = 6.0e9  # memcpy bandwidth for buffering (B/s)

    # --- MPI software costs (seconds per operation) ---------------------
    mpi_p2p_overhead: float = 0.6e-6  # send/isend/recv initiation (origin)
    mpi_match_overhead: float = 0.2e-6  # target-side match per message
    mpi_rma_overhead: float = 1.2e-6  # PUT/GET initiation
    mpi_atomic_overhead: float = 1.4e-6  # ACCUMULATE/FETCH_AND_OP/CAS
    mpi_flush_overhead: float = 0.8e-6  # FLUSH to one target
    mpi_flush_all_per_target: float = 0.4e-6  # MPICH: FLUSH_ALL walks every rank
    mpi_flush_all_idle: float = 0.2e-6  # FLUSH_ALL with no epoch activity
    mpi_coll_overhead: float = 0.8e-6  # per collective call setup
    mpi_eager_threshold: int = 8192  # bytes; above this, rendezvous
    mpi_rma_over_sendrecv: bool = False  # Cray MPI implements RMA over send/recv
    mpi_sendrecv_rma_extra: float = 2.0e-6  # extra per-op cost in that mode
    mpi_async_progress: bool = True  # library progresses 2-sided without user calls

    # --- GASNet software costs ------------------------------------------
    gasnet_put_overhead: float = 0.5e-6
    gasnet_get_overhead: float = 0.5e-6
    gasnet_am_overhead: float = 0.5e-6  # AM request injection (origin)
    gasnet_handler_overhead: float = 0.4e-6  # target-side AM handler dispatch
    gasnet_poll_overhead: float = 0.1e-6  # one gasnet_AMPoll() pass
    gasnet_srq_threshold: int | None = 128  # SRQ enabled at >= this many procs
    gasnet_srq_penalty: float = 6.0e-6  # extra target-side per-message cost w/ SRQ
    gasnet_am_credits: int | None = 64  # outstanding AM requests per peer
    # How CAF-GASNet's hand-rolled alltoall/allgather signal completion:
    # "put" = RDMA flag writes the receiver spins on (ibv/aries conduits),
    # "am"  = short Active Messages (pami conduit; pays handler dispatch).
    gasnet_coll_signal: str = "put"

    # --- runtime memory model (MB), Figure 1 -----------------------------
    mpi_mem_base_mb: float = 106.5
    mpi_mem_per_rank_mb: float = 0.033  # eager buffers + metadata per peer
    gasnet_mem_base_mb: float = 13.0
    gasnet_mem_log_mb: float = 3.25  # per log2(P) segment metadata growth
    gasnet_mem_nosrq_per_rank_mb: float = 0.05  # per-peer recv buffers w/o SRQ

    def __post_init__(self) -> None:
        # Precomputed fabric cost tuple: one attribute load hands the inner
        # loop every constant it needs. The arithmetic itself is unchanged
        # (same operations, same order), so modeled times stay bit-identical.
        object.__setattr__(
            self,
            "_fabric_costs",
            (
                self.latency,
                self.bandwidth,
                self.header_bytes,
                self.tx_msg_overhead,
                self.rx_msg_overhead,
                self.loopback_latency,
                self.mem_copy_bw,
            ),
        )

    def with_overrides(self, **kwargs: Any) -> "MachineSpec":
        """Return a copy with the given fields replaced (for ablations)."""
        return dataclasses.replace(self, **kwargs)

    def flops_time(self, flops: float) -> float:
        return flops / self.flops_per_sec

    def copy_time(self, nbytes: int) -> float:
        return nbytes / self.mem_copy_bw

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def cross_shard_lookahead(self, node_aligned: bool) -> float:
        """Minimum virtual delay of any cross-shard message (seconds).

        This is the conservative-PDES lookahead the sharded engine derives
        from the fabric cost model (``_fabric_costs``): with node-aligned
        shard boundaries every cross-shard message rides the wire, so no
        effect can propagate between shards in under ``latency``; a
        boundary inside a node exposes the loopback path, dropping the
        floor to ``min(latency, loopback_latency)``. Every other cost term
        (serialization, NIC occupancy, software overheads) only adds delay,
        so this bound is safe by construction — and the engine counts (and
        the suite asserts zero) deliveries that undercut it.
        """
        latency, _bw, _hdr, _tx, _rx, loopback, _copy = self._fabric_costs  # type: ignore[attr-defined]
        return latency if node_aligned else min(latency, loopback)

    def srq_active(self, nranks: int) -> bool:
        return (
            self.gasnet_srq_threshold is not None
            and nranks >= self.gasnet_srq_threshold
        )


class NetFabric:
    """Point-to-point byte transport with NIC serialization at both ends.

    ``transfer`` is asynchronous: the caller charges its own software
    overhead separately (via ``proc.sleep``), and ``on_delivered`` runs in
    scheduler context at the modeled delivery time.
    """

    def __init__(self, engine: Engine, nranks: int, spec: MachineSpec, tracer=None):
        self.engine = engine
        self.nranks = nranks
        self.spec = spec
        self.tracer = tracer
        self._tx_free = [0.0] * nranks
        self._rx_free = [0.0] * nranks
        # Per-(src, dst) last delivery time: enforces FIFO per ordered pair,
        # which MPI's non-overtaking rule and GASNet AM ordering rely on.
        # Keyed by src * nranks + dst (int keys hash faster than tuples).
        self._pair_last: dict[int, float] = {}
        # Memoized per-pair (intra?, latency, bw, header, tx_oh, rx_oh,
        # loopback, copy_bw) cost tuples, filled lazily per ordered pair.
        self._pair_cost: dict[int, tuple] = {}
        self._node = [r // spec.ranks_per_node for r in range(nranks)]
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`repro.sim.faults.FaultPlan` consulted once per
        #: transfer. None (the default) skips fault logic entirely, so a
        #: fault-free run is byte-identical with or without this feature.
        self.faults: FaultPlan | None = None
        #: Optional :class:`repro.sim.reliable.ReliableTransport`; installed
        #: by ``Cluster(reliable=True)`` and used by :meth:`send`.
        self.reliable: ReliableTransport | None = None
        # Fault counters (what the plan actually did to this fabric's traffic).
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.delayed = 0
        #: Ranks whose node has crashed. Shared (same set object) with
        #: ``Cluster.failed_ranks``: a dead NIC neither transmits nor
        #: delivers, so frames touching a dead rank are blackholed.
        self.failed_ranks: set[int] = set()
        self.blackholed = 0
        #: Attached by ``Cluster(sanitize=True)``: the checker counts every
        #: transfer it watched (a coverage figure for its reports).
        self.sanitizer = None
        #: Attached by ``Cluster(metrics=True)``: per-(src, dst) traffic
        #: accounting (:class:`repro.obs.metrics.CommMatrix`). One predicate
        #: guard per transfer; None keeps the hot path untouched.
        self.comm_matrix = None
        #: Attached by a sharded ``Cluster``: ``owner[rank] -> shard``.
        #: None (the default) keeps the sequential delivery path exactly
        #: one ``engine.call_at``; when set, deliveries are routed to the
        #: destination rank's shard and cross-shard messages are reported
        #: to the engine's epoch/lookahead accounting.
        self._shard_owner: tuple[int, ...] | None = None

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise SimulationError(f"rank {rank} out of range [0, {self.nranks})")

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        *,
        rx_extra: float = 0.0,
    ) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``; returns the delivery time.

        ``rx_extra`` adds per-message occupancy at the destination NIC
        (seconds) — used to model GASNet's Shared Receive Queue slowdown,
        which throttles incast throughput at scale (paper Figure 3).

        When a :class:`~repro.sim.faults.FaultPlan` is installed the message
        may be dropped or corrupted (callback never runs; returns ``inf``),
        duplicated (callback runs twice) or delayed past the FIFO order.
        """
        nranks = self.nranks
        if not (0 <= src < nranks and 0 <= dst < nranks):
            self._check_rank(src)
            self._check_rank(dst)
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if rx_extra < 0:
            raise SimulationError(f"negative rx_extra {rx_extra!r}")
        engine = self.engine
        if engine._finished:
            raise SimulationError(
                f"transfer({src}->{dst}) on a fabric whose engine has finished"
            )
        if self.failed_ranks and (src in self.failed_ranks or dst in self.failed_ranks):
            # A crashed node's NIC is silent: in-flight and future frames
            # touching it vanish. This is what leaves a retransmitting
            # survivor hanging — the case the engine watchdog exists for.
            self.blackholed += 1
            return math.inf
        now = engine.now
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.sanitizer is not None:
            self.sanitizer.stats["transfers"] += 1
        if self.comm_matrix is not None:
            self.comm_matrix.record(src, dst, nbytes)
        pair = src * nranks + dst
        cost = self._pair_cost.get(pair)
        if cost is None:
            intra = src == dst or self._node[src] == self._node[dst]
            cost = (intra,) + self.spec._fabric_costs  # type: ignore[attr-defined]
            self._pair_cost[pair] = cost
        intra, latency, bandwidth, header, tx_oh, rx_oh, loopback, copy_bw = cost
        if intra:
            # Intra-node: shared-memory copy, no NIC involvement.
            deliver = now + loopback + nbytes / copy_bw
        else:
            ser = (nbytes + header) / bandwidth
            tx_free = self._tx_free[src]
            depart = now if now > tx_free else tx_free
            # NICs have a message-rate limit independent of bandwidth: each
            # message occupies the NIC for a fixed overhead plus its wire
            # time. This is what punishes unscheduled incast (the naive
            # all-to-all) as the process count grows.
            self._tx_free[src] = depart + ser + tx_oh
            head_arrive = depart + latency
            rx_free = self._rx_free[dst]
            deliver = (
                (head_arrive if head_arrive > rx_free else rx_free)
                + ser
                + rx_oh
                + rx_extra
            )
            self._rx_free[dst] = deliver
        last = self._pair_last.get(pair, 0.0)
        if deliver < last:
            deliver = last
        self._pair_last[pair] = deliver

        decision = None
        if self.faults is not None and self.faults.active:
            decision = self.faults.draw(src, dst, nbytes)
            if decision.discard:
                # The frame burned wire and NIC time but never arrives; a
                # corrupt frame is one a checksummed link detects and
                # discards at the receiver (payloads are never silently
                # damaged — see repro.sim.faults).
                if decision.corrupt:
                    self.corrupted += 1
                else:
                    self.dropped += 1
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.record(
                        "transfer", src, now, deliver, dst=dst, nbytes=nbytes,
                        fault="corrupt" if decision.corrupt else "drop",
                    )
                return math.inf
            if decision.extra_delay > 0.0:
                # Added after the FIFO clamp on purpose: later messages can
                # overtake this one, producing genuine reordering.
                self.delayed += 1
                deliver += decision.extra_delay

        rec = _irhook.RECORDER
        if rec is not None:
            # Records the transfer op (issuer chain, NIC-state re-pricing
            # inputs) and rebinds the delivery callback to its own chain;
            # the call_at below then sees an already-chained thunk.
            on_delivered = rec.on_transfer(
                src, dst, nbytes, rx_extra, deliver, on_delivered
            )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record("transfer", src, now, deliver, dst=dst, nbytes=nbytes)
        owner = self._shard_owner
        if owner is None:
            engine.call_at(deliver, on_delivered)
            if decision is not None and decision.duplicate:
                self.duplicated += 1
                engine.call_at(deliver + decision.duplicate_lag, on_delivered)
        else:
            dst_shard = owner[dst]
            if owner[src] != dst_shard:
                engine.note_cross(owner[src], dst_shard, nbytes, deliver)
            engine.call_at_shard(deliver, on_delivered, dst_shard)
            if decision is not None and decision.duplicate:
                self.duplicated += 1
                engine.call_at_shard(
                    deliver + decision.duplicate_lag, on_delivered, dst_shard
                )
        return deliver

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        *,
        rx_extra: float = 0.0,
        reliable: bool = False,
    ) -> float:
        """Transfer, optionally via the reliable transport.

        Communication layers call this with ``reliable=True`` for traffic
        that must survive injected faults; when no transport is installed
        (the default) it degrades to a plain :meth:`transfer`, so the
        fault-free fast path is unchanged.
        """
        if reliable and self.reliable is not None:
            return self.reliable.send(
                src, dst, nbytes, on_delivered, rx_extra=rx_extra
            )
        return self.transfer(src, dst, nbytes, on_delivered, rx_extra=rx_extra)
