"""The simulated cluster: spawns one image per rank and runs a program.

A *program* is a plain Python callable ``program(ctx, **kwargs)`` executed
once per rank. ``ctx`` (:class:`RankCtx`) bundles the rank's process handle
with the shared engine, fabric, profiler, memory meter and a deterministic
RNG. Communication layers attach shared per-run state (e.g. the MPI world)
through :meth:`Cluster.shared`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.sim import irhook as _irhook
from repro.sim.engine import Engine, Proc, ShardedEngine
from repro.sim.faults import FaultPlan
from repro.sim.memory import MemoryMeter
from repro.sim.network import MachineSpec, NetFabric
from repro.sim.profiler import Profiler
from repro.sim.reliable import ReliableTransport
from repro.sim.shard import plan_shards, shards_from_env
from repro.sim.trace import Tracer
from repro.util.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.util.rng import rank_rng


class RankCtx:
    """Everything one simulated image needs: identity, clock, costs, RNG."""

    def __init__(self, cluster: "Cluster", rank: int, proc: Proc):
        self.cluster = cluster
        self.rank = rank
        self.nranks = cluster.nranks
        self.proc = proc
        self.engine = cluster.engine
        self.fabric = cluster.fabric
        self.spec = cluster.spec
        self.profiler = cluster.profiler
        self.memory = cluster.memory
        # Fixed at cluster construction; cached so per-op sanitizer and
        # metrics guards are one attribute load instead of two.
        self.sanitizer = cluster.sanitizer
        self.metrics = cluster.metrics
        self.rng = rank_rng(cluster.seed, rank)

    # -- time -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    def compute(
        self,
        seconds: float | None = None,
        *,
        flops: float | None = None,
        category: str = "computation",
    ) -> None:
        """Charge modeled compute time to this rank's virtual clock."""
        if (seconds is None) == (flops is None):
            raise SimulationError("pass exactly one of seconds= or flops=")
        duration = self.spec.flops_time(flops) if seconds is None else seconds
        if _irhook.RECORDER is not None and seconds is None:
            # seconds= stays literal (spec-independent by definition).
            _irhook.annotate(_irhook.CK_FLOPS, flops)
        self.profiler.sleep_in(self.rank, self.proc, category, duration)

    def profile(self, category: str):
        return self.profiler.region(self.rank, category)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankCtx rank={self.rank}/{self.nranks}>"


class Cluster:
    """A fixed-size simulated machine plus the services layers share."""

    def __init__(
        self,
        nranks: int,
        spec: MachineSpec,
        *,
        seed: int = 12345,
        faults: FaultPlan | None = None,
        reliable: bool = False,
        sanitize: bool = False,
        metrics: bool = False,
        shards: int | None = None,
        digest_partition: int | None = None,
        live: Any | None = None,
    ):
        if nranks <= 0:
            raise SimulationError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.spec = spec
        self.seed = seed
        if shards is None:
            shards = shards_from_env()
        #: The rank partition when running sharded, else None. A requested
        #: shard count that yields no usable lookahead (zero-latency spec)
        #: falls back to None with a ShardFallbackWarning from plan_shards.
        self.shard_plan = None
        if shards > 1:
            plan = plan_shards(nranks, spec, shards)
            if plan.is_sharded:
                if _irhook.RECORDER is not None:
                    raise NotImplementedError(
                        "repro.ir recording does not support "
                        "REPRO_SIM_SHARDS>1; record with the sequential "
                        "dispatcher (see docs/architecture.md, 'Parallel "
                        "simulation model')"
                    )
                self.shard_plan = plan
        if self.shard_plan is not None:
            self.engine: Engine = ShardedEngine(self.shard_plan)
        else:
            self.engine = Engine()
        if digest_partition is not None:
            # Track per-shard digests without requiring the sharded
            # dispatcher: this is how the sequential baseline produces the
            # partition-local fingerprints the equivalence suite compares
            # against a sharded run's. On a sharded cluster the partition
            # must match the plan (the engine already tracks it).
            if self.shard_plan is not None:
                if digest_partition != self.shard_plan.nshards:
                    raise SimulationError(
                        f"digest_partition={digest_partition} conflicts "
                        f"with shards={self.shard_plan.nshards}"
                    )
                self.engine.enable_order_digest()
            else:
                self.engine.enable_order_digest(
                    plan_shards(nranks, spec, digest_partition)
                )
        self.tracer = Tracer()
        self.fabric = NetFabric(self.engine, nranks, spec, tracer=self.tracer)
        self.profiler = Profiler(self.engine, nranks, tracer=self.tracer)
        self.memory = MemoryMeter(nranks)
        self.ctxs: list[RankCtx] = []
        self._shared: dict[Any, Any] = {}
        self.elapsed = 0.0  # virtual makespan after run()
        #: World ranks whose image has crashed (via an injected fault) or
        #: been declared dead (transport give-up). Failure-notification
        #: layers (ULFM-style MPI errors, CAF ``failed_images``) read this.
        self.failed_ranks: set[int] = set()
        self.fabric.failed_ranks = self.failed_ranks  # shared: dead NICs go silent
        #: Scheduler-context callbacks invoked once per failed rank, after
        #: it enters ``failed_ranks`` — ULFM layers register here to fail
        #: pending operations that involve the dead rank.
        self.failure_listeners: list[Callable[[int], None]] = []
        #: ``[{"rank", "time", "reason"}, ...]`` in failure order.
        self.failure_log: list[dict[str, Any]] = []
        self.faults = faults
        if faults is not None:
            faults.check_ranks(nranks)
            self.fabric.faults = faults
        if self.shard_plan is not None:
            self.fabric._shard_owner = self.shard_plan.owner
        if reliable:
            self.fabric.reliable = ReliableTransport(
                self.fabric, rng=rank_rng(seed, 0, "reliable")
            )
            self.fabric.reliable.on_give_up = self._on_transport_give_up
        self.sanitizer = None
        if not sanitize:
            from repro import sanitizer as _san_mod

            sanitize = _san_mod.is_forced()
        if sanitize and self.shard_plan is not None:
            raise NotImplementedError(
                "repro.sanitizer does not support REPRO_SIM_SHARDS>1; run "
                "the checker under the sequential dispatcher (see "
                "docs/architecture.md, 'Parallel simulation model')"
            )
        if sanitize:
            from repro.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(nranks, self.engine)
            self.engine.sanitizer = self.sanitizer
            self.fabric.sanitizer = self.sanitizer
        #: Op-level metrics + P x P traffic accounting (None = zero-cost
        #: off state; every instrumented site guards on a cached handle).
        self.metrics = None
        self.comm_matrix = None
        if metrics:
            from repro.obs.metrics import CommMatrix, Metrics

            self.metrics = Metrics(nranks)
            self.comm_matrix = CommMatrix(nranks)
            self.fabric.comm_matrix = self.comm_matrix
        #: Live telemetry tap (None = zero-cost off state; the engine's
        #: resume path guards on a cached handle, like the sanitizer).
        #: ``live`` is a :class:`~repro.obs.live.LiveTelemetry` or a path.
        self.telemetry = None
        if live is not None:
            from repro.obs.live import LiveTelemetry

            tel = live if isinstance(live, LiveTelemetry) else LiveTelemetry(live)
            self.telemetry = tel
            self.engine.telemetry = tel
            tel.attach(self)

    def shared(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Get-or-create a cross-rank singleton (e.g. the MPI world)."""
        if key not in self._shared:
            self._shared[key] = factory()
        return self._shared[key]

    def _crash_rank(self, rank: int) -> None:
        """Scheduler-context delivery of an injected image crash."""
        if rank in self.failed_ranks:
            return
        self.failed_ranks.add(rank)
        self.failure_log.append(
            {"rank": rank, "time": self.engine.now, "reason": "crash"}
        )
        self.ctxs[rank].proc._crash()
        for listener in list(self.failure_listeners):
            listener(rank)

    def declare_failed(self, rank: int, *, reason: str = "declared") -> None:
        """Mark ``rank`` failed without killing its process.

        This is the transport-level suspicion path: the rank may in fact
        be alive (e.g. every ack was lost), but the system treats it as
        dead — its NIC is blackholed and peers' operations on it raise
        ``ImageFailedError``/``MpiProcFailedError``, exactly as for a real
        crash.
        """
        if rank in self.failed_ranks:
            return
        self.failed_ranks.add(rank)
        self.failure_log.append(
            {"rank": rank, "time": self.engine.now, "reason": reason}
        )
        for listener in list(self.failure_listeners):
            listener(rank)

    def _on_transport_give_up(self, src: int, dst: int) -> None:
        self.declare_failed(
            dst,
            reason=(
                f"transport: rank {src} exhausted retransmissions to "
                f"rank {dst} with no ack"
            ),
        )

    def _annotate_failure(self, exc: Exception) -> None:
        """Stamp watchdog/deadlock errors with the failed-image set and,
        when the live tap is armed, a last telemetry snapshot — so a hung
        4096-rank run dies with a progress trail, not just call sites."""
        exc.failed_ranks = sorted(self.failed_ranks)  # type: ignore[attr-defined]
        if self.failed_ranks and exc.args:
            exc.args = (
                f"{exc.args[0]}; failed images: {sorted(self.failed_ranks)}",
            ) + exc.args[1:]
        tel = self.telemetry
        if tel is not None:
            # The engine has already unwound the fibers, so the proc-state
            # walk would read every rank as done; the error's own watchdog
            # bookkeeping says who actually died blocked where.
            exc.telemetry = tel.capture_now(  # type: ignore[attr-defined]
                outcome="failed",
                blocked=getattr(exc, "blocked", None),
                last_progress=getattr(exc, "last_progress", None),
            )
            if exc.args:
                exc.args = (
                    f"{exc.args[0]}; telemetry: {tel.describe_last()}",
                ) + exc.args[1:]

    def run(
        self,
        program: Callable[..., Any],
        *,
        program_kwargs: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> list[Any]:
        """Run ``program(ctx, **kwargs)`` on every rank; returns per-rank results.

        ``deadline`` arms the engine watchdog (see :meth:`Engine.run`).
        """
        kwargs = program_kwargs or {}

        def make_target(rank: int) -> Callable[[Proc], Any]:
            def target(proc: Proc) -> Any:
                ctx = self.ctxs[rank]
                return program(ctx, **kwargs)

            return target

        rank_procs = []
        for rank in range(self.nranks):
            proc = self.engine.spawn(make_target(rank), name=f"rank{rank}")
            rank_procs.append(proc)
            self.ctxs.append(RankCtx(self, rank, proc))
        if self.faults is not None:
            # Shard-aware seeding: a crash event belongs to the dying
            # rank's shard (call_at_shard is a plain call_at sequentially).
            plan = self.shard_plan
            for rank, when in self.faults.crashes:
                self.engine.call_at_shard(
                    when,
                    lambda r=rank: self._crash_rank(r),
                    plan.owner[rank] if plan is not None else 0,
                )
        ok = False
        try:
            self.engine.run(deadline=deadline)
            ok = True
        except (DeadlockError, SimTimeoutError) as exc:
            self._annotate_failure(exc)
            raise
        finally:
            if self.telemetry is not None:
                # Final snapshot + stream close on every exit path (the
                # failure path may already have emitted it via
                # _annotate_failure; close() is idempotent about that).
                self.telemetry.close(outcome="ok" if ok else "failed")
        self.elapsed = self.engine.now
        if self.sanitizer is not None:
            self.sanitizer.finalize()
        # Only the rank programs' results — libraries may have spawned
        # daemon agents whose results are not the application's.
        return [p.result for p in rank_procs]


def run_program(
    program: Callable[..., Any],
    nranks: int,
    spec: MachineSpec | None = None,
    *,
    seed: int = 12345,
    **program_kwargs: Any,
) -> tuple[Cluster, list[Any]]:
    """Convenience: build a cluster, run ``program`` on every rank, return both."""
    if spec is None:
        spec = MachineSpec(name="generic")
    cluster = Cluster(nranks, spec, seed=seed)
    results = cluster.run(program, program_kwargs=dict(program_kwargs))
    return cluster, results
