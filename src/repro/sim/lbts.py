"""LBTS (lower-bound-on-timestamp) bookkeeping for the sharded engine.

Conservative parallel discrete-event simulation advances each partition
("shard") only through a *safe window*: events strictly before

    LBTS = min_i (T_i) + L

may execute without waiting, where ``T_i`` is shard *i*'s next pending
event time and ``L`` the global lookahead — the minimum virtual delay any
cross-shard interaction can add (here: the fabric's minimum inter-partition
message latency, see :meth:`repro.sim.network.MachineSpec
.cross_shard_lookahead`). A shard with nothing to send still owes its
peers that promise; the classic protocol carries it as a *null message*
per silent pair per epoch, which is what prevents the deadlock of
everyone waiting for everyone (Chandy/Misra/Bryant).

:class:`LbtsController` is the pure, engine-agnostic core: it computes the
window bound, enforces its monotonicity, and accounts epochs, per-epoch
cross-shard traffic and the null messages the silent pairs would carry.
The :class:`~repro.sim.engine.ShardedEngine` drives it once per window;
unit tests drive it directly with synthetic clocks.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.util.errors import SimulationError


def lbts_bound(next_times: Sequence[float], lookahead: float) -> float:
    """The safe-window bound for one epoch.

    ``next_times`` holds each shard's next pending event time (``inf`` for
    an idle shard). Every event strictly before the returned bound is safe
    to execute: no shard can create work for another below it, because any
    cross-shard effect costs at least ``lookahead`` of virtual time.
    """
    if not next_times:
        raise SimulationError("lbts_bound needs at least one shard")
    if lookahead < 0:
        raise SimulationError(f"negative lookahead {lookahead!r}")
    return min(next_times) + lookahead


class LbtsController:
    """Window/epoch accounting for one sharded run.

    The controller never schedules anything itself; it answers "how far is
    it safe to run?" and tallies what the distributed exchange would carry:

    * ``epochs`` — windows opened so far.
    * ``null_messages`` — per epoch, every ordered shard pair that moved
      no real message owes a null message carrying its LBTS promise.
    * ``max_window`` / ``total_span`` — window-width statistics (how much
      parallel slack the lookahead actually buys).
    """

    def __init__(self, nshards: int, lookahead: float):
        if nshards < 1:
            raise SimulationError(f"nshards must be >= 1, got {nshards}")
        if lookahead < 0:
            raise SimulationError(f"negative lookahead {lookahead!r}")
        self.nshards = nshards
        self.lookahead = lookahead
        self.lbts = -math.inf
        self.epochs = 0
        self.null_messages = 0
        self.max_window = 0.0
        self.total_span = 0.0
        self._window_start = 0.0
        self._pairs: set[tuple[int, int]] = set()

    def note_traffic(self, src_shard: int, dst_shard: int) -> None:
        """Record one real cross-shard message inside the current epoch."""
        if src_shard != dst_shard:
            self._pairs.add((src_shard, dst_shard))

    def _settle_epoch(self, upto: float) -> None:
        if self.epochs == 0:
            return
        total_pairs = self.nshards * (self.nshards - 1)
        self.null_messages += total_pairs - len(self._pairs)
        self._pairs.clear()
        span = upto - self._window_start
        if span > self.max_window:
            self.max_window = span
        if math.isfinite(span):
            self.total_span += span

    def open_window(self, next_time: float) -> float:
        """Close the current epoch and open the next safe window.

        ``next_time`` is the globally earliest pending event time (the min
        over shards' ``T_i``); the new window covers ``[next_time,
        next_time + lookahead)``. The bound never moves backwards — that
        would mean an event was created in a closed epoch, i.e. a
        conservative-protocol violation — and violations raise rather than
        silently corrupt the schedule.
        """
        bound = next_time + self.lookahead
        if bound < self.lbts:
            raise SimulationError(
                f"LBTS moved backwards ({bound} < {self.lbts}): an event "
                "violated the conservative lookahead guarantee"
            )
        self._settle_epoch(next_time)
        self._window_start = next_time
        self.epochs += 1
        self.lbts = bound
        return bound

    def finish(self, now: float) -> None:
        """Settle the final (possibly still-open) epoch at end of run."""
        self._settle_epoch(now if now > self._window_start else self._window_start)

    def stats(self) -> dict:
        return {
            "epochs": self.epochs,
            "null_messages": self.null_messages,
            "max_window": self.max_window,
            "total_span": self.total_span,
        }

    def live_window(self) -> dict:
        """Point-in-time window state for the live telemetry tap.

        ``bound`` is ``None`` before the first epoch opens (the LBTS
        starts at ``-inf``, which JSON cannot carry).
        """
        return {
            "start": self._window_start,
            "bound": self.lbts if math.isfinite(self.lbts) else None,
            "lookahead": self.lookahead,
        }
