"""Discrete-event simulated cluster.

The simulator executes one Python thread per simulated process ("image"),
but hands the CPU to exactly one thread at a time under the control of a
virtual clock, so runs are fully deterministic. Communication layers
(:mod:`repro.mpi`, :mod:`repro.gasnet`) charge modeled costs to the clock
while performing real data movement between NumPy buffers, so applications
compute verifiable answers *and* produce modeled performance numbers.
"""

from repro.sim.cluster import Cluster, RankCtx
from repro.sim.engine import Engine, Proc, ShardedEngine
from repro.sim.lbts import LbtsController, lbts_bound
from repro.sim.memory import MemoryMeter
from repro.sim.network import MachineSpec, NetFabric
from repro.sim.profiler import Profiler
from repro.sim.shard import (
    ShardFallbackWarning,
    ShardPlan,
    plan_shards,
    shards_from_env,
)
from repro.sim.sync import Channel, SimEvent

__all__ = [
    "Channel",
    "Cluster",
    "Engine",
    "LbtsController",
    "MachineSpec",
    "MemoryMeter",
    "NetFabric",
    "Proc",
    "Profiler",
    "RankCtx",
    "ShardFallbackWarning",
    "ShardPlan",
    "ShardedEngine",
    "SimEvent",
    "lbts_bound",
    "plan_shards",
    "shards_from_env",
]
