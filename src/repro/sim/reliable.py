"""Reliable delivery over a faulty fabric: ack / timeout / retransmit.

The fabric's fault plan may drop, corrupt, duplicate or reorder messages
(:mod:`repro.sim.faults`). :class:`ReliableTransport` restores exactly-once
delivery on top of it, the way every reliable link layer does:

* each (src, dst) pair carries a monotone **sequence number** per message;
* the receiver tracks delivered sequence numbers as a cumulative low-water
  mark plus a small out-of-order set (compacted as gaps fill, so state
  stays O(reordering window) instead of growing with every message) and
  silently discards duplicates (fabric-injected or retransmission-induced);
* every arrival is **acknowledged** with a small message (acks ride the
  same faulty fabric and can themselves be lost);
* the sender retransmits on a virtual-time timeout with **exponential
  backoff plus seeded jitter** (desynchronizing retry storms while keeping
  the run deterministic), giving up after ``max_retries``: a peer that
  never acks is presumed dead, and the transport reports it through
  :attr:`ReliableTransport.on_give_up` so the failure-notification layer
  can mark the rank failed (the same ``ImageFailedError`` path an injected
  crash takes) instead of the run hanging in silent retries forever.

The transport is installed on the fabric by ``Cluster(reliable=True)`` and
used by layers that call ``fabric.send(..., reliable=True)``; with no
transport installed those calls degrade to plain transfers, keeping the
default path untouched.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import NetFabric


class ReliableTransport:
    """Per-fabric reliable-delivery state and counters."""

    #: Modeled wire overhead of the sequence-number header on data frames.
    HEADER_BYTES = 12
    #: Modeled size of an acknowledgement frame.
    ACK_BYTES = 16

    def __init__(
        self,
        fabric: "NetFabric",
        *,
        base_timeout: float = 100e-6,
        backoff: float = 2.0,
        max_retries: int = 10,
        jitter: float = 0.25,
        rng=None,
    ):
        self.fabric = fabric
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        #: Fractional retry-timeout jitter: each interval is scaled by a
        #: uniform draw from [1 - jitter, 1 + jitter]. Zero (or no rng)
        #: restores pure exponential backoff.
        self.jitter = jitter
        self._rng = rng
        #: Called as ``on_give_up(src, dst)`` when ``max_retries``
        #: retransmissions to ``dst`` all went unacknowledged. The cluster
        #: installs a hook that declares ``dst`` failed.
        self.on_give_up: Callable[[int, int], None] | None = None
        self._next_seq: dict[tuple[int, int], int] = {}
        # Per-pair [low_water, out_of_order]: every seq <= low_water was
        # delivered; out_of_order holds delivered seqs above the mark.
        self._delivered: dict[tuple[int, int], list] = {}
        # -- counters (the ablation's "measured retry overhead") ----------
        self.sends = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.duplicates_filtered = 0
        self.gave_up = 0

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        *,
        rx_extra: float = 0.0,
    ) -> float:
        """Deliver ``on_delivered`` exactly once at ``dst``, retrying as needed.

        Returns ``inf``: unlike a raw transfer, the eventual delivery time
        is unknowable at send time.
        """
        fabric = self.fabric
        engine = fabric.engine
        pair = (src, dst)
        seq = self._next_seq.get(pair, 0)
        self._next_seq[pair] = seq + 1
        self.sends += 1
        wire = nbytes + self.HEADER_BYTES
        # Scale the first timeout with the frame's own serialization so
        # large payloads are not declared lost while still on the wire.
        ser = (wire + fabric.spec.header_bytes) / fabric.spec.bandwidth
        timeout0 = self.base_timeout + 4.0 * ser
        state = {"acked": False, "attempts": 0}

        def on_ack() -> None:
            state["acked"] = True

        def deliver() -> None:
            seen = self._delivered.setdefault(pair, [-1, set()])
            pending = seen[1]
            if seq <= seen[0] or seq in pending:
                self.duplicates_filtered += 1
            else:
                pending.add(seq)
                while seen[0] + 1 in pending:
                    seen[0] += 1
                    pending.remove(seen[0])
                on_delivered()
            # Ack every arrival, duplicates included: the ack for an
            # earlier copy may itself have been lost.
            self.acks_sent += 1
            fabric.transfer(dst, src, self.ACK_BYTES, on_ack)

        def attempt() -> None:
            if state["acked"] or fabric.engine._finished:
                return
            n = state["attempts"]
            if n > self.max_retries:
                self.gave_up += 1
                if self.on_give_up is not None:
                    self.on_give_up(src, dst)
                return
            state["attempts"] = n + 1
            if n:
                self.retransmits += 1
            fabric.transfer(src, dst, wire, deliver, rx_extra=rx_extra)
            interval = timeout0 * (self.backoff**n)
            if self._rng is not None and self.jitter:
                interval *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
            engine.call_in(interval, attempt)

        attempt()
        return math.inf
