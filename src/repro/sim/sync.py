"""Synchronization primitives built on the engine's block/wake protocol.

Because scheduling is cooperative (nothing runs between a check and the
subsequent block), these primitives need no locks; they only need to keep
their waiter lists consistent.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any

from repro.sim import irhook as _irhook
from repro.sim.engine import Proc


class SimEvent:
    """A one-shot level-triggered flag processes can wait on.

    Optionally carries a value set at fire time (used for completion
    handles that deliver data, e.g. fetched RMA results).
    """

    def __init__(self, label: str = "event"):
        self.label = label
        self.is_set = False
        self.value: Any = None
        self._waiters: list[Proc] = []
        self._callbacks: list[Callable[[], None]] = []

    def fire(self, value: Any = None) -> None:
        """Set the flag, wake every waiter and run subscribed callbacks. Idempotent."""
        if self.is_set:
            return
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_fire(self)
        self.is_set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc.wake()
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb()

    def subscribe(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` when the event fires (immediately if already set)."""
        if self.is_set:
            cb()
        else:
            self._callbacks.append(cb)

    def wait(self, proc: Proc) -> Any:
        """Block ``proc`` until the flag is set; returns the fired value."""
        while not self.is_set:
            self._waiters.append(proc)
            proc.block(f"wait({self.label})")
            if proc in self._waiters:  # woken by someone else's stale wake
                self._waiters.remove(proc)
        rec = _irhook.RECORDER
        if rec is not None:
            # Recorded at wait *exit*: the op's id order is live completion
            # order, which is how replay re-resolves same-time wake races.
            rec.on_wait_event(self)
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimEvent {self.label} set={self.is_set}>"


class Counter:
    """A waitable monotone counter (CAF events are counting semaphores)."""

    def __init__(self, label: str = "counter", initial: int = 0):
        self.label = label
        self.count = initial
        self._waiters: list[Proc] = []
        self._next_callbacks: list[Callable[[], None]] = []

    def add(self, n: int = 1) -> None:
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_add(self, n)
        self.count += n
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc.wake()
        callbacks, self._next_callbacks = self._next_callbacks, []
        for cb in callbacks:
            cb()

    def subscribe_next(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` once, on the next :meth:`add` (of any amount)."""
        self._next_callbacks.append(cb)

    def wait_geq(self, proc: Proc, threshold: int, reason: str | None = None) -> None:
        """Block until ``count >= threshold`` (does not consume)."""
        while self.count < threshold:
            self._waiters.append(proc)
            proc.block(reason or f"wait_geq({self.label}, {threshold})")
            if proc in self._waiters:
                self._waiters.remove(proc)
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_wait_geq(self, threshold)

    def take(self, proc: Proc, n: int = 1) -> None:
        """Block until ``count >= n`` then subtract ``n`` (consuming wait)."""
        # Open-coded wait_geq so recording sees one atomic check-and-consume
        # op (the recheck-or-repark race between contending takers must
        # replay as a unit); block reason string is unchanged.
        while self.count < n:
            self._waiters.append(proc)
            proc.block(f"wait_geq({self.label}, {n})")
            if proc in self._waiters:
                self._waiters.remove(proc)
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_take(self, n)
        self.count -= n


class Channel:
    """An unbounded FIFO mailbox with blocking, optionally filtered, receive."""

    def __init__(self, label: str = "channel"):
        self.label = label
        self._items: deque[Any] = deque()
        self._waiters: list[Proc] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_chan_put(self, item)
        self._items.append(item)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc.wake()

    def try_get(self, match: Callable[[Any], bool] | None = None) -> tuple[bool, Any]:
        """Non-blocking receive of the first item satisfying ``match``."""
        for i, item in enumerate(self._items):
            if match is None or match(item):
                del self._items[i]
                rec = _irhook.RECORDER
                if rec is not None:
                    # Covers both try_get hits and (via the retry loop) every
                    # successful blocking get — recorded at completion with
                    # the matched item's put sequence number.
                    rec.on_chan_get(self, item)
                return True, item
        return False, None

    def get(self, proc: Proc, match: Callable[[Any], bool] | None = None) -> Any:
        """Blocking receive of the first (FIFO) item satisfying ``match``."""
        while True:
            ok, item = self.try_get(match)
            if ok:
                return item
            self._waiters.append(proc)
            proc.block(f"get({self.label})")
            if proc in self._waiters:
                self._waiters.remove(proc)
