"""Deterministic fault injection for the simulated fabric.

A :class:`FaultPlan` is a seeded program of misbehavior: per-message drop /
duplicate / delay / corruption decisions drawn from one
:func:`repro.util.rng.rank_rng` stream, plus scheduled image crashes
(``kill rank r at virtual time t``). The engine's event ordering is
deterministic, so :meth:`FaultPlan.draw` is consulted in a reproducible
sequence and the whole faulty run replays bit-for-bit from its seed.

Fault semantics at the fabric (:meth:`repro.sim.network.NetFabric.transfer`):

* **drop** — the message charges NIC occupancy as usual but its delivery
  callback never runs (the bytes die on the wire).
* **corrupt** — modeled as a checksummed link: the receiver detects the
  damage and discards the message, so behaviorally a drop that is counted
  separately. User payload bytes are never silently flipped; that keeps
  delivered == correct, which is what lets the reliable layer guarantee
  exactly-once semantics by retransmission alone.
* **duplicate** — the delivery callback runs twice, the second time a
  jittered interval after the first (a retransmitted-but-not-lost frame).
* **delay** — extra latency added *after* the per-pair FIFO clamp, so a
  delayed message can be overtaken by later traffic (genuine reordering).

A plan instance is stateful (it owns the RNG cursor): build a fresh one
per run, or call :meth:`reset` to rewind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SimulationError
from repro.util.rng import rank_rng


@dataclass(frozen=True)
class FaultDecision:
    """What the plan ruled for one message. ``None`` fields mean "no"."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0
    duplicate_lag: float = 0.0

    @property
    def discard(self) -> bool:
        """True when the delivery callback must not run (drop or corrupt)."""
        return self.drop or self.corrupt

    @property
    def kind(self) -> str:
        if self.drop:
            return "drop"
        if self.corrupt:
            return "corrupt"
        if self.duplicate:
            return "duplicate"
        if self.extra_delay:
            return "delay"
        return "clean"


_CLEAN = FaultDecision()


@dataclass(frozen=True)
class FaultEvent:
    """One non-clean ruling, pinned to its position in the message stream.

    ``index`` is the value of the plan's ``drawn`` cursor when the ruling
    was made: the engine consults the plan in deterministic order, so a
    recorded event replays onto the *same* message when fed back through a
    :class:`ScriptedFaultPlan`.
    """

    index: int
    src: int
    dst: int
    nbytes: int
    decision: FaultDecision

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "src": self.src,
            "dst": self.dst,
            "nbytes": self.nbytes,
            "kind": self.decision.kind,
            "extra_delay": self.decision.extra_delay,
            "duplicate_lag": self.decision.duplicate_lag,
        }

    @staticmethod
    def from_dict(d: dict) -> "FaultEvent":
        kind = d["kind"]
        decision = FaultDecision(
            drop=kind == "drop",
            corrupt=kind == "corrupt",
            duplicate=kind == "duplicate",
            extra_delay=float(d.get("extra_delay", 0.0)),
            duplicate_lag=float(d.get("duplicate_lag", 0.0)),
        )
        return FaultEvent(
            index=int(d["index"]),
            src=int(d["src"]),
            dst=int(d["dst"]),
            nbytes=int(d["nbytes"]),
            decision=decision,
        )


@dataclass
class FaultPlan:
    """A seeded, deterministic program of fabric faults and image crashes.

    Parameters
    ----------
    seed:
        Seeds the single fault RNG stream (independent of application and
        simulator streams; see :func:`repro.util.rng.rank_rng`).
    drop_rate, corrupt_rate, dup_rate, delay_rate:
        Per-message probabilities in [0, 1]; their sum must not exceed 1
        (one message suffers at most one fault).
    delay_jitter:
        Maximum extra delay (seconds) for a delayed message; the actual
        value is uniform in (0, delay_jitter].
    dup_lag:
        Maximum spacing (seconds) between a duplicate's two deliveries.
    crashes:
        ``[(rank, virtual_time), ...]`` image-kill events, delivered
        through the engine by :class:`repro.sim.cluster.Cluster`.
    record:
        When True, every non-clean ruling is appended to :attr:`events` as
        a :class:`FaultEvent`. A recorded run can then be replayed — and
        delta-debugged — through a :class:`ScriptedFaultPlan` built from
        any subset of those events.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_jitter: float = 50e-6
    dup_lag: float = 10e-6
    crashes: list[tuple[int, float]] = field(default_factory=list)
    record: bool = False

    # counters (what the plan actually did this run)
    drawn: int = field(default=0, init=False)
    #: Non-clean rulings recorded this run (``record=True`` only).
    events: list[FaultEvent] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        rates = (self.drop_rate, self.corrupt_rate, self.dup_rate, self.delay_rate)
        if any(r < 0 or r > 1 for r in rates):
            raise SimulationError(f"fault rates must be in [0, 1], got {rates}")
        if sum(rates) > 1.0:
            raise SimulationError(
                f"fault rates sum to {sum(rates)} > 1; a message suffers at "
                "most one fault"
            )
        if self.delay_jitter < 0 or self.dup_lag < 0:
            raise SimulationError("delay_jitter and dup_lag must be non-negative")
        for rank, when in self.crashes:
            if when < 0:
                raise SimulationError(f"crash time must be non-negative, got {when}")
            if rank < 0:
                raise SimulationError(f"crash rank must be non-negative, got {rank}")
        self.reset()

    def reset(self) -> None:
        """Rewind the RNG so the same instance can replay identically."""
        self._rng = rank_rng(self.seed, 0, "faults")
        self.drawn = 0
        self.events = []

    def check_ranks(self, nranks: int) -> None:
        """Validate every scheduled crash against the cluster size.

        Called by :class:`~repro.sim.cluster.Cluster` at construction —
        before crash events are seeded into the engine, which under a
        sharded run also assigns each crash to the dying rank's shard.
        :meth:`draw` stays shard-agnostic on purpose: the fabric consults
        the plan in global executed-event order, which the sharded
        engine's merged dispatch preserves, so one RNG cursor serves every
        shard without forking the fault stream.
        """
        for rank, _when in self.crashes:
            if not 0 <= rank < nranks:
                raise SimulationError(
                    f"crash rank {rank} out of range [0, {nranks})"
                )

    @property
    def active(self) -> bool:
        """Whether any per-message fault can ever fire (crashes aside)."""
        return (
            self.drop_rate + self.corrupt_rate + self.dup_rate + self.delay_rate
        ) > 0.0

    def draw(self, src: int, dst: int, nbytes: int) -> FaultDecision:
        """Rule on one message. Called by the fabric once per transfer, in
        deterministic engine order."""
        index = self.drawn
        self.drawn += 1
        if not self.active:
            return _CLEAN
        decision = self._decide()
        if self.record and decision is not _CLEAN:
            self.events.append(FaultEvent(index, src, dst, nbytes, decision))
        return decision

    def _decide(self) -> FaultDecision:
        u = self._rng.random()
        edge = self.drop_rate
        if u < edge:
            return FaultDecision(drop=True)
        edge += self.corrupt_rate
        if u < edge:
            return FaultDecision(corrupt=True)
        edge += self.dup_rate
        if u < edge:
            lag = self.dup_lag * max(self._rng.random(), 1e-3)
            return FaultDecision(duplicate=True, duplicate_lag=lag)
        edge += self.delay_rate
        if u < edge:
            extra = self.delay_jitter * max(self._rng.random(), 1e-3)
            return FaultDecision(extra_delay=extra)
        return _CLEAN


class ScriptedFaultPlan(FaultPlan):
    """A fault plan that replays an explicit list of :class:`FaultEvent`.

    Unlike the stochastic parent, the ruling for message *i* is looked up
    in a table; every message without an entry is clean. This is what the
    delta-debugging minimizer runs candidate subsets through: removing an
    event never perturbs the ruling of any other message, so each
    candidate is a faithful partial replay of the recorded run.
    """

    def __init__(
        self,
        events: list[FaultEvent] = (),
        *,
        crashes: list[tuple[int, float]] | None = None,
        record: bool = False,
    ):
        self._decisions = {e.index: e.decision for e in events}
        self.scripted_events = list(events)
        super().__init__(crashes=list(crashes or []), record=record)

    @property
    def active(self) -> bool:
        return bool(self._decisions)

    def reset(self) -> None:
        self.drawn = 0
        self.events = []

    def _decide(self) -> FaultDecision:  # pragma: no cover - not used
        raise SimulationError("scripted plans do not draw from an RNG")

    def draw(self, src: int, dst: int, nbytes: int) -> FaultDecision:
        index = self.drawn
        self.drawn += 1
        decision = self._decisions.get(index, _CLEAN)
        if self.record and decision is not _CLEAN:
            self.events.append(FaultEvent(index, src, dst, nbytes, decision))
        return decision
