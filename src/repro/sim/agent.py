"""Worker agents: daemon processes that execute queued work items.

A :class:`WorkerAgent` models a library progress thread: it shares the
owning rank's machine parameters but has its own virtual timeline, so work
it performs overlaps with the rank's main computation — which is the whole
point of nonblocking collectives and asynchronous CAF operations.

Work items run strictly FIFO, one at a time, on the agent's process.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.sim.cluster import RankCtx
from repro.sim.engine import Proc
from repro.sim.sync import Channel, SimEvent


class AgentCtx:
    """A rank context whose ``proc`` is the agent's process.

    Communication layers charge their software overheads to ``ctx.proc``;
    handing them this context makes the agent pay instead of the user
    thread.
    """

    def __init__(self, base: RankCtx, proc: Proc):
        self.cluster = base.cluster
        self.rank = base.rank
        self.nranks = base.nranks
        self.proc = proc
        self.engine = base.engine
        self.fabric = base.fabric
        self.spec = base.spec
        self.profiler = base.profiler
        self.memory = base.memory
        self.sanitizer = base.sanitizer
        self.metrics = base.metrics
        self.rng = base.rng

    @property
    def now(self) -> float:
        return self.engine.now

    def profile(self, category: str):
        return self.profiler.region(self.rank, category)


class WorkerAgent:
    """One rank's FIFO work executor (a modeled progress thread)."""

    def __init__(self, base_ctx: RankCtx, name: str):
        self.base_ctx = base_ctx
        self._queue: Channel = Channel(f"{name}.queue")
        self._proc = base_ctx.engine.spawn(self._loop, name=name, daemon=True)
        self.ctx = AgentCtx(base_ctx, self._proc)
        self.items_executed = 0

    def submit(self, work: Callable[[AgentCtx], Any]) -> SimEvent:
        """Queue ``work(agent_ctx)``; the returned event fires with its
        result when the agent completes it."""
        done = SimEvent("agent-work")
        self._queue.put((work, done))
        return done

    def _loop(self, proc: Proc) -> None:
        while True:
            work, done = self._queue.get(proc, match=None)
            result = work(self.ctx)
            self.items_executed += 1
            done.fire(result)
