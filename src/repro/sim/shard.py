"""Rank partitioning and OS-process fan-out for the sharded engine.

``REPRO_SIM_SHARDS=N`` (or ``Cluster(shards=N)`` / ``run_caf(shards=N)``)
partitions the simulated ranks into ``N`` contiguous shards and runs the
conservative windowed dispatcher (:class:`repro.sim.engine.ShardedEngine`)
over them, gated exactly like ``REPRO_SIM_FASTPATH``: unset means off, and
the sequential dispatcher stays the measured baseline.

Partitioning policy
-------------------
Shards are contiguous rank blocks, aligned to node boundaries whenever the
machine has at least as many nodes as shards. Alignment decides the
*lookahead* — the minimum virtual delay any cross-shard message can incur:

* node-aligned boundaries: every cross-shard message crosses the wire, so
  the lookahead is the spec's inter-node ``latency``;
* a boundary inside a node: two shards share a loopback path, so the
  lookahead floor drops to ``min(latency, loopback_latency)``;
* a non-positive lookahead (a zero-latency spec) leaves no safe window at
  all — the plan falls back to a single shard with a
  :class:`ShardFallbackWarning` rather than run an unsound protocol.

OS worker processes
-------------------
Simulated rank state is a single shared object graph (coarrays, AM boards,
delivery closures), so one run's shards execute in one address space; the
multi-core element is run-level: :func:`run_app_config` is a spawn-safe,
module-level worker that builds and runs a complete configuration from a
picklable dict, and :func:`run_configs_parallel` fans a batch of such
configurations out across OS worker processes (``multiprocessing`` spawn
context, one fresh interpreter per config). The equivalence suite and the
shard-scale benchmark use it to run the sequential baseline and the
sharded runs side by side and cross-check their digests.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.util.errors import SimulationError


class ShardFallbackWarning(UserWarning):
    """A sharded run fell back to one shard (no usable lookahead)."""


def shards_from_env() -> int:
    """Parse ``REPRO_SIM_SHARDS`` (unset/empty means 1, i.e. sequential)."""
    raw = os.environ.get("REPRO_SIM_SHARDS", "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        raise SimulationError(
            f"REPRO_SIM_SHARDS must be an integer, got {raw!r}"
        ) from None
    if n < 1:
        raise SimulationError(f"REPRO_SIM_SHARDS must be >= 1, got {n}")
    return n


@dataclass(frozen=True)
class ShardPlan:
    """A fixed partition of ``nranks`` ranks into contiguous shards."""

    nshards: int
    nranks: int
    #: Per-shard ``[lo, hi)`` world-rank bounds, in shard order.
    bounds: tuple[tuple[int, int], ...]
    #: ``owner[rank]`` -> shard index; length ``nranks``.
    owner: tuple[int, ...]
    #: Minimum virtual delay of any cross-shard interaction (seconds).
    lookahead: float
    #: True when every shard boundary falls on a node boundary.
    node_aligned: bool

    @property
    def is_sharded(self) -> bool:
        return self.nshards > 1

    def shard_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise SimulationError(
                f"rank {rank} out of range [0, {self.nranks})"
            )
        return self.owner[rank]

    def sizes(self) -> list[int]:
        """Ranks per shard, in shard order (telemetry/report labeling)."""
        return [hi - lo for lo, hi in self.bounds]

    def describe(self) -> dict:
        """JSON-able summary (embedded in obs RunReports)."""
        return {
            "nshards": self.nshards,
            "nranks": self.nranks,
            "bounds": [list(b) for b in self.bounds],
            "lookahead": self.lookahead,
            "node_aligned": self.node_aligned,
        }


def plan_shards(nranks: int, spec, nshards: int) -> ShardPlan:
    """Build the shard plan for ``nranks`` ranks on ``spec``.

    ``nshards`` is clamped to ``[1, nranks]``. When the derived lookahead
    is non-positive the plan falls back to a single shard and warns
    (:class:`ShardFallbackWarning`) — with no safe window the conservative
    protocol degenerates to sequential execution anyway.
    """
    if nranks <= 0:
        raise SimulationError(f"nranks must be positive, got {nranks}")
    if nshards < 1:
        raise SimulationError(f"nshards must be >= 1, got {nshards}")
    nshards = min(nshards, nranks)
    rpn = spec.ranks_per_node
    nnodes = -(-nranks // rpn)
    if nshards <= nnodes:
        # Balanced node blocks: boundaries land on node multiples.
        cuts = [
            min((i * nnodes // nshards) * rpn, nranks)
            for i in range(nshards + 1)
        ]
        cuts[-1] = nranks
    else:
        cuts = [i * nranks // nshards for i in range(nshards + 1)]
    bounds = tuple(
        (cuts[i], cuts[i + 1]) for i in range(nshards)
    )
    node_aligned = all(lo % rpn == 0 for lo, _hi in bounds)
    lookahead = spec.cross_shard_lookahead(node_aligned)
    if nshards > 1 and lookahead <= 0:
        warnings.warn(
            f"REPRO_SIM_SHARDS={nshards} requested but spec {spec.name!r} "
            f"yields lookahead {lookahead!r} <= 0 (a zero-latency pair "
            "leaves no safe window); falling back to a single shard",
            ShardFallbackWarning,
            stacklevel=2,
        )
        return plan_shards(nranks, spec, 1)
    owner = [0] * nranks
    for shard, (lo, hi) in enumerate(bounds):
        for r in range(lo, hi):
            owner[r] = shard
    return ShardPlan(
        nshards=nshards,
        nranks=nranks,
        bounds=bounds,
        owner=tuple(owner),
        lookahead=lookahead if nshards > 1 else 0.0,
        node_aligned=node_aligned,
    )


# -- spawn-safe run workers --------------------------------------------------
#
# Everything below must stay importable at module top level (the spawn
# start method pickles ``run_app_config`` by qualified name) and must only
# exchange plain JSON-able dicts with the parent.

#: Apps the worker can run, resolved by name so configs stay picklable.
WORKER_APPS = {
    "randomaccess": ("repro.apps.randomaccess", "run_randomaccess"),
    "fft": ("repro.apps.fft", "run_fft"),
    "cgpop": ("repro.apps.cgpop", "run_cgpop"),
}


def run_app_config(config: dict) -> dict:
    """Run one app configuration and return a JSON-able summary.

    ``config`` keys: ``app`` (a :data:`WORKER_APPS` name), ``nranks``,
    optional ``backend`` (default ``mpi``), ``platform`` (a
    :mod:`repro.platforms` name; default the generic spec), ``shards``
    (int or None for env gating), ``kwargs`` (forwarded to the app), and
    ``env`` (environment overrides such as ``REPRO_SIM_DIGEST`` — applied
    to this process, which is why this function is meant for spawn
    workers; in-process callers should set the environment themselves).

    The summary carries the determinism fingerprints the equivalence
    suite compares: the global ``order_digest``, per-shard digests, the
    virtual makespan (exact — floats survive pickling bit-for-bit),
    executed event counts and the engine's shard statistics. It also
    reports ``wall_s`` (measured in-child around the run itself, so a
    spawn-per-measurement benchmark sees neither interpreter start-up
    nor any state accumulated by earlier runs) and ``figures`` (the
    scalar fields of the rank-0 app result, e.g. GUPS or GFLOP/s).
    """
    import dataclasses
    import importlib
    import time

    for key, value in config.get("env", {}).items():
        os.environ[key] = value
    app_name = config["app"]
    if app_name not in WORKER_APPS:
        raise SimulationError(
            f"unknown worker app {app_name!r}; choose from {sorted(WORKER_APPS)}"
        )
    mod_name, fn_name = WORKER_APPS[app_name]
    app = getattr(importlib.import_module(mod_name), fn_name)
    from repro.caf.program import run_caf
    from repro.sim.network import MachineSpec

    platform = config.get("platform")
    if platform is None:
        spec = MachineSpec(name="generic")
    else:
        from repro.platforms import PLATFORMS

        spec = PLATFORMS[platform]
    t0 = time.perf_counter()
    run = run_caf(
        app,
        config["nranks"],
        spec,
        backend=config.get("backend", "mpi"),
        shards=config.get("shards"),
        digest_partition=config.get("digest_partition"),
        **config.get("kwargs", {}),
    )
    wall = time.perf_counter() - t0
    engine = run.cluster.engine
    plan = run.cluster.shard_plan
    stats = engine.shard_stats() if plan is not None else None
    result = run.results[0]
    figures = {
        key: value
        for key, value in dataclasses.asdict(result).items()
        if isinstance(value, (int, float))
    }
    return {
        "app": app_name,
        "nranks": config["nranks"],
        "backend": config.get("backend", "mpi"),
        "shards": plan.nshards if plan is not None else 1,
        "digest": engine.order_digest(),
        "shard_digests": engine.shard_digests(),
        "makespan": run.elapsed,
        "wall_s": wall,
        "figures": figures,
        "events": engine.events_executed,
        "profiler_totals": {
            cat: run.profiler.total(cat) for cat in run.profiler.categories()
        },
        "shard_stats": stats,
    }


def run_configs_parallel(
    configs: list[dict], *, processes: int | None = None
) -> list[dict]:
    """Run configurations across OS worker processes (spawn context).

    Each config gets a fresh interpreter, so environment overrides and
    engine state never leak between runs — and on a multi-core host the
    batch genuinely executes in parallel. Results come back in input
    order.
    """
    if not configs:
        return []
    import multiprocessing

    nproc = processes or min(len(configs), os.cpu_count() or 1)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=max(1, nproc)) as pool:
        return pool.map(run_app_config, configs)
