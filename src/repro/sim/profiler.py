"""Per-rank virtual-time category accounting.

Regenerates the paper's HPCToolkit-style time decompositions (Figures 4
and 8): each rank attributes its elapsed virtual time to the innermost
active category (``computation``, ``coarray_write``, ``event_wait``,
``event_notify``, ``alltoall``, ...). Accounting is *exclusive*: entering a
nested region pauses the parent region's clock.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sim.engine import Engine


class Profiler:
    def __init__(self, engine: Engine, nranks: int, tracer=None):
        self.engine = engine
        self.nranks = nranks
        self.tracer = tracer
        self.times: list[dict[str, float]] = [{} for _ in range(nranks)]
        self.counts: list[dict[str, int]] = [{} for _ in range(nranks)]
        # Per rank: stack of [category, segment_start] with the top segment open.
        self._stack: list[list[list]] = [[] for _ in range(nranks)]

    def _charge_top(self, rank: int) -> None:
        stack = self._stack[rank]
        if stack:
            cat, start = stack[-1]
            self.times[rank][cat] = (
                self.times[rank].get(cat, 0.0) + self.engine.now - start
            )
            stack[-1][1] = self.engine.now

    @contextmanager
    def region(self, rank: int, category: str):
        """Attribute enclosed virtual time on ``rank`` to ``category``."""
        self.counts[rank][category] = self.counts[rank].get(category, 0) + 1
        self._charge_top(rank)
        entered = self.engine.now
        self._stack[rank].append([category, entered])
        try:
            yield
        finally:
            self._charge_top(rank)
            self._stack[rank].pop()
            if self._stack[rank]:
                self._stack[rank][-1][1] = self.engine.now
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.record(
                    "region", rank, entered, self.engine.now, category=category
                )

    def total(self, category: str) -> float:
        """Sum of ``category`` time across all ranks."""
        return sum(t.get(category, 0.0) for t in self.times)

    def rank_total(self, rank: int, category: str) -> float:
        return self.times[rank].get(category, 0.0)

    def mean(self, category: str) -> float:
        return self.total(category) / self.nranks

    def categories(self) -> list[str]:
        cats: set[str] = set()
        for t in self.times:
            cats.update(t)
        return sorted(cats)

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank time for every category (the figures' bar segments)."""
        return {c: self.mean(c) for c in self.categories()}
