"""Per-rank virtual-time category accounting.

Regenerates the paper's HPCToolkit-style time decompositions (Figures 4
and 8): each rank attributes its elapsed virtual time to the innermost
active category (``computation``, ``coarray_write``, ``event_wait``,
``event_notify``, ``alltoall``, ...). Accounting is *exclusive*: entering a
nested region pauses the parent region's clock.
"""

from __future__ import annotations

from repro.sim.engine import Engine


class _Region:
    """Reentrant-safe region context manager.

    A plain ``__slots__`` class instead of a ``@contextmanager`` generator:
    entering/leaving a region is on the simulator's per-operation hot path
    (every modeled sleep is wrapped in one), and the generator protocol
    costs several calls plus a frame per use.
    """

    __slots__ = ("profiler", "rank", "category", "entered")

    def __init__(self, profiler: Profiler, rank: int, category: str):
        self.profiler = profiler
        self.rank = rank
        self.category = category

    def __enter__(self) -> None:
        prof = self.profiler
        rank = self.rank
        category = self.category
        counts = prof.counts[rank]
        counts[category] = counts.get(category, 0) + 1
        prof._charge_top(rank)
        self.entered = prof.engine.now
        prof._stack[rank].append([category, self.entered])

    def __exit__(self, *exc: object) -> None:
        prof = self.profiler
        rank = self.rank
        prof._charge_top(rank)
        stack = prof._stack[rank]
        stack.pop()
        now = prof.engine.now
        if stack:
            stack[-1][1] = now
        tracer = prof.tracer
        if tracer is not None and tracer.enabled:
            tracer.record("region", rank, self.entered, now, category=self.category)


class Profiler:
    def __init__(self, engine: Engine, nranks: int, tracer=None):
        self.engine = engine
        self.nranks = nranks
        self.tracer = tracer
        self.times: list[dict[str, float]] = [{} for _ in range(nranks)]
        self.counts: list[dict[str, int]] = [{} for _ in range(nranks)]
        # Per rank: stack of [category, segment_start] with the top segment open.
        self._stack: list[list[list]] = [[] for _ in range(nranks)]

    def _charge_top(self, rank: int) -> None:
        stack = self._stack[rank]
        if stack:
            cat, start = stack[-1]
            now = self.engine.now
            times = self.times[rank]
            times[cat] = times.get(cat, 0.0) + now - start
            stack[-1][1] = now

    def region(self, rank: int, category: str) -> _Region:
        """Attribute enclosed virtual time on ``rank`` to ``category``."""
        return _Region(self, rank, category)

    def sleep_in(self, rank: int, proc, category: str, duration: float) -> None:
        """``with region(rank, category): proc.sleep(duration)``, unrolled.

        Semantically identical to the region form (same accounting, same
        trace record); exists because charging a modeled compute/overhead
        sleep is the single most frequent profiler operation.
        """
        counts = self.counts[rank]
        counts[category] = counts.get(category, 0) + 1
        self._charge_top(rank)
        entered = self.engine.now
        stack = self._stack[rank]
        stack.append([category, entered])
        try:
            proc.sleep(duration)
        finally:
            self._charge_top(rank)
            stack.pop()
            now = self.engine.now
            if stack:
                stack[-1][1] = now
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.record("region", rank, entered, now, category=category)

    def total(self, category: str) -> float:
        """Sum of ``category`` time across all ranks."""
        return sum(t.get(category, 0.0) for t in self.times)

    def rank_total(self, rank: int, category: str) -> float:
        return self.times[rank].get(category, 0.0)

    def mean(self, category: str) -> float:
        return self.total(category) / self.nranks

    def categories(self) -> list[str]:
        cats: set[str] = set()
        for t in self.times:
            cats.update(t)
        return sorted(cats)

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank time for every category (the figures' bar segments)."""
        return {c: self.mean(c) for c in self.categories()}
