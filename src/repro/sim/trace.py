"""Event tracing: a timeline of what the simulated machine did.

Disabled by default (zero overhead beyond a flag check); enable with
``Cluster.tracer.enable()`` or ``run_caf(..., trace=True)``. While
enabled, the fabric records every transfer and the profiler records every
region, giving an HPCToolkit-trace-like view that the paper's §4 analyses
were produced from.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import format_table


@dataclass(frozen=True)
class TraceEvent:
    kind: str  # "transfer", "region", or library-defined
    rank: int  # acting rank (src for transfers)
    t0: float
    t1: float
    detail: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    def __init__(self) -> None:
        self.enabled = False
        self.events: list[TraceEvent] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, kind: str, rank: int, t0: float, t1: float, **detail: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(kind, rank, t0, t1, detail))

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def summary(self) -> dict[str, int]:
        return dict(TallyCounter(e.kind for e in self.events))

    def bytes_transferred(self) -> int:
        return sum(e.detail.get("nbytes", 0) for e in self.of_kind("transfer"))

    def to_text(self, limit: int | None = 50) -> str:
        """A readable, time-ordered dump of (up to ``limit``) events."""
        events = sorted(self.events, key=lambda e: (e.t0, e.rank))
        if limit is not None:
            events = events[:limit]
        rows = [
            [
                f"{e.t0 * 1e6:.2f}",
                f"{e.duration * 1e6:.2f}",
                e.rank,
                e.kind,
                ", ".join(f"{k}={v}" for k, v in sorted(e.detail.items())),
            ]
            for e in events
        ]
        return format_table(
            ["t (us)", "dur (us)", "rank", "kind", "detail"],
            rows,
            title=f"trace: {len(self.events)} events"
            + (f" (showing {len(events)})" if limit is not None else ""),
        )

    # -- export ------------------------------------------------------------

    def to_chrome_trace_events(self) -> list[dict[str, Any]]:
        """The trace as Chrome/Perfetto Trace Event Format objects.

        Each event becomes a complete ("X") event: ``ts``/``dur`` in
        microseconds, ``pid``/``tid`` the acting rank (so the viewer draws
        one track per rank), detail fields under ``args``. Process-name
        metadata ("M") events label each track ``rank N`` in the viewer.
        """
        out: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": r,
                "args": {"name": f"rank {r}"},
            }
            for r in sorted({e.rank for e in self.events})
        ]
        for e in sorted(self.events, key=lambda e: (e.t0, e.rank)):
            args = {
                k: v if isinstance(v, (int, float, str, bool)) else repr(v)
                for k, v in sorted(e.detail.items())
            }
            out.append(
                {
                    "name": e.detail.get("label", e.kind),
                    "cat": e.kind,
                    "ph": "X",
                    "ts": e.t0 * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": e.rank,
                    "tid": e.rank,
                    "args": args,
                }
            )
        return out

    def to_chrome_trace(self, path: str) -> int:
        """Write the trace as Chrome/Perfetto JSON (open in ``ui.perfetto.dev``
        or ``chrome://tracing``). Returns the number of events written."""
        events = self.to_chrome_trace_events()
        payload = {"traceEvents": events, "displayTimeUnit": "ns"}
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return len(events)
