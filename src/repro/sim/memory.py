"""Runtime-resident memory accounting (Figure 1).

Each communication runtime registers its modeled allocations (base
footprint, per-peer eager buffers, segment metadata, window buffers...)
against a per-rank ledger, so an application that initializes both MPI and
GASNet shows the duplicated footprint the paper measures.
"""

from __future__ import annotations

from repro.util.errors import SimulationError

MB = 1024 * 1024


class MemoryMeter:
    def __init__(self, nranks: int):
        self.nranks = nranks
        self._ledgers: list[dict[str, float]] = [{} for _ in range(nranks)]

    def alloc(self, rank: int, label: str, nbytes: float) -> None:
        if nbytes < 0:
            raise SimulationError(f"negative allocation {nbytes} for {label!r}")
        ledger = self._ledgers[rank]
        ledger[label] = ledger.get(label, 0.0) + nbytes

    def free(self, rank: int, label: str, nbytes: float) -> None:
        ledger = self._ledgers[rank]
        have = ledger.get(label, 0.0)
        if nbytes > have + 1e-9:
            raise SimulationError(
                f"freeing {nbytes} of {label!r} on rank {rank} but only {have} allocated"
            )
        remaining = have - nbytes
        if remaining <= 1e-9:
            ledger.pop(label, None)
        else:
            ledger[label] = remaining

    def rank_bytes(self, rank: int, prefix: str = "") -> float:
        return sum(
            v for k, v in self._ledgers[rank].items() if k.startswith(prefix)
        )

    def rank_mb(self, rank: int, prefix: str = "") -> float:
        return self.rank_bytes(rank, prefix) / MB

    def max_rank_mb(self, prefix: str = "") -> float:
        """Largest per-rank footprint — what the paper's Figure 1 plots."""
        return max(self.rank_mb(r, prefix) for r in range(self.nranks))

    def labels(self, rank: int) -> dict[str, float]:
        return dict(self._ledgers[rank])
