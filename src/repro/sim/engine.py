"""Deterministic discrete-event engine with thread-backed processes.

Design
------
* The scheduler owns a heap of ``(time, seq, callback)`` events and a
  virtual clock. ``seq`` is a monotone counter so ties break
  deterministically in scheduling order.
* Each simulated process (:class:`Proc`) runs user code on its own OS
  thread, but the engine guarantees **exactly one thread runs at a time**:
  the scheduler releases a process's semaphore to resume it and then blocks
  on its own control semaphore until the process yields back (by blocking
  or finishing). This gives plain blocking-style user code, determinism,
  and free atomicity for all simulator state.
* A process yields with :meth:`Proc.block` and is resumed by
  :meth:`Proc.wake`, which schedules a resume event at the waker's current
  time. :meth:`Proc.sleep` advances the process's local time, which is how
  modeled compute/communication costs are charged. Every block carries a
  generation number; resume events for an older generation are ignored, so
  a process can never be resumed by a stale wake-up.
* Because scheduling is cooperative, nothing can run between a process
  registering itself in a wait list and blocking — lost wake-ups cannot
  happen as long as wakers only wake registered waiters.
* When the event heap empties while live processes remain blocked, the
  engine raises :class:`~repro.util.errors.DeadlockError` naming each
  blocked process's call site — the hazard of Figure 2 of the paper.
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Callable
from typing import Any

from repro.util.errors import DeadlockError, SimTimeoutError, SimulationError


class _Killed(BaseException):
    """Raised inside a process thread to unwind it during engine teardown.

    Derives from ``BaseException`` so user ``except Exception`` blocks cannot
    swallow it.
    """


class Proc:
    """A simulated process: user code plus scheduling state.

    The target callable receives this object (usually wrapped in a richer
    per-rank context) and may only interact with the engine while it is the
    running process.
    """

    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"

    def __init__(
        self,
        engine: Engine,
        pid: int,
        target: Callable[[Proc], Any],
        name: str,
        daemon: bool = False,
    ):
        self.engine = engine
        self.pid = pid
        self.name = name
        #: Daemon processes (library progress agents) may outlive the
        #: program: they neither block run() completion nor count as
        #: deadlocked when everything else finishes.
        self.daemon = daemon
        self.state = Proc.NEW
        self.block_reason = "not started"
        #: Virtual time this process last resumed execution — the watchdog
        #: and deadlock diagnostics report it so a hung rank can be told
        #: apart from a slow one.
        self.last_progress = 0.0
        #: Set by :meth:`_crash`: the process was killed mid-run by an
        #: injected image-crash event (not normal teardown).
        self.crashed = False
        self.result: Any = None
        self._target = target
        self._sem = threading.Semaphore(0)
        self._killed = False
        self._gen = 0  # generation of the current block; stale resumes are ignored
        self._wake_payload: Any = None
        self._thread = threading.Thread(
            target=self._run, name=f"sim-{name}", daemon=True
        )

    # -- scheduler side -------------------------------------------------

    def _start(self) -> None:
        self._thread.start()
        self.engine.call_at(self.engine.now, lambda: self._resume(0))

    def _resume(self, gen: int) -> None:
        """Hand the baton to this process and wait for it to yield back."""
        if self.state == Proc.DONE or gen != self._gen:
            return
        self.state = Proc.RUNNING
        self.last_progress = self.engine.now
        self.engine._current = self
        san = self.engine.sanitizer
        if san is not None and self.pid < san.nranks:
            san.tick(self.pid)
        self._sem.release()
        self.engine._control.acquire()
        self.engine._current = None

    def _kill(self) -> None:
        if self.state == Proc.DONE:
            return
        self._killed = True
        self._sem.release()
        self._thread.join()

    def _crash(self) -> None:
        """Kill this process mid-run (an injected image crash).

        Must be called from scheduler context while the process is parked
        (blocked or awaiting a resume), which injected crash events always
        are. The dying thread's ``finally`` releases the engine's control
        semaphore once as it unwinds; nobody is waiting on that release, so
        re-acquire it here to keep the scheduler handshake balanced.
        """
        if self.state == Proc.DONE:
            return
        self.crashed = True
        self._killed = True
        self._sem.release()
        self._thread.join()
        self.engine._control.acquire()

    # -- process side ---------------------------------------------------

    def _run(self) -> None:
        self._sem.acquire()  # wait for the initial resume
        if self._killed:
            self.state = Proc.DONE
            self.engine._control.release()
            return
        try:
            self.result = self._target(self)
        except _Killed:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            # A crashed process may explode in user ``finally`` blocks while
            # unwinding; those secondary failures are part of the injected
            # crash, not program bugs, so only live processes report.
            if not self._killed and self.engine._failure is None:
                self.engine._failure = exc
        finally:
            self.state = Proc.DONE
            self.engine._control.release()

    def _yield_to_scheduler(self) -> None:
        self.engine._control.release()
        self._sem.acquire()
        if self._killed:
            raise _Killed
        self.state = Proc.RUNNING

    def block(self, reason: str) -> Any:
        """Yield until some other party calls :meth:`wake`.

        The caller must have registered itself with whatever structure will
        eventually wake it *before* blocking. Returns the payload passed to
        ``wake``.
        """
        self._check_running("block")
        self._gen += 1
        self.state = Proc.BLOCKED
        self.block_reason = reason
        self._yield_to_scheduler()
        payload, self._wake_payload = self._wake_payload, None
        return payload

    def wake(self, payload: Any = None) -> None:
        """Schedule this process to resume at the engine's current time.

        A wake targets the process's *current* block; if the process blocks
        again before the resume event fires, the stale resume is ignored
        (the waker must wake it again through the new wait structure).
        """
        if self.state == Proc.DONE and self._killed:
            # A crashed (or torn-down) process may still sit in waiter
            # lists; dropping the wake lets survivors carry on.
            return
        if self.state != Proc.BLOCKED:
            raise SimulationError(f"wake() on non-blocked {self!r}")
        self._wake_payload = payload
        gen = self._gen
        self.engine.call_at(self.engine.now, lambda: self._resume(gen))

    def sleep(self, duration: float) -> None:
        """Advance this process's local (virtual) time by ``duration``."""
        self._check_running("sleep")
        if duration < 0:
            raise SimulationError(f"cannot sleep for negative time {duration!r}")
        if duration == 0:
            return
        self._gen += 1
        gen = self._gen
        self.state = Proc.BLOCKED
        self.block_reason = f"sleep({duration:g})"
        self.engine.call_at(self.engine.now + duration, lambda: self._resume(gen))
        self._yield_to_scheduler()

    def _check_running(self, op: str) -> None:
        if self.engine._current is not self:
            raise SimulationError(
                f"{op}() called from outside the running process "
                f"(current={self.engine._current}, self={self})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proc {self.pid} {self.name!r} {self.state}>"


class Engine:
    """Event heap, virtual clock and process registry."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.procs: list[Proc] = []
        self._control = threading.Semaphore(0)
        self._current: Proc | None = None
        #: Attached by :class:`~repro.sim.cluster.Cluster` when sanitizing;
        #: every scheduling point of a rank process ticks its vector clock.
        self.sanitizer = None
        self._failure: BaseException | None = None
        self._ran = False
        self._finished = False

    # -- construction ---------------------------------------------------

    def spawn(
        self,
        target: Callable[[Proc], Any],
        name: str | None = None,
        *,
        daemon: bool = False,
    ) -> Proc:
        """Register a new process.

        Before :meth:`run`, the process starts at virtual time 0. During a
        run (e.g. a library spawning a progress agent), it starts at the
        current virtual time. Daemon processes neither hold the run open
        nor count as deadlocked.
        """
        if self._finished:
            raise SimulationError("cannot spawn after the engine has finished")
        pid = len(self.procs)
        proc = Proc(self, pid, target, name or f"proc{pid}", daemon=daemon)
        self.procs.append(proc)
        if self._ran:
            proc._start()
        return proc

    # -- event heap -----------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` to run in scheduler context at virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={self.now})"
            )
        heapq.heappush(self._heap, (when, self._seq, fn))
        self._seq += 1

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    # -- main loop ------------------------------------------------------

    def run(self, *, deadline: float | None = None) -> None:
        """Run until all processes finish. Must be called from the creating thread.

        ``deadline`` is a virtual-time watchdog: if the next event lies
        beyond it while non-daemon processes remain unfinished, the run
        aborts with :class:`SimTimeoutError` instead of spinning through
        (say) an unbounded retransmission schedule. Daemon-only activity
        past the deadline is not a hang; the run ends quietly.

        Raises
        ------
        DeadlockError
            If the event heap empties while unfinished processes remain.
        SimTimeoutError
            If ``deadline`` is reached with unfinished processes.
        Exception
            Re-raises the first exception raised inside any process.
        """
        if self._ran:
            raise SimulationError("engine can only run once")
        if deadline is not None and deadline < 0:
            raise SimulationError(f"deadline must be non-negative, got {deadline}")
        self._ran = True
        for proc in self.procs:
            proc._start()
        try:
            while self._heap:
                when, _seq, fn = heapq.heappop(self._heap)
                if deadline is not None and when > deadline:
                    blocked = self._blocked_report()
                    if not blocked:
                        break  # only daemon housekeeping remains
                    self.now = deadline
                    raise SimTimeoutError(
                        deadline, blocked, last_progress=self._progress_report()
                    )
                self.now = when
                fn()
                if self._failure is not None:
                    raise self._failure
            blocked = self._blocked_report()
            if blocked:
                raise DeadlockError(
                    blocked, now=self.now, last_progress=self._progress_report()
                )
        finally:
            self._finished = True
            for proc in self.procs:
                proc._kill()

    def _blocked_report(self) -> dict[int, str]:
        """Per-rank call-site of every unfinished, non-daemon process."""
        return {
            p.pid: p.block_reason
            for p in self.procs
            if p.state != Proc.DONE and not p.daemon
        }

    def _progress_report(self) -> dict[int, float]:
        return {
            p.pid: p.last_progress
            for p in self.procs
            if p.state != Proc.DONE and not p.daemon
        }

    def unfinished(self) -> list[Proc]:
        return [p for p in self.procs if p.state != Proc.DONE]
