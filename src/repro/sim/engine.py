"""Deterministic discrete-event engine with pluggable process substrates.

Design
------
* The engine owns a priority queue of ``(time, seq, event)`` entries and a
  virtual clock. ``seq`` is a monotone counter so ties break
  deterministically in scheduling order. Events are either plain callbacks
  or :class:`_Resume` tokens naming a process and the block generation they
  target.
* Each simulated process (:class:`Proc`) runs user code on its own fiber
  (an OS thread by default, a greenlet when ``REPRO_SIM_SUBSTRATE=greenlet``),
  but the engine guarantees **exactly one fiber runs at a time**. This gives
  plain blocking-style user code, determinism, and free atomicity for all
  simulator state.
* A process yields with :meth:`Proc.block` and is resumed by
  :meth:`Proc.wake`, which schedules a resume event at the waker's current
  time. :meth:`Proc.sleep` advances the process's local time, which is how
  modeled compute/communication costs are charged. Every block carries a
  generation number; resume events for an older generation are ignored, and
  duplicate wakes of the same generation are dropped at the call site
  without allocating an event.
* Because scheduling is cooperative, nothing can run between a process
  registering itself in a wait list and blocking — lost wake-ups cannot
  happen as long as wakers only wake registered waiters.
* When the event queue empties while live processes remain blocked, the
  engine raises :class:`~repro.util.errors.DeadlockError` naming each
  blocked process's call site — the hazard of Figure 2 of the paper.

Fast path vs. legacy scheduler
------------------------------
The default dispatcher (the *fast path*) has no scheduler thread: whichever
fiber holds the baton runs the dispatch loop itself. Generic callbacks
execute inline on the current OS thread; when the next event is a resume of
another process the baton is handed over directly (one context switch
instead of the legacy round trip's two), and when a process sleeps with no
earlier pending event it simply advances the clock and keeps running (zero
switches, no heap traffic). Same-time events bypass the heap through a FIFO
``_due`` deque, merged with the heap by ``(time, seq)`` so the executed
event order is *bit-identical* to the legacy scheduler's.

``REPRO_SIM_FASTPATH=0`` selects the legacy dispatcher — a dedicated
scheduler loop that round-trips through ``threading.Semaphore`` pairs for
every resume — kept as the measured baseline for the wall-clock perf
harness and as a cross-check that fast paths never alter virtual time.

Invariant: every wall-clock optimization here changes *how fast* the host
executes the schedule, never *which* schedule is executed. Virtual times,
event order (see :meth:`Engine.order_digest`), profiler totals and figure
outputs are identical across dispatchers and substrates.
"""

from __future__ import annotations

import _thread
import heapq
import os
import struct
import threading
from collections import deque
from collections.abc import Callable
from typing import Any

from repro.sim import irhook as _irhook
from repro.util.errors import DeadlockError, SimTimeoutError, SimulationError

try:  # optional substrate; never required
    import greenlet as _greenlet_mod  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised only without greenlet
    _greenlet_mod = None

#: Event-order digest record: (virtual time, pid) — pid is -1 for callbacks.
_pack_order = struct.Struct("<dq").pack


class _Killed(BaseException):
    """Raised inside a process fiber to unwind it during engine teardown.

    Derives from ``BaseException`` so user ``except Exception`` blocks cannot
    swallow it.
    """


class _Resume:
    """A scheduled resume of ``proc``, valid only for block generation ``gen``."""

    __slots__ = ("proc", "gen")

    def __init__(self, proc: Proc, gen: int):
        self.proc = proc
        self.gen = gen


class Proc:
    """A simulated process: user code plus scheduling state.

    The target callable receives this object (usually wrapped in a richer
    per-rank context) and may only interact with the engine while it is the
    running process.
    """

    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"

    def __init__(
        self,
        engine: Engine,
        pid: int,
        target: Callable[[Proc], Any],
        name: str,
        daemon: bool = False,
    ):
        self.engine = engine
        self.pid = pid
        self.name = name
        #: Owning shard (always 0 under the sequential engine). Set at
        #: creation from the engine's spawn context so the very first
        #: resume can already be routed (see ShardedEngine.spawn).
        self.shard = engine._spawn_shard
        #: Daemon processes (library progress agents) may outlive the
        #: program: they neither block run() completion nor count as
        #: deadlocked when everything else finishes.
        self.daemon = daemon
        self.state = Proc.NEW
        self.block_reason = "not started"
        #: Virtual time this process last resumed execution — the watchdog
        #: and deadlock diagnostics report it so a hung rank can be told
        #: apart from a slow one.
        self.last_progress = 0.0
        #: Set by :meth:`_crash`: the process was killed mid-run by an
        #: injected image-crash event (not normal teardown).
        self.crashed = False
        self.result: Any = None
        self._target = target
        self._killed = False
        self._gen = 0  # generation of the current block; stale resumes are ignored
        #: Generation for which a resume event is already scheduled; wakes
        #: targeting the same generation are dropped at the call site.
        self._woken_gen = -1
        self._wake_payload: Any = None
        if engine._greenlet:
            self._glet: Any = None  # created lazily in _start (needs greenlet)
        elif engine._fastpath:
            # Raw lock as a pre-locked baton: park = acquire, resume = release.
            # ~5x cheaper than threading.Semaphore's pure-python Condition.
            self._baton = _thread.allocate_lock()
            self._baton.acquire()
            self._thread = threading.Thread(
                target=self._run, name=f"sim-{name}", daemon=True
            )
        else:
            self._sem = threading.Semaphore(0)
            self._thread = threading.Thread(
                target=self._run, name=f"sim-{name}", daemon=True
            )

    # -- scheduler side -------------------------------------------------

    def _start(self) -> None:
        eng = self.engine
        if eng._greenlet:
            # Parent is the main greenlet so a normally-dying fiber returns
            # control to run(); killers re-parent before throwing.
            self._glet = _greenlet_mod.greenlet(self._glet_run, eng._main_glet)
        else:
            self._thread.start()
        eng._schedule_resume(eng.now, self, 0)

    def _legacy_resume(self) -> None:
        """Legacy dispatcher: hand the baton over and wait for it back."""
        engine = self.engine
        engine._make_running(self)
        self._sem.release()
        engine._control.acquire()
        engine._current = None

    def _kill(self) -> None:
        """Engine-teardown kill: unwind the fiber and wait for it to die."""
        if self.state == Proc.DONE:
            return
        self._killed = True
        eng = self.engine
        if eng._greenlet:
            if self._glet is not None and not self._glet.dead:
                self._glet.parent = _greenlet_mod.getcurrent()
                self._glet.throw(_Killed)
            self.state = Proc.DONE
        elif eng._fastpath:
            self._baton.release()
            self._thread.join()
        else:
            self._sem.release()
            self._thread.join()

    def _crash(self) -> None:
        """Kill this process mid-run (an injected image crash).

        Must be called from dispatcher context while the process is parked
        (blocked or awaiting a resume), which injected crash events always
        are. Under the legacy dispatcher the dying thread's ``finally``
        releases the engine's control semaphore once as it unwinds; nobody
        is waiting on that release, so re-acquire it to keep the scheduler
        handshake balanced. The fast path has no such imbalance: a killed
        fiber neither dispatches nor signals.
        """
        if self.state == Proc.DONE:
            return
        self.crashed = True
        self._killed = True
        eng = self.engine
        if eng._greenlet:
            if self._glet is not None and _greenlet_mod.getcurrent() is self._glet:
                # The crash event fired while this process's own fiber was
                # dispatching (fast path runs callbacks inline). Mark it dead
                # now — wakes and pending resumes are dropped from here on —
                # and let _park unwind the fiber once dispatch hands off.
                self.state = Proc.DONE
                return
            if self._glet is not None and not self._glet.dead:
                # Die back to the killer (which may itself be a proc fiber
                # running a crash callback), not to the main greenlet.
                self._glet.parent = _greenlet_mod.getcurrent()
                self._glet.throw(_Killed)
            self.state = Proc.DONE
        elif eng._fastpath:
            if threading.current_thread() is self._thread:
                self.state = Proc.DONE  # as above: deferred self-kill
                return
            self._baton.release()
            self._thread.join()
        else:
            self._sem.release()
            self._thread.join()
            eng._control.acquire()

    # -- process side ---------------------------------------------------

    def _run(self) -> None:
        eng = self.engine
        fast = eng._fastpath
        if fast:
            self._baton.acquire()  # wait for the initial resume
        else:
            self._sem.acquire()
        if self._killed:
            self.state = Proc.DONE
            if not fast:
                eng._control.release()
            return
        try:
            self.result = self._target(self)
        except _Killed:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            # A crashed process may explode in user ``finally`` blocks while
            # unwinding; those secondary failures are part of the injected
            # crash, not program bugs, so only live processes report.
            if not self._killed and eng._failure is None:
                eng._failure = exc
        finally:
            self.state = Proc.DONE
            if not fast:
                eng._control.release()
            elif not self._killed:
                # Fast path: the dying fiber dispatches whatever comes next
                # (or signals the end of the run) before its thread exits.
                eng._current = None
                nxt = eng._advance()
                if nxt is not None:
                    nxt._baton.release()
                else:
                    eng._end.release()

    def _glet_run(self) -> None:
        eng = self.engine
        try:
            self.result = self._target(self)
        except _Killed:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            if not self._killed and eng._failure is None:
                eng._failure = exc
        finally:
            self.state = Proc.DONE
        if self._killed:
            return  # dies; control passes to the killer via parent
        eng._current = None
        nxt = eng._advance()
        if nxt is not None:
            nxt._glet.switch()
        else:
            eng._main_glet.switch()

    def _yield_to_scheduler(self) -> None:
        """Legacy dispatcher park: two semaphore handoffs per round trip."""
        self.engine._control.release()
        self._sem.acquire()
        if self._killed:
            raise _Killed
        self.state = Proc.RUNNING

    def _park(self) -> None:
        """Fast-path park: run the dispatch loop on this fiber.

        Callbacks execute inline; a self-resume returns without any context
        switch; a resume of another process hands the baton over directly
        (one switch instead of the legacy round trip's two).
        """
        eng = self.engine
        eng._current = None
        nxt = eng._advance()
        if self._killed:
            # An inline crash callback killed *this* fiber while it was
            # dispatching (state is already DONE, so nxt is never self).
            # Hand the baton on, then unwind our own suspended user frames.
            if eng._greenlet:
                cur = _greenlet_mod.getcurrent()
                cur.parent = nxt._glet if nxt is not None else eng._main_glet
            elif nxt is not None:
                nxt._baton.release()
            else:
                eng._end.release()
            raise _Killed
        if nxt is self:
            return
        if eng._greenlet:
            if nxt is not None:
                nxt._glet.switch()
            else:
                eng._main_glet.switch()
            # resumed by a later switch; a kill arrives as _Killed here
        else:
            if nxt is not None:
                nxt._baton.release()
            else:
                eng._end.release()
            self._baton.acquire()
            if self._killed:
                raise _Killed

    def block(self, reason: str) -> Any:
        """Yield until some other party calls :meth:`wake`.

        The caller must have registered itself with whatever structure will
        eventually wake it *before* blocking. Returns the payload passed to
        ``wake``.
        """
        self._check_running("block")
        self._gen += 1
        self.state = Proc.BLOCKED
        self.block_reason = reason
        if self.engine._fastpath:
            self._park()
        else:
            self._yield_to_scheduler()
        payload, self._wake_payload = self._wake_payload, None
        return payload

    def wake(self, payload: Any = None) -> None:
        """Schedule this process to resume at the engine's current time.

        A wake targets the process's *current* block; if the process blocks
        again before the resume event fires, the stale resume is ignored
        (the waker must wake it again through the new wait structure).
        Waking a generation that already has a pending resume is a no-op —
        the duplicate is dropped here, at the call site, without allocating
        an event that the dispatcher would discard later. The duplicate's
        ``payload`` is discarded with it: the *first* wake of a generation
        determines the payload the blocked process receives (the legacy
        scheduler delivered the last one, but no double-wake ever carries
        two distinct payloads in practice — a waker whose payload matters
        must target a fresh block, i.e. a new generation).
        """
        if self.state == Proc.DONE and self._killed:
            # A crashed (or torn-down) process may still sit in waiter
            # lists; dropping the wake lets survivors carry on.
            return
        if self.state != Proc.BLOCKED:
            raise SimulationError(f"wake() on non-blocked {self!r}")
        engine = self.engine
        if self._woken_gen == self._gen:
            engine.stale_wakes_dropped += 1
            return
        self._wake_payload = payload
        engine._schedule_resume(engine.now, self, self._gen)

    def sleep(self, duration: float) -> None:
        """Advance this process's local (virtual) time by ``duration``."""
        self._check_running("sleep")
        if duration < 0:
            raise SimulationError(f"cannot sleep for negative time {duration!r}")
        rec = _irhook.RECORDER
        if rec is not None:
            # Before the zero-duration fast exit: the cost expression may be
            # nonzero under the replay target spec even when it is zero here.
            rec.on_sleep(duration)
        if duration == 0:
            return
        engine = self.engine
        when = engine.now + duration
        if (
            engine._fastpath
            and not engine._due
            and (engine._deadline is None or when <= engine._deadline)
        ):
            heap = engine._heap
            if not heap or heap[0][0] > when:
                # Nothing can run before this sleep ends: advance the clock
                # in place. No event, no heap traffic, no context switch.
                # The executed schedule is identical — the legacy path would
                # pop this resume next with nothing in between.
                self._gen += 1
                engine.now = when
                engine.events_executed += 1
                engine._make_running(self)
                return
        self._gen += 1
        self.state = Proc.BLOCKED
        self.block_reason = f"sleep({duration:g})"
        engine._schedule_resume(when, self, self._gen)
        if engine._fastpath:
            self._park()
        else:
            self._yield_to_scheduler()

    def _check_running(self, op: str) -> None:
        if self.engine._current is not self:
            raise SimulationError(
                f"{op}() called from outside the running process "
                f"(current={self.engine._current}, self={self})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proc {self.pid} {self.name!r} {self.state}>"


class Engine:
    """Event queue, virtual clock and process registry.

    Parameters
    ----------
    fastpath:
        Select the dispatcher. ``None`` (default) reads ``REPRO_SIM_FASTPATH``
        (default on); ``False`` forces the legacy scheduler-thread loop.
    substrate:
        Process substrate: ``"threads"`` (default) or ``"greenlet"``.
        ``None`` reads ``REPRO_SIM_SUBSTRATE``. Both substrates execute
        bit-identical event orders; greenlet needs no OS threads at all.
    """

    def __init__(
        self, *, fastpath: bool | None = None, substrate: str | None = None
    ) -> None:
        if fastpath is None:
            fastpath = os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"
        if substrate is None:
            substrate = os.environ.get("REPRO_SIM_SUBSTRATE", "threads")
        if substrate not in ("threads", "greenlet"):
            raise SimulationError(
                f"unknown process substrate {substrate!r} "
                "(expected 'threads' or 'greenlet')"
            )
        if substrate == "greenlet":
            if _greenlet_mod is None:
                raise SimulationError(
                    "REPRO_SIM_SUBSTRATE=greenlet requested but the greenlet "
                    "package is not installed; use the default threads substrate"
                )
            if not fastpath:
                raise SimulationError(
                    "the greenlet substrate requires the fast-path dispatcher "
                    "(unset REPRO_SIM_FASTPATH=0)"
                )
        self._fastpath = fastpath
        self._greenlet = substrate == "greenlet"
        self.substrate = substrate
        self._heap: list[tuple[float, int, Any]] = []
        #: Same-time events (``when == now``) bypass the heap through this
        #: FIFO; it stays sorted by ``(when, seq)`` because ``now`` never
        #: decreases, and is merged with the heap head on pop.
        self._due: deque[tuple[float, int, Any]] = deque()
        self._seq = 0
        self.now = 0.0
        self.procs: list[Proc] = []
        self._control = threading.Semaphore(0)  # legacy dispatcher handshake
        self._end = _thread.allocate_lock()  # fast path run-over signal
        self._end.acquire()
        self._main_glet: Any = None
        self._current: Proc | None = None
        #: Attached by :class:`~repro.sim.cluster.Cluster` when sanitizing;
        #: every scheduling point of a rank process ticks its vector clock.
        self.sanitizer = None
        #: Attached by the cluster when live telemetry is armed
        #: (:class:`~repro.obs.live.LiveTelemetry`); every executed resume
        #: offers the tap a heartbeat. Same zero-cost-off contract as the
        #: sanitizer: one attribute load plus an ``is None`` test. The
        #: pacing countdown lives here, not on the tap, so the armed cost
        #: is one decrement per event — the tap only sees every
        #: ``check_every``-th resume.
        self.telemetry = None
        self._tel_countdown = 0
        self._failure: BaseException | None = None
        self._ran = False
        self._finished = False
        self._deadline: float | None = None
        self._timeout_info: tuple[dict[int, str], dict[int, float]] | None = None
        #: Executed events (live resumes + callbacks); stale resumes and
        #: dropped wakes are not counted. Identical across dispatchers for
        #: the same program, which is what makes events/sec comparable.
        self.events_executed = 0
        #: Duplicate same-generation wakes dropped at the call site.
        self.stale_wakes_dropped = 0
        #: Shard the next spawned Proc belongs to; the sequential engine
        #: leaves it at 0, ShardedEngine.spawn sets it per process.
        self._spawn_shard = 0
        self._digest: Any = None
        self._shard_digests: list[Any] | None = None
        self._shard_owner: tuple[int, ...] = ()
        if os.environ.get("REPRO_SIM_DIGEST"):
            self.enable_order_digest()

    # -- construction ---------------------------------------------------

    def spawn(
        self,
        target: Callable[[Proc], Any],
        name: str | None = None,
        *,
        daemon: bool = False,
    ) -> Proc:
        """Register a new process.

        Before :meth:`run`, the process starts at virtual time 0. During a
        run (e.g. a library spawning a progress agent), it starts at the
        current virtual time. Daemon processes neither hold the run open
        nor count as deadlocked.
        """
        if self._finished:
            raise SimulationError("cannot spawn after the engine has finished")
        pid = len(self.procs)
        proc = Proc(self, pid, target, name or f"proc{pid}", daemon=daemon)
        self.procs.append(proc)
        if self._ran:
            proc._start()
        return proc

    # -- event-order digest ---------------------------------------------

    def enable_order_digest(self, shard_plan: Any = None) -> None:
        """Start hashing the executed event order (must precede :meth:`run`).

        The digest covers ``(virtual time, pid)`` for every live resume and
        ``(virtual time, -1)`` for every callback, in execution order — the
        determinism fingerprint compared across dispatchers and substrates.
        Also enabled by setting ``REPRO_SIM_DIGEST`` in the environment.

        ``shard_plan`` (a :class:`~repro.sim.shard.ShardPlan`) additionally
        keeps one digest per shard over the resumes of that shard's rank
        processes — the partition-local fingerprint the sharded engine and
        its sequential baseline compare. The global digest is unaffected.
        """
        if self._digest is None:
            import hashlib

            self._digest = hashlib.blake2b(digest_size=16)
        if shard_plan is not None and self._shard_digests is None:
            import hashlib

            self._shard_owner = shard_plan.owner
            self._shard_digests = [
                hashlib.blake2b(digest_size=16)
                for _ in range(shard_plan.nshards)
            ]

    def order_digest(self) -> str | None:
        """Hex digest of the executed event order, or ``None`` if disabled."""
        return self._digest.hexdigest() if self._digest is not None else None

    def shard_digests(self) -> list[str] | None:
        """Per-shard hex digests, or ``None`` when not tracking a plan.

        Shard *k*'s digest hashes ``(virtual time, pid)`` for every
        executed resume of a rank process owned by shard *k*, in execution
        order. It is a pure relabeling of the global digest stream, so a
        sequential engine handed the same plan produces bit-identical
        values — which is exactly the equivalence the shard suite asserts.
        """
        if self._shard_digests is None:
            return None
        return [d.hexdigest() for d in self._shard_digests]

    # -- event queue -----------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` to run in dispatcher context at virtual time ``when``."""
        now = self.now
        if when < now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={now})"
            )
        rec = _irhook.RECORDER
        if rec is not None:
            fn = rec.on_call_at(when - now, fn)
        entry = (when, self._seq, fn)
        self._seq += 1
        if when == now and self._fastpath:
            self._due.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def call_at_shard(
        self, when: float, fn: Callable[[], None], shard: int
    ) -> None:
        """Schedule ``fn`` with an explicit owning shard.

        The sequential engine has a single partition, so ``shard`` is
        ignored here; ShardedEngine overrides this to route the event.
        Callers that know the destination shard (the fabric delivering to
        a rank, the cluster seeding a crash) use this so the one call site
        works under both engines.
        """
        self.call_at(when, fn)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        rec = _irhook.RECORDER
        if rec is not None:
            # Hand the recorder the caller's delay verbatim: call_at only
            # sees the absolute time, and ``(now + delay) - now`` is not
            # bit-identical to ``delay``. Replay re-adds the raw delay,
            # reproducing the live ``now + delay`` arithmetic exactly.
            rec.pending_delay = delay
        self.call_at(self.now + delay, fn)

    def _schedule_resume(self, when: float, proc: Proc, gen: int) -> None:
        proc._woken_gen = gen
        entry = (when, self._seq, _Resume(proc, gen))
        self._seq += 1
        if when == self.now and self._fastpath:
            self._due.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    # -- shared dispatcher pieces ----------------------------------------

    def _make_running(self, proc: Proc) -> None:
        proc.state = Proc.RUNNING
        proc.last_progress = self.now
        self._current = proc
        san = self.sanitizer
        if san is not None and proc.pid < san.nranks:
            san.tick(proc.pid)
        if self._digest is not None:
            self._digest.update(_pack_order(self.now, proc.pid))
            sd = self._shard_digests
            if sd is not None and proc.pid < len(self._shard_owner):
                sd[self._shard_owner[proc.pid]].update(
                    _pack_order(self.now, proc.pid)
                )
        tel = self.telemetry
        if tel is not None:
            # Read-only heartbeat: the tap inspects engine state and writes
            # to its own stream, never schedules — the event order (and so
            # the digest) is bit-identical with telemetry on or off.
            self._tel_countdown -= 1
            if self._tel_countdown <= 0:
                self._tel_countdown = tel.check_every
                tel.tick(self)

    def _advance(self) -> Proc | None:
        """Fast-path dispatch loop: run events until a process must resume.

        Executes callbacks inline on the calling fiber (with no process
        current) and returns the next process to run — already marked
        running — or ``None`` when the run is over (queue drained, deadline
        hit, or a failure recorded).
        """
        if self._failure is not None:
            return None
        heap = self._heap
        due = self._due
        pop = heapq.heappop
        deadline = self._deadline
        digest = self._digest
        while True:
            if due:
                d = due[0]
                if heap:
                    h = heap[0]
                    if h[0] < d[0] or (h[0] == d[0] and h[1] < d[1]):
                        ev = pop(heap)
                    else:
                        ev = due.popleft()
                else:
                    ev = due.popleft()
            elif heap:
                ev = pop(heap)
            else:
                return None
            when = ev[0]
            if deadline is not None and when > deadline:
                blocked = self._blocked_report()
                if blocked:
                    self.now = deadline
                    self._timeout_info = (blocked, self._progress_report())
                return None  # daemon-only activity past the deadline ends quietly
            self.now = when
            fn = ev[2]
            if type(fn) is _Resume:
                proc = fn.proc
                if fn.gen != proc._gen or proc.state == Proc.DONE:
                    continue  # stale resume (re-block or died process)
                self.events_executed += 1
                self._make_running(proc)
                return proc
            self.events_executed += 1
            if digest is not None:
                digest.update(_pack_order(when, -1))
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced from run()
                if self._failure is None:
                    self._failure = exc
            if self._failure is not None:
                return None

    # -- main loop ------------------------------------------------------

    def run(self, *, deadline: float | None = None) -> None:
        """Run until all processes finish. Must be called from the creating thread.

        ``deadline`` is a virtual-time watchdog: if the next event lies
        beyond it while non-daemon processes remain unfinished, the run
        aborts with :class:`SimTimeoutError` instead of spinning through
        (say) an unbounded retransmission schedule. Daemon-only activity
        past the deadline is not a hang; the run ends quietly.

        Raises
        ------
        DeadlockError
            If the event queue empties while unfinished processes remain.
        SimTimeoutError
            If ``deadline`` is reached with unfinished processes.
        Exception
            Re-raises the first exception raised inside any process.
        """
        if self._ran:
            raise SimulationError("engine can only run once")
        if deadline is not None and deadline < 0:
            raise SimulationError(f"deadline must be non-negative, got {deadline}")
        self._ran = True
        self._deadline = deadline
        try:
            if self._greenlet:
                self._main_glet = _greenlet_mod.getcurrent()
            for proc in self.procs:
                proc._start()
            if self._fastpath:
                self._run_fast()
            else:
                self._run_legacy(deadline)
        finally:
            self._finished = True
            for proc in self.procs:
                proc._kill()

    def _run_fast(self) -> None:
        first = self._advance()
        if first is not None:
            if self._greenlet:
                first._glet.switch()  # returns when the run is over
            else:
                first._baton.release()
                self._end.acquire()  # released by whichever fiber ends the run
        if self._timeout_info is not None:
            blocked, progress = self._timeout_info
            raise SimTimeoutError(self._deadline, blocked, last_progress=progress)
        if self._failure is not None:
            raise self._failure
        blocked = self._blocked_report()
        if blocked:
            raise DeadlockError(
                blocked, now=self.now, last_progress=self._progress_report()
            )

    def _run_legacy(self, deadline: float | None) -> None:
        """The pre-fast-path scheduler loop: every event pops here, every
        resume round-trips through a semaphore pair. Kept verbatim as the
        perf baseline and as a determinism cross-check."""
        digest = self._digest
        while self._heap:
            when, _seq, fn = heapq.heappop(self._heap)
            if deadline is not None and when > deadline:
                blocked = self._blocked_report()
                if not blocked:
                    break  # only daemon housekeeping remains
                self.now = deadline
                raise SimTimeoutError(
                    deadline, blocked, last_progress=self._progress_report()
                )
            self.now = when
            if type(fn) is _Resume:
                proc = fn.proc
                if fn.gen == proc._gen and proc.state != Proc.DONE:
                    self.events_executed += 1
                    proc._legacy_resume()
            else:
                self.events_executed += 1
                if digest is not None:
                    digest.update(_pack_order(when, -1))
                fn()
            if self._failure is not None:
                raise self._failure
        blocked = self._blocked_report()
        if blocked:
            raise DeadlockError(
                blocked, now=self.now, last_progress=self._progress_report()
            )

    def _blocked_report(self) -> dict[int, str]:
        """Per-rank call-site of every unfinished, non-daemon process."""
        return {
            p.pid: p.block_reason
            for p in self.procs
            if p.state != Proc.DONE and not p.daemon
        }

    def _progress_report(self) -> dict[int, float]:
        return {
            p.pid: p.last_progress
            for p in self.procs
            if p.state != Proc.DONE and not p.daemon
        }

    def unfinished(self) -> list[Proc]:
        return [p for p in self.procs if p.state != Proc.DONE]


class ShardedEngine(Engine):
    """Conservative windowed dispatcher over a fixed rank partition.

    Gated behind ``REPRO_SIM_SHARDS=N`` (see :mod:`repro.sim.shard`), the
    way ``REPRO_SIM_FASTPATH`` gates the fast path. Every event carries
    its owning shard: resumes belong to their process's shard, fabric
    deliveries to the destination rank's shard (routed through
    :meth:`call_at_shard`), and plain callbacks to the scheduling
    context's shard. Dispatch runs the conservative-PDES window protocol:
    the run is a sequence of *epochs*, each covering the safe window
    ``[T, T + lookahead)`` where ``T`` is the globally earliest pending
    event (the LBTS bound, :mod:`repro.sim.lbts`); cross-shard messages
    are accounted against the epoch they were sent in, and the engine
    asserts the conservative guarantee — a cross-shard delivery never
    lands earlier than ``send time + lookahead`` (violations are counted
    and tested to be zero, not silently absorbed).

    Events still execute in global ``(time, seq)`` order — the windows
    partition that order, they never permute it — so virtual times, the
    global order digest, profiler totals and figure outputs are
    bit-identical to the sequential dispatcher by construction, and the
    per-shard digests factor the same schedule by partition. Rank state
    (coarrays, AM boards, delivery closures) lives in one shared object
    graph, so one run's shards share an address space; OS-process
    parallelism happens at the run level (see
    :func:`repro.sim.shard.run_configs_parallel`).
    """

    def __init__(
        self, plan, *, fastpath: bool | None = None, substrate: str | None = None
    ) -> None:
        super().__init__(fastpath=fastpath, substrate=substrate)
        if not self._fastpath:
            raise SimulationError(
                "REPRO_SIM_SHARDS>1 requires the fast-path dispatcher "
                "(unset REPRO_SIM_FASTPATH=0)"
            )
        if not plan.is_sharded:
            raise SimulationError(
                "ShardedEngine needs a plan with nshards > 1; "
                "use Engine for sequential runs"
            )
        from repro.sim.lbts import LbtsController

        self.plan = plan
        self.nshards = plan.nshards
        self.lbts = LbtsController(plan.nshards, plan.lookahead)
        self._window_end = -float("inf")
        #: Shard owning the event currently dispatching (callback context).
        self._dispatch_shard = 0
        self.events_per_shard = [0] * plan.nshards
        self.cross_messages = 0
        self.cross_bytes = 0
        #: Same-time cross-shard wakes (completion/agreement signals): the
        #: interactions a fully distributed implementation would carry on
        #: a coordinator ack channel because they undercut the lookahead.
        self.coordinator_signals = 0
        #: Cross-shard deliveries below ``send + lookahead`` — must be 0.
        self.lookahead_violations = 0
        if self._digest is not None:
            # REPRO_SIM_DIGEST was read by Engine.__init__ before the plan
            # existed; upgrade to per-shard tracking now.
            self.enable_order_digest(plan)

    def enable_order_digest(self, shard_plan: Any = None) -> None:
        # May fire from Engine.__init__ (REPRO_SIM_DIGEST) before the plan
        # is attached; __init__ re-runs it with the plan right after.
        super().enable_order_digest(
            shard_plan if shard_plan is not None else getattr(self, "plan", None)
        )

    # -- shard routing ---------------------------------------------------

    def _context_shard(self) -> int:
        cur = self._current
        return cur.shard if cur is not None else self._dispatch_shard

    def spawn(
        self,
        target: Callable[[Proc], Any],
        name: str | None = None,
        *,
        daemon: bool = False,
    ) -> Proc:
        """Rank processes land on their plan shard; library agents spawned
        mid-run inherit the spawning context's shard."""
        pid = len(self.procs)
        if pid < self.plan.nranks:
            self._spawn_shard = self.plan.owner[pid]
        else:
            self._spawn_shard = self._context_shard()
        return super().spawn(target, name, daemon=daemon)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        self.call_at_shard(when, fn, self._context_shard())

    def call_at_shard(
        self, when: float, fn: Callable[[], None], shard: int
    ) -> None:
        now = self.now
        if when < now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={now})"
            )
        entry = (when, self._seq, fn, shard)
        self._seq += 1
        if when == now:
            self._due.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def _schedule_resume(self, when: float, proc: Proc, gen: int) -> None:
        proc._woken_gen = gen
        shard = proc.shard
        if shard != self._context_shard() and when == self.now:
            self.coordinator_signals += 1
        entry = (when, self._seq, _Resume(proc, gen), shard)
        self._seq += 1
        if when == self.now:
            self._due.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def note_cross(
        self, src_shard: int, dst_shard: int, nbytes: int, deliver: float
    ) -> None:
        """Fabric hook: one cross-shard message scheduled for ``deliver``."""
        self.cross_messages += 1
        self.cross_bytes += nbytes
        if deliver < self.now + self.plan.lookahead:
            self.lookahead_violations += 1
        self.lbts.note_traffic(src_shard, dst_shard)

    # -- dispatch --------------------------------------------------------

    def _make_running(self, proc: Proc) -> None:
        super()._make_running(proc)
        self.events_per_shard[proc.shard] += 1

    def _advance(self) -> Proc | None:
        """The fast-path dispatch loop plus window bookkeeping.

        Identical pop order to :meth:`Engine._advance` — the merged
        ``(time, seq)`` schedule is what makes sharded runs bit-identical
        to sequential ones — with one extra comparison per event: an event
        at or past the current window bound closes the epoch and opens the
        next safe window at its own time (it is the global minimum, so the
        new LBTS is exactly ``its time + lookahead``).
        """
        if self._failure is not None:
            return None
        heap = self._heap
        due = self._due
        pop = heapq.heappop
        deadline = self._deadline
        digest = self._digest
        while True:
            if due:
                d = due[0]
                if heap:
                    h = heap[0]
                    if h[0] < d[0] or (h[0] == d[0] and h[1] < d[1]):
                        ev = pop(heap)
                    else:
                        ev = due.popleft()
                else:
                    ev = due.popleft()
            elif heap:
                ev = pop(heap)
            else:
                return None
            when = ev[0]
            if when >= self._window_end:
                self._window_end = self.lbts.open_window(when)
            if deadline is not None and when > deadline:
                blocked = self._blocked_report()
                if blocked:
                    self.now = deadline
                    self._timeout_info = (blocked, self._progress_report())
                return None
            self.now = when
            fn = ev[2]
            if type(fn) is _Resume:
                proc = fn.proc
                if fn.gen != proc._gen or proc.state == Proc.DONE:
                    continue
                self.events_executed += 1
                self._make_running(proc)
                return proc
            self.events_executed += 1
            self.events_per_shard[ev[3]] += 1
            self._dispatch_shard = ev[3]
            if digest is not None:
                digest.update(_pack_order(when, -1))
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced from run()
                if self._failure is None:
                    self._failure = exc
            if self._failure is not None:
                return None

    def run(self, *, deadline: float | None = None) -> None:
        try:
            super().run(deadline=deadline)
        finally:
            self.lbts.finish(self.now)

    def shard_stats(self) -> dict:
        """JSON-able protocol statistics (embedded in obs RunReports)."""
        stats = dict(self.plan.describe())
        stats.update(self.lbts.stats())
        stats.update(
            events_per_shard=list(self.events_per_shard),
            cross_messages=self.cross_messages,
            cross_bytes=self.cross_bytes,
            coordinator_signals=self.coordinator_signals,
            lookahead_violations=self.lookahead_violations,
        )
        return stats
