"""Fusion: Argonne InfiniBand QDR cluster (Table 1).

320 nodes, 2x4 cores, 36 GB/node, InfiniBand QDR, MVAPICH2-1.9.

Calibration targets (from the paper's Fusion results):

* CAF-GASNet beats CAF-MPI on fine-grained RandomAccess by a small
  constant factor below 128 cores (GASNet RMA per-op overhead < MVAPICH2
  RMA per-op overhead).
* GASNet enables its Shared Receive Queue at >=128 processes, producing
  the Figure 3 performance drop; MVAPICH2's SRQ effect is not observable.
* ``MPI_WIN_FLUSH_ALL`` cost grows linearly with process count when the
  epoch has activity (Figure 4's ~200 s of ``event_notify``).
"""

from repro.sim.network import MachineSpec

FUSION = MachineSpec(
    name="fusion",
    # Fabric: IB QDR, one rank per simulated node (the paper's runs span
    # nodes; intra-node effects are not what its figures measure).
    latency=1.3e-6,
    bandwidth=3.2e9,
    header_bytes=64,
    loopback_latency=3.0e-7,
    ranks_per_node=1,
    # CPU: 2.6 GHz Xeon, ~4 flops/cycle/core.
    flops_per_sec=9.0e9,
    mem_copy_bw=6.0e9,
    # MPI (MVAPICH2-1.9): hardware RMA but heavier per-op software path
    # than GASNet's.
    mpi_p2p_overhead=0.7e-6,
    mpi_match_overhead=0.3e-6,
    mpi_rma_overhead=1.4e-6,
    mpi_atomic_overhead=1.8e-6,
    mpi_flush_overhead=0.6e-6,
    mpi_flush_all_per_target=0.45e-6,
    mpi_flush_all_idle=0.6e-6,
    mpi_coll_overhead=0.9e-6,
    mpi_eager_threshold=8192,
    mpi_rma_over_sendrecv=False,
    # GASNet (ibv conduit): lean RDMA path, SRQ at 128 procs.
    gasnet_put_overhead=0.6e-6,
    gasnet_get_overhead=0.6e-6,
    gasnet_am_overhead=0.6e-6,
    gasnet_handler_overhead=0.5e-6,
    gasnet_poll_overhead=0.15e-6,
    gasnet_srq_threshold=128,
    gasnet_srq_penalty=5.0e-6,
    gasnet_coll_signal="put",  # ibv conduit: RDMA flag signalling
    # Memory model (Figure 1: 16/64/256 procs -> GASNet 26/34/39 MB,
    # MPI 107/109/115 MB).
    mpi_mem_base_mb=106.5,
    mpi_mem_per_rank_mb=0.033,
    gasnet_mem_base_mb=13.0,
    gasnet_mem_log_mb=3.25,
    gasnet_mem_nosrq_per_rank_mb=0.05,
)
