"""Edison: NERSC Cray XC30 (Table 1).

5200 nodes, 2x12 cores, 64 GB/node, Aries interconnect, CRAY-MPICH-6.0.2.

Calibration targets (paper's Edison microbenchmarks, ops/second):

* CAF-GASNet READ ~385k (2.6 us), WRITE ~500k (2.0 us), NOTIFY ~655k.
* CAF-MPI READ/WRITE ~207k (4.8 us) — Cray MPI implemented RMA over
  send/recv internally at the time (``mpi_rma_over_sendrecv``), the
  paper's explanation for CAF-MPI's larger RandomAccess loss (Figure 5).
* CAF-MPI NOTIFY ~700k — Cray's FLUSH_ALL fast-path on an idle epoch plus
  a cheap ISEND is slightly *faster* than GASNet's AM path.
* All-to-all at 32 procs: hand-rolled GASNet ~24k/s beats MPI ~12k/s
  (lower per-op overhead), crossing over by ~128 procs as incast and
  handler costs bite.
"""

from repro.sim.network import MachineSpec

EDISON = MachineSpec(
    name="edison",
    # Aries dragonfly: low latency, high bandwidth.
    latency=0.65e-6,
    bandwidth=8.0e9,
    header_bytes=64,
    loopback_latency=2.0e-7,
    ranks_per_node=1,
    # 2.4 GHz Ivy Bridge.
    flops_per_sec=19.0e9,
    mem_copy_bw=10.0e9,
    # Cray MPICH 6.0.2: excellent two-sided/collectives, send/recv-backed RMA.
    mpi_p2p_overhead=0.5e-6,
    mpi_match_overhead=0.5e-6,
    mpi_rma_overhead=1.0e-6,
    mpi_atomic_overhead=1.3e-6,
    mpi_flush_overhead=0.5e-6,
    mpi_flush_all_per_target=0.3e-6,
    mpi_flush_all_idle=0.9e-6,
    mpi_coll_overhead=0.5e-6,
    mpi_eager_threshold=8192,
    mpi_rma_over_sendrecv=True,
    mpi_sendrecv_rma_extra=1.6e-6,
    # GASNet aries conduit: very lean one-sided path, no SRQ on Aries.
    gasnet_put_overhead=0.55e-6,
    gasnet_get_overhead=1.1e-6,
    gasnet_am_overhead=0.5e-6,
    gasnet_handler_overhead=1.9e-6,
    gasnet_poll_overhead=0.1e-6,
    gasnet_srq_threshold=None,
    gasnet_srq_penalty=0.0,
    gasnet_coll_signal="put",
    gasnet_am_credits=32,
    # Memory model: same runtime stacks, larger base segments.
    mpi_mem_base_mb=106.5,
    mpi_mem_per_rank_mb=0.033,
    gasnet_mem_base_mb=13.0,
    gasnet_mem_log_mb=3.25,
    gasnet_mem_nosrq_per_rank_mb=0.05,
)
