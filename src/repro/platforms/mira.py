"""Mira: Argonne IBM Blue Gene/Q (the microbenchmark dataset's platform).

Calibration targets (paper's Mira microbenchmarks, ops/second, flat in P):

* CAF-GASNet READ ~266k (3.8 us), WRITE ~210k (4.8 us), NOTIFY ~97k.
* CAF-MPI READ ~61k (16.3 us), WRITE ~51k (19.6 us) — MPICH-on-PAMI RMA
  had a heavy software path on BG/Q.
* CAF-MPI NOTIFY ~90k (11 us): dominated by the (idle) FLUSH_ALL walk.
* All-to-all: MPI_ALLTOALL vastly outperforms the hand-rolled GASNet
  version (24k/s vs 3.7k/s at 16 cores, 60x at 4096).
"""

from repro.sim.network import MachineSpec

MIRA = MachineSpec(
    name="mira",
    # BG/Q 5-D torus: moderate latency, 2 GB/s per link.
    latency=1.4e-6,
    bandwidth=1.8e9,
    header_bytes=32,
    loopback_latency=4.0e-7,
    ranks_per_node=1,
    # 1.6 GHz PowerPC A2, 4-wide FPU.
    flops_per_sec=6.0e9,
    mem_copy_bw=4.0e9,
    # MPICH on PAMI: heavy RMA software path.
    mpi_p2p_overhead=1.0e-6,
    mpi_match_overhead=0.5e-6,
    mpi_rma_overhead=13.0e-6,
    mpi_atomic_overhead=14.0e-6,
    mpi_flush_overhead=3.5e-6,
    mpi_flush_all_per_target=0.5e-6,
    mpi_flush_all_idle=9.0e-6,
    mpi_coll_overhead=1.2e-6,
    mpi_eager_threshold=4096,
    mpi_rma_over_sendrecv=False,
    # GASNet pami conduit.
    gasnet_put_overhead=1.8e-6,
    gasnet_get_overhead=0.7e-6,
    gasnet_am_overhead=1.0e-6,
    gasnet_handler_overhead=13.0e-6,  # NOTIFY rate is target-bound on BG/Q
    gasnet_poll_overhead=0.2e-6,
    gasnet_srq_threshold=None,  # no SRQ concept on BG/Q
    gasnet_srq_penalty=0.0,
    gasnet_coll_signal="am",  # pami conduit: AM-based signalling
    mpi_mem_base_mb=106.5,
    mpi_mem_per_rank_mb=0.033,
    gasnet_mem_base_mb=13.0,
    gasnet_mem_log_mb=3.25,
    gasnet_mem_nosrq_per_rank_mb=0.05,
)
