"""Machine models for the paper's experimental platforms (Table 1 + §4).

Each :class:`~repro.sim.network.MachineSpec` is calibrated so the
simulator's *microbenchmark* rates land near the paper's own measured
per-operation rates, which in turn makes the application-level comparisons
(Figures 3-12) emerge from the same mechanisms as on the real machines.

* :data:`FUSION` — 320-node InfiniBand QDR cluster at Argonne, MVAPICH2
  (hardware RMA; GASNet enables SRQ at >=128 processes).
* :data:`EDISON` — Cray XC30 (Aries) at NERSC, Cray MPICH (RMA internally
  implemented over send/recv at the time — the Figure 5 analysis).
* :data:`MIRA` — IBM Blue Gene/Q at Argonne (the microbenchmark dataset's
  other platform; MPICH-on-PAMI with high per-op RMA software overhead).
* :data:`LAPTOP` — a small generic machine for quick local runs.
"""

from repro.platforms.edison import EDISON
from repro.platforms.fusion import FUSION
from repro.platforms.laptop import LAPTOP
from repro.platforms.mira import MIRA

PLATFORMS = {spec.name: spec for spec in (FUSION, EDISON, MIRA, LAPTOP)}

__all__ = ["EDISON", "FUSION", "LAPTOP", "MIRA", "PLATFORMS"]
