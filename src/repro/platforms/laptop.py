"""A small generic machine for quickstarts and fast local experiments."""

from repro.sim.network import MachineSpec

LAPTOP = MachineSpec(
    name="laptop",
    latency=1.0e-6,
    bandwidth=4.0e9,
    ranks_per_node=1,
    flops_per_sec=8.0e9,
    gasnet_srq_threshold=None,
)
