"""Diagnostics, the per-run report, and call-site extraction.

A :class:`Diagnostic` is one flagged contract violation; the
:class:`SanitizerReport` collects them for a run, deduplicating repeats
of the same (kind, region, site-pair) so a racy loop produces one entry
with a count rather than thousands.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

#: Path fragments identifying runtime-internal frames that a diagnostic
#: should never point at. Application code (``repro/apps``) and tests are
#: deliberately *not* listed.
_RUNTIME_PARTS = (
    "repro/sim/",
    "repro/mpi/",
    "repro/gasnet/",
    "repro/caf/",
    "repro/sanitizer/",
)


def call_site() -> str:
    """The innermost *application* frame, as ``file.py:NN in func``.

    Walks outward past runtime and stdlib frames so a report points at the
    user's ``A.write(...)`` line, not at the window implementation.
    """
    frame = sys._getframe(1)
    fallback = None
    while frame is not None:
        fname = frame.f_code.co_filename.replace("\\", "/")
        label = f"{os.path.basename(fname)}:{frame.f_lineno} in {frame.f_code.co_name}"
        if fallback is None:
            fallback = label
        runtime = any(part in fname for part in _RUNTIME_PARTS)
        stdlib = fname.endswith("/threading.py") or fname.startswith("<")
        if not runtime and not stdlib:
            return label
        frame = frame.f_back
    return fallback or "<unknown>"


def region_str(region: tuple) -> str:
    """Human name for a shadow-state region key."""
    if region[0] == "win":
        return f"window {region[1]} memory at rank {region[2]}"
    if region[0] == "seg":
        return f"segment of rank {region[1]}"
    return repr(region)


@dataclass
class Diagnostic:
    """One flagged violation.

    ``kind`` is one of ``race`` (conflicting accesses with no
    happens-before edge), ``overlap`` (overlapping in-flight puts),
    ``unflushed-read`` (reading a put target before the put's flush),
    ``epoch`` (RMA outside a passive-target epoch), ``win-sync`` (missing
    WIN_SYNC in the separate memory model), or ``lost-notify`` (an
    event_notify no wait ever consumed).
    """

    kind: str
    message: str
    rank: int
    time: float
    region: tuple | None = None
    ranges: tuple = ()
    site: str = ""
    other_site: str = ""
    other_rank: int | None = None
    count: int = 1

    def format(self) -> str:
        lines = [f"[{self.kind}] rank {self.rank} @ t={self.time:.9f}: {self.message}"]
        if self.region is not None:
            lines.append(f"    region: {region_str(self.region)}")
        if self.ranges:
            spans = ", ".join(f"[{a}, {b})" for a, b in self.ranges)
            lines.append(f"    bytes:  {spans}")
        if self.site:
            lines.append(f"    access: {self.site}")
        if self.other_site:
            who = "" if self.other_rank is None else f" (rank {self.other_rank})"
            lines.append(f"    other:  {self.other_site}{who}")
        if self.count > 1:
            lines.append(f"    repeats: x{self.count}")
        return "\n".join(lines)


@dataclass
class SanitizerReport:
    """All diagnostics from one sanitized run, plus instrumentation stats."""

    nranks: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    _dedup: dict = field(default_factory=dict, repr=False)

    def add(self, diag: Diagnostic) -> None:
        key = (diag.kind, diag.region, diag.site, diag.other_site)
        prior = self._dedup.get(key)
        if prior is not None:
            prior.count += 1
            return
        self._dedup[key] = diag
        self.diagnostics.append(diag)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def kinds(self) -> set[str]:
        return {d.kind for d in self.diagnostics}

    def to_text(self) -> str:
        if self.clean:
            return f"sanitizer: clean ({self.nranks} ranks, no violations)"
        head = (
            f"sanitizer: {len(self.diagnostics)} distinct violation(s) "
            f"across {self.nranks} ranks"
        )
        return "\n".join([head] + [d.format() for d in self.diagnostics])


#: Reports from completed sanitized runs (newest last). The CLI and the
#: force-enable test path read results from here.
COLLECTED: list[SanitizerReport] = []
