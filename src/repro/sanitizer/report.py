"""Diagnostics, the per-run report, and call-site extraction.

A :class:`Diagnostic` is one flagged contract violation; the
:class:`SanitizerReport` collects them for a run, deduplicating repeats
of the same (kind, region, site-pair) so a racy loop produces one entry
with a count rather than thousands.

Rendering (the bracketed-kind headline + labeled detail block) is shared
with the static checker through :mod:`repro.diagnostics`, so dynamic and
static findings print identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import call_site, format_block, summary_line

__all__ = [
    "COLLECTED",
    "Diagnostic",
    "SanitizerReport",
    "call_site",
    "region_str",
]


def region_str(region: tuple) -> str:
    """Human name for a shadow-state region key."""
    if region[0] == "win":
        return f"window {region[1]} memory at rank {region[2]}"
    if region[0] == "seg":
        return f"segment of rank {region[1]}"
    return repr(region)


@dataclass
class Diagnostic:
    """One flagged violation.

    ``kind`` is one of ``race`` (conflicting accesses with no
    happens-before edge), ``overlap`` (overlapping in-flight puts),
    ``unflushed-read`` (reading a put target before the put's flush),
    ``epoch`` (RMA outside a passive-target epoch), ``win-sync`` (missing
    WIN_SYNC in the separate memory model), or ``lost-notify`` (an
    event_notify no wait ever consumed).
    """

    kind: str
    message: str
    rank: int
    time: float
    region: tuple | None = None
    ranges: tuple = ()
    site: str = ""
    other_site: str = ""
    other_rank: int | None = None
    count: int = 1

    def format(self) -> str:
        head = f"[{self.kind}] rank {self.rank} @ t={self.time:.9f}: {self.message}"
        spans = ", ".join(f"[{a}, {b})" for a, b in self.ranges)
        other = self.other_site
        if other and self.other_rank is not None:
            other = f"{other} (rank {self.other_rank})"
        return format_block(
            head,
            [
                ("region", region_str(self.region) if self.region is not None else None),
                ("bytes", spans),
                ("access", self.site),
                ("other", other),
                ("repeats", f"x{self.count}" if self.count > 1 else None),
            ],
        )


@dataclass
class SanitizerReport:
    """All diagnostics from one sanitized run, plus instrumentation stats."""

    nranks: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    _dedup: dict = field(default_factory=dict, repr=False)

    def add(self, diag: Diagnostic) -> None:
        key = (diag.kind, diag.region, diag.site, diag.other_site)
        prior = self._dedup.get(key)
        if prior is not None:
            prior.count += 1
            return
        self._dedup[key] = diag
        self.diagnostics.append(diag)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def kinds(self) -> set[str]:
        return {d.kind for d in self.diagnostics}

    def to_text(self) -> str:
        head = summary_line("sanitizer", len(self.diagnostics), f"{self.nranks} ranks")
        if self.clean:
            return head
        return "\n".join([head] + [d.format() for d in self.diagnostics])


#: Reports from completed sanitized runs (newest last). The CLI and the
#: force-enable test path read results from here.
COLLECTED: list[SanitizerReport] = []
