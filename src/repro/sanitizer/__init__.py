"""repro.sanitizer — a happens-before race & RMA-epoch checker.

Opt-in via ``Cluster(..., sanitize=True)`` / ``run_caf(..., sanitize=True)``,
or force it on process-wide (:func:`force_enable`) so unmodified apps and
experiments run under the checker — that is how ``python -m repro.sanitizer``
works. See ``docs/architecture.md`` ("Sanitizer: happens-before checking").
"""

from __future__ import annotations

from repro.sanitizer.core import Sanitizer
from repro.sanitizer.report import COLLECTED, Diagnostic, SanitizerReport, call_site
from repro.sanitizer.shadow import AccessRecord, classify, dominates
from repro.sanitizer.view import TrackedArray, tracked_view

_FORCED = False


def force_enable() -> None:
    """Make every subsequently-built Cluster sanitize, regardless of flags."""
    global _FORCED
    _FORCED = True


def force_disable() -> None:
    global _FORCED
    _FORCED = False


def is_forced() -> bool:
    return _FORCED


def collected_reports() -> list[SanitizerReport]:
    """Reports from completed sanitized runs, oldest first."""
    return list(COLLECTED)


def clear_reports() -> None:
    COLLECTED.clear()


__all__ = [
    "AccessRecord",
    "Diagnostic",
    "Sanitizer",
    "SanitizerReport",
    "TrackedArray",
    "tracked_view",
    "call_site",
    "classify",
    "clear_reports",
    "collected_reports",
    "dominates",
    "force_disable",
    "force_enable",
    "is_forced",
]
