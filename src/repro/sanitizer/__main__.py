"""CLI: run any registered app or experiment under the sanitizer.

Usage::

    python -m repro.sanitizer randomaccess --procs 8 --backend gasnet
    python -m repro.sanitizer cgpop --procs 4 --mode pull
    python -m repro.sanitizer fig03 --scale quick

The positional target is an app name (``python -m repro.apps`` choices)
or an experiment id from the experiment registry. Exits 1 when any run
reports a violation, 0 when all runs are clean.
"""

from __future__ import annotations

import argparse
import sys

from repro import sanitizer
from repro.apps.cgpop import run_cgpop, run_cgpop_2d
from repro.apps.fft import run_fft
from repro.apps.hpl import run_hpl
from repro.apps.microbench import OPS, run_microbench
from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.registry import EXPERIMENTS
from repro.platforms import PLATFORMS

APPS = ("randomaccess", "fft", "hpl", "cgpop", "cgpop2d", "micro")


def _run_app(args) -> None:
    spec = PLATFORMS[args.platform]
    common = dict(backend=args.backend, sanitize=True)
    if args.target == "randomaccess":
        run_caf(
            run_randomaccess, args.procs, spec, **common,
            updates_per_image=args.updates, seed=args.seed,
        )
    elif args.target == "fft":
        run_caf(run_fft, args.procs, spec, **common, m=args.m, seed=args.seed)
    elif args.target == "hpl":
        run_caf(run_hpl, args.procs, spec, **common, n=args.n, seed=args.seed)
    elif args.target == "cgpop":
        run_caf(
            run_cgpop, args.procs, spec, **common,
            ny=args.ny, nx=args.nx, mode=args.mode, seed=args.seed,
        )
    elif args.target == "cgpop2d":
        run_caf(
            run_cgpop_2d, args.procs, spec, **common,
            ny=args.ny, nx=args.nx, seed=args.seed,
        )
    else:  # micro
        run_caf(run_microbench, args.procs, spec, **common, op=args.op)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.sanitizer")
    parser.add_argument(
        "target",
        help=f"app ({', '.join(APPS)}) or experiment id "
        f"({', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--backend", choices=["mpi", "gasnet"], default="mpi")
    parser.add_argument("--platform", choices=sorted(PLATFORMS), default="laptop")
    parser.add_argument("--scale", choices=["quick", "default"], default="quick")
    parser.add_argument("--m", type=int, default=1 << 12, help="FFT size")
    parser.add_argument("--n", type=int, default=64, help="HPL matrix order")
    parser.add_argument("--ny", type=int, default=16)
    parser.add_argument("--nx", type=int, default=8)
    parser.add_argument("--mode", choices=["push", "pull"], default="push")
    parser.add_argument("--op", choices=list(OPS), default="write")
    parser.add_argument("--updates", type=int, default=512)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    sanitizer.clear_reports()
    if args.target in APPS:
        print(f"== sanitizing {args.target} (CAF-{args.backend.upper()}) ==")
        _run_app(args)
    elif args.target in EXPERIMENTS:
        # Experiments build their own clusters internally, so force the
        # checker on for every cluster constructed while they run.
        print(f"== sanitizing experiment {args.target} (scale={args.scale}) ==")
        sanitizer.force_enable()
        try:
            EXPERIMENTS[args.target].load()(args.scale)
        finally:
            sanitizer.force_disable()
    else:
        parser.error(
            f"unknown target {args.target!r}; expected an app "
            f"({', '.join(APPS)}) or experiment id"
        )

    reports = sanitizer.collected_reports()
    bad = False
    for i, report in enumerate(reports):
        label = f"run {i + 1}/{len(reports)}" if len(reports) > 1 else "run"
        print(f"-- {label}: {report.to_text()}")
        bad = bad or not report.clean
    if not reports:
        print("sanitizer: no sanitized runs executed")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
