"""Byte-accurate tracking of local window/segment views.

``win.local`` / ``coarray.local`` hand the application a live view of
tracked memory. Recording every such property access as touching the
*whole* buffer is sound but imprecise — a halo exchange that reads row 0
while a neighbor's put lands in row 1 would be flagged. Instead the
sanitized run returns a :class:`TrackedArray`: an ndarray view whose
``__getitem__`` / ``__setitem__`` file access records for the byte span
actually addressed (computed from memory bounds, so slicing, reshaping
and nested views all resolve to exact region offsets).

Accesses that bypass indexing — ufuncs, ``np.add.at``, buffer-protocol
readers — are not observed; that can only lose a detection, never invent
one. Fancy-index reads return copies whose bounds fall outside the
region; those fall back to the parent view's span (the pre-subscript
granularity), again erring toward the coarser-but-sound record.
"""

from __future__ import annotations

import numpy as np

try:  # numpy >= 2.0
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - older numpy
    byte_bounds = np.byte_bounds


class TrackedArray(np.ndarray):
    """View of sanitizer-tracked memory that records indexed accesses."""

    _san = None
    _san_region = None
    _san_rank = 0
    _san_base_addr = 0
    _san_limit = 0

    def __array_finalize__(self, obj):
        if obj is None:
            return
        self._san = getattr(obj, "_san", None)
        self._san_region = getattr(obj, "_san_region", None)
        self._san_rank = getattr(obj, "_san_rank", 0)
        self._san_base_addr = getattr(obj, "_san_base_addr", 0)
        self._san_limit = getattr(obj, "_san_limit", 0)

    def _span(self, arr) -> tuple[int, int] | None:
        """Region-relative byte span of ``arr``, or None when it is not a
        live view into the tracked buffer (e.g. a fancy-index copy)."""
        if not isinstance(arr, np.ndarray) or arr.size == 0:
            return None
        lo, hi = byte_bounds(arr)
        lo -= self._san_base_addr
        hi -= self._san_base_addr
        if lo < 0 or hi > self._san_limit or lo >= hi:
            return None
        return (lo, hi)

    def _record(self, arr, *, is_write: bool) -> None:
        san = self._san
        if san is None:
            return
        span = self._span(arr)
        if span is None:
            span = self._span(self)  # coarser fallback: the parent view
        if span is None:
            return
        san.record_local(
            self._san_rank,
            self._san_region,
            [span],
            "local-store" if is_write else "local-load",
            is_write=is_write,
        )

    def __getitem__(self, idx):
        out = super().__getitem__(idx)
        self._record(out if isinstance(out, np.ndarray) else self, is_write=False)
        return out

    def __setitem__(self, idx, value):
        try:
            target = super().__getitem__(idx)
        except Exception:
            target = self
        self._record(target if isinstance(target, np.ndarray) else self, is_write=True)
        super().__setitem__(idx, value)


def tracked_view(arr: np.ndarray, san, region: tuple, rank: int, base: np.ndarray | None = None):
    """Wrap ``arr`` (a view into region memory) for access tracking.

    ``base`` is the array whose first byte is region offset 0 (defaults
    to ``arr`` itself — correct for MPI windows, where the region is the
    buffer; GASNet passes the whole segment).
    """
    base = arr if base is None else base
    view = arr.view(TrackedArray)
    base_lo, base_hi = byte_bounds(base)
    view._san = san
    view._san_region = region
    view._san_rank = rank
    view._san_base_addr = base_lo
    view._san_limit = base_hi - base_lo
    return view
