"""The sanitizer core: vector clocks, the happens-before graph, checks.

One :class:`Sanitizer` instance is attached to a :class:`~repro.sim.cluster.Cluster`
built with ``sanitize=True``. The engine ticks a rank's clock component at
every scheduling point; runtime layers report synchronization completions
(p2p receive matches, AM handler runs, collective exits, event waits)
which *merge* the sender's snapshot into the receiver — those merges are
the only happens-before edges, so raw fabric deliveries never hide races.
Remote and local accesses to tracked regions become shadow records that
the classifier in :mod:`repro.sanitizer.shadow` checks for conflicts.

None of the hooks sleeps or schedules events: a sanitized run's virtual
timeline is identical to the unsanitized run.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sanitizer.report import (
    COLLECTED,
    Diagnostic,
    SanitizerReport,
    call_site,
    region_str,
)
from repro.sanitizer.shadow import (
    AccessRecord,
    RegionState,
    classify,
    ranges_intersect,
)


class Sanitizer:
    """Per-run checker state. Region keys are ``("win", win_id, owner)``
    for MPI window exposures and ``("seg", owner)`` for GASNet segments;
    ranks in clocks, records and diagnostics are always *world* ranks."""

    def __init__(self, nranks: int, engine) -> None:
        self.nranks = nranks
        self.engine = engine
        self.clocks = [[0] * nranks for _ in range(nranks)]
        self.regions: dict[tuple, RegionState] = {}
        self.report = SanitizerReport(nranks)
        #: Windows currently inside a fence epoch (fence() adds before its
        #: closing flush_all) — puts there are epoch-legal.
        self.fence_windows: set[int] = set()
        #: Windows whose traffic is runtime-internal by design (the
        #: atomics-based event storage) — access checks are skipped.
        self._exempt_windows: set[int] = set()
        self._exempt_procs: dict = {}
        # event bookkeeping: key = (event_id, owner_world, slot)
        self._pending_events: dict[tuple, list[tuple]] = {}
        self._event_sent: dict[tuple, int] = {}
        self._event_consumed: dict[tuple, int] = {}
        self.stats = {
            "ticks": 0,
            "merges": 0,
            "records": 0,
            "transfers": 0,
            "released": 0,
        }
        self.finalized = False

    # -- vector clocks -----------------------------------------------------

    def tick(self, rank: int) -> None:
        self.clocks[rank][rank] += 1
        self.stats["ticks"] += 1

    def snapshot(self, rank: int) -> tuple:
        return tuple(self.clocks[rank])

    def merge(self, rank: int, clock) -> None:
        """A synchronization edge: ``clock`` happened-before rank's future."""
        if clock is None:
            return
        mine = self.clocks[rank]
        for i, v in enumerate(clock):
            if v > mine[i]:
                mine[i] = v
        self.stats["merges"] += 1

    def min_clock(self) -> tuple:
        return tuple(min(c[i] for c in self.clocks) for i in range(self.nranks))

    def on_collective(self, rank: int, members) -> None:
        """Collective exit: every member's clock happened-before ``rank``.

        Conservative (members may have advanced past the collective by the
        time this rank exits), which can only suppress reports, never
        fabricate one.
        """
        for m in members:
            if m != rank:
                self.merge(rank, self.snapshot(m))

    # -- exemptions --------------------------------------------------------

    @contextmanager
    def exempt(self):
        """Suppress access recording for the current proc (clock merges
        stay live). Used around runtime-internal protocols — e.g. the
        GASNet hand-rolled collectives, whose flag-spinning is ordered by
        the collective's own semantics, not per-put synchronization."""
        proc = self.engine._current
        self._exempt_procs[proc] = self._exempt_procs.get(proc, 0) + 1
        try:
            yield
        finally:
            self._exempt_procs[proc] -= 1
            if not self._exempt_procs[proc]:
                del self._exempt_procs[proc]

    def is_exempt(self) -> bool:
        return self.engine._current in self._exempt_procs

    def exempt_window(self, win_id: int) -> None:
        self._exempt_windows.add(win_id)

    def is_exempt_window(self, win_id: int) -> bool:
        return win_id in self._exempt_windows

    # -- access recording --------------------------------------------------

    def record_remote(
        self,
        origin: int,
        region: tuple,
        ranges,
        op: str,
        *,
        is_write: bool,
        atomic: bool = False,
    ) -> AccessRecord | None:
        """Record an RMA/AM-mediated access; returns the record so the
        caller can release it at the op's synchronization point, or None
        when recording is suppressed (exempt proc / exempt window)."""
        if self.is_exempt():
            return None
        if region[0] == "win" and region[1] in self._exempt_windows:
            return None
        rec = AccessRecord(
            origin=origin,
            is_write=is_write,
            atomic=atomic,
            remote=True,
            op=op,
            ranges=tuple(ranges),
            init_clock=self.snapshot(origin),
            site=call_site(),
            time=self.engine.now,
        )
        self._check_and_add(region, rec)
        return rec

    def record_local(
        self, rank: int, region: tuple, ranges, op: str, *, is_write: bool = True
    ) -> None:
        """Record a direct local load/store (``win.local`` / ``A.local``).

        Released instantly: program order covers it on its own rank, and
        the record exists to clash with unordered *remote* traffic."""
        if self.is_exempt():
            return
        if region[0] == "win" and region[1] in self._exempt_windows:
            return
        clock = self.snapshot(rank)
        rec = AccessRecord(
            origin=rank,
            is_write=is_write,
            atomic=False,
            remote=False,
            op=op,
            ranges=tuple(ranges),
            init_clock=clock,
            site=call_site(),
            time=self.engine.now,
            released=True,
            release_clock=clock,
        )
        self._check_and_add(region, rec)

    def _check_and_add(self, region: tuple, rec: AccessRecord) -> None:
        state = self.regions.get(region)
        if state is None:
            state = self.regions[region] = RegionState()
        for old in state.records:
            hit = ranges_intersect(old.ranges, rec.ranges)
            if not hit:
                continue
            kind = classify(old, rec)
            if kind is not None:
                self._conflict(kind, region, old, rec, hit)
        state.add(rec)
        self.stats["records"] += 1
        if state.should_gc():
            state.gc(self.min_clock())

    def _conflict(self, kind, region, old, new, hit) -> None:
        messages = {
            "race": (
                f"{new.op} by rank {new.origin} conflicts with {old.op} by "
                f"rank {old.origin} with no happens-before ordering"
            ),
            "overlap": (
                f"overlapping in-flight puts: {new.op} by rank {new.origin} "
                f"overlaps an incomplete {old.op} by rank {old.origin}"
            ),
            "unflushed-read": (
                f"{new.op} by rank {new.origin} reads the target of an "
                f"unflushed {old.op} by rank {old.origin}"
            ),
        }
        self.report.add(
            Diagnostic(
                kind=kind,
                message=messages[kind],
                rank=new.origin,
                time=self.engine.now,
                region=region,
                ranges=hit,
                site=new.site,
                other_site=old.site,
                other_rank=old.origin,
            )
        )

    # -- releases ----------------------------------------------------------

    def release_records(self, records) -> None:
        """The synchronization point for these records: flush returned,
        request completed, or wait_syncnb observed the handle."""
        for rec in records:
            if rec is not None and not rec.released:
                rec.released = True
                rec.release_clock = self.snapshot(rec.origin)
                self.stats["released"] += 1

    def release_window(self, win_id: int, origin: int, target: int | None = None) -> None:
        """flush(target) / flush_all / unlock: release this origin's
        in-flight records on the window (one target or all)."""
        for key, state in self.regions.items():
            if key[0] != "win" or key[1] != win_id:
                continue
            if target is not None and key[2] != target:
                continue
            self.release_records(
                r for r in state.records if not r.released and r.origin == origin
            )

    def open_window_records(self, win_id: int, origin: int, target: int | None = None):
        """This origin's in-flight records on a window (for rflush, whose
        release point is the returned request's completion)."""
        out = []
        for key, state in self.regions.items():
            if key[0] != "win" or key[1] != win_id:
                continue
            if target is not None and key[2] != target:
                continue
            out.extend(
                r for r in state.records if not r.released and r.origin == origin
            )
        return out

    # -- epoch / memory-model checks ---------------------------------------

    def epoch_violation(self, rank: int, op: str, win_id: int, target: int) -> None:
        if self.is_exempt() or win_id in self._exempt_windows:
            return
        self.report.add(
            Diagnostic(
                kind="epoch",
                message=(
                    f"{op} targeting rank {target} outside any passive-target "
                    f"epoch (no lock/lock_all/fence on the window)"
                ),
                rank=rank,
                time=self.engine.now,
                region=("win", win_id, target),
                site=call_site(),
            )
        )

    def win_sync_violation(self, rank: int, win_id: int, ranges) -> None:
        if self.is_exempt() or win_id in self._exempt_windows:
            return
        self.report.add(
            Diagnostic(
                kind="win-sync",
                message=(
                    "separate memory model: local access to window memory "
                    "holding unsynchronized RMA updates (missing WIN_SYNC)"
                ),
                rank=rank,
                time=self.engine.now,
                region=("win", win_id, rank),
                ranges=tuple(ranges),
                site=call_site(),
            )
        )

    # -- events ------------------------------------------------------------

    def event_notified(self, rank: int, key: tuple) -> None:
        """A notify is about to ship: queue the notifier's snapshot (it
        already dominates the release clocks of everything the notifier
        completed before notifying)."""
        self._event_sent[key] = self._event_sent.get(key, 0) + 1
        self._pending_events.setdefault(key, []).append(self.snapshot(rank))

    def event_consumed(self, rank: int, key: tuple, count: int = 1) -> None:
        """A wait consumed ``count`` posts: merge that many queued notifier
        snapshots (FIFO; direct same-image posts queue nothing)."""
        pending = self._pending_events.get(key)
        for _ in range(min(count, len(pending) if pending else 0)):
            self.merge(rank, pending.pop(0))
        self._event_consumed[key] = self._event_consumed.get(key, 0) + count

    # -- finalization ------------------------------------------------------

    def finalize(self) -> SanitizerReport:
        """End of run: file lost-notify diagnostics and publish the report."""
        if self.finalized:
            return self.report
        self.finalized = True
        for key, sent in sorted(self._event_sent.items()):
            if self._event_consumed.get(key, 0) == 0:
                event_id, owner, slot = key
                self.report.add(
                    Diagnostic(
                        kind="lost-notify",
                        message=(
                            f"event {event_id} slot {slot} at rank {owner} was "
                            f"notified {sent} time(s) but never waited on"
                        ),
                        rank=owner,
                        time=self.engine.now,
                        count=sent,
                    )
                )
        self.report.stats = dict(self.stats)
        COLLECTED.append(self.report)
        return self.report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Sanitizer ranks={self.nranks} records={self.stats['records']} "
            f"diags={len(self.report.diagnostics)}>"
        )


def describe_region(region: tuple) -> str:
    return region_str(region)
