"""Byte-range shadow state: access records and the conflict classifier.

Every tracked memory region (an MPI window's exposure at one rank, or a
GASNet segment) keeps a list of :class:`AccessRecord`. A record is born
when the operation is *initiated* (with the origin's vector-clock
snapshot) and released at the operation's synchronization point — flush /
unlock for MPI puts, request completion for gets, ``wait_syncnb`` for
GASNet handles, instantly for direct local loads/stores. Classification
of a new access against an old record follows the MPI-3 RMA / CAF memory
model (Gerstenberger et al.; paper §3.2/§5):

* two atomics never conflict; two reads never conflict;
* a *released* record conflicts unless its release happened-before the
  new access (release clock dominated by the new access's init clock) or
  both came from the same origin (program order);
* an *in-flight* record conflicts as an ``overlap`` when both are remote
  writes, as an ``unflushed-read`` when the old write had no flush before
  the new read, and as a plain ``race`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AccessRecord:
    """One access to a region: who, where (byte ranges), ordering state."""

    origin: int  # world rank that issued the access
    is_write: bool
    atomic: bool
    remote: bool  # RMA/AM-mediated (True) vs a direct local load/store
    op: str  # e.g. "rput", "get_runs", "local-store"
    ranges: tuple  # ((lo, hi), ...) half-open byte ranges
    init_clock: tuple
    site: str
    time: float
    released: bool = False
    release_clock: tuple | None = None


def ranges_intersect(a: tuple, b: tuple) -> tuple:
    """Pairwise intersections of two half-open byte-range lists."""
    out = []
    for lo1, hi1 in a:
        for lo2, hi2 in b:
            lo, hi = max(lo1, lo2), min(hi1, hi2)
            if lo < hi:
                out.append((lo, hi))
    return tuple(out)


def dominates(earlier: tuple, later: tuple) -> bool:
    """True when ``earlier`` <= ``later`` componentwise (happened-before)."""
    return all(a <= b for a, b in zip(earlier, later))


def classify(old: AccessRecord, new: AccessRecord) -> str | None:
    """Conflict kind for overlapping accesses, or None when compatible."""
    if old.atomic and new.atomic:
        return None
    if not old.is_write and not new.is_write:
        return None
    if old.released:
        if dominates(old.release_clock, new.init_clock):
            return None
        if old.origin == new.origin:
            return None  # program order on the origin
        return "race"
    # old is still in flight (no flush / sync released it yet)
    if old.origin == new.origin:
        if old.is_write and not new.is_write:
            return "unflushed-read"
        if old.remote and new.remote and old.is_write and new.is_write:
            return "overlap"
        return None
    if old.remote and new.remote and old.is_write and new.is_write:
        return "overlap"
    if old.is_write and not new.is_write:
        return "unflushed-read"
    return "race"


class RegionState:
    """Shadow state for one region: live records plus a GC cadence."""

    __slots__ = ("records", "_since_gc")

    GC_EVERY = 64

    def __init__(self) -> None:
        self.records: list[AccessRecord] = []
        self._since_gc = 0

    def add(self, rec: AccessRecord) -> None:
        self.records.append(rec)
        self._since_gc += 1

    def should_gc(self) -> bool:
        return self._since_gc >= self.GC_EVERY

    def gc(self, min_clock: tuple) -> None:
        """Drop released records every rank has already happened-after.

        ``min_clock`` is the componentwise minimum over all ranks' current
        clocks: a record whose release is dominated by it can never again
        classify as a conflict, so pruning it is sound.
        """
        self.records = [
            r
            for r in self.records
            if not (r.released and dominates(r.release_clock, min_clock))
        ]
        self._since_gc = 0
