"""RunReport: the JSON-serializable artifact one simulated run explains
itself with.

Assembled from the :class:`~repro.obs.metrics.Metrics` registry, the
profiler's per-category time decomposition, the fabric's
:class:`~repro.obs.metrics.CommMatrix`, and (when the run was traced) the
:mod:`~repro.obs.critical` path. Field ordering is deterministic — the same
run always serializes byte-identically — so reports diff cleanly and CI can
archive them next to ``BENCH_wallclock.json``.

Exporters: canonical JSON (:meth:`RunReport.to_json`), Prometheus-style
text (:meth:`RunReport.to_prometheus`), and the existing Chrome-trace export
on the tracer for the time axis. ``python -m repro.obs`` renders and diffs
report files (bench-regression triage).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.critical import critical_path
from repro.util.tables import format_table

SCHEMA_NAME = "repro.obs/run-report"
SCHEMA_VERSION = 1

#: Keep the serialized comm matrix dense only up to this many ranks; larger
#: runs store the top pairs (the matrix itself stays queryable in-process).
_DENSE_MATRIX_LIMIT = 256


class SchemaError(ValueError):
    """A document does not conform to the RunReport schema."""


@dataclass
class RunReport:
    """One run's observability artifact (a thin typed wrapper over the
    canonical dict form, which is what serializes/validates/diffs)."""

    data: dict[str, Any] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------

    @property
    def meta(self) -> dict[str, Any]:
        return self.data["meta"]

    @property
    def ops(self) -> dict[str, Any]:
        """Aggregated per-kind op stats: kind -> {calls, bytes, time, ...}."""
        return self.data["ops"]["kinds"]

    @property
    def makespan(self) -> float:
        return self.data["meta"]["makespan"]

    def op(self, kind: str) -> dict[str, Any]:
        return self.data["ops"]["kinds"].get(
            kind, {"calls": 0, "bytes": 0, "time": 0.0}
        )

    # -- serialization ---------------------------------------------------

    def to_json(self, path: str | None = None, *, indent: int = 2) -> str:
        """Canonical JSON text (sorted keys); optionally written to ``path``."""
        text = json.dumps(self.data, indent=indent, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as fh:
            data = json.load(fh)
        validate_report(data)
        return cls(data)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        validate_report(data)
        return cls(data)

    # -- exporters -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the scalar metrics.

        Virtual-time metrics carry a ``repro_`` prefix; labels identify the
        op kind / category. Scrape-ready for pushgateway-style archiving.
        """
        lines: list[str] = []
        meta = self.data["meta"]
        lab = f'backend="{meta.get("backend", "")}",nranks="{meta["nranks"]}"'
        lines.append("# TYPE repro_run_makespan_seconds gauge")
        lines.append(f"repro_run_makespan_seconds{{{lab}}} {meta['makespan']:.9e}")
        lines.append("# TYPE repro_op_calls_total counter")
        lines.append("# TYPE repro_op_bytes_total counter")
        lines.append("# TYPE repro_op_time_seconds_total counter")
        for kind in sorted(self.data["ops"]["kinds"]):
            s = self.data["ops"]["kinds"][kind]
            klab = f'kind="{kind}",{lab}'
            lines.append(f"repro_op_calls_total{{{klab}}} {s['calls']}")
            lines.append(f"repro_op_bytes_total{{{klab}}} {s['bytes']}")
            lines.append(f"repro_op_time_seconds_total{{{klab}}} {s['time']:.9e}")
        lines.append("# TYPE repro_profiler_category_seconds gauge")
        for cat in sorted(self.data["profiler"]["breakdown"]):
            v = self.data["profiler"]["breakdown"][cat]
            lines.append(
                f'repro_profiler_category_seconds{{category="{cat}",{lab}}} {v:.9e}'
            )
        fabric = self.data["fabric"]
        lines.append("# TYPE repro_fabric_messages_total counter")
        lines.append(f"repro_fabric_messages_total{{{lab}}} {fabric['messages']}")
        lines.append("# TYPE repro_fabric_bytes_total counter")
        lines.append(f"repro_fabric_bytes_total{{{lab}}} {fabric['bytes']}")
        for name in sorted(self.data.get("counters", {})):
            lines.append(
                f'repro_counter_total{{name="{name}",{lab}}} '
                f"{self.data['counters'][name]}"
            )
        sh = self.data.get("shards")
        if sh is not None:
            # Conservative-PDES protocol statistics (PR 9's shard stats) —
            # mirrored here so Prometheus archives see the same counters
            # the JSON report carries.
            for name in (
                "cross_messages",
                "cross_bytes",
                "null_messages",
                "coordinator_signals",
                "lookahead_violations",
                "epochs",
            ):
                lines.append(f"# TYPE repro_shard_{name}_total counter")
                lines.append(f"repro_shard_{name}_total{{{lab}}} {sh[name]}")
            lines.append("# TYPE repro_shard_lookahead_seconds gauge")
            lines.append(
                f"repro_shard_lookahead_seconds{{{lab}}} {sh['lookahead']:.9e}"
            )
            lines.append("# TYPE repro_shard_events_total counter")
            for i, n in enumerate(sh["events_per_shard"]):
                lines.append(f'repro_shard_events_total{{shard="{i}",{lab}}} {n}')
        return "\n".join(lines) + "\n"

    def render(self, *, top: int = 12) -> str:
        """Human-readable multi-table rendering (the CLI's output)."""
        meta = self.data["meta"]
        out = [
            f"== run report: {meta.get('label') or meta.get('app') or 'run'} "
            f"x{meta['nranks']} images (backend={meta.get('backend', '?')}, "
            f"spec={meta.get('spec', '?')}) ==",
            f"virtual makespan: {meta['makespan'] * 1e3:.3f} ms",
        ]
        tel = meta.get("telemetry")
        if tel:
            out.append(
                f"live telemetry: {tel['snapshots']} snapshot(s) -> {tel['path']}"
            )
        sh = self.data.get("shards")
        if sh:
            out.append(
                f"sharded dispatch: {sh['nshards']} shards, "
                f"lookahead {sh['lookahead']:.3e}s, {sh['epochs']} epochs, "
                f"{sh['null_messages']} null msgs, "
                f"{sh['cross_messages']} cross-shard msgs"
            )
        fail = self.data.get("failure")
        if fail:
            out.append(
                f"outcome: FAILED ({fail['error']}) — {fail['message']}"
            )
            if fail.get("failed_images"):
                out.append(f"failed images: {fail['failed_images']}")
        breakdown = self.data["profiler"]["breakdown"]
        if breakdown:
            rows = sorted(breakdown.items(), key=lambda kv: (-kv[1], kv[0]))
            out.append(
                format_table(
                    ["category", "mean s/image"], rows, title="time decomposition"
                )
            )
        kinds = self.data["ops"]["kinds"]
        if kinds:
            rows = [
                [
                    k,
                    s["calls"],
                    s["bytes"],
                    f"{s['time']:.3e}",
                    f"{(s['time'] / s['calls'] if s['calls'] else 0.0):.3e}",
                ]
                for k, s in sorted(
                    kinds.items(), key=lambda kv: (-kv[1]["time"], kv[0])
                )
            ]
            out.append(
                format_table(
                    ["op kind", "calls", "bytes", "time (s)", "s/call"],
                    rows,
                    title="op-level metrics (all ranks)",
                )
            )
        cm = self.data.get("comm_matrix")
        if cm and cm.get("top_pairs"):
            rows = [[f"{s}->{d}", m, b] for s, d, m, b in cm["top_pairs"][:top]]
            out.append(
                format_table(
                    ["pair", "messages", "bytes"],
                    rows,
                    title=f"heaviest traffic pairs (of {cm['total_messages']} msgs, "
                    f"{cm['total_bytes']} bytes)",
                )
            )
        cp = self.data.get("critical_path")
        if cp:
            rows = sorted(
                cp["by_category"].items(), key=lambda kv: (-kv[1], kv[0])
            )
            out.append(
                format_table(
                    ["category", "path seconds"],
                    rows,
                    title=f"critical path ({len(cp['steps'])} steps, "
                    f"{cp['coverage'] * 100:.1f}% of makespan attributed)",
                )
            )
        return "\n".join(out)


def validate_report(data: Any) -> None:
    """Structural schema check; raises :class:`SchemaError` on violation."""

    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise SchemaError(f"invalid run report: {msg}")

    need(isinstance(data, dict), "not a JSON object")
    need(data.get("schema") == SCHEMA_NAME, f"schema != {SCHEMA_NAME!r}")
    need(data.get("version") == SCHEMA_VERSION, f"version != {SCHEMA_VERSION}")
    meta = data.get("meta")
    need(isinstance(meta, dict), "missing meta object")
    need(isinstance(meta.get("nranks"), int) and meta["nranks"] > 0, "meta.nranks")
    need(isinstance(meta.get("makespan"), (int, float)), "meta.makespan")
    if "outcome" in meta:
        need(meta["outcome"] in ("ok", "failed"), "meta.outcome")
    if "shards" in meta:
        need(
            isinstance(meta["shards"], int) and meta["shards"] >= 1,
            "meta.shards",
        )
    if "telemetry" in meta:
        tel = meta["telemetry"]
        need(isinstance(tel, dict), "meta.telemetry")
        need(isinstance(tel.get("path"), str), "meta.telemetry.path")
        need(
            isinstance(tel.get("snapshots"), int) and tel["snapshots"] >= 0,
            "meta.telemetry.snapshots",
        )
    sh = data.get("shards")
    if sh is not None:
        need(isinstance(sh, dict), "shards")
        for fld in ("nshards", "epochs", "null_messages", "cross_messages",
                    "lookahead_violations"):
            need(isinstance(sh.get(fld), int), f"shards.{fld}")
        need(isinstance(sh.get("events_per_shard"), list), "shards.events_per_shard")
        need(isinstance(sh.get("lookahead"), (int, float)), "shards.lookahead")
    fail = data.get("failure")
    if fail is not None:
        need(isinstance(fail, dict), "failure")
        need(isinstance(fail.get("error"), str), "failure.error")
        need(isinstance(fail.get("message"), str), "failure.message")
        need(isinstance(fail.get("failed_images"), list), "failure.failed_images")
        need(meta.get("outcome") == "failed", "failure present but outcome != failed")
        if "last_telemetry" in fail:
            need(isinstance(fail["last_telemetry"], dict), "failure.last_telemetry")
    prof = data.get("profiler")
    need(isinstance(prof, dict), "missing profiler object")
    need(isinstance(prof.get("breakdown"), dict), "profiler.breakdown")
    need(isinstance(prof.get("counts"), dict), "profiler.counts")
    ops = data.get("ops")
    need(isinstance(ops, dict) and isinstance(ops.get("kinds"), dict), "ops.kinds")
    for kind, s in ops["kinds"].items():
        need(isinstance(s, dict), f"ops.kinds[{kind!r}]")
        for fld in ("calls", "bytes"):
            need(isinstance(s.get(fld), int), f"ops.kinds[{kind!r}].{fld}")
        need(isinstance(s.get("time"), (int, float)), f"ops.kinds[{kind!r}].time")
    fabric = data.get("fabric")
    need(isinstance(fabric, dict), "missing fabric object")
    for fld in ("messages", "bytes"):
        need(isinstance(fabric.get(fld), int), f"fabric.{fld}")
    cm = data.get("comm_matrix")
    if cm is not None:
        need(isinstance(cm, dict), "comm_matrix")
        need(isinstance(cm.get("total_messages"), int), "comm_matrix.total_messages")
    cp = data.get("critical_path")
    if cp is not None:
        need(isinstance(cp, dict), "critical_path")
        need(isinstance(cp.get("steps"), list), "critical_path.steps")
        need(isinstance(cp.get("by_category"), dict), "critical_path.by_category")


def build_report(
    cluster,
    *,
    backend: str | None = None,
    label: str | None = None,
    app: str | None = None,
    failure: BaseException | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished cluster's services.

    Works with or without metrics/tracing enabled: absent subsystems yield
    empty/None sections, so a bare profiler-only run still reports.

    ``failure`` marks the report as a *partial* one cut at the moment the
    run died: ``meta.outcome`` becomes ``"failed"`` and a ``failure``
    section records the error, the failed-image set, and the cluster's
    failure log — enough for post-mortem triage without rerunning.
    """
    profiler = cluster.profiler
    counts: dict[str, int] = {}
    for per_rank in profiler.counts:
        for cat, n in per_rank.items():
            counts[cat] = counts.get(cat, 0) + n
    fabric = cluster.fabric
    data: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "meta": {
            "nranks": cluster.nranks,
            "backend": backend,
            "label": label,
            "app": app,
            "spec": cluster.spec.name,
            "seed": cluster.seed,
            "makespan": cluster.elapsed,
            "metrics_enabled": cluster.metrics is not None,
            "traced": bool(cluster.tracer.events),
            "outcome": "failed" if failure is not None else "ok",
        },
        "profiler": {
            "breakdown": dict(sorted(profiler.breakdown().items())),
            "counts": dict(sorted(counts.items())),
            "per_rank": [
                dict(sorted(times.items())) for times in profiler.times
            ],
        },
        "ops": (
            cluster.metrics.to_dict()
            if cluster.metrics is not None
            else {"kinds": {}, "per_rank": [], "counters": {}, "gauges": {}}
        ),
        "counters": (
            dict(sorted(cluster.metrics.counters.items()))
            if cluster.metrics is not None
            else {}
        ),
        "fabric": {
            "messages": fabric.messages_sent,
            "bytes": fabric.bytes_sent,
            "dropped": fabric.dropped,
            "corrupted": fabric.corrupted,
            "duplicated": fabric.duplicated,
            "delayed": fabric.delayed,
            "blackholed": fabric.blackholed,
        },
        "comm_matrix": None,
        "critical_path": None,
    }
    plan = getattr(cluster, "shard_plan", None)
    data["meta"]["shards"] = plan.nshards if plan is not None else 1
    tel = getattr(cluster, "telemetry", None)
    if tel is not None:
        data["meta"]["telemetry"] = {
            "path": str(tel.path),
            "snapshots": tel.snapshots_written,
        }
    if plan is not None:
        # Partition + protocol statistics from the conservative sharded
        # dispatcher (epochs, null messages, cross-shard traffic, per-shard
        # event counts). Purely descriptive: the schedule itself is
        # bit-identical to the sequential dispatcher's.
        data["shards"] = cluster.engine.shard_stats()
    if failure is not None:
        data["failure"] = {
            "error": type(failure).__name__,
            "message": str(failure),
            "failed_images": sorted(getattr(cluster, "failed_ranks", ())),
            "failure_log": [dict(e) for e in getattr(cluster, "failure_log", [])],
        }
        if tel is not None and tel.last is not None:
            # The progress trail the run died with (satellite of the live
            # tap): final snapshot at the moment of death.
            data["failure"]["last_telemetry"] = tel.last
    cm = cluster.comm_matrix
    if cm is not None:
        entry: dict[str, Any] = {
            "nranks": cm.nranks,
            "total_messages": cm.total_messages(),
            "total_bytes": cm.total_bytes(),
            "top_pairs": [list(p) for p in cm.top_pairs(16)],
        }
        if cm.nranks <= _DENSE_MATRIX_LIMIT:
            entry["messages"] = cm.messages.tolist()
            entry["bytes"] = cm.bytes.tolist()
        data["comm_matrix"] = entry
    if cluster.tracer.events:
        data["critical_path"] = critical_path(
            cluster.tracer.events, makespan=cluster.elapsed
        ).to_dict()
    validate_report(data)
    return RunReport(data)


# -- diffing ---------------------------------------------------------------


def _rel(old: float, new: float) -> float | None:
    if old == 0:
        return None if new == 0 else float("inf")
    return (new - old) / old


@dataclass
class ReportDiff:
    """Structured comparison of two run reports (bench-regression triage)."""

    a_label: str
    b_label: str
    rows: list[tuple[str, float, float, float | None]]  # metric, a, b, rel

    def regressions(self, threshold: float) -> list[tuple[str, float, float, float]]:
        """Rows whose relative change exceeds ``threshold`` (e.g. 0.05)."""
        out = []
        for metric, a, b, rel in self.rows:
            if rel is not None and rel != 0 and abs(rel) > threshold:
                out.append((metric, a, b, rel))
        return out

    def render(self, *, threshold: float | None = None, limit: int = 40) -> str:
        rows = [
            (m, a, b, rel)
            for m, a, b, rel in self.rows
            if rel is not None and rel != 0
        ]
        rows.sort(key=lambda r: (-abs(r[3]), r[0]))
        table_rows = [
            [m, f"{a:g}", f"{b:g}", f"{rel * 100:+.2f}%"]
            for m, a, b, rel in rows[:limit]
        ]
        if not table_rows:
            return f"no differences: {self.a_label} == {self.b_label}"
        text = format_table(
            ["metric", self.a_label, self.b_label, "change"],
            table_rows,
            title=f"report diff ({len(rows)} changed metrics)",
        )
        if threshold is not None:
            bad = self.regressions(threshold)
            text += (
                f"\n{len(bad)} metric(s) changed beyond {threshold * 100:.1f}%"
                if bad
                else f"\nall changes within {threshold * 100:.1f}%"
            )
        return text


def diff_reports(
    a: RunReport, b: RunReport, *, a_label: str = "a", b_label: str = "b"
) -> ReportDiff:
    """Flatten both reports to scalar metrics and compare them pairwise."""

    def flatten(r: RunReport) -> dict[str, float]:
        out: dict[str, float] = {"meta.makespan": r.data["meta"]["makespan"]}
        for cat, v in r.data["profiler"]["breakdown"].items():
            out[f"profiler.{cat}.mean_s"] = v
        for cat, v in r.data["profiler"]["counts"].items():
            out[f"profiler.{cat}.count"] = v
        for kind, s in r.data["ops"]["kinds"].items():
            out[f"ops.{kind}.calls"] = s["calls"]
            out[f"ops.{kind}.bytes"] = s["bytes"]
            out[f"ops.{kind}.time_s"] = s["time"]
        for name, v in r.data.get("counters", {}).items():
            out[f"counters.{name}"] = v
        fabric = r.data["fabric"]
        out["fabric.messages"] = fabric["messages"]
        out["fabric.bytes"] = fabric["bytes"]
        cp = r.data.get("critical_path")
        if cp:
            for cat, v in cp["by_category"].items():
                out[f"critical_path.{cat}.s"] = v
        return out

    fa, fb = flatten(a), flatten(b)
    rows = [
        (metric, fa.get(metric, 0.0), fb.get(metric, 0.0),
         _rel(fa.get(metric, 0.0), fb.get(metric, 0.0)))
        for metric in sorted(set(fa) | set(fb))
    ]
    return ReportDiff(a_label=a_label, b_label=b_label, rows=rows)


def diff_reports_all(
    baseline: RunReport,
    candidates: list[RunReport],
    *,
    baseline_label: str = "baseline",
    labels: list[str] | None = None,
) -> list[ReportDiff]:
    """Compare every candidate report against one baseline.

    Returns one :class:`ReportDiff` per candidate, in input order — the
    N-reports-vs-baseline mode behind ``python -m repro.obs diff --all``.
    """
    if labels is None:
        labels = [f"report[{i}]" for i in range(len(candidates))]
    if len(labels) != len(candidates):
        raise ValueError(
            f"{len(candidates)} candidate report(s) but {len(labels)} label(s)"
        )
    return [
        diff_reports(baseline, cand, a_label=baseline_label, b_label=label)
        for cand, label in zip(candidates, labels)
    ]
