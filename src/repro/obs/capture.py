"""Process-wide capture: make every ``run_caf`` emit observability artifacts.

The experiments runner (and anything else that builds clusters internally)
cannot thread ``metrics=True`` through every call site; this module is the
same force-enable pattern the sanitizer uses. While a capture is active,
``run_caf`` enables metrics (and optionally tracing) on every cluster it
builds and writes one ``run-NNNN.report.json`` (and ``run-NNNN.trace.json``)
per run into the capture directory, tagged with the program name so sweeps
stay attributable.

Scope it with the context manager::

    with obs.capture(out_dir, trace=False):
        ...  # every run_caf inside emits run-NNNN.report.json

or drive it imperatively (the CLI flags do) with :func:`start` / :func:`stop`.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from typing import Any

_state: dict[str, Any] = {
    "dir": None,
    "trace": False,
    "seq": 0,
    "written": [],
    "live": False,
    "live_interval": None,
}


def start(
    out_dir: str | os.PathLike,
    *,
    trace: bool = False,
    live: bool = False,
    live_interval: float | None = None,
) -> None:
    """Begin capturing: subsequent ``run_caf`` calls emit artifacts.

    ``live=True`` additionally arms the streaming telemetry tap on every
    captured run: each run writes ``run-NNNN.telemetry.jsonl`` next to its
    report (``live_interval`` overrides the snapshot cadence in wall
    seconds; ``None`` keeps the tap's default).
    """
    path = pathlib.Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    _state.update(
        dir=path, trace=trace, seq=0, written=[],
        live=live, live_interval=live_interval,
    )


def stop() -> list[pathlib.Path]:
    """End the capture; returns the artifact paths written."""
    written = list(_state["written"])
    _state.update(
        dir=None, trace=False, seq=0, written=[],
        live=False, live_interval=None,
    )
    return written


def active() -> bool:
    return _state["dir"] is not None


def trace_forced() -> bool:
    return active() and bool(_state["trace"])


def live_forced() -> bool:
    return active() and bool(_state["live"])


def live_interval() -> float | None:
    return _state["live_interval"]


def telemetry_path() -> pathlib.Path | None:
    """Stream path for the *next* captured run (None unless live-armed).

    Uses the sequence number :func:`emit` will consume for the same run —
    captured runs are sequential in-process, so the telemetry stream and
    the report share their ``run-NNNN`` stem.
    """
    if not live_forced():
        return None
    return _state["dir"] / f"run-{_state['seq']:04d}.telemetry.jsonl"


@contextlib.contextmanager
def capture(
    out_dir: str | os.PathLike,
    *,
    trace: bool = False,
    live: bool = False,
    live_interval: float | None = None,
):
    """Context-managed capture window; yields the output directory."""
    start(out_dir, trace=trace, live=live, live_interval=live_interval)
    try:
        yield pathlib.Path(out_dir)
    finally:
        stop()


def emit(
    cluster,
    *,
    backend: str | None = None,
    app: str | None = None,
    failure: BaseException | None = None,
) -> None:
    """Write this run's artifacts if a capture is active (run_caf calls it).

    ``failure`` marks the artifact as a partial, failed-run report (see
    :func:`repro.obs.report.build_report`); run_caf passes the exception
    through on its error path so crashed/hung runs still leave evidence.
    """
    out: pathlib.Path | None = _state["dir"]
    if out is None:
        return
    from repro.obs.report import build_report

    seq = _state["seq"]
    _state["seq"] = seq + 1
    label = f"run-{seq:04d}" + (f"-{app}" if app else "")
    report_path = out / f"run-{seq:04d}.report.json"
    build_report(
        cluster, backend=backend, label=label, app=app, failure=failure
    ).to_json(str(report_path))
    _state["written"].append(report_path)
    tel = getattr(cluster, "telemetry", None)
    if tel is not None and tel.path.exists():
        _state["written"].append(tel.path)
    if _state["trace"] and cluster.tracer.events:
        trace_path = out / f"run-{seq:04d}.trace.json"
        cluster.tracer.to_chrome_trace(str(trace_path))
        _state["written"].append(trace_path)
