"""Critical-path analysis over trace events.

The profiler's breakdown says *where the mean rank spent time*; this module
answers the sharper question the paper's Figure 4/8 discussions turn on:
*which dependency chain actually determines the makespan*. Starting from the
last-finishing activity, it walks backwards through the trace — staying on a
rank while local work chains, hopping along a message (a ``transfer`` event)
when an arrival is what unblocked the rank — and attributes every segment of
the resulting path to its innermost profiler category, ``network`` for wire
time, or ``idle`` for unattributed gaps.

The walk is a heuristic (the trace records activities, not explicit
dependence edges) but a deterministic one: ties are broken by fixed keys, so
the same trace always yields the same path. It needs a run with tracing
enabled (``run_caf(..., trace=True)``); with no events it returns an empty
path.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any

#: Two trace timestamps closer than this are "the same instant" (virtual
#: times are exact float sums of modeled costs; 1 ps is far below any cost).
_EPS = 1e-12

#: Safety cap on path length (a step consumes at least one event, so this
#: only triggers on pathological multi-million-event traces).
_MAX_STEPS = 200_000


@dataclass(frozen=True)
class PathStep:
    """One backward segment of the critical path."""

    kind: str  # "region" | "transfer" | "idle"
    rank: int  # the rank doing the work (transfer: the *source*)
    category: str  # profiler category, "network", or "idle"
    t0: float
    t1: float
    detail: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The dependency chain ending at the makespan, plus its attribution."""

    makespan: float
    steps: list[PathStep]  # ordered from t=0 towards the makespan
    by_category: dict[str, float]
    #: Fraction of the makespan the walk attributed (1.0 = gap-free path).
    coverage: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan": self.makespan,
            "coverage": self.coverage,
            "by_category": {k: self.by_category[k] for k in sorted(self.by_category)},
            "steps": [
                {
                    "kind": s.kind,
                    "rank": s.rank,
                    "category": s.category,
                    "t0": s.t0,
                    "t1": s.t1,
                    **({"detail": s.detail} if s.detail else {}),
                }
                for s in self.steps
            ],
        }


def critical_path(events, makespan: float | None = None) -> CriticalPath:
    """Walk the dependency chain ending at the makespan.

    ``events`` is a sequence of :class:`repro.sim.trace.TraceEvent`; only
    ``region`` and ``transfer`` events participate. Returns a
    :class:`CriticalPath` whose ``by_category`` sums path time by profiler
    category (plus ``network`` and ``idle``).
    """
    regions: dict[int, list] = {}
    arrivals: dict[int, list] = {}
    end = 0.0
    for e in events:
        if not math.isfinite(e.t1):
            continue  # dropped/blackholed transfers never delivered
        if e.kind == "region":
            regions.setdefault(e.rank, []).append(e)
            end = max(end, e.t1)
        elif e.kind == "transfer":
            dst = e.detail.get("dst")
            if dst is None or e.detail.get("fault"):
                continue
            arrivals.setdefault(dst, []).append(e)
            end = max(end, e.t1)
    if makespan is None:
        makespan = end
    if not regions and not arrivals:
        return CriticalPath(makespan=makespan, steps=[], by_category={}, coverage=0.0)

    # Sorted by end time; parallel key lists for bisect. Ties in t1 order by
    # t0 so the innermost (latest-starting) nested region sorts last.
    for lst in regions.values():
        lst.sort(key=lambda e: (e.t1, e.t0, e.rank))
    for lst in arrivals.values():
        lst.sort(key=lambda e: (e.t1, e.t0, e.rank))
    reg_ends = {r: [e.t1 for e in lst] for r, lst in regions.items()}
    arr_ends = {r: [e.t1 for e in lst] for r, lst in arrivals.items()}
    # Per-rank consumption pointers (exclusive upper bound into the sorted
    # lists). Pointers only move left, bounding total work by event count.
    reg_ptr = {r: len(lst) for r, lst in regions.items()}
    arr_ptr = {r: len(lst) for r, lst in arrivals.items()}

    # Start on the rank whose last region finishes the run (smallest rank on
    # ties); fall back to the latest arrival's destination.
    start_rank, start_t = None, -1.0
    for r in sorted(regions):
        t1 = regions[r][-1].t1
        if t1 > start_t + _EPS:
            start_rank, start_t = r, t1
    if start_rank is None:
        for r in sorted(arrivals):
            t1 = arrivals[r][-1].t1
            if t1 > start_t + _EPS:
                start_rank, start_t = r, t1
    assert start_rank is not None

    steps: list[PathStep] = []
    rank, t = start_rank, start_t

    def _candidate(lists, ends, ptrs):
        """Latest unconsumed event on ``rank`` ending at or before ``t``;
        returns (event, index) or (None, -1)."""
        lst = lists.get(rank)
        if not lst:
            return None, -1
        hi = min(ptrs[rank], bisect_right(ends[rank], t + _EPS))
        if hi <= 0:
            return None, -1
        # Among ties in end time, the sort already placed the innermost
        # (max t0) last — exactly the event we want.
        return lst[hi - 1], hi - 1

    while t > _EPS and len(steps) < _MAX_STEPS:
        reg, ri = _candidate(regions, reg_ends, reg_ptr)
        arr, ai = _candidate(arrivals, arr_ends, arr_ptr)
        if reg is None and arr is None:
            break
        # Prefer the message when it ends at (or after) the local event's
        # end: an arrival at the instant a wait-region closes is the true
        # cross-rank dependency (the notify behind an event_wait).
        use_arrival = arr is not None and (reg is None or arr.t1 >= reg.t1 - _EPS)
        chosen = arr if use_arrival else reg
        if chosen.t1 < t - _EPS:
            steps.append(
                PathStep(kind="idle", rank=rank, category="idle", t0=chosen.t1, t1=t)
            )
        if use_arrival:
            arr_ptr[rank] = ai
            steps.append(
                PathStep(
                    kind="transfer",
                    rank=arr.rank,
                    category="network",
                    t0=arr.t0,
                    t1=min(arr.t1, t),
                    detail={"src": arr.rank, "dst": rank, "nbytes": arr.detail.get("nbytes", 0)},
                )
            )
            rank, t = arr.rank, arr.t0
        else:
            reg_ptr[rank] = ri
            steps.append(
                PathStep(
                    kind="region",
                    rank=rank,
                    category=str(reg.detail.get("category", "uncategorized")),
                    t0=reg.t0,
                    t1=min(reg.t1, t),
                )
            )
            t = reg.t0

    steps.reverse()
    by_category: dict[str, float] = {}
    attributed = 0.0
    for s in steps:
        d = max(s.duration, 0.0)
        by_category[s.category] = by_category.get(s.category, 0.0) + d
        attributed += d
    coverage = attributed / makespan if makespan > 0 else 0.0
    return CriticalPath(
        makespan=makespan, steps=steps, by_category=by_category, coverage=coverage
    )
