"""Live run telemetry: a streaming JSONL tap on a running simulation.

PR 9's paper-scale runs (4096-rank RA is ~500s of wall clock) are black
boxes until they finish; this module is the heartbeat that makes them
observable *while they run*. :class:`LiveTelemetry` attaches to a cluster
the same way the sanitizer and metrics layers do — a handle cached on the
engine, guarded by one ``is None`` test per executed resume — and
periodically appends one JSON snapshot line to a ``*.telemetry.jsonl``
stream: sim-time and wall-time progress, events/s, per-rank run/blocked
state with blocked call sites (the watchdog's bookkeeping), the sharded
dispatcher's LBTS window and null-message/cross-shard counters, and host
RSS.

The tap only *reads* engine state and writes to its own file, so the
executed schedule — event-order digest, virtual makespan, profiler totals
— is bit-identical with telemetry on or off, on every dispatcher
(`benchmarks/test_bench_obs_live.py` pins the wall-clock overhead ≤ 3%).

Enable per run with ``run_caf(..., live="run.telemetry.jsonl")``, per CLI
with ``python -m repro.apps <app> --live PATH`` or
``python -m repro.experiments ... --metrics DIR --live``, and render with
``python -m repro.obs top PATH`` (``--follow`` tails a running stream).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, TextIO

from repro.obs.report import SchemaError
from repro.util.tables import format_table

SCHEMA_NAME = "repro.obs/telemetry"
SCHEMA_VERSION = 1

#: Default wall-clock seconds between snapshots.
DEFAULT_INTERVAL_S = 0.5
#: Executed resumes between wall-clock checks (keeps the hot path to a
#: counter decrement; the clock is only read every N events).
DEFAULT_CHECK_EVERY = 512
#: Most-stale blocked ranks detailed per snapshot (the rest are counted).
DEFAULT_MAX_BLOCKED = 16


def _rss_bytes() -> int:
    """Resident set size of this process, in bytes (0 if unknowable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        try:
            import resource

            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:  # pragma: no cover - exotic platforms
            return 0


class LiveTelemetry:
    """One run's streaming telemetry tap.

    Construct with the output path (optionally interval/cadence and run
    context), hand it to ``run_caf(live=...)`` / ``Cluster(live=...)``,
    and the engine drives :meth:`tick` on every executed resume. Snapshots
    are emitted at most every ``interval_s`` wall seconds (checked every
    ``check_every`` events); ``interval_s=0`` emits on every check, which
    is what the tests use to force dense streams from short runs.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        interval_s: float | None = None,
        check_every: int = DEFAULT_CHECK_EVERY,
        max_blocked: int = DEFAULT_MAX_BLOCKED,
        backend: str | None = None,
        app: str | None = None,
        label: str | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.interval_s = (
            DEFAULT_INTERVAL_S if interval_s is None else float(interval_s)
        )
        if self.interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {self.interval_s}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        #: Executed resumes between wall-clock checks. The engine holds the
        #: countdown itself (one decrement per event when armed) and calls
        #: :meth:`tick` only when it expires.
        self.check_every = check_every
        self._max_blocked = max_blocked
        self.backend = backend
        self.app = app
        self.label = label
        self._cluster: Any = None
        self._fh: TextIO | None = None
        self._seq = 0
        self._t0 = 0.0
        self._last_wall = 0.0
        self._last_events = 0
        self._finalized = False
        #: The most recent snapshot dict (errors and failure reports stamp
        #: this as the run's progress trail).
        self.last: dict[str, Any] | None = None

    # -- lifecycle -------------------------------------------------------

    def attach(self, cluster: Any) -> None:
        """Bind to a cluster and write the stream's meta header line."""
        if self._cluster is not None:
            raise SchemaError("LiveTelemetry is single-run; already attached")
        self._cluster = cluster
        plan = getattr(cluster, "shard_plan", None)
        now = time.monotonic()
        self._t0 = now
        self._last_wall = now - self.interval_s  # first check may emit
        meta = {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "type": "meta",
            "nranks": cluster.nranks,
            "spec": cluster.spec.name,
            "seed": cluster.seed,
            "backend": self.backend,
            "app": self.app,
            "label": self.label,
            "shards": plan.nshards if plan is not None else 1,
            "shard_ranks": plan.sizes() if plan is not None else None,
            "interval_s": self.interval_s,
            "check_every": self.check_every,
            "pid": os.getpid(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        self._write(meta)

    def tick(self, engine: Any) -> None:
        """Engine heartbeat: called every ``check_every`` executed resumes.

        Reads state and writes to the tap's own file only — never touches
        the engine — so the event order is unchanged by construction.
        """
        wall = time.monotonic()
        if wall - self._last_wall < self.interval_s:
            return
        self._emit(wall, final=False, outcome=None)

    def capture_now(
        self,
        *,
        outcome: str,
        blocked: dict[int, str] | None = None,
        last_progress: dict[int, float] | None = None,
    ) -> dict[str, Any]:
        """Emit a final snapshot immediately (the failure-stamping path).

        ``blocked`` / ``last_progress`` (rank -> call site / rank -> time,
        the watchdog's bookkeeping carried by ``DeadlockError`` and
        ``SimTimeoutError``) override the per-proc state walk: by the time
        those errors surface, the engine has already unwound the fibers,
        so live proc states read "done" for ranks that died blocked.
        """
        snap = self._emit(
            time.monotonic(),
            final=True,
            outcome=outcome,
            blocked_override=blocked,
            last_progress=last_progress,
        )
        self._finalized = True
        return snap

    def close(self, *, outcome: str = "ok") -> None:
        """Emit the final snapshot (unless one exists) and close the file."""
        if self._fh is None:
            return
        if not self._finalized:
            self._emit(time.monotonic(), final=True, outcome=outcome)
            self._finalized = True
        self._fh.close()
        self._fh = None

    @property
    def snapshots_written(self) -> int:
        return self._seq

    # -- snapshot assembly ----------------------------------------------

    def _emit(
        self,
        wall: float,
        *,
        final: bool,
        outcome: str | None,
        blocked_override: dict[int, str] | None = None,
        last_progress: dict[int, float] | None = None,
    ) -> dict[str, Any]:
        cluster = self._cluster
        engine = cluster.engine
        events = engine.events_executed
        dt = wall - self._last_wall
        de = events - self._last_events
        nranks = cluster.nranks
        running = blocked = done = 0
        blocked_rows: list[dict[str, Any]] = []
        if blocked_override is not None:
            lp = last_progress or {}
            blocked = len(blocked_override)
            done = nranks - blocked
            for rank, site in blocked_override.items():
                blocked_rows.append(
                    {
                        "rank": rank,
                        "site": site,
                        "last_progress": lp.get(rank, 0.0),
                    }
                )
        else:
            for proc in engine.procs[:nranks]:
                if proc.state == proc.DONE:
                    done += 1
                elif proc.state == proc.RUNNING:
                    running += 1
                else:
                    blocked += 1
                    blocked_rows.append(
                        {
                            "rank": proc.pid,
                            "site": proc.block_reason,
                            "last_progress": proc.last_progress,
                        }
                    )
        blocked_rows.sort(key=lambda r: (r["last_progress"], r["rank"]))
        snap: dict[str, Any] = {
            "type": "snapshot",
            "seq": self._seq,
            "wall_s": wall - self._t0,
            "sim_s": engine.now,
            "events": events,
            "events_per_s": de / dt if dt > 0 else 0.0,
            "stale_wakes": engine.stale_wakes_dropped,
            "ranks": {
                "total": nranks,
                "running": running,
                "blocked": blocked,
                "done": done,
            },
            "blocked": blocked_rows[: self._max_blocked],
            "failed_images": sorted(cluster.failed_ranks),
            "rss_bytes": _rss_bytes(),
            "shards": self._shard_snapshot(engine),
            "final": final,
        }
        if outcome is not None:
            snap["outcome"] = outcome
        self._seq += 1
        self._last_wall = wall
        self._last_events = events
        self.last = snap
        self._write(snap)
        return snap

    def _shard_snapshot(self, engine: Any) -> dict[str, Any] | None:
        lbts = getattr(engine, "lbts", None)
        if lbts is None:
            return None
        return {
            "nshards": engine.nshards,
            "window": lbts.live_window(),
            "epochs": lbts.epochs,
            "null_messages": lbts.null_messages,
            "cross_messages": engine.cross_messages,
            "cross_bytes": engine.cross_bytes,
            "coordinator_signals": engine.coordinator_signals,
            "lookahead_violations": engine.lookahead_violations,
            "events_per_shard": list(engine.events_per_shard),
        }

    def describe_last(self) -> str:
        """One-line progress trail for error messages."""
        snap = self.last
        if snap is None:
            return f"no snapshots -> {self.path}"
        ranks = snap["ranks"]
        return (
            f"{snap['events']} events, sim t={snap['sim_s']:.9g}s, "
            f"{ranks['blocked']}/{ranks['total']} ranks blocked "
            f"-> {self.path}"
        )

    def _write(self, record: dict[str, Any]) -> None:
        fh = self._fh
        if fh is None:  # pragma: no cover - defensive (closed stream)
            return
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()


# -- stream reading / validation -------------------------------------------


def validate_meta(record: Any) -> None:
    """Schema-check a telemetry stream's meta header line."""

    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise SchemaError(f"invalid telemetry meta: {msg}")

    need(isinstance(record, dict), "not a JSON object")
    need(record.get("schema") == SCHEMA_NAME, f"schema != {SCHEMA_NAME!r}")
    need(record.get("version") == SCHEMA_VERSION, f"version != {SCHEMA_VERSION}")
    need(record.get("type") == "meta", "type != 'meta'")
    need(
        isinstance(record.get("nranks"), int) and record["nranks"] > 0,
        "nranks",
    )
    need(
        isinstance(record.get("shards"), int) and record["shards"] >= 1,
        "shards",
    )
    need(
        isinstance(record.get("interval_s"), (int, float))
        and record["interval_s"] >= 0,
        "interval_s",
    )


def validate_snapshot(record: Any, *, nranks: int | None = None) -> None:
    """Schema-check one telemetry snapshot line."""

    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise SchemaError(f"invalid telemetry snapshot: {msg}")

    need(isinstance(record, dict), "not a JSON object")
    need(record.get("type") == "snapshot", "type != 'snapshot'")
    need(isinstance(record.get("seq"), int) and record["seq"] >= 0, "seq")
    for fld in ("wall_s", "sim_s", "events_per_s"):
        need(isinstance(record.get(fld), (int, float)), fld)
    need(isinstance(record.get("events"), int) and record["events"] >= 0, "events")
    need(isinstance(record.get("rss_bytes"), int), "rss_bytes")
    need(isinstance(record.get("final"), bool), "final")
    ranks = record.get("ranks")
    need(isinstance(ranks, dict), "ranks")
    for fld in ("total", "running", "blocked", "done"):
        need(isinstance(ranks.get(fld), int) and ranks[fld] >= 0, f"ranks.{fld}")
    need(
        ranks["running"] + ranks["blocked"] + ranks["done"] == ranks["total"],
        "ranks states do not sum to total",
    )
    if nranks is not None:
        need(ranks["total"] == nranks, "ranks.total != meta.nranks")
    need(isinstance(record.get("blocked"), list), "blocked")
    for row in record["blocked"]:
        need(isinstance(row, dict), "blocked[] row")
        need(isinstance(row.get("rank"), int), "blocked[].rank")
        need(isinstance(row.get("site"), str), "blocked[].site")
        need(
            isinstance(row.get("last_progress"), (int, float)),
            "blocked[].last_progress",
        )
    need(isinstance(record.get("failed_images"), list), "failed_images")
    sh = record.get("shards")
    if sh is not None:
        need(isinstance(sh, dict), "shards")
        for fld in (
            "nshards",
            "epochs",
            "null_messages",
            "cross_messages",
            "cross_bytes",
            "coordinator_signals",
            "lookahead_violations",
        ):
            need(isinstance(sh.get(fld), int), f"shards.{fld}")
        need(isinstance(sh.get("events_per_shard"), list), "shards.events_per_shard")
        need(isinstance(sh.get("window"), dict), "shards.window")
    if record.get("final"):
        need(record.get("outcome") in ("ok", "failed"), "final without outcome")


def read_telemetry(
    path: str | os.PathLike,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load and validate a telemetry stream: ``(meta, snapshots)``.

    Tolerates a truncated trailing line (the run may still be writing) but
    rejects structurally invalid records.
    """
    meta: dict[str, Any] | None = None
    snaps: list[dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated in-flight tail line
            if meta is None:
                validate_meta(record)
                meta = record
                continue
            validate_snapshot(record, nranks=meta["nranks"])
            expect_seq = snaps[-1]["seq"] + 1 if snaps else 0
            if record["seq"] != expect_seq:
                raise SchemaError(
                    f"telemetry seq gap at line {lineno}: "
                    f"expected {expect_seq}, got {record['seq']}"
                )
            snaps.append(record)
    if meta is None:
        raise SchemaError(f"{path}: empty telemetry stream (no meta line)")
    return meta, snaps


# -- rendering (`python -m repro.obs top`) ----------------------------------


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def render_top(
    meta: dict[str, Any],
    snaps: list[dict[str, Any]],
    *,
    history: int = 8,
) -> str:
    """Human-readable view of a telemetry stream (latest state + history)."""
    name = meta.get("label") or meta.get("app") or "run"
    out = [
        f"== live telemetry: {name} x{meta['nranks']} images "
        f"(backend={meta.get('backend') or '?'}, spec={meta.get('spec', '?')}) =="
    ]
    if not snaps:
        out.append("no snapshots yet")
        return "\n".join(out)
    cur = snaps[-1]
    if cur.get("final"):
        status = f"FINAL ({cur.get('outcome', '?')})"
    else:
        status = "RUNNING"
    out.append(
        f"status: {status} | {len(snaps)} snapshot(s) | "
        f"wall {cur['wall_s']:.2f}s"
    )
    out.append(
        f"sim t={cur['sim_s']:.9g}s | {cur['events']} events "
        f"({cur['events_per_s']:,.0f} ev/s) | rss {_fmt_bytes(cur['rss_bytes'])}"
    )
    ranks = cur["ranks"]
    out.append(
        f"ranks: {ranks['running']} running, {ranks['blocked']} blocked, "
        f"{ranks['done']} done / {ranks['total']}"
    )
    if cur["failed_images"]:
        out.append(f"failed images: {cur['failed_images']}")
    sh = cur.get("shards")
    if sh:
        win = sh["window"]
        bound = win.get("bound")
        bound_txt = f"{bound:.9g}" if isinstance(bound, (int, float)) else "-"
        out.append(
            f"shards: {sh['nshards']} | LBTS window start {win['start']:.9g} "
            f"bound {bound_txt} (lookahead {win['lookahead']:.3e}s) | "
            f"{sh['epochs']} epochs, {sh['null_messages']} null msgs, "
            f"{sh['cross_messages']} cross msgs "
            f"({_fmt_bytes(sh['cross_bytes'])}), "
            f"{sh['coordinator_signals']} coord signals"
        )
    if cur["blocked"]:
        rows = [
            [r["rank"], r["site"], f"{r['last_progress']:.9g}"]
            for r in cur["blocked"]
        ]
        title = f"blocked ranks (most stale first, {ranks['blocked']} total)"
        out.append(
            format_table(["rank", "blocked in", "last progress t"], rows, title=title)
        )
    if len(snaps) > 1:
        tail = snaps[-history:]
        rows = [
            [
                s["seq"],
                f"{s['wall_s']:.2f}",
                f"{s['sim_s']:.4g}",
                s["events"],
                f"{s['events_per_s']:,.0f}",
                s["ranks"]["blocked"],
            ]
            for s in tail
        ]
        out.append(
            format_table(
                ["seq", "wall s", "sim s", "events", "ev/s", "blocked"],
                rows,
                title=f"recent snapshots ({len(snaps)} total)",
            )
        )
    return "\n".join(out)


def follow_top(
    path: str | os.PathLike,
    *,
    interval: float = 1.0,
    max_wait: float | None = None,
    out: Any = None,
) -> int:
    """Re-render a stream until its final snapshot lands (``top --follow``).

    Returns 0 when a final snapshot was seen, 2 if ``max_wait`` wall
    seconds elapsed first.
    """
    import sys

    stream = out if out is not None else sys.stdout
    t0 = time.monotonic()
    while True:
        meta, snaps = read_telemetry(path)
        print(render_top(meta, snaps), file=stream)
        if snaps and snaps[-1].get("final"):
            return 0
        if max_wait is not None and time.monotonic() - t0 >= max_wait:
            return 2
        print("", file=stream)
        time.sleep(interval)
