"""``python -m repro.obs`` — see :mod:`repro.obs.cli`."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    try:
        rc = main()
    except BrokenPipeError:  # e.g. `... | head`
        sys.stderr.close()
        rc = 0
    sys.exit(rc)
