"""Structured op-level metrics: counters, gauges, log-bucketed histograms.

The registry records, per rank and per op kind (``mpi.rput``, ``mpi.flush_all``,
``gasnet.am``, ``caf.event_notify``, ...), how many times the op was called,
how many payload bytes it moved, and how much *virtual* time the caller spent
inside it — the per-op RMA statistics that separate "slow" from "why slow" in
the paper's Figure 4/8 analyses (e.g. ``mpi.flush_all`` time-per-call growing
linearly in P is the RandomAccess ``event_notify`` story, readable straight
off the report).

Cost discipline mirrors the sanitizer's: the metrics handle is fixed at
cluster construction and cached on every hot object (``RankCtx.metrics``,
``Window._obs``, ``GasnetRank`` ...), so a disabled run pays exactly one
attribute load plus one ``is None`` test per instrumented op, and an enabled
run never touches the engine (no sleeps, no events) — virtual timelines and
event-order digests are bit-identical with metrics on or off.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sim import irhook as _irhook

__all__ = ["OpStats", "Metrics", "CommMatrix", "size_bucket", "latency_bucket"]


def size_bucket(nbytes: int) -> int:
    """Log2 bucket index for a message size: bucket ``b`` covers
    ``[2**(b-1), 2**b)`` bytes, with bucket 0 = zero bytes."""
    return int(nbytes).bit_length()


def latency_bucket(seconds: float) -> int:
    """Log2 bucket index over integer nanoseconds (bucket 0 = sub-ns/zero)."""
    return int(seconds * 1e9).bit_length()


def bucket_bounds(bucket: int) -> tuple[int, int]:
    """Inclusive-exclusive integer bounds covered by a log2 bucket."""
    if bucket <= 0:
        return (0, 1)
    return (1 << (bucket - 1), 1 << bucket)


class OpStats:
    """Accumulated statistics of one (rank, op kind) pair."""

    __slots__ = ("calls", "nbytes", "time", "size_hist", "lat_hist")

    def __init__(self) -> None:
        self.calls = 0
        self.nbytes = 0
        self.time = 0.0
        # bucket index -> count; dicts stay tiny (a handful of buckets).
        self.size_hist: dict[int, int] = {}
        self.lat_hist: dict[int, int] = {}

    def add(self, nbytes: int, seconds: float) -> None:
        self.calls += 1
        self.nbytes += nbytes
        self.time += seconds
        sb = int(nbytes).bit_length()
        self.size_hist[sb] = self.size_hist.get(sb, 0) + 1
        lb = int(seconds * 1e9).bit_length()
        self.lat_hist[lb] = self.lat_hist.get(lb, 0) + 1

    def merge(self, other: "OpStats") -> None:
        self.calls += other.calls
        self.nbytes += other.nbytes
        self.time += other.time
        for b, c in other.size_hist.items():
            self.size_hist[b] = self.size_hist.get(b, 0) + c
        for b, c in other.lat_hist.items():
            self.lat_hist[b] = self.lat_hist.get(b, 0) + c

    @property
    def time_per_call(self) -> float:
        return self.time / self.calls if self.calls else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "bytes": self.nbytes,
            "time": self.time,
            "size_hist": {str(b): self.size_hist[b] for b in sorted(self.size_hist)},
            "lat_hist": {str(b): self.lat_hist[b] for b in sorted(self.lat_hist)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpStats calls={self.calls} bytes={self.nbytes} time={self.time:.3e}>"


class Metrics:
    """Per-rank, per-op-kind metrics registry plus named counters/gauges.

    ``record`` is the hot path; everything else is assembly-time reporting.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        #: rank -> op kind -> OpStats
        self.ops: list[dict[str, OpStats]] = [{} for _ in range(nranks)]
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    # -- hot path --------------------------------------------------------

    def record(self, rank: int, kind: str, nbytes: int = 0, seconds: float = 0.0) -> None:
        """Record one completed op of ``kind`` on ``rank``."""
        rec = _irhook.RECORDER
        if rec is not None:
            rec.on_obs(rank, kind, nbytes, seconds)
        per_rank = self.ops[rank]
        stats = per_rank.get(kind)
        if stats is None:
            stats = per_rank[kind] = OpStats()
        stats.add(nbytes, seconds)

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- queries ---------------------------------------------------------

    def op(self, rank: int, kind: str) -> OpStats:
        """The (rank, kind) stats, creating an empty record if absent."""
        per_rank = self.ops[rank]
        stats = per_rank.get(kind)
        if stats is None:
            stats = per_rank[kind] = OpStats()
        return stats

    def kinds(self) -> list[str]:
        seen: set[str] = set()
        for per_rank in self.ops:
            seen.update(per_rank)
        return sorted(seen)

    def aggregate(self, kind: str) -> OpStats:
        """One ``kind``'s stats merged across all ranks."""
        out = OpStats()
        for per_rank in self.ops:
            stats = per_rank.get(kind)
            if stats is not None:
                out.merge(stats)
        return out

    def by_kind(self) -> dict[str, OpStats]:
        return {k: self.aggregate(k) for k in self.kinds()}

    def total_calls(self) -> int:
        return sum(s.calls for per_rank in self.ops for s in per_rank.values())

    def to_dict(self) -> dict[str, Any]:
        """Deterministically-ordered plain-dict form (report assembly)."""
        return {
            "kinds": {k: s.to_dict() for k, s in sorted(self.by_kind().items())},
            "per_rank": [
                {
                    k: {
                        "calls": s.calls,
                        "bytes": s.nbytes,
                        "time": s.time,
                    }
                    for k, s in sorted(per_rank.items())
                }
                for per_rank in self.ops
            ],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
        }


class CommMatrix:
    """P x P traffic accounting (messages and bytes), fed by the fabric.

    One ``record`` per :meth:`NetFabric.transfer`; numpy int64 grids keep it
    O(1) per message and O(P^2) memory only when metrics are enabled.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.messages = np.zeros((nranks, nranks), np.int64)
        self.bytes = np.zeros((nranks, nranks), np.int64)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages[src, dst] += 1
        self.bytes[src, dst] += nbytes

    def total_messages(self) -> int:
        return int(self.messages.sum())

    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    def top_pairs(self, k: int = 10) -> list[tuple[int, int, int, int]]:
        """The ``k`` heaviest (src, dst, messages, bytes) pairs by bytes,
        ties broken by (src, dst) for determinism."""
        pairs = [
            (int(s), int(d), int(self.messages[s, d]), int(self.bytes[s, d]))
            for s, d in zip(*np.nonzero(self.messages))
        ]
        pairs.sort(key=lambda p: (-p[3], -p[2], p[0], p[1]))
        return pairs[:k]

    def to_dict(self) -> dict[str, Any]:
        return {
            "nranks": self.nranks,
            "messages": self.messages.tolist(),
            "bytes": self.bytes.tolist(),
        }
