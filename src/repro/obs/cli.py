"""CLI: render, validate, and diff RunReport artifacts; live-telemetry
``top`` view; scaling-law fitting.

Usage::

    python -m repro.obs render RUNREPORT.json            # human tables
    python -m repro.obs render RUNREPORT.json --prom     # Prometheus text
    python -m repro.obs validate ARTIFACT [...]          # schema check
    python -m repro.obs diff OLD.json NEW.json           # regression triage
    python -m repro.obs diff OLD.json NEW.json --threshold 5 --fail
    python -m repro.obs diff BASE.json N1.json N2.json --all  # N vs baseline
    python -m repro.obs top RUN.telemetry.jsonl          # live/final view
    python -m repro.obs top RUN.telemetry.jsonl --follow # tail a running run
    python -m repro.obs scaling R4.json R8.json R16.json --out scaling.json

``diff --fail`` exits 1 when any metric moved beyond the threshold — the
bench-regression tripwire CI uses on archived reports. ``--all`` compares
every NEW report against the baseline in one invocation and exits 1 (with
``--fail``) if any comparison regresses. ``validate`` dispatches on the
artifact's schema: run reports, telemetry streams (``*.jsonl``), and
scaling reports all check. ``scaling --fail`` exits 1 on any expectation
or static-crosscheck mismatch (the Fig. 4 tripwire: ``mpi.flush_all``
must fit linear-in-P, GASNet ``event_notify`` must not).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs.report import RunReport, SchemaError, diff_reports_all


def _validate_artifact(path: pathlib.Path) -> str:
    """Schema-check one artifact by sniffing its kind; returns a label."""
    from repro.obs import live as live_mod
    from repro.obs import scaling as scaling_mod

    if path.suffix == ".jsonl":
        meta, snaps = live_mod.read_telemetry(path)
        return f"telemetry ({len(snaps)} snapshot(s))"
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema == scaling_mod.SCHEMA_NAME:
        scaling_mod.validate_scaling_report(data)
        return "scaling report"
    RunReport.from_dict(data)
    return "run report"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render, validate, diff, and analyze repro run artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_render = sub.add_parser("render", help="pretty-print a report")
    p_render.add_argument("report", type=pathlib.Path)
    p_render.add_argument(
        "--prom", action="store_true", help="emit Prometheus text instead of tables"
    )

    p_validate = sub.add_parser(
        "validate", help="schema-check run/scaling reports and telemetry streams"
    )
    p_validate.add_argument("reports", type=pathlib.Path, nargs="+")

    p_diff = sub.add_parser("diff", help="compare reports against a baseline")
    p_diff.add_argument("old", type=pathlib.Path, help="baseline report")
    p_diff.add_argument("new", type=pathlib.Path, nargs="+")
    p_diff.add_argument(
        "--all",
        action="store_true",
        help="compare every NEW report against OLD in one invocation",
    )
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="percent change considered significant (default 5)",
    )
    p_diff.add_argument(
        "--fail",
        action="store_true",
        help="exit 1 if any metric moved beyond the threshold",
    )

    p_top = sub.add_parser("top", help="render a live-telemetry JSONL stream")
    p_top.add_argument("telemetry", type=pathlib.Path)
    p_top.add_argument(
        "--follow",
        action="store_true",
        help="keep re-rendering until the final snapshot lands",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval for --follow (default 1s)",
    )
    p_top.add_argument(
        "--max-wait", type=float, default=None, metavar="S",
        help="with --follow: give up (exit 2) after S wall seconds",
    )

    p_scaling = sub.add_parser(
        "scaling", help="fit per-op scaling laws across a rank sweep of reports"
    )
    p_scaling.add_argument(
        "reports", type=pathlib.Path, nargs="+",
        help="RunReports of one app/backend at >= 3 rank counts",
    )
    p_scaling.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the ScalingReport JSON artifact to this path",
    )
    p_scaling.add_argument(
        "--tol", type=float, default=5.0, metavar="PCT",
        help="NRMSE acceptance tolerance in percent (default 5)",
    )
    p_scaling.add_argument(
        "--expect", action="append", default=[], metavar="KIND=ORDER",
        help="declare an expectation (order: const/log/linear/poly); "
        "repeatable, overrides the backend defaults",
    )
    p_scaling.add_argument(
        "--no-default-expectations", action="store_true",
        help="only check expectations given via --expect",
    )
    p_scaling.add_argument(
        "--no-crosscheck", action="store_true",
        help="skip the static cost-model order cross-check",
    )
    p_scaling.add_argument(
        "--fail", action="store_true",
        help="exit 1 on any expectation or static-crosscheck mismatch",
    )

    args = parser.parse_args(argv)

    try:
        if args.command == "render":
            report = RunReport.load(str(args.report))
            print(report.to_prometheus() if args.prom else report.render(), end="")
            if not args.prom:
                print()
            return 0
        if args.command == "validate":
            for path in args.reports:
                label = _validate_artifact(path)
                print(f"{path}: ok ({label})")
            return 0
        if args.command == "top":
            return _top(args)
        if args.command == "scaling":
            return _scaling(args)
        # diff
        if len(args.new) > 1 and not args.all:
            parser.error("multiple NEW reports require --all")
        old = RunReport.load(str(args.old))
        news = [RunReport.load(str(p)) for p in args.new]
        diffs = diff_reports_all(
            old,
            news,
            baseline_label=args.old.name,
            labels=[p.name for p in args.new],
        )
        threshold = args.threshold / 100.0
        failed = 0
        for path, diff in zip(args.new, diffs):
            if args.all:
                print(f"== {args.old.name} vs {path.name} ==")
            print(diff.render(threshold=threshold))
            if args.all:
                print()
            if diff.regressions(threshold):
                failed += 1
        if args.all:
            print(
                f"{failed}/{len(diffs)} report(s) regressed beyond "
                f"{args.threshold:.1f}% vs {args.old.name}"
            )
        if args.fail and failed:
            return 1
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _top(args) -> int:
    from repro.obs.live import follow_top, read_telemetry, render_top

    if args.follow:
        return follow_top(
            args.telemetry, interval=args.interval, max_wait=args.max_wait
        )
    meta, snaps = read_telemetry(args.telemetry)
    print(render_top(meta, snaps))
    return 0


def _scaling(args) -> int:
    from repro.obs.scaling import (
        ScalingReport,
        fit_scaling,
        parse_expectations,
    )

    reports = [RunReport.load(str(p)) for p in args.reports]
    scaling: ScalingReport = fit_scaling(
        reports,
        tol=args.tol / 100.0,
        expectations=parse_expectations(args.expect),
        use_default_expectations=not args.no_default_expectations,
        crosscheck=not args.no_crosscheck,
    )
    print(scaling.render())
    if args.out is not None:
        scaling.to_json(str(args.out))
        print(f"scaling report -> {args.out}")
    mismatches = (
        scaling.data["summary"]["expectation_mismatches"]
        + scaling.data["summary"]["crosscheck_mismatches"]
    )
    if args.fail and mismatches:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
