"""CLI: render, validate, and diff RunReport artifacts.

Usage::

    python -m repro.obs render RUNREPORT.json            # human tables
    python -m repro.obs render RUNREPORT.json --prom     # Prometheus text
    python -m repro.obs validate RUNREPORT.json          # schema check
    python -m repro.obs diff OLD.json NEW.json           # regression triage
    python -m repro.obs diff OLD.json NEW.json --threshold 5 --fail
    python -m repro.obs diff BASE.json N1.json N2.json --all  # N vs baseline

``diff --fail`` exits 1 when any metric moved beyond the threshold — the
bench-regression tripwire CI uses on archived reports. ``--all`` compares
every NEW report against the baseline in one invocation and exits 1 (with
``--fail``) if any comparison regresses.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs.report import RunReport, SchemaError, diff_reports_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render, validate, and diff repro run reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_render = sub.add_parser("render", help="pretty-print a report")
    p_render.add_argument("report", type=pathlib.Path)
    p_render.add_argument(
        "--prom", action="store_true", help="emit Prometheus text instead of tables"
    )

    p_validate = sub.add_parser("validate", help="schema-check a report")
    p_validate.add_argument("reports", type=pathlib.Path, nargs="+")

    p_diff = sub.add_parser("diff", help="compare reports against a baseline")
    p_diff.add_argument("old", type=pathlib.Path, help="baseline report")
    p_diff.add_argument("new", type=pathlib.Path, nargs="+")
    p_diff.add_argument(
        "--all",
        action="store_true",
        help="compare every NEW report against OLD in one invocation",
    )
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="percent change considered significant (default 5)",
    )
    p_diff.add_argument(
        "--fail",
        action="store_true",
        help="exit 1 if any metric moved beyond the threshold",
    )

    args = parser.parse_args(argv)

    try:
        if args.command == "render":
            report = RunReport.load(str(args.report))
            print(report.to_prometheus() if args.prom else report.render(), end="")
            if not args.prom:
                print()
            return 0
        if args.command == "validate":
            for path in args.reports:
                RunReport.load(str(path))
                print(f"{path}: ok")
            return 0
        # diff
        if len(args.new) > 1 and not args.all:
            parser.error("multiple NEW reports require --all")
        old = RunReport.load(str(args.old))
        news = [RunReport.load(str(p)) for p in args.new]
        diffs = diff_reports_all(
            old,
            news,
            baseline_label=args.old.name,
            labels=[p.name for p in args.new],
        )
        threshold = args.threshold / 100.0
        failed = 0
        for path, diff in zip(args.new, diffs):
            if args.all:
                print(f"== {args.old.name} vs {path.name} ==")
            print(diff.render(threshold=threshold))
            if args.all:
                print()
            if diff.regressions(threshold):
                failed += 1
        if args.all:
            print(
                f"{failed}/{len(diffs)} report(s) regressed beyond "
                f"{args.threshold:.1f}% vs {args.old.name}"
            )
        if args.fail and failed:
            return 1
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
