"""repro.obs: op-level metrics, communication matrix, critical path, reports.

The observability layer the paper's own evidence is made of: Figures 4 and 8
are per-category decompositions whose *explanations* live in per-op
statistics — how many ``MPI_WIN_FLUSH_ALL`` calls ``event_notify`` issued and
what each cost as P grew, which P x P traffic pattern an all-to-all produced,
which rank chain actually determined the makespan.

Components
----------
* :class:`Metrics` — per-rank, per-op-kind counters/bytes/virtual-time with
  log-bucketed size and latency histograms; zero engine interaction, so
  timelines are bit-identical with metrics on or off.
* :class:`CommMatrix` — P x P messages/bytes fed by the fabric.
* :func:`critical_path` — backward dependency walk over trace events.
* :class:`RunReport` / :func:`build_report` — the deterministic JSON
  artifact, with Prometheus text export and a diff for regression triage.
* :mod:`repro.obs.capture` — process-wide capture so the experiments runner
  emits reports without code changes.

Enable per run with ``run_caf(..., metrics=True)`` (add ``trace=True`` for
the critical path), or ``python -m repro.apps <app> --metrics out.json``.
``python -m repro.obs render/diff/validate`` works the artifacts.
"""

from repro.obs import capture
from repro.obs.critical import CriticalPath, PathStep, critical_path
from repro.obs.metrics import CommMatrix, Metrics, OpStats
from repro.obs.report import (
    ReportDiff,
    RunReport,
    SchemaError,
    build_report,
    diff_reports,
    diff_reports_all,
    validate_report,
)

__all__ = [
    "CommMatrix",
    "CriticalPath",
    "Metrics",
    "OpStats",
    "PathStep",
    "ReportDiff",
    "RunReport",
    "SchemaError",
    "build_report",
    "capture",
    "critical_path",
    "diff_reports",
    "diff_reports_all",
    "validate_report",
]
