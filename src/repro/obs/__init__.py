"""repro.obs: op-level metrics, communication matrix, critical path, reports.

The observability layer the paper's own evidence is made of: Figures 4 and 8
are per-category decompositions whose *explanations* live in per-op
statistics — how many ``MPI_WIN_FLUSH_ALL`` calls ``event_notify`` issued and
what each cost as P grew, which P x P traffic pattern an all-to-all produced,
which rank chain actually determined the makespan.

Components
----------
* :class:`Metrics` — per-rank, per-op-kind counters/bytes/virtual-time with
  log-bucketed size and latency histograms; zero engine interaction, so
  timelines are bit-identical with metrics on or off.
* :class:`CommMatrix` — P x P messages/bytes fed by the fabric.
* :func:`critical_path` — backward dependency walk over trace events.
* :class:`RunReport` / :func:`build_report` — the deterministic JSON
  artifact, with Prometheus text export and a diff for regression triage.
* :mod:`repro.obs.capture` — process-wide capture so the experiments runner
  emits reports without code changes.
* :class:`LiveTelemetry` (:mod:`repro.obs.live`) — streaming JSONL progress
  snapshots (sim/wall time, events/s, blocked ranks, shard windows, RSS)
  from a read-only engine heartbeat; render with ``python -m repro.obs top``.
* :func:`fit_scaling` / :class:`ScalingReport` (:mod:`repro.obs.scaling`) —
  fit per-op virtual cost vs P across a rank sweep of RunReports, check the
  fits against declared expectations and the static cost model (the Fig. 4
  ``flush_all`` O(P) cliff detector).

Enable per run with ``run_caf(..., metrics=True)`` (add ``trace=True`` for
the critical path, ``live=PATH`` for telemetry), or
``python -m repro.apps <app> --metrics out.json --live out.jsonl``.
``python -m repro.obs render/diff/validate/top/scaling`` works the artifacts.
"""

from repro.obs import capture
from repro.obs.critical import CriticalPath, PathStep, critical_path
from repro.obs.live import LiveTelemetry, read_telemetry, render_top
from repro.obs.metrics import CommMatrix, Metrics, OpStats
from repro.obs.report import (
    ReportDiff,
    RunReport,
    SchemaError,
    build_report,
    diff_reports,
    diff_reports_all,
    validate_report,
)
from repro.obs.scaling import (
    OrderFit,
    ScalingReport,
    fit_order,
    fit_scaling,
    validate_scaling_report,
)

__all__ = [
    "CommMatrix",
    "CriticalPath",
    "LiveTelemetry",
    "Metrics",
    "OpStats",
    "OrderFit",
    "PathStep",
    "ReportDiff",
    "RunReport",
    "ScalingReport",
    "SchemaError",
    "build_report",
    "capture",
    "critical_path",
    "diff_reports",
    "diff_reports_all",
    "fit_order",
    "fit_scaling",
    "read_telemetry",
    "render_top",
    "validate_report",
    "validate_scaling_report",
]
