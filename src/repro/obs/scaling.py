"""Automated scaling-law fitting across RunReports at multiple P.

The paper's headline evidence is a *scaling* story: ``MPI_WIN_FLUSH_ALL``
cost grows linearly in P (Fig. 4) while GASNet's AM-based ``event_notify``
stays O(1). This module turns the obs layer from a reporter into a
detector: feed it RunReports of the same app/backend at several rank
counts and it fits every op kind's per-call virtual cost against the
complexity lattice the symbolic stream tier uses
(:mod:`repro.lint.stream.sym`: const / log / linear / poly), emits a
versioned ScalingReport artifact naming each op's fitted order with
residuals, flags regressions against a declared-expectation table, and
cross-checks the fitted orders against the static cost model
(:func:`repro.ir.costs.static_op_seconds`) — the dynamic half of the
CAF011 flush-all-in-hot-loop analysis, so static and dynamic views
validate each other.

CLI::

    python -m repro.obs scaling ra-4.json ra-8.json ra-16.json \
        --out scaling.json --fail

ROADMAP item 3 (the scalable-RMA what-if pack) consumes this harness: a
tree-structured flush-all or put-with-notification variant is proven by
its fitted order dropping from ``linear`` to ``log``/``const``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.lint.stream.sym import (
    ORDER_CONST,
    ORDER_LINEAR,
    ORDER_LOG,
    ORDER_POLY,
    order_text,
)
from repro.obs.report import RunReport, SchemaError
from repro.util.tables import format_table

SCHEMA_NAME = "repro.obs/scaling-report"
SCHEMA_VERSION = 1

#: Order-lattice constant -> artifact name (and back).
ORDER_NAMES: dict[int, str] = {
    ORDER_CONST: "const",
    ORDER_LOG: "log",
    ORDER_LINEAR: "linear",
    ORDER_POLY: "poly",
}
NAME_ORDERS: dict[str, int] = {v: k for k, v in ORDER_NAMES.items()}

#: Default NRMSE acceptance tolerance for a candidate model.
DEFAULT_TOL = 0.05

#: Candidate models, lowest complexity first: ``y = a + b * f(P)``.
_MODELS: list[tuple[str, int, Callable[[np.ndarray], np.ndarray]]] = [
    ("const", ORDER_CONST, lambda p: np.ones_like(p)),
    ("log", ORDER_LOG, lambda p: np.log2(p)),
    ("linear", ORDER_LINEAR, lambda p: p),
    ("poly", ORDER_POLY, lambda p: p * p),
]

#: Declared expectations per backend: the regression tripwires CI arms.
#: ``mpi.flush_all`` linear-in-P is the paper's Fig. 4 cliff; the MPI
#: lowering of ``event_notify`` rides it, so notify inherits the growth.
#: GASNet's AM-based notify must stay O(1) — that asymmetry *is* the
#: paper's argument.
DEFAULT_EXPECTATIONS: dict[str, dict[str, str]] = {
    "mpi": {
        "mpi.flush_all": "linear",
        # The idle walk (no epoch activity) is the flat cost that keeps the
        # paper's NOTIFY *microbenchmark* constant in P.
        "mpi.flush_all.idle": "const",
        "caf.event_notify": "linear",
    },
    "gasnet": {
        "caf.event_notify": "const",
        "gasnet.am": "const",
    },
}

#: Runtime metric kind -> static cost-model kind, where the two vocabularies
#: differ (the obs layer records the MPI window ops under short names).
_STATIC_KIND: dict[str, str] = {
    "mpi.flush_all": "mpi.win.flush_all",
    "mpi.flush": "mpi.win.flush",
}

#: Kinds whose static per-call *origin* cost model is meaningful to
#: cross-check against the measured per-call cost. Blocking-dominated
#: kinds (event_wait, sync_all, collectives, recv) measure waiting time,
#: which no per-op closed form predicts — comparing those would only
#: manufacture mismatches.
CROSSCHECK_KINDS: frozenset[str] = frozenset(
    {
        "mpi.flush_all",
        "mpi.flush_all.idle",
        "mpi.flush",
        "mpi.put",
        "mpi.rput",
        "mpi.get",
        "mpi.rget",
        "caf.event_notify",
        "gasnet.am",
        "gasnet.put",
        "gasnet.get",
    }
)

#: Rank counts the static model is probed at for order classification.
_STATIC_PROBE_RANKS: tuple[int, ...] = (4, 8, 16, 32, 64)


# -- order fitting ----------------------------------------------------------


@dataclass
class OrderFit:
    """One op kind's fitted complexity: ``cost(P) ~= a + b * f(P)``."""

    name: str  # "const" | "log" | "linear" | "poly"
    order: int  # the sym.py lattice constant
    coeffs: tuple[float, float]  # (a, b); const fits carry b == 0
    nrmse: float  # residual RMS / mean |y| of the chosen model
    candidates: dict[str, float]  # NRMSE of every candidate model

    @property
    def text(self) -> str:
        return order_text(self.order)


def fit_order(
    ranks: Sequence[float], ys: Sequence[float], *, tol: float = DEFAULT_TOL
) -> OrderFit:
    """Classify ``ys`` (per-call cost at each rank count) on the lattice.

    Least-squares fits ``y = a + b * f(P)`` for f in {1, log2 P, P, P^2}
    and picks the *lowest-complexity* model whose normalized RMS residual
    is within ``tol`` (falling back to the best-fitting model when none
    qualifies). Growth models require a positive slope — a cost that
    shrinks with P is not "linear in P" no matter how well a negative
    slope fits.
    """
    p = np.asarray(ranks, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if p.size != y.size:
        raise ValueError(f"{p.size} rank count(s) but {y.size} value(s)")
    if np.unique(p).size < 3:
        raise ValueError(
            f"order fitting needs >= 3 distinct rank counts, got {np.unique(p).tolist()}"
        )
    scale = float(np.mean(np.abs(y)))
    if scale == 0.0:
        return OrderFit(
            "const", ORDER_CONST, (0.0, 0.0), 0.0,
            {name: 0.0 for name, _o, _f in _MODELS},
        )
    fits: dict[str, tuple[int, tuple[float, float], float]] = {}
    for name, order, f in _MODELS:
        if name == "const":
            a, b = float(np.mean(y)), 0.0
            resid = y - a
        else:
            design = np.column_stack([np.ones_like(p), f(p)])
            coef, *_rest = np.linalg.lstsq(design, y, rcond=None)
            a, b = float(coef[0]), float(coef[1])
            resid = y - design @ coef
        nrmse = float(np.sqrt(np.mean(resid * resid))) / scale
        fits[name] = (order, (a, b), nrmse)
    candidates = {name: fit[2] for name, fit in fits.items()}

    def acceptable(name: str) -> bool:
        return name == "const" or fits[name][1][1] > 0.0

    for name, _order, _f in _MODELS:  # lowest complexity first
        order, coeffs, nrmse = fits[name]
        if acceptable(name) and nrmse <= tol:
            return OrderFit(name, order, coeffs, nrmse, candidates)
    best = min(
        (name for name, _o, _f in _MODELS if acceptable(name)),
        key=lambda name: fits[name][2],
    )
    order, coeffs, nrmse = fits[best]
    return OrderFit(best, order, coeffs, nrmse, candidates)


# -- static cross-check -----------------------------------------------------


def static_order(
    kind: str,
    backend: str | None,
    spec: Any,
    *,
    nbytes: float = 8.0,
    tol: float = DEFAULT_TOL,
) -> int | None:
    """The static cost model's predicted order for ``kind``, or ``None``.

    Probes :func:`repro.ir.costs.static_op_seconds` at several rank counts
    and classifies the curve with the same fitter — so the symbolic
    stream tier's prediction (CAF011's O(trip x P) analysis rides the same
    model) and the measured fit land on one lattice. Kinds outside
    :data:`CROSSCHECK_KINDS` return ``None`` (no meaningful per-call
    model); so does ``caf.event_notify`` on the MPI backend, whose O(P)
    lives in the ``mpi.flush_all`` lowering measured separately in the
    same report.
    """
    if kind not in CROSSCHECK_KINDS:
        return None
    if backend == "mpi" and kind == "caf.event_notify":
        return None
    if kind == "mpi.flush_all.idle":
        # The idle walk is the fixed ``mpi_flush_all_idle`` cost — constant
        # in P by construction; no rank-dependent formula to probe.
        return ORDER_CONST
    from repro.ir.costs import static_op_seconds

    skind = _STATIC_KIND.get(kind, kind)
    nb = np.array([nbytes], dtype=np.float64)
    ys = [
        float(static_op_seconds(skind, nb, spec, p)[0])
        for p in _STATIC_PROBE_RANKS
    ]
    return fit_order(_STATIC_PROBE_RANKS, ys, tol=tol).order


def _resolve_spec(name: str | None) -> Any:
    from repro.platforms import PLATFORMS
    from repro.sim.network import MachineSpec

    if name and name in PLATFORMS:
        return PLATFORMS[name]
    return MachineSpec(name=name or "generic")


# -- the ScalingReport artifact --------------------------------------------


@dataclass
class ScalingReport:
    """Fitted per-op scaling across a rank sweep (canonical dict form)."""

    data: dict[str, Any]

    @property
    def meta(self) -> dict[str, Any]:
        return self.data["meta"]

    @property
    def kinds(self) -> dict[str, Any]:
        return self.data["kinds"]

    def kind(self, kind: str) -> dict[str, Any]:
        return self.data["kinds"][kind]

    @property
    def expectation_mismatches(self) -> list[dict[str, Any]]:
        return [e for e in self.data["expectations"] if not e["ok"]]

    @property
    def crosscheck_mismatches(self) -> list[str]:
        return sorted(
            kind
            for kind, entry in self.data["kinds"].items()
            if entry["static_agrees"] is False
        )

    # -- serialization ---------------------------------------------------

    def to_json(self, path: str | None = None, *, indent: int = 2) -> str:
        text = json.dumps(self.data, indent=indent, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    @classmethod
    def load(cls, path: str) -> "ScalingReport":
        with open(path) as fh:
            data = json.load(fh)
        validate_scaling_report(data)
        return cls(data)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScalingReport":
        validate_scaling_report(data)
        return cls(data)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        meta = self.data["meta"]
        out = [
            f"== scaling report: {meta.get('app') or 'run'} on "
            f"{meta.get('backend', '?')} (spec={meta.get('spec', '?')}), "
            f"P in {meta['nranks']} =="
        ]
        rows = []
        for kind in sorted(self.data["kinds"]):
            entry = self.data["kinds"][kind]
            static = entry["static_order"]
            agrees = entry["static_agrees"]
            rows.append(
                [
                    kind,
                    entry["order"],
                    order_text(NAME_ORDERS[entry["order"]]),
                    f"{entry['nrmse']:.3f}",
                    static if static is not None else "-",
                    {True: "yes", False: "NO", None: "-"}[agrees],
                ]
            )
        out.append(
            format_table(
                ["op kind", "fitted", "O()", "nrmse", "static", "agree"],
                rows,
                title="per-call cost vs P (virtual seconds)",
            )
        )
        if self.data["expectations"]:
            rows = [
                [
                    e["kind"],
                    e["expected"],
                    e["fitted"],
                    "ok" if e["ok"] else "MISMATCH",
                ]
                for e in self.data["expectations"]
            ]
            out.append(
                format_table(
                    ["op kind", "expected", "fitted", "verdict"],
                    rows,
                    title="declared expectations",
                )
            )
        summary = self.data["summary"]
        out.append(
            f"{summary['kinds']} kind(s) fitted; "
            f"{summary['expectation_mismatches']} expectation mismatch(es), "
            f"{summary['crosscheck_mismatches']} static-crosscheck mismatch(es)"
        )
        for warning in self.data.get("warnings", []):
            out.append(f"warning: {warning}")
        return "\n".join(out)


def validate_scaling_report(data: Any) -> None:
    """Structural schema check; raises :class:`SchemaError` on violation."""

    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise SchemaError(f"invalid scaling report: {msg}")

    need(isinstance(data, dict), "not a JSON object")
    need(data.get("schema") == SCHEMA_NAME, f"schema != {SCHEMA_NAME!r}")
    need(data.get("version") == SCHEMA_VERSION, f"version != {SCHEMA_VERSION}")
    meta = data.get("meta")
    need(isinstance(meta, dict), "missing meta object")
    need(
        isinstance(meta.get("nranks"), list) and len(meta["nranks"]) >= 3,
        "meta.nranks (need >= 3 rank counts)",
    )
    need(isinstance(meta.get("tol"), (int, float)), "meta.tol")
    kinds = data.get("kinds")
    need(isinstance(kinds, dict), "missing kinds object")
    for kind, entry in kinds.items():
        need(isinstance(entry, dict), f"kinds[{kind!r}]")
        need(entry.get("order") in NAME_ORDERS, f"kinds[{kind!r}].order")
        need(isinstance(entry.get("nrmse"), (int, float)), f"kinds[{kind!r}].nrmse")
        need(
            isinstance(entry.get("points"), list)
            and len(entry["points"]) == len(meta["nranks"]),
            f"kinds[{kind!r}].points",
        )
        need(
            isinstance(entry.get("coeffs"), list) and len(entry["coeffs"]) == 2,
            f"kinds[{kind!r}].coeffs",
        )
        need(isinstance(entry.get("candidates"), dict), f"kinds[{kind!r}].candidates")
        static = entry.get("static_order")
        need(
            static is None or static in NAME_ORDERS,
            f"kinds[{kind!r}].static_order",
        )
        need(
            entry.get("static_agrees") in (True, False, None),
            f"kinds[{kind!r}].static_agrees",
        )
    expectations = data.get("expectations")
    need(isinstance(expectations, list), "missing expectations list")
    for e in expectations:
        need(isinstance(e, dict), "expectations[]")
        need(isinstance(e.get("kind"), str), "expectations[].kind")
        need(e.get("expected") in NAME_ORDERS, "expectations[].expected")
        need(isinstance(e.get("ok"), bool), "expectations[].ok")
    summary = data.get("summary")
    need(isinstance(summary, dict), "missing summary object")
    for fld in ("kinds", "expectation_mismatches", "crosscheck_mismatches"):
        need(isinstance(summary.get(fld), int), f"summary.{fld}")


def parse_expectations(pairs: Sequence[str]) -> dict[str, str]:
    """Parse ``KIND=ORDER`` CLI pairs into an expectations mapping."""
    out: dict[str, str] = {}
    for pair in pairs:
        kind, sep, name = pair.partition("=")
        if not sep or not kind or name not in NAME_ORDERS:
            raise SchemaError(
                f"bad expectation {pair!r}: want KIND=ORDER with ORDER in "
                f"{sorted(NAME_ORDERS)}"
            )
        out[kind] = name
    return out


def fit_scaling(
    reports: Sequence[RunReport],
    *,
    tol: float = DEFAULT_TOL,
    min_calls: int = 1,
    expectations: dict[str, str] | None = None,
    use_default_expectations: bool = True,
    crosscheck: bool = True,
) -> ScalingReport:
    """Fit every shared op kind's per-call cost across a rank sweep.

    ``reports`` must cover >= 3 distinct rank counts of one backend (one
    app, ideally — a mixed-app sweep gets a warning, not an error, since
    weak-scaling families legitimately vary the program name). Only kinds
    with at least ``min_calls`` calls in *every* report are fitted — a
    kind that vanishes at some P has a pattern change, not a scaling
    curve. ``expectations`` (kind -> order name) extends/overrides the
    backend's :data:`DEFAULT_EXPECTATIONS`; ``crosscheck=False`` skips
    the static-model comparison (all ``static_order`` fields null). A
    static comparison only renders a verdict when the empirical fit is
    confident (nrmse within ``tol``); otherwise ``static_agrees`` stays
    null and a warning records the inconclusive kind.
    """
    if len(reports) < 3:
        raise SchemaError(
            f"scaling fit needs >= 3 reports (one per rank count), got {len(reports)}"
        )
    reports = sorted(reports, key=lambda r: r.meta["nranks"])
    ranks = [r.meta["nranks"] for r in reports]
    if len(set(ranks)) != len(ranks):
        raise SchemaError(f"duplicate rank counts in sweep: {ranks}")
    backends = {r.meta.get("backend") for r in reports}
    if len(backends) != 1:
        raise SchemaError(
            f"scaling fit needs one backend, got {sorted(map(str, backends))}"
        )
    backend = backends.pop()
    warnings: list[str] = []
    apps = {r.meta.get("app") or "" for r in reports}
    if len(apps) != 1:
        warnings.append(f"mixed apps in sweep: {sorted(apps)}")
    specs = {r.meta.get("spec") or "" for r in reports}
    if len(specs) != 1:
        warnings.append(f"mixed machine specs in sweep: {sorted(specs)}")
    spec = _resolve_spec(reports[0].meta.get("spec"))

    shared = set(reports[0].ops)
    for r in reports[1:]:
        shared &= set(r.ops)
    kinds: dict[str, Any] = {}
    for kind in sorted(shared):
        stats = [r.op(kind) for r in reports]
        if any(s["calls"] < min_calls for s in stats):
            continue
        calls = [s["calls"] for s in stats]
        ys = [s["time"] / s["calls"] for s in stats]
        fit = fit_order(ranks, ys, tol=tol)
        static: int | None = None
        if crosscheck:
            mean_nb = float(
                np.mean([s["bytes"] / s["calls"] for s in stats])
            )
            static = static_order(
                kind, backend, spec, nbytes=mean_nb or 8.0, tol=tol
            )
        agrees: bool | None = None
        if static is not None:
            if fit.nrmse <= tol:
                agrees = static == fit.order
            else:
                # No candidate fit the measurements within tolerance — the
                # curve is dominated by data-dependent waiting or noise, so
                # a verdict either way would be manufactured.
                warnings.append(
                    f"crosscheck for {kind!r} inconclusive: best fit "
                    f"({fit.name}) nrmse {fit.nrmse:.3f} > tol {tol:g}"
                )
        kinds[kind] = {
            "points": [[p, y] for p, y in zip(ranks, ys)],
            "calls": calls,
            "order": fit.name,
            "order_text": fit.text,
            "coeffs": [fit.coeffs[0], fit.coeffs[1]],
            "nrmse": fit.nrmse,
            "candidates": fit.candidates,
            "static_order": ORDER_NAMES[static] if static is not None else None,
            "static_agrees": agrees,
        }

    expected = dict(DEFAULT_EXPECTATIONS.get(backend or "", {})) if (
        use_default_expectations
    ) else {}
    expected.update(expectations or {})
    expectation_rows = []
    for kind in sorted(expected):
        if kind not in kinds:
            warnings.append(
                f"expectation for {kind!r} skipped: kind absent from the sweep"
            )
            continue
        fitted = kinds[kind]["order"]
        expectation_rows.append(
            {
                "kind": kind,
                "expected": expected[kind],
                "fitted": fitted,
                "ok": fitted == expected[kind],
            }
        )
    data: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "meta": {
            "backend": backend,
            "app": sorted(apps)[0] if len(apps) == 1 else None,
            "spec": sorted(specs)[0] if len(specs) == 1 else None,
            "nranks": ranks,
            "labels": [r.meta.get("label") for r in reports],
            "tol": tol,
            "min_calls": min_calls,
            "crosscheck": crosscheck,
        },
        "kinds": kinds,
        "expectations": expectation_rows,
        "summary": {
            "kinds": len(kinds),
            "expectation_mismatches": sum(
                1 for e in expectation_rows if not e["ok"]
            ),
            "crosscheck_mismatches": sum(
                1 for e in kinds.values() if e["static_agrees"] is False
            ),
        },
        "warnings": warnings,
    }
    validate_scaling_report(data)
    return ScalingReport(data)
