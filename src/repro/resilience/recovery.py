"""Recovery drivers: restart-from-checkpoint and shrink-and-recover.

Two recovery disciplines over the same checkpoint artifact:

* **restart** — the classic coordinated checkpoint/restart loop. The run
  executes until a failure surfaces (an eager ULFM-style error, a watchdog
  timeout on a fault-induced hang, a deadlock); the driver strips the
  crashes that already fired from the fault plan, rewinds to the last
  committed checkpoint, and reruns the *full* image count from there. The
  program re-executes its allocation preamble — the resilience service
  transparently refills each allocation from the checkpoint — and skips
  completed iterations via ``img.resilience.resume_step()``.

* **shrink** — ULFM-style in-run recovery. The program itself catches the
  failure, survivors agree and rebuild a smaller team
  (:meth:`~repro.caf.image.Image.shrink_team`, barrier-free), repartition
  the dead image's data out of the last checkpoint, and keep computing.
  The driver's job is only to configure the service and run once.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.caf.program import CafRun, run_caf
from repro.resilience.checkpoint import CheckpointStore
from repro.util.errors import ReproError, ResilienceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.faults import FaultPlan


@dataclass
class ResilientOutcome:
    """What a resilient execution produced, plus its recovery history."""

    run: CafRun
    store: CheckpointStore
    restarts: int
    attempts: list[dict[str, Any]]  # one record per failed attempt

    @property
    def results(self) -> list[Any]:
        return self.run.results

    @property
    def cluster(self):
        return self.run.cluster


def _strip_fired_crashes(plan: "FaultPlan", cluster) -> "FaultPlan":
    """A fresh plan without the crashes the failed attempt already consumed.

    A crash is *fired* when its victim is in the cluster's failed set and
    its scheduled time is within the attempt's lifetime; keeping it would
    just re-kill the same image at the same virtual time on every rerun.
    The copy is rewound (``reset``) so per-message fault draws replay from
    the seed.
    """
    fired = {
        (entry["rank"], entry["time"])
        for entry in cluster.failure_log
        if entry["reason"] == "crash"
    }
    remaining = [(r, t) for (r, t) in plan.crashes if (r, t) not in fired]
    fresh = copy.copy(plan)
    fresh.crashes = remaining
    fresh.reset()
    return fresh


def run_resilient(
    program,
    nranks: int,
    spec=None,
    *,
    mode: str = "restart",
    backend: str = "mpi",
    checkpoint_every: int | None = None,
    store: CheckpointStore | None = None,
    faults: "FaultPlan | None" = None,
    reliable: bool = False,
    deadline: float | None = None,
    sanitize: bool = False,
    max_restarts: int = 8,
    sim_seed: int = 12345,
    **program_kwargs: Any,
) -> ResilientOutcome:
    """Run ``program`` to completion despite injected failures.

    ``mode="restart"`` loops full-size reruns from the last checkpoint;
    ``mode="shrink"`` runs once and expects the program to recover in-run
    (catch the failure, ``img.resilience.recover_shrink()``, repartition,
    continue). Either way the returned outcome carries the final
    successful :class:`~repro.caf.program.CafRun`, the checkpoint store,
    and one record per failed attempt.
    """
    if mode not in ("restart", "shrink"):
        raise ResilienceError(f"unknown recovery mode {mode!r}")
    store = store if store is not None else CheckpointStore()
    attempts: list[dict[str, Any]] = []
    plan = faults

    if mode == "shrink":
        run = run_caf(
            program,
            nranks,
            spec,
            backend=backend,
            faults=plan,
            reliable=reliable,
            deadline=deadline,
            sanitize=sanitize,
            sim_seed=sim_seed,
            checkpoint_every=checkpoint_every,
            checkpoint_store=store,
            **program_kwargs,
        )
        return ResilientOutcome(run=run, store=store, restarts=0, attempts=attempts)

    restarts = 0
    while True:
        try:
            run = run_caf(
                program,
                nranks,
                spec,
                backend=backend,
                faults=plan,
                reliable=reliable,
                deadline=deadline,
                sanitize=sanitize,
                sim_seed=sim_seed,
                checkpoint_every=checkpoint_every,
                checkpoint_store=store,
                resume_from=store.latest(),
                **program_kwargs,
            )
            return ResilientOutcome(
                run=run, store=store, restarts=restarts, attempts=attempts
            )
        except ReproError as exc:
            cluster = getattr(exc, "caf_cluster", None)
            if cluster is None or not cluster.failed_ranks:
                raise  # not a failure the restart discipline can absorb
            attempts.append(
                {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "failed_images": sorted(cluster.failed_ranks),
                    "elapsed": cluster.elapsed,
                    "checkpoint_step": (
                        store.latest().step if store.latest() else None
                    ),
                }
            )
            restarts += 1
            if restarts > max_restarts:
                raise ResilienceError(
                    f"restart budget exhausted after {max_restarts} restarts "
                    f"(last failure: {type(exc).__name__}: {exc})"
                ) from exc
            if plan is not None:
                plan = _strip_fired_crashes(plan, cluster)
