"""Resilience subsystem: coordinated checkpoint/restart and shrink recovery.

Built on the failure surfaces the lower layers already expose — injected
crashes and transport give-ups land in ``cluster.failed_ranks``, ULFM-style
errors fail operations naming dead peers eagerly, and ``Image.shrink_team``
rebuilds a survivor team without barriers. This package adds:

* :mod:`repro.resilience.checkpoint` — the coordinated quiesce-then-snapshot
  protocol, the versioned :class:`Checkpoint` artifact, and the in-memory /
  on-disk :class:`CheckpointStore`.
* :mod:`repro.resilience.recovery` — the :func:`run_resilient` driver with
  its two recovery modes (full restart from the last checkpoint, and in-run
  shrink-and-redistribute over the survivors).
* :mod:`repro.resilience.apps` — resilience-aware RandomAccess and CGPOP
  ports that survive mid-run image crashes under both modes.
* :mod:`repro.resilience.chaos` — the seeded fault-campaign harness
  (``python -m repro.resilience.chaos``) with invariant checking and
  failing-seed minimization (:mod:`repro.resilience.minimize`).
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointStore,
    ResilienceService,
)
from repro.resilience.recovery import ResilientOutcome, run_resilient

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ResilienceService",
    "ResilientOutcome",
    "run_resilient",
]
