"""Resilience-aware application ports: RandomAccess and CGPOP.

Both apps are restructured around **logical partitions** (over-decomposition):
global state is carved into P logical partitions where P is the *initial*
image count, and an owner map — partition to world rank — is the only thing
recovery has to update. Under ``mode="restart"`` the map stays the
identity and the whole job reruns from the last checkpoint; under
``mode="shrink"`` survivors adopt the dead image's partitions, rebuild
fresh communication state on the shrunken team, reload partition data from
the last checkpoint, and keep going.

Every blocking wait in the steady-state loop carries a timeout, so a crash
anywhere surfaces as :class:`~repro.util.errors.CafTimeoutError` /
:class:`~repro.util.errors.ImageFailedError` (CAF side) or
:class:`~repro.util.errors.MpiProcFailedError` /
:class:`~repro.util.errors.MpiRevokedError` (MPI side) on every survivor in
bounded virtual time — no barriers stand between a failure and its
detection. (The coordinated checkpoint itself still barriers; a crash
landing inside that narrow window is recovered by the watchdog + restart
path, a known property of blocking coordinated checkpoints.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.constants import SUM
from repro.util.errors import (
    CafError,
    CafTimeoutError,
    GasnetProcFailedError,
    ImageFailedError,
    MpiProcFailedError,
    MpiRevokedError,
    ResilienceError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.image import Image
    from repro.caf.teams import Team

#: Everything a crash can surface as on a survivor: CAF-level image failure
#: or bounded-wait timeout, plus the conduit-level process-failure errors
#: leaking through the CAF-over-MPI / CAF-over-GASNet backends or the
#: app's own MPI collectives. A survivor must confirm a real crash
#: (``img.cluster.failed_ranks``) before treating one as recoverable.
_ALL_FAILURES = (
    ImageFailedError,
    CafTimeoutError,
    MpiProcFailedError,
    MpiRevokedError,
    GasnetProcFailedError,
)


# =========================================================================
# RandomAccess (GUPS), bucket-routed over logical partitions
# =========================================================================


def ra_stream_batch(
    seed: int, stream: int, batch: int, count: int, total_bits: int
) -> np.ndarray:
    """Deterministic update stream: partition ``stream``'s batch ``batch``.

    Keyed by the *logical* stream, not the image, so whichever image owns
    the stream after a recovery regenerates exactly the same updates.
    """
    rng = np.random.default_rng((seed, stream, batch))
    return rng.integers(0, 1 << total_bits, size=count, dtype=np.uint64)


def ra_reference(
    seed: int, nparts: int, table_bits: int, updates_per_batch: int, batches: int
) -> list[np.ndarray]:
    """Serial reference: the final content of every logical partition."""
    local_size = 1 << table_bits
    total = nparts * local_size
    total_bits = table_bits + max(int(np.log2(nparts)), 0) + 8
    tables = [np.zeros(local_size, np.uint64) for _ in range(nparts)]
    for s in range(nparts):
        for b in range(batches):
            u = ra_stream_batch(seed, s, b, updates_per_batch, total_bits)
            idx = (u % np.uint64(total)).astype(np.int64)
            dest = idx // local_size
            for d in range(nparts):
                sel = dest == d
                np.bitwise_xor.at(tables[d], (idx % local_size)[sel], u[sel])
    return tables


class _RaEpoch:
    """Communication state for one team incarnation of resilient RA.

    Rebuilt from scratch after every shrink so no stale event post from the
    aborted epoch can satisfy a post-recovery wait. ``armed`` marks a
    restart-resume epoch whose drained-credit counters were refilled from
    the checkpoint (writers must consume them from the first batch on).
    """

    def __init__(
        self, img: "Image", team: "Team", nparts: int, table_bits: int,
        cap: int, *, armed: bool,
    ):
        self.team = team
        self.nparts = nparts
        self.cap = cap
        self.row = cap + 1  # one length prefix per landing row
        self.tables = img.allocate_coarray(
            (nparts, 1 << table_bits), np.uint64, team=team
        )
        self.land = img.allocate_coarray(
            (nparts * nparts, self.row), np.uint64, team=team
        )
        self.arrive = img.allocate_events(nparts * nparts, team=team)
        self.drained = img.allocate_events(nparts * nparts, team=team)
        self.sent = [1 if armed else 0] * (nparts * nparts)
        r = img.resilience
        self.tables_index = r.coarray_index(self.tables) if r is not None else 0


def _ra_batch(
    img: "Image",
    epoch: _RaEpoch,
    owners: list[int],
    batch: int,
    *,
    seed: int,
    updates_per_batch: int,
    table_bits: int,
    timeout: float,
) -> None:
    """One routing round: every owned stream sends one bucket per partition."""
    P = epoch.nparts
    local_size = 1 << table_bits
    total = P * local_size
    total_bits = table_bits + max(int(np.log2(P)), 0) + 8
    team = epoch.team
    me = img.rank
    t_index = {w: i for i, w in enumerate(team.members)}
    my_streams = [s for s in range(P) if owners[s] == me]
    my_parts = my_streams  # one owner map for both roles

    # -- writer side ------------------------------------------------------
    for s in my_streams:
        u = ra_stream_batch(seed, s, batch, updates_per_batch, total_bits)
        idx = (u % np.uint64(total)).astype(np.int64)
        dest = idx // local_size
        for d in range(P):
            bucket = u[dest == d]
            if owners[d] == me:
                # Self-channel: apply directly, no landing zone involved.
                np.bitwise_xor.at(
                    epoch.tables.local[d],
                    (idx[dest == d] % local_size),
                    bucket,
                )
                continue
            slot = s * P + d
            if epoch.sent[slot] > 0:
                epoch.drained.wait(slot=slot, timeout=timeout)
            payload = np.empty(bucket.size + 1, np.uint64)
            payload[0] = bucket.size
            payload[1:] = bucket
            target = t_index[owners[d]]
            epoch.land.write(target, payload, offset=slot * epoch.row)
            epoch.arrive.notify(target, slot=slot)
            epoch.sent[slot] += 1

    # -- reader side ------------------------------------------------------
    for d in my_parts:
        row_table = epoch.tables.local[d]
        for s in range(P):
            if owners[s] == me:
                continue  # self-channel applied above
            slot = s * P + d
            epoch.arrive.wait(slot=slot, timeout=timeout)
            row = epoch.land.local[slot]
            n = int(row[0])
            incoming = row[1 : 1 + n]
            np.bitwise_xor.at(
                row_table,
                (incoming % np.uint64(total)).astype(np.int64) % local_size,
                incoming,
            )
            epoch.drained.notify(t_index[owners[s]], slot=slot)
    img.compute(flops=float(max(updates_per_batch, 1)))


def _reassign(owners: list[int], survivors: tuple[int, ...]) -> list[int]:
    """Adopt dead owners' partitions round-robin over the survivors."""
    new = list(owners)
    dead_parts = [d for d, w in enumerate(new) if w not in survivors]
    for i, d in enumerate(dead_parts):
        new[d] = survivors[i % len(survivors)]
    return new


def run_resilient_randomaccess(
    img: "Image",
    *,
    table_bits: int = 7,
    updates_per_batch: int = 128,
    batches: int = 8,
    seed: int = 42,
    recovery: str = "restart",
    wait_timeout: float = 0.25,
    max_recoveries: int = 3,
) -> dict:
    """Resilient GUPS: survives image crashes under either recovery mode.

    Final partition contents land in
    ``img.cluster.shared('ra-res-tables', dict)[partition]`` for
    verification against :func:`ra_reference`.
    """
    P = img.nranks
    if P & (P - 1):
        raise CafError("logical partition count must be a power of two")
    r = img.resilience
    team = img.team_world
    owners = list(range(P))
    start_batch = 0
    armed = False
    if r is not None and r.resumed is not None:
        start_batch = r.resume_step()
        state = r.resume_state(default={})
        owners = list(state.get("owners", owners))
        armed = start_batch > 0
    epoch = _RaEpoch(
        img, team, P, table_bits, updates_per_batch, armed=armed
    )
    img.sync_all()

    b = start_batch
    recoveries = 0
    while b < batches:
        try:
            _ra_batch(
                img, epoch, owners, b,
                seed=seed, updates_per_batch=updates_per_batch,
                table_bits=table_bits, timeout=wait_timeout,
            )
            b += 1
            if r is not None:
                r.step(
                    state={
                        "batch": b,
                        "owners": owners,
                        "table_index": epoch.tables_index,
                    },
                    team=team,
                )
        except _ALL_FAILURES as exc:
            if recovery != "shrink" or r is None:
                raise
            if not img.cluster.failed_ranks:
                raise  # a timeout with nobody dead is a real bug, not a crash
            recoveries += 1
            if recoveries > max_recoveries:
                raise ResilienceError(
                    f"recovery budget exhausted after {max_recoveries} shrinks"
                ) from exc
            team, ckpt = r.recover_shrink(team, require_checkpoint=False)
            if ckpt is None:
                # The crash predates the first checkpoint: cold-restart the
                # whole computation on the shrunken team.
                my_state = {}
            else:
                my_state = ckpt.app_state.get(img.rank) or {}
            b = int(my_state.get("batch", 0))
            old_owners = list(my_state.get("owners", range(P)))
            table_index = int(my_state.get("table_index", 0))
            owners = _reassign(old_owners, team.members)
            epoch = _RaEpoch(
                img, team, P, table_bits, updates_per_batch, armed=False
            )
            # Reload every partition I now own from its checkpoint-time
            # owner's snapshot (possibly the dead image's).
            local_size = 1 << table_bits
            for d in range(P):
                if owners[d] != img.rank or ckpt is None:
                    continue
                saved = ckpt.coarray_partition(old_owners[d], table_index)
                epoch.tables.local[d] = saved.reshape(P, local_size)[d]

    img.backend.quiet()
    img.barrier(team)
    out = img.cluster.shared("ra-res-tables", dict)
    for d in range(P):
        if owners[d] == img.rank:
            out[d] = epoch.tables.local[d].copy()
    return {
        "rank": img.rank,
        "parts": [d for d in range(P) if owners[d] == img.rank],
        "batches": batches,
        "recoveries": recoveries,
        "team_size": team.size,
    }


# =========================================================================
# CGPOP (hybrid MPI+CAF CG solver), strip re-partitioned on shrink
# =========================================================================


def cg_rhs(seed: int, ny: int, nx: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((ny, nx))


def _strip_bounds(ny: int, nparts: int) -> list[tuple[int, int]]:
    """Contiguous near-equal row ranges (the strip re-partition)."""
    splits = np.array_split(np.arange(ny), nparts)
    return [(int(s[0]), int(s[-1]) + 1) for s in splits]


def _laplacian(local: np.ndarray, top: np.ndarray, bottom: np.ndarray) -> np.ndarray:
    padded = np.vstack([top[None, :], local, bottom[None, :]])
    out = 4.0 * local
    out -= padded[:-2, :]
    out -= padded[2:, :]
    out[:, 1:] -= local[:, :-1]
    out[:, :-1] -= local[:, 1:]
    return out


class _CgEpoch:
    """Per-team-incarnation CG state: halo machinery plus the checkpointable
    state coarray (rows of x / r / p, padded to the symmetric max strip)."""

    def __init__(self, img: "Image", team: "Team", ny: int, nx: int, *, armed: bool):
        self.team = team
        self.nx = nx
        self.bounds = _strip_bounds(ny, team.size)
        self.rows_max = max(e - s for s, e in self.bounds)
        me = team.my_index
        self.r0, self.r1 = self.bounds[me]
        self.rows = self.r1 - self.r0
        self.state = img.allocate_coarray(
            (3, self.rows_max * nx), np.float64, team=team
        )
        r = img.resilience
        self.state_index = r.coarray_index(self.state) if r is not None else 0
        self.halo = img.allocate_coarray((2, nx), np.float64, team=team)
        self.arrive = img.allocate_events(2, team=team)
        self.drained = img.allocate_events(2, team=team)
        self.up = me - 1 if me > 0 else None
        self.down = me + 1 if me < team.size - 1 else None
        self._sent = [1 if armed else 0, 1 if armed else 0]

    def view(self, which: int) -> np.ndarray:
        """x (0), r (1), or p (2) as this strip's (rows, nx) view."""
        return self.state.local[which, : self.rows * self.nx].reshape(
            self.rows, self.nx
        )

    def exchange(self, v: np.ndarray, timeout: float) -> tuple[np.ndarray, np.ndarray]:
        """PUSH halo exchange with bounded waits."""
        nx = self.nx
        if self.up is not None and self._sent[0] > 0:
            self.drained.wait(slot=0, timeout=timeout)
        if self.down is not None and self._sent[1] > 0:
            self.drained.wait(slot=1, timeout=timeout)
        if self.up is not None:
            self.halo.write(self.up, v[0], offset=nx)  # their slot 1
            self.arrive.notify(self.up, slot=1)
            self._sent[0] += 1
        if self.down is not None:
            self.halo.write(self.down, v[-1], offset=0)  # their slot 0
            self.arrive.notify(self.down, slot=0)
            self._sent[1] += 1
        top = np.zeros(nx)
        bottom = np.zeros(nx)
        if self.up is not None:
            self.arrive.wait(slot=0, timeout=timeout)
            top = self.halo.local[0].copy()
            self.drained.notify(self.up, slot=1)
        if self.down is not None:
            self.arrive.wait(slot=1, timeout=timeout)
            bottom = self.halo.local[1].copy()
            self.drained.notify(self.down, slot=0)
        return top, bottom


def _assemble_from_checkpoint(
    ckpt, my_state: dict, ny: int, nx: int
) -> np.ndarray:
    """Rebuild the global (3, ny, nx) CG state from a checkpoint."""
    bounds = [tuple(b) for b in my_state["bounds"]]
    members = list(my_state["members"])
    state_index = int(my_state["state_index"])
    rows_max = max(e - s for s, e in bounds)
    out = np.zeros((3, ny, nx))
    for idx, w in enumerate(members):
        s, e = bounds[idx]
        saved = ckpt.coarray_partition(w, state_index).reshape(3, rows_max * nx)
        for which in range(3):
            out[which, s:e] = saved[which, : (e - s) * nx].reshape(e - s, nx)
    return out


def run_resilient_cgpop(
    img: "Image",
    *,
    ny: int = 32,
    nx: int = 16,
    tol: float = 1e-8,
    max_iter: int = 400,
    seed: int = 11,
    recovery: str = "restart",
    wait_timeout: float = 0.25,
    max_recoveries: int = 3,
) -> dict:
    """Resilient hybrid CG: halo over CAF, global sums over MPI.

    The solver survives a mid-run crash either by full restart from the
    last checkpoint or by shrinking: survivors revoke the communicator
    (freeing peers parked in MPI), ``MPIX_COMM_SHRINK`` a clean one,
    shrink the CAF team, re-partition the strips, and reload state from
    the checkpoint. The converged strip lands in
    ``img.cluster.shared('cgpop-res-solution', dict)[rank] = (r0, r1, x)``.
    """
    r = img.resilience
    team = img.team_world
    mpi = img.mpi()
    comm = mpi.COMM_WORLD
    b_global = cg_rhs(seed, ny, nx)

    def gsum(comm, *values: float) -> list[float]:
        send = np.array(values)
        recv = np.zeros(len(values))
        comm.allreduce(send, recv, SUM)
        return [float(v) for v in recv]

    armed = False
    it = 0
    rr = bnorm2 = None
    if r is not None and r.resumed is not None:
        state = r.resume_state(default={})
        it = int(state.get("it", 0))
        rr = state.get("rr")
        bnorm2 = state.get("bnorm2")
        armed = it > 0
    epoch = _CgEpoch(img, team, ny, nx, armed=armed)
    img.sync_all()

    def b_strip() -> np.ndarray:
        return b_global[epoch.r0 : epoch.r1]

    def matvec(v: np.ndarray) -> np.ndarray:
        top, bottom = epoch.exchange(v, wait_timeout)
        if epoch.team.my_index == 0:
            top = np.zeros(nx)  # Dirichlet boundary
        if epoch.team.my_index == epoch.team.size - 1:
            bottom = np.zeros(nx)
        out = _laplacian(v, top, bottom)
        img.compute(flops=10.0 * v.size)
        return out

    recoveries = 0
    converged = False
    while it < max_iter and not converged:
        try:
            if rr is None:
                # Cold start (or post-crash cold restart): r = b - A*0 = b.
                epoch.view(0)[:] = 0.0
                epoch.view(1)[:] = b_strip()
                epoch.view(2)[:] = b_strip()
                (rr,) = gsum(comm, float((b_strip() ** 2).sum()))
                bnorm2 = rr
            x, res, p = epoch.view(0), epoch.view(1), epoch.view(2)
            ap = matvec(p)
            (pap,) = gsum(comm, float((p * ap).sum()))
            alpha = rr / pap
            x += alpha * p
            res -= alpha * ap
            (rr_new,) = gsum(comm, float((res * res).sum()))
            it += 1
            if rr_new <= tol * tol * bnorm2:
                converged = True
            else:
                p *= rr_new / rr
                p += res
            img.compute(flops=8.0 * x.size)
            rr = rr_new
            if r is not None and not converged:
                r.step(
                    state={
                        "it": it,
                        "rr": rr,
                        "bnorm2": bnorm2,
                        "bounds": [list(b) for b in epoch.bounds],
                        "members": list(epoch.team.members),
                        "state_index": epoch.state_index,
                    },
                    team=team,
                )
        except _ALL_FAILURES as exc:
            if recovery != "shrink" or r is None:
                raise
            if not img.cluster.failed_ranks:
                raise  # a timeout with nobody dead is a real bug, not a crash
            recoveries += 1
            if recoveries > max_recoveries:
                raise ResilienceError(
                    f"recovery budget exhausted after {max_recoveries} shrinks"
                ) from exc
            # Free peers parked inside MPI, then rebuild both runtimes'
            # survivor-side objects.
            try:
                comm.revoke()
            except MpiRevokedError:  # pragma: no cover - defensive
                pass
            team, ckpt = r.recover_shrink(team, require_checkpoint=False)
            comm = comm.shrink()
            epoch = _CgEpoch(img, team, ny, nx, armed=False)
            if ckpt is None:
                # Crash before the first checkpoint: cold-restart CG on the
                # shrunken team (the rr=None branch below re-initializes).
                it, rr, bnorm2 = 0, None, None
            else:
                my_state = ckpt.app_state.get(img.rank) or {}
                glob = _assemble_from_checkpoint(ckpt, my_state, ny, nx)
                it = int(my_state["it"])
                rr = float(my_state["rr"])
                bnorm2 = float(my_state["bnorm2"])
                for which in range(3):
                    epoch.view(which)[:] = glob[which, epoch.r0 : epoch.r1]

    img.backend.quiet()
    img.barrier(team)
    img.cluster.shared("cgpop-res-solution", dict)[img.rank] = (
        epoch.r0, epoch.r1, epoch.view(0).copy(),
    )
    return {
        "rank": img.rank,
        "iterations": it,
        "converged": converged,
        "residual": float(np.sqrt(max(rr, 0.0))),
        "recoveries": recoveries,
        "team_size": team.size,
        "rows": [epoch.r0, epoch.r1],
    }


def cg_true_residual(solution: dict[int, tuple[int, int, np.ndarray]],
                     ny: int, nx: int, seed: int) -> float:
    """Relative residual ||b - Ax|| / ||b|| of the assembled solution."""
    x = np.zeros((ny, nx))
    for _rank, (r0, r1, strip) in solution.items():
        x[r0:r1] = strip
    b = cg_rhs(seed, ny, nx)
    top = np.zeros((1, nx))
    padded = np.vstack([top, x, top])
    ax = 4.0 * x
    ax -= padded[:-2, :]
    ax -= padded[2:, :]
    ax[:, 1:] -= x[:, :-1]
    ax[:, :-1] -= x[:, 1:]
    return float(np.linalg.norm(b - ax) / np.linalg.norm(b))
