"""Failing-seed minimization: delta-debug a recorded FaultPlan.

A chaos campaign run that violates an invariant leaves behind the exact
sequence of non-clean fault rulings it suffered (``FaultPlan.record=True``
→ ``plan.events``). Because the simulator consults the plan in
deterministic order, any *subset* of those events replays faithfully
through a :class:`~repro.sim.faults.ScriptedFaultPlan` — removing one
event never perturbs which message another event lands on. That makes the
classic ddmin algorithm sound here: the minimizer hands back a (locally)
minimal set of fault events that still reproduces the violation, typically
one or two, turning "seed 1337 fails" into "dropping message #42 from
rank 0 to rank 1 hangs the barrier".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.sim.faults import FaultEvent, ScriptedFaultPlan


@dataclass
class MinimizeResult:
    """Outcome of one ddmin run."""

    events: list[FaultEvent]  # minimal failing subset
    tests: int  # how many candidate replays were executed
    initial: int  # size of the recorded event list
    history: list[tuple[int, bool]] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        return 1.0 - (len(self.events) / self.initial) if self.initial else 0.0

    def to_dict(self) -> dict:
        return {
            "initial_events": self.initial,
            "minimal_events": [e.to_dict() for e in self.events],
            "tests": self.tests,
        }


def _chunks(seq: Sequence[FaultEvent], n: int) -> list[list[FaultEvent]]:
    size, rem = divmod(len(seq), n)
    out, pos = [], 0
    for i in range(n):
        end = pos + size + (1 if i < rem else 0)
        out.append(list(seq[pos:end]))
        pos = end
    return [c for c in out if c]


def ddmin(
    events: Sequence[FaultEvent],
    failing: Callable[[list[FaultEvent]], bool],
    *,
    max_tests: int = 256,
) -> MinimizeResult:
    """Zeller's ddmin: a 1-minimal subset of ``events`` for which
    ``failing`` still holds.

    ``failing`` must be deterministic (it replays the subset through a
    scripted plan) and must hold for the full list. ``max_tests`` bounds
    the replay budget; on exhaustion the best-so-far subset is returned.
    """
    current = list(events)
    tests = 0
    history: list[tuple[int, bool]] = []
    if not failing(current):
        raise ValueError("ddmin needs a failing starting point")
    tests += 1
    history.append((len(current), True))

    n = 2
    while len(current) >= 2 and tests < max_tests:
        chunks = _chunks(current, n)
        reduced = False
        for i in range(len(chunks)):
            complement = [e for j, c in enumerate(chunks) for e in c if j != i]
            if not complement:
                continue
            fails = failing(complement)
            tests += 1
            history.append((len(complement), fails))
            if fails:
                current = complement
                n = max(n - 1, 2)
                reduced = True
                break
            if tests >= max_tests:
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(n * 2, len(current))
    return MinimizeResult(
        events=current, tests=tests, initial=len(events), history=history
    )


def minimize_plan(
    events: Sequence[FaultEvent],
    run_with_plan: Callable[[ScriptedFaultPlan], bool],
    *,
    crashes: list[tuple[int, float]] | None = None,
    max_tests: int = 256,
) -> MinimizeResult:
    """Minimize over message-fault events; ``run_with_plan(plan)`` returns
    True when the violation reproduces under ``plan``. Scheduled crashes
    (if the failing case had any) are carried into every candidate plan
    unchanged — ddmin shrinks the message-fault script around them."""

    def failing(subset: list[FaultEvent]) -> bool:
        plan = ScriptedFaultPlan(list(subset), crashes=list(crashes or []))
        return run_with_plan(plan)

    return ddmin(events, failing, max_tests=max_tests)
