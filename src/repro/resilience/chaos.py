"""Chaos campaign harness: seeded fault campaigns with invariant checks.

Each campaign case is derived deterministically from ``campaign seed +
case index``: an app (resilient RandomAccess or CGPOP), a backend, a
discipline (message faults only / crash + restart / crash + shrink), a set
of per-message fault rates, and optionally one scheduled image crash. The
case runs under the reliable transport with the engine watchdog armed and
``FaultPlan.record=True``, then a battery of invariants classifies it:

* **app verification** — the program's answer must match its serial
  reference (RandomAccess: exact table XOR state; CGPOP: true residual).
* **sanitizer-clean** — message-fault cases run under the happens-before
  sanitizer; any diagnostic is a violation.
* **watchdog-no-hang** — a deadline timeout (or deadlock) with *no* dead
  image explains nothing and is a violation.
* **determinism** — sampled verified cases are re-executed twice with the
  event-order digest armed; the digests must match bit-for-bit.

A failure *explained* by an injected crash (dead images present — e.g. a
shrink recovery caught mid-collective) is recorded but not a violation;
everything else is **unexplained** and, when the case recorded fault
events, is handed to the ddmin minimizer (:mod:`repro.resilience.minimize`)
to produce a smallest reproducing fault script. Every run emits one obs
RunReport into the campaign directory via :mod:`repro.obs.capture`.

Run it as ``python -m repro.resilience.chaos --runs 30 --out chaos-out``;
the exit code is nonzero iff any unexplained violation survived.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.caf.program import run_caf
from repro.obs import capture as obs_capture
from repro.resilience.apps import (
    cg_true_residual,
    ra_reference,
    run_resilient_cgpop,
    run_resilient_randomaccess,
)
from repro.resilience.minimize import minimize_plan
from repro.resilience.recovery import run_resilient
from repro.sim.faults import FaultPlan
from repro.util.errors import DeadlockError, ReproError, SimTimeoutError

# -- outcome taxonomy -----------------------------------------------------

VERIFIED = "verified"
FAILED_EXPLAINED = "failed-explained"  # injected crash made the run fail
VERIFY_VIOLATION = "verify-violation"
SANITIZER_VIOLATION = "sanitizer-violation"
HANG_VIOLATION = "hang-violation"
ERROR_VIOLATION = "error-violation"
DIGEST_VIOLATION = "digest-violation"

VIOLATIONS = frozenset(
    {
        VERIFY_VIOLATION,
        SANITIZER_VIOLATION,
        HANG_VIOLATION,
        ERROR_VIOLATION,
        DIGEST_VIOLATION,
    }
)


# -- app registry ---------------------------------------------------------


def _verify_ra(cluster, kwargs: dict) -> bool:
    tables = cluster.shared("ra-res-tables", dict)
    nparts = 4
    ref = ra_reference(
        kwargs.get("seed", 42), nparts, kwargs["table_bits"],
        kwargs["updates_per_batch"], kwargs["batches"],
    )
    return sorted(tables) == list(range(nparts)) and all(
        np.array_equal(tables[d], ref[d]) for d in range(nparts)
    )


def _verify_cg(cluster, kwargs: dict) -> bool:
    sol = cluster.shared("cgpop-res-solution", dict)
    rel = cg_true_residual(
        sol, kwargs["ny"], kwargs["nx"], kwargs.get("seed", 11)
    )
    return rel < 1e-6


@dataclass(frozen=True)
class AppSpec:
    name: str
    program: Callable
    kwargs: dict
    verify: Callable[[Any, dict], bool]
    checkpoint_every: int


APPS: dict[str, AppSpec] = {
    "ra": AppSpec(
        name="ra",
        program=run_resilient_randomaccess,
        kwargs=dict(table_bits=6, updates_per_batch=64, batches=4),
        verify=_verify_ra,
        checkpoint_every=2,
    ),
    "cgpop": AppSpec(
        name="cgpop",
        program=run_resilient_cgpop,
        kwargs=dict(ny=32, nx=16, tol=1e-8),
        verify=_verify_cg,
        checkpoint_every=10,
    ),
}

MODES = ("faults", "restart", "shrink")


# -- campaign configuration ----------------------------------------------


@dataclass
class CampaignConfig:
    runs: int = 30
    seed: int = 20140216  # PPoPP'14, why not
    nranks: int = 4
    apps: tuple[str, ...] = ("ra", "cgpop")
    backends: tuple[str, ...] = ("mpi", "gasnet")
    modes: tuple[str, ...] = MODES
    deadline: float = 30.0
    out: pathlib.Path | None = None
    sanitize: bool = True
    #: Re-run every Nth verified case twice with the order digest armed
    #: (0 disables the determinism invariant).
    determinism_every: int = 10
    minimize: bool = True
    max_minimize_tests: int = 48
    verbose: bool = True


def case_from_seed(cfg: CampaignConfig, index: int) -> dict:
    """Deterministically derive case ``index`` of the campaign."""
    seed = cfg.seed + index
    rng = np.random.default_rng(seed)
    mode = cfg.modes[int(rng.integers(len(cfg.modes)))]
    case = {
        "index": index,
        "seed": seed,
        "app": cfg.apps[int(rng.integers(len(cfg.apps)))],
        "backend": cfg.backends[int(rng.integers(len(cfg.backends)))],
        "mode": mode,
        # At most one fault class per message; keep the sum well under 1.
        "drop_rate": float(rng.uniform(0.0, 0.06)),
        "corrupt_rate": float(rng.uniform(0.0, 0.04)),
        "dup_rate": float(rng.uniform(0.0, 0.04)),
        "delay_rate": float(rng.uniform(0.0, 0.06)),
        "victim": None,
        "crash_frac": None,
    }
    if mode != "faults":
        case["victim"] = int(rng.integers(1, cfg.nranks))
        case["crash_frac"] = float(rng.uniform(0.25, 0.95))
    return case


def _plan_for(case: dict, crash_time: float | None) -> FaultPlan:
    crashes = []
    if case["victim"] is not None and crash_time is not None:
        crashes = [(case["victim"], crash_time)]
    return FaultPlan(
        seed=case["seed"],
        drop_rate=case["drop_rate"],
        corrupt_rate=case["corrupt_rate"],
        dup_rate=case["dup_rate"],
        delay_rate=case["delay_rate"],
        crashes=crashes,
        record=True,
    )


class CampaignRunner:
    """Executes cases, applies invariants, accumulates the ledger."""

    def __init__(self, cfg: CampaignConfig):
        self.cfg = cfg
        self._baselines: dict[tuple[str, str], float] = {}

    # -- helpers ----------------------------------------------------------

    def baseline_elapsed(self, app: str, backend: str) -> float:
        """Fault-free virtual makespan of (app, backend): crash times are
        placed as fractions of it, so campaigns self-calibrate."""
        key = (app, backend)
        if key not in self._baselines:
            spec = APPS[app]
            run = run_caf(
                spec.program, self.cfg.nranks, backend=backend,
                wait_timeout=None, **spec.kwargs,
            )
            self._baselines[key] = run.elapsed
        return self._baselines[key]

    def _execute(self, case: dict, plan: FaultPlan, *, sanitize: bool):
        """One run of the case under ``plan``; returns the final cluster."""
        cfg = self.cfg
        spec = APPS[case["app"]]
        kwargs = dict(spec.kwargs)
        if case["mode"] == "faults":
            run = run_caf(
                spec.program, cfg.nranks, backend=case["backend"],
                faults=plan, reliable=True, deadline=cfg.deadline,
                sanitize=sanitize, **kwargs,
            )
            return run.cluster, None
        kwargs["recovery"] = "shrink" if case["mode"] == "shrink" else "restart"
        out = run_resilient(
            spec.program, cfg.nranks, mode=case["mode"],
            backend=case["backend"], checkpoint_every=spec.checkpoint_every,
            faults=plan, reliable=True, deadline=cfg.deadline,
            sanitize=sanitize, **kwargs,
        )
        return out.cluster, out

    def _classify_failure(self, case: dict, exc: ReproError) -> str:
        cluster = getattr(exc, "caf_cluster", None)
        failed = sorted(cluster.failed_ranks) if cluster is not None else []
        if case["victim"] is not None and failed:
            # The injected crash fired and its consequences (including a
            # recovery caught inside an unprotected collective window)
            # killed the run: explained, not a violation.
            return FAILED_EXPLAINED
        if isinstance(exc, (SimTimeoutError, DeadlockError)):
            return HANG_VIOLATION
        return ERROR_VIOLATION

    def _check_determinism(self, case: dict, plan_events_len: int) -> bool:
        """Replay the case twice with the order digest armed; True = match."""
        import os

        crash_time = None
        if case["victim"] is not None:
            crash_time = (
                self.baseline_elapsed(case["app"], case["backend"])
                * case["crash_frac"]
            )
        digests = []
        prev = os.environ.get("REPRO_SIM_DIGEST")
        os.environ["REPRO_SIM_DIGEST"] = "1"
        try:
            for _ in range(2):
                cluster, _ = self._execute(
                    case, _plan_for(case, crash_time), sanitize=False
                )
                digests.append(cluster.engine.order_digest())
        except ReproError:
            # The failure path is exercised elsewhere; determinism of a
            # failing run is checked by the failure being deterministic.
            return True
        finally:
            if prev is None:
                os.environ.pop("REPRO_SIM_DIGEST", None)
            else:
                os.environ["REPRO_SIM_DIGEST"] = prev
        return digests[0] is not None and digests[0] == digests[1]

    def _minimize(self, case: dict, outcome: str, crash_time: float | None,
                  events) -> dict | None:
        """Delta-debug an unexplained failing case to a minimal script."""
        spec = APPS[case["app"]]

        def reproduces(plan) -> bool:
            try:
                cluster, _ = self._execute(case, plan, sanitize=False)
            except ReproError as exc:
                return self._classify_failure(case, exc) == outcome
            if outcome == VERIFY_VIOLATION:
                return not spec.verify(cluster, spec.kwargs)
            return False

        crashes = [(case["victim"], crash_time)] if case["victim"] else []
        try:
            result = minimize_plan(
                events, reproduces, crashes=crashes,
                max_tests=self.cfg.max_minimize_tests,
            )
        except ValueError:
            return None  # scripted replay does not reproduce (timing-coupled)
        return result.to_dict()

    # -- one case ---------------------------------------------------------

    def run_case(self, case: dict) -> dict:
        cfg = self.cfg
        spec = APPS[case["app"]]
        crash_time = None
        if case["victim"] is not None:
            crash_time = (
                self.baseline_elapsed(case["app"], case["backend"])
                * case["crash_frac"]
            )
        plan = _plan_for(case, crash_time)
        sanitize = cfg.sanitize and case["mode"] == "faults"
        record = dict(case)
        record["crash_time"] = crash_time

        try:
            cluster, out = self._execute(case, plan, sanitize=sanitize)
        except ReproError as exc:
            record["error"] = type(exc).__name__
            record["message"] = str(exc)[:300]
            record["failed_images"] = sorted(
                getattr(getattr(exc, "caf_cluster", None), "failed_ranks", ())
            )
            record["outcome"] = self._classify_failure(case, exc)
        else:
            record["restarts"] = out.restarts if out is not None else 0
            record["failed_images"] = sorted(cluster.failed_ranks)
            if not spec.verify(cluster, spec.kwargs):
                record["outcome"] = VERIFY_VIOLATION
            elif (
                sanitize
                and cluster.sanitizer is not None
                and not cluster.sanitizer.report.clean
            ):
                record["outcome"] = SANITIZER_VIOLATION
                record["diagnostics"] = len(cluster.sanitizer.report.diagnostics)
            else:
                record["outcome"] = VERIFIED
                if (
                    cfg.determinism_every
                    and case["index"] % cfg.determinism_every == 0
                    and not self._check_determinism(case, len(plan.events))
                ):
                    record["outcome"] = DIGEST_VIOLATION

        record["fault_events"] = len(plan.events)
        if record["outcome"] in VIOLATIONS and cfg.minimize and plan.events:
            record["minimized"] = self._minimize(
                case, record["outcome"], crash_time, plan.events
            )
        return record

    # -- the campaign -----------------------------------------------------

    def run(self) -> dict:
        cfg = self.cfg
        records = []
        for i in range(cfg.runs):
            case = case_from_seed(cfg, i)
            if cfg.out is not None:
                case_dir = cfg.out / f"case-{i:04d}"
                with obs_capture.capture(case_dir):
                    record = self.run_case(case)
            else:
                record = self.run_case(case)
            records.append(record)
            if cfg.verbose:
                tag = f"[{record['outcome']}]"
                print(
                    f"case {i:04d} seed={record['seed']} {record['app']:>6}/"
                    f"{record['backend']:<6} {record['mode']:<7} {tag}",
                    file=sys.stderr,
                )
        counts: dict[str, int] = {}
        for r in records:
            counts[r["outcome"]] = counts.get(r["outcome"], 0) + 1
        unexplained = [r for r in records if r["outcome"] in VIOLATIONS]
        summary = {
            "config": {
                "runs": cfg.runs,
                "seed": cfg.seed,
                "nranks": cfg.nranks,
                "apps": list(cfg.apps),
                "backends": list(cfg.backends),
                "modes": list(cfg.modes),
            },
            "counts": counts,
            "unexplained": len(unexplained),
            "records": records,
        }
        if cfg.out is not None:
            cfg.out.mkdir(parents=True, exist_ok=True)
            (cfg.out / "campaign.json").write_text(
                json.dumps(summary, indent=1, sort_keys=True)
            )
        return summary


def run_campaign(cfg: CampaignConfig) -> dict:
    return CampaignRunner(cfg).run()


# -- CLI ------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Seeded chaos campaign over the resilient apps.",
    )
    parser.add_argument("--runs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=20140216)
    parser.add_argument("--nranks", type=int, default=4)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="campaign artifact directory (reports + ledger)")
    parser.add_argument("--apps", nargs="+", default=list(APPS),
                        choices=list(APPS))
    parser.add_argument("--backends", nargs="+", default=["mpi", "gasnet"],
                        choices=["mpi", "gasnet"])
    parser.add_argument("--modes", nargs="+", default=list(MODES),
                        choices=list(MODES))
    parser.add_argument("--deadline", type=float, default=30.0)
    parser.add_argument("--no-minimize", action="store_true")
    parser.add_argument("--no-sanitize", action="store_true")
    parser.add_argument("--determinism-every", type=int, default=10)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    cfg = CampaignConfig(
        runs=args.runs,
        seed=args.seed,
        nranks=args.nranks,
        apps=tuple(args.apps),
        backends=tuple(args.backends),
        modes=tuple(args.modes),
        deadline=args.deadline,
        out=args.out,
        sanitize=not args.no_sanitize,
        determinism_every=args.determinism_every,
        minimize=not args.no_minimize,
        verbose=not args.quiet,
    )
    summary = run_campaign(cfg)
    counts = ", ".join(f"{k}={v}" for k, v in sorted(summary["counts"].items()))
    print(f"{cfg.runs} runs: {counts}")
    if summary["unexplained"]:
        print(f"UNEXPLAINED VIOLATIONS: {summary['unexplained']}", file=sys.stderr)
        for r in summary["records"]:
            if r["outcome"] in VIOLATIONS:
                print(f"  seed={r['seed']} {r['app']}/{r['backend']}/"
                      f"{r['mode']}: {r['outcome']}"
                      + (f" (minimized to "
                         f"{len(r['minimized']['minimal_events'])} events)"
                         if r.get("minimized") else ""),
                      file=sys.stderr)
        return 1
    print("no unexplained violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
